//! Reception bitmaps — the data structure at the heart of the paper's
//! multi-phase UDP broadcast (Fig. 6).
//!
//! Each receiver of a checkpoint broadcast returns a bitmap with one bit
//! per block (1 = received). The sender ANDs all bitmaps to find blocks
//! that *every* receiver has, and rebroadcasts the complement. The wire
//! size of a bitmap (`ceil(n/8)` bytes) is part of the protocol's
//! cost/gain accounting, so it is exposed here.

use std::fmt;

/// A fixed-length bitset.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// All-zero bitmap of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// All-one bitmap of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            len,
            words: vec![u64::MAX; len.div_ceil(64)],
        };
        b.mask_tail();
        b
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Wire size in bytes when a receiver returns this bitmap.
    pub fn wire_bytes(&self) -> u64 {
        (self.len as u64).div_ceil(8)
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set bit `i` to `v`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// True if every bit is set.
    pub fn all_ones(&self) -> bool {
        self.count_ones() == self.len
    }

    /// In-place AND with another bitmap of the same length.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place OR with another bitmap of the same length.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Indices of clear bits (the blocks to rebroadcast).
    pub fn zero_indices(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| !self.get(i)).collect()
    }

    /// Indices of set bits.
    pub fn one_indices(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.get(i)).collect()
    }

    /// AND of an iterator of bitmaps (all the same length).
    /// Returns `None` if the iterator is empty.
    pub fn and_all<'a>(mut maps: impl Iterator<Item = &'a Bitmap>) -> Option<Bitmap> {
        let mut acc = maps.next()?.clone();
        for m in maps {
            acc.and_assign(m);
        }
        Some(acc)
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Bitmap[{}: {}/{} set",
            self.len,
            self.count_ones(),
            self.len
        )?;
        if self.len <= 64 {
            write!(f, " ")?;
            for i in 0..self.len {
                write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(130);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.count_zeros(), 130);
        let o = Bitmap::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(o.all_ones());
        assert!(o.get(129));
    }

    #[test]
    fn tail_masking_exact_word_boundary() {
        let o = Bitmap::ones(128);
        assert_eq!(o.count_ones(), 128);
        let o = Bitmap::ones(64);
        assert_eq!(o.count_ones(), 64);
        let o = Bitmap::ones(1);
        assert_eq!(o.count_ones(), 1);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::zeros(100);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(99, true);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(99));
        assert!(!b.get(1) && !b.get(65));
        assert_eq!(b.count_ones(), 4);
        b.set(63, false);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn and_or_semantics() {
        let mut evens = Bitmap::zeros(10);
        let mut odds = Bitmap::zeros(10);
        for i in 0..10 {
            if i % 2 == 0 {
                evens.set(i, true);
            } else {
                odds.set(i, true);
            }
        }
        let mut anded = evens.clone();
        anded.and_assign(&odds);
        assert_eq!(anded.count_ones(), 0);
        let mut ored = evens.clone();
        ored.or_assign(&odds);
        assert!(ored.all_ones());
    }

    #[test]
    fn fig6_style_and_all() {
        // Paper's Fig 6 time instant 2: A has first 3, B has evens,
        // C has odds → AND = empty.
        let n = 16;
        let mut a = Bitmap::zeros(n);
        (0..3).for_each(|i| a.set(i, true));
        let mut b = Bitmap::zeros(n);
        (0..n).filter(|i| i % 2 == 1).for_each(|i| b.set(i, true)); // "even messages" M2,M4.. are odd indices
        let mut c = Bitmap::zeros(n);
        (0..n).filter(|i| i % 2 == 0).for_each(|i| c.set(i, true));
        let anded = Bitmap::and_all([&a, &b, &c].into_iter()).unwrap();
        assert_eq!(anded.count_ones(), 0);
        assert_eq!(anded.zero_indices().len(), n);
    }

    #[test]
    fn wire_bytes_matches_paper() {
        // 8192 blocks → 1 KB bitmap, as in Fig 6.
        assert_eq!(Bitmap::zeros(8192).wire_bytes(), 1024);
        assert_eq!(Bitmap::zeros(1).wire_bytes(), 1);
        assert_eq!(Bitmap::zeros(9).wire_bytes(), 2);
    }

    #[test]
    fn and_all_empty_is_none() {
        assert!(Bitmap::and_all(std::iter::empty()).is_none());
    }

    #[test]
    fn union_accumulates_receptions_across_phases() {
        // A receiver's cumulative bitmap is the union of per-phase
        // receptions: losses only ever shrink.
        let n = 12;
        let mut cum = Bitmap::zeros(n);
        let mut phase1 = Bitmap::zeros(n);
        (0..n)
            .filter(|i| i % 2 == 0)
            .for_each(|i| phase1.set(i, true));
        cum.or_assign(&phase1);
        assert_eq!(cum.zero_indices(), vec![1, 3, 5, 7, 9, 11]);

        // Phase 2 re-delivers some of the losses (and re-receives a few
        // blocks already held — idempotent).
        let mut phase2 = Bitmap::zeros(n);
        for i in [0, 1, 5, 9] {
            phase2.set(i, true);
        }
        cum.or_assign(&phase2);
        assert_eq!(cum.zero_indices(), vec![3, 7, 11], "residue shrinks");

        // Phase 3 delivers the rest.
        let mut phase3 = Bitmap::zeros(n);
        for i in [3, 7, 11] {
            phase3.set(i, true);
        }
        cum.or_assign(&phase3);
        assert!(cum.all_ones(), "no residue left");
    }

    #[test]
    fn and_across_receivers_yields_rebroadcast_set() {
        // The sender ANDs all receivers' bitmaps; the AND's zero
        // indices are the union of everyone's losses — exactly the next
        // phase's rebroadcast set (§III-C).
        let n = 10;
        let mut a = Bitmap::ones(n);
        a.set(2, false); // A lost block 2
        let mut b = Bitmap::ones(n);
        b.set(7, false); // B lost block 7
        let c = Bitmap::ones(n); // C lost nothing

        let anded = Bitmap::and_all([&a, &b, &c].into_iter()).unwrap();
        assert_eq!(anded.zero_indices(), vec![2, 7]);
        assert_eq!(anded.count_ones(), n - 2);

        // Per-receiver residue (what the final reliable pass must carry
        // to each) stays individual: A needs 2, B needs 7, C nothing.
        assert_eq!(a.zero_indices(), vec![2]);
        assert_eq!(b.zero_indices(), vec![7]);
        assert!(c.zero_indices().is_empty());
    }

    #[test]
    fn and_assign_is_intersection_or_assign_is_union() {
        let n = 9;
        let mut x = Bitmap::zeros(n);
        let mut y = Bitmap::zeros(n);
        for i in 0..n {
            x.set(i, i < 6); // 0..6
            y.set(i, i >= 3); // 3..9
        }
        let mut and = x.clone();
        and.and_assign(&y);
        assert_eq!(and.one_indices(), vec![3, 4, 5]);
        let mut or = x.clone();
        or.or_assign(&y);
        assert!(or.all_ones());
        // De Morgan sanity: zeros(AND) = zeros(x) ∪ zeros(y).
        let mut expect: Vec<usize> = x.zero_indices();
        expect.extend(y.zero_indices());
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(and.zero_indices(), expect);
    }

    proptest! {
        #[test]
        fn prop_set_then_get(len in 1usize..300, bits in prop::collection::vec(any::<bool>(), 1..300)) {
            let len = len.min(bits.len());
            let mut b = Bitmap::zeros(len);
            for (i, &v) in bits.iter().take(len).enumerate() {
                b.set(i, v);
            }
            for (i, &v) in bits.iter().take(len).enumerate() {
                prop_assert_eq!(b.get(i), v);
            }
            let expect = bits.iter().take(len).filter(|&&v| v).count();
            prop_assert_eq!(b.count_ones(), expect);
        }

        #[test]
        fn prop_and_is_intersection(len in 1usize..200, seed_a in any::<u64>(), seed_b in any::<u64>()) {
            let mk = |seed: u64| {
                let mut b = Bitmap::zeros(len);
                let mut s = seed;
                for i in 0..len {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    b.set(i, s >> 63 == 1);
                }
                b
            };
            let a = mk(seed_a);
            let bb = mk(seed_b);
            let mut anded = a.clone();
            anded.and_assign(&bb);
            for i in 0..len {
                prop_assert_eq!(anded.get(i), a.get(i) && bb.get(i));
            }
            // ones + zeros partition the index set
            prop_assert_eq!(anded.count_ones() + anded.count_zeros(), len);
            let one_ix = anded.one_indices();
            let zero_ix = anded.zero_indices();
            prop_assert_eq!(one_ix.len() + zero_ix.len(), len);
        }
    }
}
