//! The 3G cellular network.
//!
//! Every phone (and the controller, and the datacenter frontend of the
//! server baseline) is an *endpoint* with its own uplink and downlink
//! rate queues — per the paper's measurements, uplink 0.016–0.32 Mbps
//! and downlink 0.35–1.14 Mbps. A transfer serializes on the source's
//! uplink, crosses the core with half-RTT latency, then serializes on
//! the destination's downlink. The cellular network is managed and
//! reliable; failures surface only when the *destination endpoint* is
//! dead or departed, after a timeout — and a dead destination never
//! consumes uplink time, so it cannot head-of-line-block live traffic.
//!
//! Link queues are *bounded*: each direction buffers at most
//! [`CellConfig::max_queue_bytes`] of backlog. Droppable traffic (see
//! [`TrafficClass::droppable`]) arriving at a full queue is
//! tail-dropped and counted (per endpoint and in [`NetStats`]);
//! priority classes (control, checkpoint, recovery) are never shed, so
//! saturation degrades the data plane without breaking protocol
//! liveness. Tagged droppable sends receive a [`TxDropped`] so senders
//! can distinguish congestion from death.

use std::collections::BTreeMap;

use simkernel::{impl_actor_any, Actor, ActorId, Ctx, EventBox, SimDuration};

use crate::link::RateQueue;
use crate::stats::{NetStats, TrafficClass};
use crate::{LinkState, Payload, TxDone, TxDropped, TxFailed, TxSevered};

/// Cellular network parameters (paper's measured 3G band midpoints).
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Default endpoint uplink, bits/s.
    pub default_up_bps: f64,
    /// Default endpoint downlink, bits/s.
    pub default_down_bps: f64,
    /// Round-trip time through the core.
    pub rtt: SimDuration,
    /// Per-message protocol overhead in bytes.
    pub overhead: u64,
    /// Unreachable-destination report delay.
    pub timeout: SimDuration,
    /// Per-direction link buffer: droppable traffic arriving while this
    /// much backlog is already queued is tail-dropped. The bound is on
    /// *waiting* bytes, so a single transfer larger than the buffer
    /// still goes out once it reaches the queue head. ~6 s of uplink
    /// backlog at the default rates.
    pub max_queue_bytes: u64,
    /// Delay before a [`TxDropped`] congestion notice reaches the
    /// sender. Physically this is the radio stack surfacing the
    /// tail-drop; it also lower-bounds every cellular response, which
    /// is what gives the parallel kernel a non-zero lookahead at the
    /// region/core boundary.
    pub drop_notify: SimDuration,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig {
            default_up_bps: 168_000.0,   // midpoint of 0.016–0.32 Mbps
            default_down_bps: 745_000.0, // midpoint of 0.35–1.14 Mbps
            rtt: SimDuration::from_millis(150),
            overhead: 60,
            timeout: SimDuration::from_secs(5),
            max_queue_bytes: 128 * 1024,
            drop_notify: SimDuration::from_millis(2),
        }
    }
}

impl CellConfig {
    /// Lower bound on the delay between any message entering the
    /// cellular network and the earliest response it can trigger back
    /// out to an endpoint at the default rates: the minimum of the
    /// drop-notify delay ([`TxDropped`]), half the RTT ([`CellRx`]),
    /// the failure timeout ([`TxFailed`]) and the time to clock a
    /// minimum-size message through the default uplink ([`TxDone`]).
    ///
    /// This is the conservative *lookahead* a parallel event kernel may
    /// use at the region/core boundary. It does not hold for endpoints
    /// registered with faster-than-default uplink rates; keep those on
    /// the global shard.
    pub fn min_response_delay(&self) -> SimDuration {
        let min_tx = crate::link::tx_time(self.overhead, self.default_up_bps);
        self.drop_notify
            .min(self.rtt / 2)
            .min(self.timeout)
            .min(min_tx)
    }
}

/// Request: transfer `bytes` from `src` to `dst` over cellular.
#[derive(Debug)]
pub struct CellSend {
    /// Sending endpoint.
    pub src: ActorId,
    /// Receiving endpoint.
    pub dst: ActorId,
    /// Accounting class.
    pub class: TrafficClass,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Completion tag; 0 = none.
    pub tag: u64,
    /// Message content.
    pub payload: Option<Payload>,
}

/// Delivery of a [`CellSend`].
#[derive(Debug, Clone)]
pub struct CellRx {
    /// Sending endpoint.
    pub src: ActorId,
    /// Payload size.
    pub bytes: u64,
    /// Accounting class.
    pub class: TrafficClass,
    /// Message content.
    pub payload: Payload,
}

/// Control: change an endpoint's reachability.
#[derive(Debug, Clone, Copy)]
pub struct CellSetLink {
    /// Endpoint.
    pub node: ActorId,
    /// New state.
    pub state: LinkState,
}

/// Control: sever or restore the path between an endpoint and the core
/// (a network-weather partition). Unlike [`CellSetLink`] the endpoint
/// is *not* killed: its link state, queues and registration survive,
/// and sends involving it age out with [`TxSevered`] after the timeout
/// instead of failing — so upper layers retry with backoff rather than
/// declaring the peer dead.
#[derive(Debug, Clone, Copy)]
pub struct CellSetPartition {
    /// Endpoint.
    pub node: ActorId,
    /// `true` = behind the partition, `false` = healed.
    pub on: bool,
}

struct Endpoint {
    up: RateQueue,
    down: RateQueue,
    state: LinkState,
    /// Severed from the core by a weather partition (orthogonal to
    /// `state`: a partitioned endpoint is alive, just unreachable).
    partitioned: bool,
    /// Messages tail-dropped at this endpoint's full queues (uplink
    /// drops charged to the sender, downlink drops to the receiver).
    queue_drops: u64,
    /// Bytes lost at this endpoint's queues: tail-dropped payloads plus
    /// backlog drained when the endpoint died with bytes still queued.
    queue_drop_bytes: u64,
}

/// Per-endpoint congestion accounting (harvested by experiments).
#[derive(Debug, Clone, Copy, Default)]
pub struct CellEndpointStats {
    /// Messages tail-dropped at this endpoint's full queues.
    pub queue_drops: u64,
    /// Bytes lost at this endpoint's queues (tail drops + death drain).
    pub queue_drop_bytes: u64,
    /// Deepest uplink backlog observed (bytes).
    pub max_up_queue_bytes: u64,
    /// Deepest downlink backlog observed (bytes).
    pub max_down_queue_bytes: u64,
}

impl CellEndpointStats {
    /// Deeper of the two directions.
    pub fn max_queue_bytes(&self) -> u64 {
        self.max_up_queue_bytes.max(self.max_down_queue_bytes)
    }
}

/// The global cellular network actor.
pub struct CellularNet {
    cfg: CellConfig,
    endpoints: BTreeMap<ActorId, Endpoint>,
    stats: NetStats,
}

impl CellularNet {
    /// New network.
    pub fn new(cfg: CellConfig) -> Self {
        CellularNet {
            cfg,
            endpoints: BTreeMap::new(),
            stats: NetStats::default(),
        }
    }

    /// Register an endpoint with the default asymmetric rates.
    pub fn register(&mut self, node: ActorId) {
        let up = self.cfg.default_up_bps;
        let down = self.cfg.default_down_bps;
        self.register_with_rates(node, up, down);
    }

    /// Register with explicit rates (the controller and the datacenter
    /// frontend get fat pipes).
    pub fn register_with_rates(&mut self, node: ActorId, up_bps: f64, down_bps: f64) {
        self.endpoints.insert(
            node,
            Endpoint {
                up: RateQueue::new(up_bps),
                down: RateQueue::new(down_bps),
                state: LinkState::Active,
                partitioned: false,
                queue_drops: 0,
                queue_drop_bytes: 0,
            },
        );
    }

    /// Minimum delay between any [`CellSend`] issued anywhere and the
    /// resulting [`CellRx`] delivered to `node`: half the RTT plus the
    /// time to clock a minimum-size (payload-less) message through
    /// `node`'s downlink. `None` when `node` is not a registered
    /// endpoint.
    ///
    /// This is a *per-destination* conservative bound for a parallel
    /// kernel: every cross-region event chain into `node`'s shard ends
    /// with such a delivery, so the shard's window may run this far
    /// past the earliest foreign send — typically 30–40× wider than
    /// [`CellConfig::min_response_delay`]. Endpoint rates are fixed at
    /// registration ([`CellSetLink`] changes reachability, not rates),
    /// so the bound is stable for the whole run.
    pub fn min_delivery_delay_to(&self, node: ActorId) -> Option<SimDuration> {
        let ep = self.endpoints.get(&node)?;
        Some(self.cfg.rtt / 2 + crate::link::tx_time(self.cfg.overhead, ep.down.rate_bps()))
    }

    /// Change an endpoint's reachability (setup-time wiring; event-path
    /// callers go through [`Self::set_link_state_at`] so a death drains
    /// the queued backlog into the drop accounting).
    pub fn set_link_state(&mut self, node: ActorId, state: LinkState) {
        if let Some(ep) = self.endpoints.get_mut(&node) {
            ep.state = state;
        }
    }

    /// Change an endpoint's reachability at a known sim time. A
    /// transition out of `Active` drains whatever is still waiting on
    /// both directions: those bytes will never be transmitted, so they
    /// are charged to the endpoint's (and the network's) drop
    /// accounting instead of silently vanishing — and the observed
    /// `max_*_queue_bytes` maxima are left untouched.
    pub fn set_link_state_at(&mut self, node: ActorId, state: LinkState, now: simkernel::SimTime) {
        let Some(ep) = self.endpoints.get_mut(&node) else {
            return;
        };
        if ep.state.reachable() && !state.reachable() {
            let drained = ep.up.clear_backlog(now) + ep.down.clear_backlog(now);
            ep.queue_drop_bytes += drained;
            self.stats.queue_drop_bytes += drained;
        }
        ep.state = state;
    }

    /// Sever (`on = true`) or heal (`on = false`) the endpoint↔core
    /// path without touching the endpoint's link state or queues.
    pub fn set_partitioned(&mut self, node: ActorId, on: bool) {
        if let Some(ep) = self.endpoints.get_mut(&node) {
            ep.partitioned = on;
        }
    }

    /// Is this endpoint currently behind a weather partition?
    pub fn partitioned(&self, node: ActorId) -> bool {
        self.endpoints.get(&node).is_some_and(|e| e.partitioned)
    }

    /// Endpoint reachability (`Gone` if unregistered).
    pub fn link_state(&self, node: ActorId) -> LinkState {
        self.endpoints
            .get(&node)
            .map(|e| e.state)
            .unwrap_or(LinkState::Gone)
    }

    /// Accounting.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Per-endpoint congestion accounting (`None` if unregistered).
    pub fn endpoint_stats(&self, node: ActorId) -> Option<CellEndpointStats> {
        self.endpoints.get(&node).map(|ep| CellEndpointStats {
            queue_drops: ep.queue_drops,
            queue_drop_bytes: ep.queue_drop_bytes,
            max_up_queue_bytes: ep.up.max_depth_bytes(),
            max_down_queue_bytes: ep.down.max_depth_bytes(),
        })
    }

    fn handle_send(&mut self, s: CellSend, ctx: &mut Ctx) {
        let now = ctx.now();
        let wire = s.bytes + self.cfg.overhead;
        let cap = self.cfg.max_queue_bytes;
        // Sends from unregistered endpoints are counted, not fatal
        // (PR 2 de-panicking convention): a mis-wired app must not
        // take the whole fleet simulation down.
        let Some(src_state) = self.endpoints.get(&s.src).map(|ep| ep.state) else {
            self.stats.rejects += 1;
            return;
        };
        if !src_state.reachable() {
            self.stats.drops += 1;
            return;
        }

        // Weather partition: either side behind the cut severs the
        // path. The message ages out via the same timeout as a dead
        // destination, but the sender learns `TxSevered`, not
        // `TxFailed` — a partitioned peer may well be alive, so this
        // must not feed failure detection. Checked before the dead-dst
        // path: death cannot be observed through a partition.
        if self.partitioned(s.src) || self.partitioned(s.dst) {
            self.stats.severed_sends += 1;
            if s.tag != 0 {
                ctx.send_in(
                    self.cfg.timeout,
                    s.src,
                    TxSevered {
                        tag: s.tag,
                        dst: s.dst,
                    },
                );
            }
            return;
        }

        // Dead destination: report unreachable after the timeout
        // WITHOUT occupying the uplink — a dead peer must not
        // head-of-line-block live urgent traffic behind its payload.
        if !self.link_state(s.dst).reachable() {
            self.stats.failed_sends += 1;
            if s.tag != 0 {
                ctx.send_in(
                    self.cfg.timeout,
                    s.src,
                    TxFailed {
                        tag: s.tag,
                        dst: s.dst,
                    },
                );
            }
            return;
        }

        // Bounded uplink: shed droppable traffic when the sender's
        // radio buffer is already full.
        let Some(src_ep) = self.endpoints.get_mut(&s.src) else {
            self.stats.rejects += 1;
            return;
        };
        if s.class.droppable() && src_ep.up.depth_bytes(now) >= cap {
            src_ep.queue_drops += 1;
            src_ep.queue_drop_bytes += s.bytes;
            self.stats.queue_drops += 1;
            self.stats.queue_drop_bytes += s.bytes;
            ctx.count("cell.queue_drops", 1);
            if s.tag != 0 {
                ctx.send_in(
                    self.cfg.drop_notify,
                    s.src,
                    TxDropped {
                        tag: s.tag,
                        dst: s.dst,
                    },
                );
            }
            return;
        }
        let (_, up_end) = src_ep.up.reserve(now, wire);
        let up_air = up_end - now;
        let up_depth = src_ep.up.max_depth_bytes();
        self.stats.note_queue_depth(up_depth);

        let core_arrive = up_end + self.cfg.rtt / 2;
        let Some(dst_ep) = self.endpoints.get_mut(&s.dst) else {
            self.stats.rejects += 1;
            return;
        };

        // Bounded downlink buffer at the core: the bytes crossed the
        // uplink but are shed before the receiver's pipe. Depth is
        // assessed on the send-event clock (`now`), which is monotone —
        // `core_arrive` includes the sender's uplink backlog, so
        // successive arrivals are NOT ordered and a stale, un-decayed
        // depth reading would phantom-drop traffic bound for an
        // actually-empty downlink.
        if s.class.droppable() && dst_ep.down.depth_bytes(now) >= cap {
            dst_ep.queue_drops += 1;
            dst_ep.queue_drop_bytes += s.bytes;
            self.stats.queue_drops += 1;
            self.stats.queue_drop_bytes += s.bytes;
            ctx.count("cell.queue_drops", 1);
            self.stats.record_send(s.class, s.bytes, wire, up_air);
            if s.tag != 0 {
                ctx.send_in(
                    up_air.max(self.cfg.drop_notify),
                    s.src,
                    TxDropped {
                        tag: s.tag,
                        dst: s.dst,
                    },
                );
            }
            return;
        }

        let (_, down_end) = {
            // The downlink cannot start before the data reaches the
            // core; depth bookkeeping stays on the monotone send-event
            // clock (see the cap check above).
            let q = &mut dst_ep.down;
            let span = crate::link::tx_time(wire, q.rate_bps());
            q.reserve_span_at(now, core_arrive, span, wire)
        };
        let down_depth = dst_ep.down.max_depth_bytes();
        self.stats.note_queue_depth(down_depth);
        self.stats.record_send(
            s.class,
            s.bytes,
            wire * 2,
            up_air + (down_end - core_arrive),
        );
        ctx.count("cell.sends", 1);

        if let Some(p) = s.payload {
            ctx.send_in(
                down_end - now,
                s.dst,
                CellRx {
                    src: s.src,
                    bytes: s.bytes,
                    class: s.class,
                    payload: p,
                },
            );
        }
        if s.tag != 0 {
            ctx.send_in(up_end - now, s.src, TxDone { tag: s.tag });
        }
    }
}

impl Actor for CellularNet {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        simkernel::match_event!(ev,
            s: CellSend => { self.handle_send(s, ctx); },
            l: CellSetLink => { self.set_link_state_at(l.node, l.state, ctx.now()); },
            p: CellSetPartition => { self.set_partitioned(p.node, p.on); },
            @else _other => {
                // Unknown event types are counted, not fatal (PR 2
                // de-panicking convention; see wifi.rs for the model).
                self.stats.rejects += 1;
            }
        );
    }

    fn name(&self) -> String {
        "cellular-net".into()
    }

    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::{Sim, SimTime};

    #[derive(Default)]
    struct Sink {
        rx: Vec<(SimTime, u64)>,
        done: Vec<u64>,
        failed: Vec<u64>,
        dropped: Vec<u64>,
        severed: Vec<(SimTime, u64)>,
    }

    impl Actor for Sink {
        fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
            simkernel::match_event!(ev,
                r: CellRx => { self.rx.push((ctx.now(), r.bytes)); },
                d: TxDone => { self.done.push(d.tag); },
                f: TxFailed => { self.failed.push(f.tag); },
                d: TxDropped => { self.dropped.push(d.tag); },
                s: TxSevered => { self.severed.push((ctx.now(), s.tag)); },
                @else other => { panic!("unexpected {}", (*other).type_name()); }
            );
        }
        impl_actor_any!();
    }

    #[test]
    fn min_response_delay_is_the_smallest_response_path() {
        let cfg = CellConfig::default();
        // drop_notify (2 ms) < tx_time(60 B, 168 kbps) ≈ 2.857 ms <
        // rtt/2 (75 ms) < timeout (5 s).
        assert_eq!(cfg.min_response_delay(), cfg.drop_notify);
        // A zero-overhead config is bounded by the next-smallest term.
        let zero_overhead = CellConfig {
            overhead: 0,
            ..CellConfig::default()
        };
        assert_eq!(
            zero_overhead.min_response_delay(),
            SimDuration::ZERO,
            "zero overhead means a message can clock out instantly"
        );
    }

    fn setup() -> (Sim, ActorId, Vec<ActorId>) {
        let mut sim = Sim::new(3);
        let nodes: Vec<ActorId> = (0..3)
            .map(|_| sim.add_actor(Box::<Sink>::default()))
            .collect();
        let mut net = CellularNet::new(CellConfig {
            default_up_bps: 100_000.0, // 12.5 KB/s
            default_down_bps: 1_000_000.0,
            rtt: SimDuration::from_millis(100),
            overhead: 0,
            timeout: SimDuration::from_secs(5),
            max_queue_bytes: 128 * 1024,
            drop_notify: SimDuration::from_millis(2),
        });
        for &n in &nodes {
            net.register(n);
        }
        let id = sim.add_actor(Box::new(net));
        (sim, id, nodes)
    }

    #[test]
    fn transfer_time_is_uplink_plus_half_rtt_plus_downlink() {
        let (mut sim, net, nodes) = setup();
        sim.schedule_at(
            SimTime::ZERO,
            net,
            CellSend {
                src: nodes[0],
                dst: nodes[1],
                class: TrafficClass::Data,
                bytes: 12_500, // 1 s up at 100 kbps, 0.1 s down at 1 Mbps
                tag: 1,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        let rx = &sim.actor::<Sink>(nodes[1]).rx;
        assert_eq!(rx.len(), 1);
        let expect = 1.0 + 0.05 + 0.1;
        assert!(
            (rx[0].0.as_secs_f64() - expect).abs() < 1e-6,
            "{:?}",
            rx[0].0
        );
        // TxDone when the uplink drained (sender can queue the next).
        assert_eq!(sim.actor::<Sink>(nodes[0]).done, vec![1]);
    }

    #[test]
    fn uplink_is_the_bottleneck_and_serializes() {
        let (mut sim, net, nodes) = setup();
        for tag in 1..=3u64 {
            sim.schedule_at(
                SimTime::ZERO,
                net,
                CellSend {
                    src: nodes[0],
                    dst: nodes[1],
                    class: TrafficClass::Data,
                    bytes: 12_500,
                    tag,
                    payload: Some(crate::payload(())),
                },
            );
        }
        sim.run();
        let rx = &sim.actor::<Sink>(nodes[1]).rx;
        assert_eq!(rx.len(), 3);
        // Arrivals spaced by the uplink serialization (1 s each).
        let t: Vec<f64> = rx.iter().map(|(at, _)| at.as_secs_f64()).collect();
        assert!((t[1] - t[0] - 1.0).abs() < 1e-6, "{t:?}");
        assert!((t[2] - t[1] - 1.0).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn distinct_endpoints_have_independent_uplinks() {
        let (mut sim, net, nodes) = setup();
        for src in [nodes[0], nodes[1]] {
            sim.schedule_at(
                SimTime::ZERO,
                net,
                CellSend {
                    src,
                    dst: nodes[2],
                    class: TrafficClass::Data,
                    bytes: 12_500,
                    tag: 0,
                    payload: Some(crate::payload(())),
                },
            );
        }
        sim.run();
        let rx = &sim.actor::<Sink>(nodes[2]).rx;
        assert_eq!(rx.len(), 2);
        // Both uplinks run in parallel; arrivals differ only by downlink
        // serialization (0.1 s), not uplink (1 s).
        let dt = rx[1].0.as_secs_f64() - rx[0].0.as_secs_f64();
        assert!((dt - 0.1).abs() < 1e-6, "dt = {dt}");
    }

    #[test]
    fn send_to_dead_endpoint_fails() {
        let (mut sim, net, nodes) = setup();
        sim.actor_mut::<CellularNet>(net)
            .set_link_state(nodes[1], LinkState::Dead);
        sim.schedule_at(
            SimTime::ZERO,
            net,
            CellSend {
                src: nodes[0],
                dst: nodes[1],
                class: TrafficClass::Control,
                bytes: 100,
                tag: 7,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        assert!(sim.actor::<Sink>(nodes[1]).rx.is_empty());
        assert_eq!(sim.actor::<Sink>(nodes[0]).failed, vec![7]);
        assert!(sim.now() >= SimTime::from_secs(5));
    }

    #[test]
    fn dead_destination_does_not_occupy_the_uplink() {
        let (mut sim, net, nodes) = setup();
        sim.actor_mut::<CellularNet>(net)
            .set_link_state(nodes[1], LinkState::Gone);
        // A huge payload to the departed endpoint (10 s of uplink if it
        // were serialized), then a small urgent message to a live peer.
        sim.schedule_at(
            SimTime::ZERO,
            net,
            CellSend {
                src: nodes[0],
                dst: nodes[1],
                class: TrafficClass::Data,
                bytes: 125_000,
                tag: 9,
                payload: Some(crate::payload(())),
            },
        );
        sim.schedule_at(
            SimTime::ZERO,
            net,
            CellSend {
                src: nodes[0],
                dst: nodes[2],
                class: TrafficClass::Control,
                bytes: 1_000,
                tag: 10,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        // The live message was not head-of-line-blocked: 0.08 s uplink
        // + 0.05 s half-RTT + 0.008 s downlink, far below 10 s.
        let rx = &sim.actor::<Sink>(nodes[2]).rx;
        assert_eq!(rx.len(), 1);
        assert!(
            rx[0].0 < SimTime::from_secs(1),
            "HOL-blocked: {:?}",
            rx[0].0
        );
        // The dead send still failed after the timeout.
        assert_eq!(sim.actor::<Sink>(nodes[0]).failed, vec![9]);
        // And no uplink/wire accounting happened for it.
        let n = sim.actor::<CellularNet>(net);
        assert_eq!(n.stats().payload_bytes(TrafficClass::Data), 0);
        assert_eq!(n.stats().failed_sends, 1);
    }

    #[test]
    fn full_uplink_tail_drops_data_but_not_control() {
        let (mut sim, net, nodes) = setup();
        // 12.5 KB/s uplink, 128 KiB buffer: ~11 × 12.5 KB fills it.
        for tag in 1..=20u64 {
            sim.schedule_at(
                SimTime::ZERO,
                net,
                CellSend {
                    src: nodes[0],
                    dst: nodes[1],
                    class: TrafficClass::Data,
                    bytes: 12_500,
                    tag,
                    payload: Some(crate::payload(())),
                },
            );
        }
        // A control RPC behind the saturated queue is never shed.
        sim.schedule_at(
            SimTime::ZERO,
            net,
            CellSend {
                src: nodes[0],
                dst: nodes[1],
                class: TrafficClass::Control,
                bytes: 64,
                tag: 99,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        let src = sim.actor::<Sink>(nodes[0]);
        assert!(!src.dropped.is_empty(), "no tail drops at a full buffer");
        assert!(
            !src.dropped.contains(&99),
            "control traffic must never be shed"
        );
        assert!(src.done.contains(&99), "control RPC was delivered");
        let n = sim.actor::<CellularNet>(net);
        assert_eq!(n.stats().queue_drops, src.dropped.len() as u64);
        let ep = n.endpoint_stats(nodes[0]).unwrap();
        assert_eq!(ep.queue_drops, src.dropped.len() as u64);
        assert!(ep.max_up_queue_bytes >= 128 * 1024);
        assert!(n.stats().max_queue_depth >= ep.max_up_queue_bytes);
        // Accepted + dropped = offered.
        let delivered = sim.actor::<Sink>(nodes[1]).rx.len();
        assert_eq!(delivered + src.dropped.len(), 21);
    }

    #[test]
    fn slow_sender_reservation_does_not_phantom_drop_later_arrivals() {
        // Regression: a large transfer from a *backlogged* sender
        // reserves the destination downlink for a window far in the
        // future (core arrival ≈ its uplink drain time). A later send
        // from a fresh sender to the same destination must not be
        // tail-dropped against those bytes — at its send time they are
        // still on the other phone's uplink, not in the downlink
        // buffer.
        let (mut sim, net, nodes) = setup();
        // 128 KiB from node0: ~10.5 s of uplink at 12.5 KB/s, so the
        // downlink window is reserved ~10.5 s ahead.
        sim.schedule_at(
            SimTime::ZERO,
            net,
            CellSend {
                src: nodes[0],
                dst: nodes[1],
                class: TrafficClass::Data,
                bytes: 128 * 1024,
                tag: 1,
                payload: Some(crate::payload(())),
            },
        );
        sim.schedule_at(
            SimTime::from_secs(1),
            net,
            CellSend {
                src: nodes[2],
                dst: nodes[1],
                class: TrafficClass::Data,
                bytes: 1_000,
                tag: 2,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        assert!(
            sim.actor::<Sink>(nodes[2]).dropped.is_empty(),
            "later send phantom-dropped against a future reservation"
        );
        assert_eq!(sim.actor::<Sink>(nodes[1]).rx.len(), 2);
    }

    #[test]
    fn oversized_single_message_still_passes_an_empty_queue() {
        let (mut sim, net, nodes) = setup();
        // One 200 KiB transfer > 128 KiB buffer: the bound is on
        // *waiting* bytes, so it serializes rather than livelocking.
        sim.schedule_at(
            SimTime::ZERO,
            net,
            CellSend {
                src: nodes[0],
                dst: nodes[1],
                class: TrafficClass::Data,
                bytes: 200 * 1024,
                tag: 5,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        assert_eq!(sim.actor::<Sink>(nodes[1]).rx.len(), 1);
        assert!(sim.actor::<Sink>(nodes[0]).dropped.is_empty());
    }

    #[test]
    fn partition_severs_both_directions_without_killing_endpoints() {
        let (mut sim, net, nodes) = setup();
        sim.schedule_at(
            SimTime::ZERO,
            net,
            CellSetPartition {
                node: nodes[1],
                on: true,
            },
        );
        // Into and out of the partition: both sever, neither fails.
        for (src, dst, tag) in [(nodes[0], nodes[1], 1u64), (nodes[1], nodes[0], 2u64)] {
            sim.schedule_at(
                SimTime::from_millis(1),
                net,
                CellSend {
                    src,
                    dst,
                    class: TrafficClass::Control,
                    bytes: 100,
                    tag,
                    payload: Some(crate::payload(())),
                },
            );
        }
        // Heal, then delivery resumes over the same endpoint.
        sim.schedule_at(
            SimTime::from_secs(10),
            net,
            CellSetPartition {
                node: nodes[1],
                on: false,
            },
        );
        sim.schedule_at(
            SimTime::from_secs(10),
            net,
            CellSend {
                src: nodes[0],
                dst: nodes[1],
                class: TrafficClass::Control,
                bytes: 100,
                tag: 3,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        // Severed notices arrive after the failure timeout (5 s), and
        // carry no liveness verdict: no TxFailed anywhere.
        let s0 = sim.actor::<Sink>(nodes[0]);
        assert_eq!(s0.severed.len(), 1);
        assert_eq!(s0.severed[0].1, 1);
        assert_eq!(s0.severed[0].0, SimTime::from_millis(5001));
        assert!(s0.failed.is_empty());
        let s1 = sim.actor::<Sink>(nodes[1]);
        assert_eq!(s1.severed.iter().map(|(_, t)| *t).collect::<Vec<_>>(), [2]);
        assert!(s1.failed.is_empty());
        // The partitioned endpoint never died, and the healed send got
        // through.
        let n = sim.actor::<CellularNet>(net);
        assert_eq!(n.link_state(nodes[1]), LinkState::Active);
        assert!(!n.partitioned(nodes[1]));
        assert_eq!(n.stats().severed_sends, 2);
        assert_eq!(n.stats().failed_sends, 0);
        assert_eq!(s1.rx.len(), 1, "post-heal delivery");
    }

    #[test]
    fn endpoint_death_drains_queued_bytes_into_drop_accounting() {
        // Satellite: an endpoint dying with bytes still queued must
        // charge the drained backlog to `queue_drop_bytes` and must NOT
        // retroactively decay the observed max queue depth.
        let (mut sim, net, nodes) = setup();
        // 3 × 12.5 KB at 12.5 KB/s: 3 s of uplink backlog from t=0.
        for tag in 1..=3u64 {
            sim.schedule_at(
                SimTime::ZERO,
                net,
                CellSend {
                    src: nodes[0],
                    dst: nodes[1],
                    class: TrafficClass::Data,
                    bytes: 12_500,
                    tag,
                    payload: Some(crate::payload(())),
                },
            );
        }
        // Die at t=1 s: one message clocked out, 25 000 B still waiting.
        sim.schedule_at(
            SimTime::from_secs(1),
            net,
            CellSetLink {
                node: nodes[0],
                state: LinkState::Dead,
            },
        );
        sim.run_until(SimTime::from_secs(2));
        let n = sim.actor::<CellularNet>(net);
        let ep = n.endpoint_stats(nodes[0]).unwrap();
        assert_eq!(ep.queue_drop_bytes, 25_000, "drained backlog lost");
        assert_eq!(n.stats().queue_drop_bytes, 25_000);
        assert_eq!(ep.queue_drops, 0, "a drain is not a tail drop");
        assert_eq!(
            ep.max_up_queue_bytes, 37_500,
            "observed maximum must not decay when the owner dies"
        );

        // A revived endpoint starts with a clean pipe: no stale backlog
        // from before the crash delays new traffic.
        sim.schedule_at(
            SimTime::from_secs(2),
            net,
            CellSetLink {
                node: nodes[0],
                state: LinkState::Active,
            },
        );
        sim.schedule_at(
            SimTime::from_secs(2),
            net,
            CellSend {
                src: nodes[0],
                dst: nodes[2],
                class: TrafficClass::Data,
                bytes: 12_500,
                tag: 9,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        let rx = &sim.actor::<Sink>(nodes[2]).rx;
        assert_eq!(rx.len(), 1);
        // 2 s send + 1 s uplink + 0.05 s core + 0.1 s downlink.
        assert!(
            (rx[0].0.as_secs_f64() - 3.15).abs() < 1e-6,
            "stale pre-death backlog delayed the revived uplink: {:?}",
            rx[0].0
        );
        let n = sim.actor::<CellularNet>(net);
        assert_eq!(
            n.endpoint_stats(nodes[0]).unwrap().queue_drop_bytes,
            25_000,
            "revival must not re-charge the drain"
        );
    }

    mod partition_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Weather partitions are non-destructive and idempotent at
            /// the stats layer: over a random cut→heal→cut schedule
            /// (with redundant duplicate cut/heal events) against a
            /// steady tagged stream, every send resolves exactly once —
            /// TxDone or TxSevered, never TxFailed (nobody died) and
            /// never TxDropped (control class) — the TxSevered notices
            /// match the network's severed ledger one-for-one, queue
            /// and reject counters stay zero, and the final heal leaves
            /// the endpoint Active and un-partitioned.
            #[test]
            fn cut_heal_cut_resolves_every_send_exactly_once(
                cuts in 1usize..4,
                period_ms in 400u64..1600,
                phase_ms in 0u64..5000,
            ) {
                let (mut sim, net, nodes) = setup();
                let horizon_ms = 60_000u64;
                let mut tags = Vec::new();
                let mut at = period_ms;
                while at < horizon_ms {
                    let tag = tags.len() as u64 + 1;
                    tags.push(tag);
                    sim.schedule_at(
                        SimTime::from_millis(at),
                        net,
                        CellSend {
                            src: nodes[0],
                            dst: nodes[1],
                            class: TrafficClass::Control,
                            bytes: 100,
                            tag,
                            payload: Some(crate::payload(())),
                        },
                    );
                    at += period_ms;
                }
                // cut → 7 s outage → heal, repeated; every transition
                // is scheduled TWICE (1 ms apart) so the property also
                // covers partitioning an already-partitioned endpoint
                // and healing a healed one.
                for k in 0..cuts as u64 {
                    let cut_ms = 5_000 + phase_ms + k * 14_000;
                    for (offset, on) in [(0, true), (1, true), (7_000, false), (7_001, false)] {
                        sim.schedule_at(
                            SimTime::from_millis(cut_ms + offset),
                            net,
                            CellSetPartition {
                                node: nodes[1],
                                on,
                            },
                        );
                    }
                }
                sim.run();

                let s0 = sim.actor::<Sink>(nodes[0]);
                prop_assert!(s0.failed.is_empty(), "a partition is not death");
                prop_assert!(s0.dropped.is_empty(), "control is never shed");
                let mut resolved: Vec<u64> = s0
                    .done
                    .iter()
                    .copied()
                    .chain(s0.severed.iter().map(|(_, t)| *t))
                    .collect();
                resolved.sort_unstable();
                prop_assert_eq!(
                    &resolved, &tags,
                    "every tagged send resolves exactly once (done + severed)"
                );
                // Delivery count mirrors the accepted count.
                prop_assert_eq!(sim.actor::<Sink>(nodes[1]).rx.len(), s0.done.len());

                let n = sim.actor::<CellularNet>(net);
                prop_assert_eq!(n.stats().severed_sends, s0.severed.len() as u64);
                prop_assert_eq!(n.stats().failed_sends, 0);
                prop_assert_eq!(n.stats().queue_drops, 0);
                prop_assert_eq!(n.stats().queue_drop_bytes, 0);
                prop_assert_eq!(n.stats().rejects, 0);
                prop_assert_eq!(n.link_state(nodes[1]), LinkState::Active);
                prop_assert!(!n.partitioned(nodes[1]), "final heal sticks");
            }
        }
    }

    #[test]
    fn stats_account_bytes() {
        let (mut sim, net, nodes) = setup();
        sim.schedule_at(
            SimTime::ZERO,
            net,
            CellSend {
                src: nodes[0],
                dst: nodes[1],
                class: TrafficClass::Data,
                bytes: 5000,
                tag: 0,
                payload: None,
            },
        );
        sim.run();
        let n = sim.actor::<CellularNet>(net);
        assert_eq!(n.stats().payload_bytes(TrafficClass::Data), 5000);
        assert_eq!(n.stats().messages(TrafficClass::Data), 1);
    }
}
