//! The ad-hoc WiFi medium of one region.
//!
//! Model: a single shared, half-duplex channel. Every transmission —
//! unicast or broadcast — occupies the channel for its airtime, so all
//! traffic within a region serializes (no spatial reuse inside a
//! ≤ 20 m region, matching §III of the paper). Three services:
//!
//! * **Datagram** (UDP): per-receiver iid frame loss; a multi-frame
//!   message is lost for a receiver if *any* fragment is lost (the
//!   paper's "a message will be dropped completely as long as a part of
//!   the message has not been received").
//! * **Reliable** (TCP): never lost to an `Active` receiver; costs extra
//!   airtime — the byte stream is expanded by the expected
//!   retransmission factor `1/(1-p)` plus per-frame ACK overhead. A
//!   reliable send to a `Dead`/`Gone` node consumes one attempt's
//!   airtime and reports [`TxFailed`] after the timeout — this is how
//!   upstream neighbors detect failures.
//! * **Datagram batch**: the checkpoint broadcast sends thousands of
//!   1 KB blocks back-to-back; a batch collapses them into one event
//!   while sampling per-block, per-receiver loss exactly as individual
//!   sends would.

use std::collections::BTreeMap;
use std::sync::Arc;

use simkernel::{impl_actor_any, Actor, ActorId, Ctx, EventBox, SimDuration, SimRng};

use crate::bitmap::Bitmap;
use crate::link::{tx_time, RateQueue};
use crate::stats::{NetStats, TrafficClass};
use crate::{LinkState, Payload, TxDone, TxFailed};

/// WiFi channel parameters. Defaults follow the paper's measured
/// 1–5 Mbps ad-hoc band (midpoint 2.5 Mbps) and typical 802.11 framing.
#[derive(Debug, Clone)]
pub struct WifiConfig {
    /// Channel bit rate in bits/s.
    pub rate_bps: f64,
    /// Per-frame, per-receiver loss probability.
    pub loss: f64,
    /// Per-frame MAC/PHY + IP/UDP header overhead in bytes.
    pub frame_overhead: u64,
    /// Maximum payload bytes per frame (fragmentation threshold).
    pub mtu: u64,
    /// ACK size charged per frame by the reliable service.
    pub ack_bytes: u64,
    /// How long a reliable sender retries before declaring the
    /// destination unreachable.
    pub reliable_timeout: SimDuration,
    /// Congestion bound: sends arriving when the channel backlog
    /// exceeds this are dropped (full send buffers — the bounded-queue
    /// behaviour of real stacks under overload).
    pub max_backlog: SimDuration,
    /// Congestion signaling: when the backlog crosses above this, the
    /// medium tells every member (sources then shed new frames at
    /// admission — sensor buffers overflow rather than mid-pipeline
    /// tuples vanishing).
    pub high_water: SimDuration,
    /// Backlog below this clears the congestion signal.
    pub low_water: SimDuration,
}

impl Default for WifiConfig {
    fn default() -> Self {
        WifiConfig {
            // Within the paper's measured 1-5 Mbps ad-hoc band, set so
            // the driving applications load the channel to ~75-80 %
            // under the base scheme (the regime where fault-tolerance
            // traffic becomes visible, as in Fig 8).
            rate_bps: 1_600_000.0,
            loss: 0.05,
            frame_overhead: 50,
            mtu: 1500,
            ack_bytes: 40,
            reliable_timeout: SimDuration::from_secs(2),
            max_backlog: SimDuration::from_secs(25),
            high_water: SimDuration::from_secs(3),
            low_water: SimDuration::from_millis(800),
        }
    }
}

impl WifiConfig {
    /// Frames needed for a `bytes`-byte message.
    pub fn frames(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.mtu).max(1)
    }

    /// Wire bytes for an unreliable send (payload + per-frame overhead).
    pub fn datagram_wire_bytes(&self, bytes: u64) -> u64 {
        bytes + self.frames(bytes) * self.frame_overhead
    }

    /// Wire bytes for a reliable send: datagram cost plus ACKs, expanded
    /// by the expected retransmission count.
    pub fn reliable_wire_bytes(&self, bytes: u64) -> u64 {
        let base = self.datagram_wire_bytes(bytes) + self.frames(bytes) * self.ack_bytes;
        let expansion = 1.0 / (1.0 - self.loss.min(0.99));
        (base as f64 * expansion).ceil() as u64
    }

    /// Probability a whole datagram message survives to one receiver.
    pub fn datagram_delivery_prob(&self, bytes: u64) -> f64 {
        (1.0 - self.loss).powi(self.frames(bytes) as i32)
    }
}

/// Addressing mode of a WiFi send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// To a single region member.
    Unicast(ActorId),
    /// To every active member except the sender (one airtime slot).
    Broadcast,
}

/// Delivery service of a WiFi send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// Lossy, unacknowledged (UDP).
    Datagram,
    /// Retransmission-expanded, loss-free to active receivers (TCP).
    Reliable,
}

/// Request: transmit one logical message on the region's channel.
#[derive(Debug)]
pub struct WifiSend {
    /// Transmitting member.
    pub src: ActorId,
    /// Unicast or broadcast.
    pub mode: SendMode,
    /// Datagram or reliable.
    pub service: Service,
    /// Accounting class.
    pub class: TrafficClass,
    /// Payload size in bytes (drives airtime).
    pub bytes: u64,
    /// Completion tag; 0 = no [`TxDone`]/[`TxFailed`] wanted.
    pub tag: u64,
    /// Message content forwarded to receivers.
    pub payload: Option<Payload>,
}

/// Delivery of a [`WifiSend`] to one receiver.
#[derive(Debug, Clone)]
pub struct WifiRx {
    /// Transmitting member.
    pub src: ActorId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Accounting class (receivers may re-account).
    pub class: TrafficClass,
    /// Message content.
    pub payload: Payload,
}

/// Request: broadcast a batch of equal-size datagram blocks (the
/// checkpoint broadcast's workhorse). Each listed block is one frame.
#[derive(Debug)]
pub struct WifiBatchSend {
    /// Transmitting member.
    pub src: ActorId,
    /// Accounting class.
    pub class: TrafficClass,
    /// Sender-chosen stream id so receivers can correlate phases.
    pub stream: u64,
    /// Total blocks in the whole job (constant across phases; lets
    /// receivers size their reply bitmaps like the paper's).
    pub total_blocks: u32,
    /// Identifiers of the blocks in this batch. Shared (`Arc`) because
    /// the medium fans the same list out to every receiver.
    pub blocks: Arc<[u32]>,
    /// Total payload bytes across the listed blocks (the caller knows
    /// exact per-block sizes, including the smaller tail block).
    pub payload_bytes: u64,
    /// True on the last chunk of a phase: receivers send their bitmap
    /// reply only then (the paper queries "after all messages have
    /// been broadcast").
    pub reply_expected: bool,
    /// Completion tag; 0 = none.
    pub tag: u64,
}

/// Delivery of a batch to one receiver: which of the listed blocks
/// survived the channel for *this* receiver.
#[derive(Debug, Clone)]
pub struct WifiBatchRx {
    /// Transmitting member.
    pub src: ActorId,
    /// Traffic class of the job (receivers class their bitmap replies
    /// the same way, so Fig 10b accounting is complete).
    pub class: TrafficClass,
    /// Correlation id from the send.
    pub stream: u64,
    /// Total blocks in the whole job.
    pub total_blocks: u32,
    /// The block ids that were broadcast (shared across receivers).
    pub blocks: Arc<[u32]>,
    /// `received.get(i)` ⇔ `blocks[i]` arrived here.
    pub received: Bitmap,
    /// Reply with a bitmap now?
    pub reply_expected: bool,
}

/// Medium → members: channel congestion state changed. Source nodes
/// shed new sensor frames while congested (admission control).
#[derive(Debug, Clone, Copy)]
pub struct WifiCongestion {
    /// Congested?
    pub on: bool,
}

/// Internal: re-check whether the backlog drained below the low water
/// mark.
#[derive(Debug, Clone, Copy)]
struct DrainCheck;

/// Control: change a member's link state (failure/departure/return).
#[derive(Debug, Clone, Copy)]
pub struct WifiSetLink {
    /// The member whose state changes.
    pub node: ActorId,
    /// New state.
    pub state: LinkState,
}

/// Control: change the channel's frame-loss probability at runtime —
/// per-region loss *profiles* (interference ramps, crowd build-up)
/// schedule a sequence of these against the region's medium.
#[derive(Debug, Clone, Copy)]
pub struct WifiSetLoss {
    /// New per-frame, per-receiver loss probability. Clamped to
    /// `[0, 0.95]` so reliable-service retransmission expansion stays
    /// finite.
    pub loss: f64,
}

/// Control: region-wide AP brownout. While on, the channel's loss is
/// pinned at the brownout severity (every member suffers it at once —
/// the correlated outage of the paper's crowd scenarios); healing
/// restores whatever loss the profile had configured, including
/// [`WifiSetLoss`] updates that arrived during the brownout.
#[derive(Debug, Clone, Copy)]
pub struct WifiSetBrownout {
    /// `true` = brownout begins/retunes, `false` = heal.
    pub on: bool,
    /// Per-frame loss while the brownout lasts (clamped like
    /// [`WifiSetLoss`]); ignored on heal.
    pub loss: f64,
}

/// The shared channel of one region.
pub struct WifiMedium {
    cfg: WifiConfig,
    members: BTreeMap<ActorId, LinkState>,
    channel: RateQueue,
    stats: NetStats,
    congested: bool,
    /// `Some(base_loss)` while a brownout pins `cfg.loss`; the saved
    /// value is what heal restores.
    brownout: Option<f64>,
}

impl WifiMedium {
    /// New medium with the given channel parameters.
    pub fn new(cfg: WifiConfig) -> Self {
        let channel = RateQueue::new(cfg.rate_bps);
        WifiMedium {
            cfg,
            members: BTreeMap::new(),
            channel,
            stats: NetStats::default(),
            congested: false,
            brownout: None,
        }
    }

    /// Is the channel currently signaling congestion?
    pub fn is_congested(&self) -> bool {
        self.congested
    }

    /// After a reservation, raise/schedule congestion signaling.
    fn after_reserve(&mut self, ctx: &mut Ctx) {
        let backlog = self.channel.backlog(ctx.now());
        if !self.congested && backlog > self.cfg.high_water {
            self.congested = true;
            let members: Vec<ActorId> = self.members.keys().copied().collect();
            for m in members {
                ctx.send(m, WifiCongestion { on: true });
            }
            let delay = backlog.saturating_sub(self.cfg.low_water);
            let me = ctx.self_id();
            ctx.send_in(delay, me, DrainCheck);
        }
    }

    fn on_drain_check(&mut self, ctx: &mut Ctx) {
        if !self.congested {
            return;
        }
        let backlog = self.channel.backlog(ctx.now());
        if backlog <= self.cfg.low_water {
            self.congested = false;
            let members: Vec<ActorId> = self.members.keys().copied().collect();
            for m in members {
                ctx.send(m, WifiCongestion { on: false });
            }
        } else {
            let delay = backlog.saturating_sub(self.cfg.low_water);
            let me = ctx.self_id();
            ctx.send_in(delay, me, DrainCheck);
        }
    }

    /// Add a member in `Active` state (setup-time wiring).
    pub fn add_member(&mut self, node: ActorId) {
        self.members.insert(node, LinkState::Active);
    }

    /// Set a member's link state directly (setup/fault-injection).
    pub fn set_link_state(&mut self, node: ActorId, state: LinkState) {
        self.members.insert(node, state);
    }

    /// Change the channel loss probability (loss profiles). During a
    /// brownout the update lands on the *saved* base loss, so the
    /// profile's schedule survives the weather and is what heal
    /// restores.
    pub fn set_loss(&mut self, loss: f64) {
        let clamped = loss.clamp(0.0, 0.95);
        match &mut self.brownout {
            Some(base) => *base = clamped,
            None => self.cfg.loss = clamped,
        }
    }

    /// Begin/retune (`on = true`) or heal (`on = false`) a region-wide
    /// AP brownout.
    pub fn set_brownout(&mut self, on: bool, loss: f64) {
        match (on, self.brownout) {
            (true, None) => {
                self.brownout = Some(self.cfg.loss);
                self.cfg.loss = loss.clamp(0.0, 0.95);
            }
            (true, Some(_)) => self.cfg.loss = loss.clamp(0.0, 0.95),
            (false, Some(base)) => {
                self.cfg.loss = base;
                self.brownout = None;
            }
            (false, None) => {}
        }
    }

    /// Is a brownout currently pinning the channel loss?
    pub fn in_brownout(&self) -> bool {
        self.brownout.is_some()
    }

    /// Current link state (`Gone` if unknown).
    pub fn link_state(&self, node: ActorId) -> LinkState {
        self.members.get(&node).copied().unwrap_or(LinkState::Gone)
    }

    /// Members currently `Active`.
    pub fn active_members(&self) -> Vec<ActorId> {
        self.members
            .iter()
            .filter(|(_, s)| s.reachable())
            .map(|(id, _)| *id)
            .collect()
    }

    /// Accounting.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Channel parameters.
    pub fn config(&self) -> &WifiConfig {
        &self.cfg
    }

    fn handle_send(&mut self, s: WifiSend, ctx: &mut Ctx) {
        if !self.link_state(s.src).reachable() {
            // Dead phones transmit nothing: the send never reached the
            // channel, so it is a reject, not a channel drop.
            self.stats.rejects += 1;
            return;
        }
        let droppable = matches!(s.class, TrafficClass::Data | TrafficClass::Replication);
        if droppable && self.channel.backlog(ctx.now()) > self.cfg.max_backlog {
            // Congestion collapse guard: transient tuple buffers are
            // full; the message is lost (sender still sees a completion
            // — no false failure detection). Bulk checkpoint/recovery
            // transfers are persistent TCP streams: they queue instead,
            // and their cost surfaces as airtime that sheds new frames
            // at the sources.
            self.stats.drops += 1;
            if s.tag != 0 {
                ctx.send_in(self.cfg.max_backlog, s.src, TxDone { tag: s.tag });
            }
            return;
        }
        let wire = match s.service {
            Service::Datagram => self.cfg.datagram_wire_bytes(s.bytes),
            Service::Reliable => self.cfg.reliable_wire_bytes(s.bytes),
        };
        let air = tx_time(wire, self.cfg.rate_bps);
        let (_, end) = self.channel.reserve_span(ctx.now(), air, wire);
        self.stats.record_send(s.class, s.bytes, wire, air);
        self.after_reserve(ctx);
        ctx.count("wifi.sends", 1);

        let delay = end - ctx.now();
        let deliver = |ctx: &mut Ctx, to: ActorId, payload: &Payload| {
            ctx.send_in(
                delay,
                to,
                WifiRx {
                    src: s.src,
                    bytes: s.bytes,
                    class: s.class,
                    payload: payload.clone(),
                },
            );
        };

        match s.mode {
            SendMode::Unicast(dst) => {
                let reachable = self.link_state(dst).reachable();
                match (s.service, reachable) {
                    (Service::Reliable, true) => {
                        if let Some(p) = &s.payload {
                            deliver(ctx, dst, p);
                        }
                        if s.tag != 0 {
                            ctx.send_in(delay, s.src, TxDone { tag: s.tag });
                        }
                    }
                    (Service::Reliable, false) => {
                        self.stats.failed_sends += 1;
                        let when = delay.max(self.cfg.reliable_timeout);
                        if s.tag != 0 {
                            ctx.send_in(when, s.src, TxFailed { tag: s.tag, dst });
                        }
                    }
                    (Service::Datagram, true) => {
                        let p_ok = self.cfg.datagram_delivery_prob(s.bytes);
                        if ctx.rng().chance(p_ok) {
                            if let Some(p) = &s.payload {
                                deliver(ctx, dst, p);
                            }
                        } else {
                            self.stats.drops += 1;
                        }
                        if s.tag != 0 {
                            ctx.send_in(delay, s.src, TxDone { tag: s.tag });
                        }
                    }
                    (Service::Datagram, false) => {
                        self.stats.drops += 1;
                        if s.tag != 0 {
                            ctx.send_in(delay, s.src, TxDone { tag: s.tag });
                        }
                    }
                }
            }
            SendMode::Broadcast => {
                assert!(
                    matches!(s.service, Service::Datagram),
                    "broadcast is datagram-only; reliable fan-out goes through the TCP tree"
                );
                let p_ok = self.cfg.datagram_delivery_prob(s.bytes);
                let receivers: Vec<ActorId> = self
                    .members
                    .iter()
                    .filter(|(id, st)| **id != s.src && st.reachable())
                    .map(|(id, _)| *id)
                    .collect();
                for dst in receivers {
                    if ctx.rng().chance(p_ok) {
                        if let Some(p) = &s.payload {
                            deliver(ctx, dst, p);
                        }
                    } else {
                        self.stats.drops += 1;
                    }
                }
                if s.tag != 0 {
                    ctx.send_in(delay, s.src, TxDone { tag: s.tag });
                }
            }
        }
    }

    /// Sample which of `n` broadcast blocks survive the channel for one
    /// receiver. Loss is iid Bernoulli per block, but sampled by
    /// geometric *skips* between the rarer outcome (one uniform per
    /// lost block instead of one per block), so the checkpoint
    /// broadcast's 8000-block batches cost O(n·loss) draws. `loss == 0`
    /// and `loss >= 1` never touch the RNG. Returns the reception
    /// bitmap and the number of lost blocks.
    fn sample_reception(n: usize, loss: f64, rng: &mut SimRng) -> (Bitmap, u64) {
        if loss <= 0.0 {
            return (Bitmap::ones(n), 0);
        }
        if loss >= 1.0 {
            return (Bitmap::zeros(n), n as u64);
        }
        if loss <= 0.5 {
            // Drops are the rare outcome: start from all-received and
            // clear the dropped positions.
            let mut received = Bitmap::ones(n);
            let mut lost = 0u64;
            let mut i = rng.geometric(loss) as usize;
            while i < n {
                received.set(i, false);
                lost += 1;
                i += 1 + rng.geometric(loss) as usize;
            }
            (received, lost)
        } else {
            // Receptions are the rare outcome: start from all-lost and
            // set the kept positions.
            let keep = 1.0 - loss;
            let mut received = Bitmap::zeros(n);
            let mut kept = 0u64;
            let mut i = rng.geometric(keep) as usize;
            while i < n {
                received.set(i, true);
                kept += 1;
                i += 1 + rng.geometric(keep) as usize;
            }
            (received, n as u64 - kept)
        }
    }

    fn handle_batch(&mut self, b: WifiBatchSend, ctx: &mut Ctx) {
        if !self.link_state(b.src).reachable() {
            // Never reached the channel: a reject, not a channel drop
            // (and no airtime — a dead radio does not transmit).
            self.stats.rejects += 1;
            return;
        }
        if b.blocks.is_empty() {
            // Nothing to put on the air; complete the tag so callers'
            // in-flight bookkeeping can't wedge on a degenerate batch.
            self.stats.rejects += 1;
            if b.tag != 0 {
                ctx.send(b.src, TxDone { tag: b.tag });
            }
            return;
        }
        let n = b.blocks.len() as u64;
        let payload = b.payload_bytes;
        let wire = payload + n * self.cfg.frame_overhead;
        let air = tx_time(wire, self.cfg.rate_bps);
        // Airtime is charged once per batch, receivers or not: the
        // radio transmits (and congests the channel) regardless of who
        // is listening. Drops below are counted per receiver per lost
        // block — a receiverless broadcast therefore drops nothing.
        let (_, end) = self.channel.reserve_span(ctx.now(), air, wire);
        self.stats.record_send(b.class, payload, wire, air);
        self.after_reserve(ctx);
        ctx.count("wifi.batch_blocks", n);
        let delay = end - ctx.now();

        let receivers: Vec<ActorId> = self
            .members
            .iter()
            .filter(|(id, st)| **id != b.src && st.reachable())
            .map(|(id, _)| *id)
            .collect();
        let loss = self.cfg.loss;
        for dst in receivers {
            let (received, lost) = Self::sample_reception(b.blocks.len(), loss, ctx.rng());
            self.stats.drops += lost;
            ctx.send_in(
                delay,
                dst,
                WifiBatchRx {
                    src: b.src,
                    class: b.class,
                    stream: b.stream,
                    total_blocks: b.total_blocks,
                    blocks: Arc::clone(&b.blocks),
                    received,
                    reply_expected: b.reply_expected,
                },
            );
        }
        if b.tag != 0 {
            ctx.send_in(delay, b.src, TxDone { tag: b.tag });
        }
    }
}

impl Actor for WifiMedium {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        simkernel::match_event!(ev,
            s: WifiSend => { self.handle_send(s, ctx); },
            b: WifiBatchSend => { self.handle_batch(b, ctx); },
            l: WifiSetLink => { self.set_link_state(l.node, l.state); },
            l: WifiSetLoss => { self.set_loss(l.loss); },
            b: WifiSetBrownout => { self.set_brownout(b.on, b.loss); },
            _d: DrainCheck => { self.on_drain_check(ctx); },
            @else _other => {
                // Unknown event types are counted, not fatal (PR 2
                // de-panicking convention): a stray message must not
                // take the whole region's channel down.
                self.stats.rejects += 1;
            }
        );
    }

    fn name(&self) -> String {
        "wifi-medium".into()
    }

    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::{Sim, SimTime};

    /// Collects everything delivered to it.
    #[derive(Default)]
    struct Sink {
        rx: Vec<(SimTime, u64)>,  // (when, bytes)
        batch: Vec<(u64, usize)>, // (stream, received count)
        done: Vec<u64>,
        failed: Vec<u64>,
        congestion: Vec<bool>,
    }

    impl Actor for Sink {
        fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
            simkernel::match_event!(ev,
                r: WifiRx => { self.rx.push((ctx.now(), r.bytes)); },
                b: WifiBatchRx => { self.batch.push((b.stream, b.received.count_ones())); },
                d: TxDone => { self.done.push(d.tag); },
                f: TxFailed => { self.failed.push(f.tag); },
                c: WifiCongestion => { self.congestion.push(c.on); },
                @else other => { panic!("unexpected {}", (*other).type_name()); }
            );
        }
        impl_actor_any!();
    }

    fn setup(loss: f64) -> (Sim, ActorId, Vec<ActorId>) {
        let mut sim = Sim::new(7);
        let nodes: Vec<ActorId> = (0..4)
            .map(|_| sim.add_actor(Box::<Sink>::default()))
            .collect();
        let mut medium = WifiMedium::new(WifiConfig {
            rate_bps: 1_000_000.0,
            loss,
            frame_overhead: 0,
            mtu: 1500,
            ack_bytes: 0,
            reliable_timeout: SimDuration::from_secs(2),
            max_backlog: SimDuration::from_secs(3600),
            high_water: SimDuration::from_secs(3600),
            low_water: SimDuration::from_secs(1800),
        });
        for &n in &nodes {
            medium.add_member(n);
        }
        let m = sim.add_actor(Box::new(medium));
        (sim, m, nodes)
    }

    #[test]
    fn reliable_unicast_delivers_and_times_airtime() {
        let (mut sim, m, nodes) = setup(0.0);
        sim.schedule_at(
            SimTime::ZERO,
            m,
            WifiSend {
                src: nodes[0],
                mode: SendMode::Unicast(nodes[1]),
                service: Service::Reliable,
                class: TrafficClass::Data,
                bytes: 125_000, // 1 s at 1 Mbps
                tag: 42,
                payload: Some(crate::payload("hello")),
            },
        );
        sim.run();
        let rx = &sim.actor::<Sink>(nodes[1]).rx;
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0], (SimTime::from_secs(1), 125_000));
        assert_eq!(sim.actor::<Sink>(nodes[0]).done, vec![42]);
        // No one else heard it.
        assert!(sim.actor::<Sink>(nodes[2]).rx.is_empty());
    }

    #[test]
    fn broadcast_reaches_all_active_members_once() {
        let (mut sim, m, nodes) = setup(0.0);
        sim.schedule_at(
            SimTime::ZERO,
            m,
            WifiSend {
                src: nodes[0],
                mode: SendMode::Broadcast,
                service: Service::Datagram,
                class: TrafficClass::Preservation,
                bytes: 1000,
                tag: 1,
                payload: Some(crate::payload("img")),
            },
        );
        sim.run();
        for &n in &nodes[1..] {
            assert_eq!(sim.actor::<Sink>(n).rx.len(), 1, "{n:?} missed broadcast");
        }
        assert!(
            sim.actor::<Sink>(nodes[0]).rx.is_empty(),
            "no self-delivery"
        );
        // One airtime slot for three receivers: medium busy exactly once.
        let med = sim.actor::<WifiMedium>(m);
        assert_eq!(med.stats().messages(TrafficClass::Preservation), 1);
    }

    #[test]
    fn transmissions_serialize_on_the_channel() {
        let (mut sim, m, nodes) = setup(0.0);
        for tag in 1..=2 {
            sim.schedule_at(
                SimTime::ZERO,
                m,
                WifiSend {
                    src: nodes[0],
                    mode: SendMode::Unicast(nodes[1]),
                    service: Service::Reliable,
                    class: TrafficClass::Data,
                    bytes: 125_000,
                    tag,
                    payload: Some(crate::payload(())),
                },
            );
        }
        sim.run();
        let rx = &sim.actor::<Sink>(nodes[1]).rx;
        assert_eq!(rx[0].0, SimTime::from_secs(1));
        assert_eq!(
            rx[1].0,
            SimTime::from_secs(2),
            "second send queues behind first"
        );
    }

    #[test]
    fn reliable_to_dead_member_fails_after_timeout() {
        let (mut sim, m, nodes) = setup(0.0);
        sim.actor_mut::<WifiMedium>(m)
            .set_link_state(nodes[1], LinkState::Dead);
        sim.schedule_at(
            SimTime::ZERO,
            m,
            WifiSend {
                src: nodes[0],
                mode: SendMode::Unicast(nodes[1]),
                service: Service::Reliable,
                class: TrafficClass::Data,
                bytes: 100,
                tag: 9,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        assert!(sim.actor::<Sink>(nodes[1]).rx.is_empty());
        assert_eq!(sim.actor::<Sink>(nodes[0]).failed, vec![9]);
        assert!(sim.now() >= SimTime::from_secs(2), "failure after timeout");
    }

    #[test]
    fn dead_sender_transmits_nothing() {
        let (mut sim, m, nodes) = setup(0.0);
        sim.actor_mut::<WifiMedium>(m)
            .set_link_state(nodes[0], LinkState::Dead);
        sim.schedule_at(
            SimTime::ZERO,
            m,
            WifiSend {
                src: nodes[0],
                mode: SendMode::Broadcast,
                service: Service::Datagram,
                class: TrafficClass::Data,
                bytes: 100,
                tag: 3,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        for &n in &nodes {
            assert!(sim.actor::<Sink>(n).rx.is_empty());
        }
    }

    #[test]
    fn datagram_loss_statistics() {
        let (mut sim, m, nodes) = setup(0.3);
        let sends = 2000u64;
        for _ in 0..sends {
            sim.schedule_at(
                SimTime::ZERO,
                m,
                WifiSend {
                    src: nodes[0],
                    mode: SendMode::Unicast(nodes[1]),
                    service: Service::Datagram,
                    class: TrafficClass::Data,
                    bytes: 100,
                    tag: 0,
                    payload: Some(crate::payload(())),
                },
            );
        }
        sim.run();
        let got = sim.actor::<Sink>(nodes[1]).rx.len() as f64;
        let rate = got / sends as f64;
        assert!((rate - 0.7).abs() < 0.05, "delivery rate {rate}");
    }

    #[test]
    fn batch_samples_per_block_loss_and_reports_bitmap() {
        let (mut sim, m, nodes) = setup(0.5);
        sim.schedule_at(
            SimTime::ZERO,
            m,
            WifiBatchSend {
                src: nodes[0],
                class: TrafficClass::Checkpoint,
                stream: 77,
                total_blocks: 1000,
                blocks: (0..1000).collect(),
                payload_bytes: 1000 * 1024,
                reply_expected: true,
                tag: 5,
            },
        );
        sim.run();
        for &n in &nodes[1..] {
            let batch = &sim.actor::<Sink>(n).batch;
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].0, 77);
            let received = batch[0].1 as f64 / 1000.0;
            assert!(
                (received - 0.5).abs() < 0.08,
                "received fraction {received}"
            );
        }
        assert_eq!(sim.actor::<Sink>(nodes[0]).done, vec![5]);
        // Airtime charged once for the whole batch: 1000 * 1024 B at 1 Mbps ≈ 8.192 s.
        assert!((sim.now().as_secs_f64() - 8.192).abs() < 0.01);
    }

    fn batch(src: ActorId, blocks: Arc<[u32]>, tag: u64) -> WifiBatchSend {
        let n = blocks.len() as u64;
        WifiBatchSend {
            src,
            class: TrafficClass::Checkpoint,
            stream: 1,
            total_blocks: n as u32,
            blocks,
            payload_bytes: n * 1024,
            reply_expected: false,
            tag,
        }
    }

    #[test]
    fn rejected_sends_are_counted_not_dropped() {
        let (mut sim, m, nodes) = setup(0.0);
        sim.actor_mut::<WifiMedium>(m)
            .set_link_state(nodes[0], LinkState::Dead);
        // Dead source, unicast send.
        sim.schedule_at(
            SimTime::ZERO,
            m,
            WifiSend {
                src: nodes[0],
                mode: SendMode::Unicast(nodes[1]),
                service: Service::Datagram,
                class: TrafficClass::Data,
                bytes: 100,
                tag: 0,
                payload: Some(crate::payload(())),
            },
        );
        // Dead source, batch send.
        sim.schedule_at(SimTime::ZERO, m, batch(nodes[0], (0..10).collect(), 0));
        // Live source, degenerate empty batch.
        sim.schedule_at(SimTime::ZERO, m, batch(nodes[1], (0..0).collect(), 44));
        sim.run();
        let stats = sim.actor::<WifiMedium>(m).stats().clone();
        assert_eq!(stats.rejects, 3);
        assert_eq!(stats.drops, 0, "rejects must not inflate loss drops");
        assert_eq!(stats.total_wire_bytes(), 0, "rejects charge no bytes");
        assert_eq!(
            stats.busy_time,
            SimDuration::ZERO,
            "rejects burn no airtime"
        );
        for &n in &nodes {
            assert!(sim.actor::<Sink>(n).batch.is_empty());
        }
        // The empty batch still completes its tag so the sender's
        // in-flight window can't wedge.
        assert_eq!(sim.actor::<Sink>(nodes[1]).done, vec![44]);
    }

    #[test]
    fn zero_receiver_broadcast_charges_airtime_but_drops_nothing() {
        let (mut sim, m, nodes) = setup(0.5);
        for &n in &nodes[1..] {
            sim.actor_mut::<WifiMedium>(m)
                .set_link_state(n, LinkState::Dead);
        }
        sim.schedule_at(SimTime::ZERO, m, batch(nodes[0], (0..100).collect(), 9));
        sim.run();
        let stats = sim.actor::<WifiMedium>(m).stats().clone();
        // The radio transmitted: airtime and bytes are charged once.
        assert_eq!(stats.messages(TrafficClass::Checkpoint), 1);
        assert_eq!(stats.wire_bytes(TrafficClass::Checkpoint), 100 * 1024);
        assert!((sim.now().as_secs_f64() - 0.8192).abs() < 0.001);
        // Nobody was listening: no per-receiver loss is sampled, so no
        // drops (previously airtime was charged but drop accounting
        // diverged between this and the dead-source path).
        assert_eq!(stats.drops, 0);
        assert_eq!(stats.rejects, 0);
        assert_eq!(sim.actor::<Sink>(nodes[0]).done, vec![9]);
    }

    #[test]
    fn loss_extreme_batches_deliver_all_or_nothing() {
        // loss == 0.0: every receiver gets every block, zero drops.
        let (mut sim, m, nodes) = setup(0.0);
        sim.schedule_at(SimTime::ZERO, m, batch(nodes[0], (0..500).collect(), 1));
        sim.run();
        for &n in &nodes[1..] {
            assert_eq!(sim.actor::<Sink>(n).batch, vec![(1, 500)]);
        }
        assert_eq!(sim.actor::<WifiMedium>(m).stats().drops, 0);

        // loss == 1.0: every receiver gets the batch header with an
        // empty bitmap, and every block is counted dropped per receiver.
        let (mut sim, m, nodes) = setup(1.0);
        sim.schedule_at(SimTime::ZERO, m, batch(nodes[0], (0..500).collect(), 1));
        sim.run();
        for &n in &nodes[1..] {
            assert_eq!(sim.actor::<Sink>(n).batch, vec![(1, 0)]);
        }
        assert_eq!(sim.actor::<WifiMedium>(m).stats().drops, 3 * 500);
    }

    #[test]
    fn loss_extremes_never_touch_the_rng() {
        for loss in [0.0, 1.0] {
            let mut rng = SimRng::new(7);
            let mut untouched = SimRng::new(7);
            let (bm, lost) = WifiMedium::sample_reception(1000, loss, &mut rng);
            assert_eq!(bm.count_ones(), if loss == 0.0 { 1000 } else { 0 });
            assert_eq!(lost, if loss == 0.0 { 0 } else { 1000 });
            assert_eq!(
                rng.f64(),
                untouched.f64(),
                "loss={loss} must be RNG-free so toggling lossless links \
                 cannot perturb unrelated random streams"
            );
        }
    }

    #[test]
    fn reliable_costs_more_airtime_than_datagram() {
        let cfg = WifiConfig {
            loss: 0.2,
            frame_overhead: 50,
            ack_bytes: 40,
            ..WifiConfig::default()
        };
        let dg = cfg.datagram_wire_bytes(10_000);
        let rel = cfg.reliable_wire_bytes(10_000);
        assert!(rel > dg, "reliable {rel} vs datagram {dg}");
        // Expansion ≈ (10000 + 7*90) / 0.8
        let expect = ((10_000.0_f64 + 7.0 * 90.0) / 0.8).ceil() as u64;
        assert_eq!(rel, expect);
    }

    #[test]
    fn delivery_prob_decays_with_fragments() {
        let cfg = WifiConfig {
            loss: 0.05,
            mtu: 1500,
            ..WifiConfig::default()
        };
        let small = cfg.datagram_delivery_prob(1000);
        let big = cfg.datagram_delivery_prob(100_000);
        assert!(small > 0.94);
        assert!(
            big < 0.05,
            "67-fragment message almost surely lost, got {big}"
        );
    }

    #[test]
    fn congestion_signals_high_and_low_water() {
        let mut sim = Sim::new(7);
        let a = sim.add_actor(Box::<Sink>::default());
        let b = sim.add_actor(Box::<Sink>::default());
        let mut medium = WifiMedium::new(WifiConfig {
            rate_bps: 1_000_000.0,
            loss: 0.0,
            frame_overhead: 0,
            mtu: 1500,
            ack_bytes: 0,
            reliable_timeout: SimDuration::from_secs(2),
            max_backlog: SimDuration::from_secs(60),
            high_water: SimDuration::from_secs(2),
            low_water: SimDuration::from_millis(500),
        });
        medium.add_member(a);
        medium.add_member(b);
        let m = sim.add_actor(Box::new(medium));
        // 4 s of airtime: crosses the 2 s high-water mark.
        for _ in 0..4 {
            sim.schedule_at(
                SimTime::ZERO,
                m,
                WifiSend {
                    src: a,
                    mode: SendMode::Unicast(b),
                    service: Service::Reliable,
                    class: TrafficClass::Data,
                    bytes: 125_000,
                    tag: 0,
                    payload: Some(crate::payload(())),
                },
            );
        }
        sim.run();
        assert!(!sim.actor::<WifiMedium>(m).is_congested(), "drained by end");
        // Members saw an on-signal followed by an off-signal.
        let sigs = &sim.actor::<Sink>(b).congestion;
        assert_eq!(sigs.as_slice(), &[true, false], "{sigs:?}");
    }

    #[test]
    fn backlog_cap_drops_only_transient_classes() {
        let mut sim = Sim::new(7);
        let a = sim.add_actor(Box::<Sink>::default());
        let b = sim.add_actor(Box::<Sink>::default());
        let mut medium = WifiMedium::new(WifiConfig {
            rate_bps: 1_000_000.0,
            loss: 0.0,
            frame_overhead: 0,
            mtu: 1500,
            ack_bytes: 0,
            reliable_timeout: SimDuration::from_secs(2),
            max_backlog: SimDuration::from_millis(500),
            high_water: SimDuration::from_secs(3600),
            low_water: SimDuration::from_secs(1800),
        });
        medium.add_member(a);
        medium.add_member(b);
        let m = sim.add_actor(Box::new(medium));
        for class in [
            TrafficClass::Data,
            TrafficClass::Data,
            TrafficClass::Checkpoint,
        ] {
            sim.schedule_at(
                SimTime::ZERO,
                m,
                WifiSend {
                    src: a,
                    mode: SendMode::Unicast(b),
                    service: Service::Reliable,
                    class,
                    bytes: 125_000, // 1 s each; cap is 0.5 s backlog
                    tag: 0,
                    payload: Some(crate::payload(())),
                },
            );
        }
        sim.run();
        // First Data send transmits; second Data send is dropped by the
        // cap; the Checkpoint send queues despite the backlog.
        assert_eq!(sim.actor::<Sink>(b).rx.len(), 2);
        let med = sim.actor::<WifiMedium>(m);
        assert_eq!(med.stats().messages(TrafficClass::Checkpoint), 1);
        assert_eq!(med.stats().drops, 1);
    }

    #[test]
    fn set_loss_changes_channel_at_runtime() {
        let (mut sim, m, nodes) = setup(0.0);
        // Ramp the channel to total loss, then datagram nothing arrives.
        sim.schedule_at(SimTime::ZERO, m, WifiSetLoss { loss: 2.0 });
        sim.schedule_at(
            SimTime::from_millis(1),
            m,
            WifiSend {
                src: nodes[0],
                mode: SendMode::Broadcast,
                service: Service::Datagram,
                class: TrafficClass::Data,
                bytes: 1000,
                tag: 0,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        let med = sim.actor::<WifiMedium>(m);
        assert_eq!(med.config().loss, 0.95, "loss clamped to 0.95");
        // At 95 % per-frame loss a single frame usually dies; with the
        // fixed seed nothing got through.
        for &n in &nodes[1..] {
            assert!(sim.actor::<Sink>(n).rx.is_empty());
        }
        // Back to lossless: delivery resumes deterministically.
        sim.schedule_at(sim.now(), m, WifiSetLoss { loss: 0.0 });
        sim.schedule_at(
            sim.now() + SimDuration::from_millis(1),
            m,
            WifiSend {
                src: nodes[0],
                mode: SendMode::Broadcast,
                service: Service::Datagram,
                class: TrafficClass::Data,
                bytes: 1000,
                tag: 0,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        for &n in &nodes[1..] {
            assert_eq!(sim.actor::<Sink>(n).rx.len(), 1);
        }
    }

    #[test]
    fn brownout_pins_loss_and_heal_restores_profile_updates() {
        let (mut sim, m, _nodes) = setup(0.05);
        sim.schedule_at(
            SimTime::ZERO,
            m,
            WifiSetBrownout {
                on: true,
                loss: 2.0,
            },
        );
        // A loss profile fires mid-brownout: it must land on the saved
        // base, not the pinned brownout severity.
        sim.schedule_at(SimTime::from_secs(1), m, WifiSetLoss { loss: 0.2 });
        sim.run();
        let med = sim.actor::<WifiMedium>(m);
        assert!(med.in_brownout());
        assert_eq!(med.config().loss, 0.95, "brownout severity clamped");
        sim.schedule_at(
            sim.now(),
            m,
            WifiSetBrownout {
                on: false,
                loss: 0.0,
            },
        );
        sim.run();
        let med = sim.actor::<WifiMedium>(m);
        assert!(!med.in_brownout());
        assert_eq!(
            med.config().loss,
            0.2,
            "heal restores the profile's mid-brownout update"
        );
        // Double heal is a no-op.
        sim.schedule_at(
            sim.now(),
            m,
            WifiSetBrownout {
                on: false,
                loss: 0.0,
            },
        );
        sim.run();
        assert_eq!(sim.actor::<WifiMedium>(m).config().loss, 0.2);
    }

    mod sampling_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The geometric-skip fast path must be statistically
            /// indistinguishable from the per-block Bernoulli sampler it
            /// replaced: same Binomial(n, loss) lost-block count, and a
            /// bitmap consistent with that count.
            #[test]
            fn geometric_skip_matches_per_block_sampling(
                loss in 0.02f64..0.98,
                seed in 0u64..1u64 << 32,
            ) {
                let n = 4000usize;
                let mut rng = SimRng::new(seed);
                let (bm, lost) = WifiMedium::sample_reception(n, loss, &mut rng);
                prop_assert_eq!(bm.len(), n);
                prop_assert_eq!(bm.count_ones() as u64 + lost, n as u64);

                // Reference: the old one-chance()-per-block sampler.
                let mut reference = SimRng::new(seed ^ 0x5EED);
                let mut ref_lost = 0u64;
                for _ in 0..n {
                    if !reference.chance(1.0 - loss) {
                        ref_lost += 1;
                    }
                }
                // Both counts are Binomial(n, loss) draws; their
                // difference has variance 2·n·loss·(1-loss). 6σ (+2 for
                // tiny-variance corners) makes a false failure
                // astronomically unlikely.
                let sigma = (2.0 * n as f64 * loss * (1.0 - loss)).sqrt();
                let diff = (lost as f64) - (ref_lost as f64);
                prop_assert!(
                    diff.abs() <= 6.0 * sigma + 2.0,
                    "fast path lost {} vs per-block {} (loss {}, 6σ = {:.1})",
                    lost, ref_lost, loss, 6.0 * sigma
                );
            }

            /// Lost count is exact wrt the bitmap for every loss value,
            /// including the RNG-free extremes.
            #[test]
            fn sample_reception_count_is_consistent(
                // Past-1.0 values exercise the saturating all-lost path.
                loss in 0.0f64..1.25,
                n in 0usize..2000,
                seed in 0u64..1u64 << 32,
            ) {
                let mut rng = SimRng::new(seed);
                let (bm, lost) = WifiMedium::sample_reception(n, loss, &mut rng);
                prop_assert_eq!(bm.count_zeros() as u64, lost);
            }
        }
    }
}
