//! Byte/airtime accounting kept by every transport.
//!
//! Experiments harvest these post-run: Fig 10(b) is literally
//! "bytes sent over the network due to checkpointing/replication", which
//! upper layers attribute via [`TrafficClass`] tags on each send.

use simkernel::SimDuration;

/// What a message is *for* — used to attribute bytes to the paper's
/// metrics. The transport treats all classes identically; this is pure
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Normal stream tuples between operators.
    Data,
    /// Replica input duplication (rep-2).
    Replication,
    /// Checkpoint state shipping (ms broadcast, dist-n unicast).
    Checkpoint,
    /// Source-preservation shipping (ms input replication to the region).
    Preservation,
    /// Bitmap queries/replies, tokens, controller RPC, pings.
    Control,
    /// Recovery traffic: state fetch, replay, state transfer on departure.
    Recovery,
}

impl TrafficClass {
    /// All classes, for iteration in reports.
    pub const ALL: [TrafficClass; 6] = [
        TrafficClass::Data,
        TrafficClass::Replication,
        TrafficClass::Checkpoint,
        TrafficClass::Preservation,
        TrafficClass::Control,
        TrafficClass::Recovery,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::Data => 0,
            TrafficClass::Replication => 1,
            TrafficClass::Checkpoint => 2,
            TrafficClass::Preservation => 3,
            TrafficClass::Control => 4,
            TrafficClass::Recovery => 5,
        }
    }

    /// May a bounded transport shed this class under congestion? Bulk
    /// stream data yields; protocol state machines (control RPCs,
    /// checkpoint shipping, recovery transfers) are carried at priority
    /// so a saturated link degrades the *data plane*, not liveness.
    pub fn droppable(self) -> bool {
        matches!(
            self,
            TrafficClass::Data | TrafficClass::Replication | TrafficClass::Preservation
        )
    }
}

/// Per-transport accounting.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Payload bytes offered, per traffic class.
    payload_bytes: [u64; 6],
    /// Bytes actually put on the medium (incl. framing overhead and
    /// retransmission expansion), per class.
    wire_bytes: [u64; 6],
    /// Logical messages sent, per class.
    messages: [u64; 6],
    /// Airtime (or link time) consumed.
    pub busy_time: SimDuration,
    /// Datagram (sub-)messages dropped by loss.
    pub drops: u64,
    /// Reliable sends that failed (dead destination).
    pub failed_sends: u64,
    /// Messages tail-dropped because a bounded link queue was full.
    pub queue_drops: u64,
    /// Payload bytes lost at bounded link queues: tail-dropped arrivals
    /// plus backlog drained when an endpoint died with bytes still
    /// queued (the byte-accurate companion to `queue_drops`, whose
    /// message granularity is unknowable for a drained backlog).
    pub queue_drop_bytes: u64,
    /// Sends refused because an endpoint was behind an administrative
    /// partition (network weather); the senders got [`crate::TxSevered`]
    /// after the timeout instead of a failure.
    pub severed_sends: u64,
    /// Malformed or impossible sends the transport refused outright:
    /// dead/unknown source radio, empty batch, unrecognized event type.
    /// These consume no airtime and charge no bytes.
    pub rejects: u64,
    /// Deepest per-link queue backlog observed anywhere (bytes).
    pub max_queue_depth: u64,
}

impl NetStats {
    /// Record one logical send.
    pub fn record_send(&mut self, class: TrafficClass, payload: u64, wire: u64, air: SimDuration) {
        let i = class.index();
        self.payload_bytes[i] += payload;
        self.wire_bytes[i] += wire;
        self.messages[i] += 1;
        self.busy_time += air;
    }

    /// Record a queue-depth observation (keeps the running maximum).
    pub fn note_queue_depth(&mut self, depth_bytes: u64) {
        self.max_queue_depth = self.max_queue_depth.max(depth_bytes);
    }

    /// Payload bytes offered for a class.
    pub fn payload_bytes(&self, class: TrafficClass) -> u64 {
        self.payload_bytes[class.index()]
    }

    /// Wire bytes (with overhead/expansion) for a class.
    pub fn wire_bytes(&self, class: TrafficClass) -> u64 {
        self.wire_bytes[class.index()]
    }

    /// Message count for a class.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages[class.index()]
    }

    /// Total wire bytes across all classes.
    pub fn total_wire_bytes(&self) -> u64 {
        self.wire_bytes.iter().sum()
    }

    /// Total payload bytes across all classes.
    pub fn total_payload_bytes(&self) -> u64 {
        self.payload_bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_per_class() {
        let mut s = NetStats::default();
        s.record_send(TrafficClass::Data, 100, 120, SimDuration::from_millis(1));
        s.record_send(TrafficClass::Data, 50, 60, SimDuration::from_millis(1));
        s.record_send(
            TrafficClass::Checkpoint,
            1000,
            1100,
            SimDuration::from_millis(5),
        );
        assert_eq!(s.payload_bytes(TrafficClass::Data), 150);
        assert_eq!(s.wire_bytes(TrafficClass::Data), 180);
        assert_eq!(s.messages(TrafficClass::Data), 2);
        assert_eq!(s.payload_bytes(TrafficClass::Checkpoint), 1000);
        assert_eq!(s.total_wire_bytes(), 1280);
        assert_eq!(s.total_payload_bytes(), 1150);
        assert_eq!(s.busy_time, SimDuration::from_millis(7));
    }

    #[test]
    fn untouched_classes_are_zero() {
        let s = NetStats::default();
        for c in TrafficClass::ALL {
            assert_eq!(s.payload_bytes(c), 0);
            assert_eq!(s.messages(c), 0);
        }
    }
}
