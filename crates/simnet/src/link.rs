//! Rate queues: the arithmetic core shared by every transport.
//!
//! A [`RateQueue`] is a serialized resource with a fixed bit rate: a
//! WiFi channel's airtime, a phone's 3G uplink, a server NIC. Callers
//! reserve a byte count and get back the (start, end) window; the queue
//! remembers `busy_until` so back-to-back reservations serialize.

use simkernel::{SimDuration, SimTime};

/// Transmission time for `bytes` at `rate_bps` (bits per second).
pub fn tx_time(bytes: u64, rate_bps: f64) -> SimDuration {
    assert!(rate_bps > 0.0, "rate must be positive");
    SimDuration::from_secs_f64(bytes as f64 * 8.0 / rate_bps)
}

/// A serialized fixed-rate resource.
#[derive(Debug, Clone)]
pub struct RateQueue {
    rate_bps: f64,
    busy_until: SimTime,
    /// Total bytes ever reserved (for utilization accounting).
    bytes_reserved: u64,
    /// Deepest backlog (in bytes, including the reservation that
    /// created it) ever observed at reservation time.
    max_depth_bytes: u64,
    /// Accounting view of waiting bytes, decayed at the drain rate.
    /// Kept separately from `busy_until` because reservations may start
    /// in the future (e.g. a downlink window floored at core arrival):
    /// the idle gap before such a window is not queued data.
    queued_bytes: f64,
    /// When `queued_bytes` was last brought current.
    last_obs: SimTime,
}

impl RateQueue {
    /// New queue at the given bit rate.
    pub fn new(rate_bps: f64) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive, got {rate_bps}");
        RateQueue {
            rate_bps,
            busy_until: SimTime::ZERO,
            bytes_reserved: 0,
            max_depth_bytes: 0,
            queued_bytes: 0.0,
            last_obs: SimTime::ZERO,
        }
    }

    /// The configured bit rate.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Change the rate (e.g. WiFi adapting); affects future reservations.
    pub fn set_rate_bps(&mut self, rate_bps: f64) {
        assert!(rate_bps > 0.0);
        self.rate_bps = rate_bps;
    }

    /// Earliest instant a new reservation could start.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Reserve the queue for `bytes` starting no earlier than `now`.
    /// Returns the `(start, end)` of the transmission window.
    pub fn reserve(&mut self, now: SimTime, bytes: u64) -> (SimTime, SimTime) {
        self.note_depth(now, bytes);
        let start = now.max(self.busy_until);
        let end = start + tx_time(bytes, self.rate_bps);
        self.busy_until = end;
        self.bytes_reserved += bytes;
        (start, end)
    }

    /// Reserve a pre-computed duration (for callers that apply their own
    /// expansion factors, e.g. the reliable-service retransmission
    /// model). `bytes` is recorded for accounting only.
    pub fn reserve_span(
        &mut self,
        now: SimTime,
        span: SimDuration,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        self.reserve_span_at(now, now, span, bytes)
    }

    /// As [`Self::reserve_span`], but with the depth bookkeeping
    /// decoupled from the window floor: `obs` is the observation time
    /// (must be monotone across calls for the decay to be meaningful),
    /// `start_floor` the earliest the window may start. Needed when a
    /// reservation is made ahead of time for a window in the future —
    /// the cellular downlink reserves at send time for a post-uplink
    /// arrival whose timestamp depends on the *sender's* backlog, so
    /// successive arrival times are not ordered and must not drive the
    /// decay clock.
    pub fn reserve_span_at(
        &mut self,
        obs: SimTime,
        start_floor: SimTime,
        span: SimDuration,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        self.note_depth(obs, bytes);
        let start = start_floor.max(self.busy_until);
        let end = start + span;
        self.busy_until = end;
        self.bytes_reserved += bytes;
        (start, end)
    }

    /// Queueing delay a reservation made `now` would suffer.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.since(now)
    }

    /// Bytes still waiting (not yet serialized) at `now`: the enqueued
    /// total decayed at the drain rate since the last observation.
    pub fn depth_bytes(&self, now: SimTime) -> u64 {
        let drained = now.since(self.last_obs).as_secs_f64() * self.rate_bps / 8.0;
        (self.queued_bytes - drained).max(0.0) as u64
    }

    /// Deepest backlog observed at any reservation (bytes).
    pub fn max_depth_bytes(&self) -> u64 {
        self.max_depth_bytes
    }

    fn note_depth(&mut self, now: SimTime, incoming: u64) {
        self.queued_bytes = self.depth_bytes(now) as f64 + incoming as f64;
        self.last_obs = self.last_obs.max(now);
        self.max_depth_bytes = self.max_depth_bytes.max(self.queued_bytes as u64);
    }

    /// Total bytes reserved over the queue's lifetime.
    pub fn bytes_reserved(&self) -> u64 {
        self.bytes_reserved
    }

    /// Abandon all waiting bytes at `now` (the endpoint behind the
    /// queue died): returns the drained backlog so callers can account
    /// it as lost, frees the link for any future revival, and leaves
    /// `max_depth_bytes` untouched — the observed maximum must not
    /// decay retroactively just because the owner crashed.
    pub fn clear_backlog(&mut self, now: SimTime) -> u64 {
        let waiting = self.depth_bytes(now);
        self.queued_bytes = 0.0;
        self.last_obs = self.last_obs.max(now);
        if self.busy_until > now {
            self.busy_until = now;
        }
        waiting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_basic() {
        // 1 Mbps, 125 000 bytes = 1 s.
        assert_eq!(tx_time(125_000, 1_000_000.0), SimDuration::from_secs(1));
        // 2.5 Mbps, 1 KB ≈ 3.2768 ms? No: 1024*8/2.5e6 = 3.2768 ms.
        let d = tx_time(1024, 2_500_000.0);
        assert!((d.as_secs_f64() - 0.0032768).abs() < 1e-9);
    }

    #[test]
    fn reservations_serialize() {
        let mut q = RateQueue::new(1_000_000.0);
        let (s1, e1) = q.reserve(SimTime::ZERO, 125_000);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(e1, SimTime::from_secs(1));
        // Second reservation at t=0 queues behind the first.
        let (s2, e2) = q.reserve(SimTime::ZERO, 125_000);
        assert_eq!(s2, SimTime::from_secs(1));
        assert_eq!(e2, SimTime::from_secs(2));
        // A reservation after the queue drained starts immediately.
        let (s3, _) = q.reserve(SimTime::from_secs(5), 125_000);
        assert_eq!(s3, SimTime::from_secs(5));
        assert_eq!(q.bytes_reserved(), 375_000);
    }

    #[test]
    fn backlog_reflects_queue() {
        let mut q = RateQueue::new(1_000_000.0);
        q.reserve(SimTime::ZERO, 250_000); // 2 s of air
        assert_eq!(q.backlog(SimTime::ZERO), SimDuration::from_secs(2));
        assert_eq!(q.backlog(SimTime::from_secs(1)), SimDuration::from_secs(1));
        assert_eq!(q.backlog(SimTime::from_secs(3)), SimDuration::ZERO);
    }

    #[test]
    fn reserve_span_uses_given_duration() {
        let mut q = RateQueue::new(1_000_000.0);
        let (s, e) = q.reserve_span(SimTime::ZERO, SimDuration::from_millis(10), 999);
        assert_eq!(s, SimTime::ZERO);
        assert_eq!(e, SimTime::from_millis(10));
        assert_eq!(q.bytes_reserved(), 999);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = RateQueue::new(0.0);
    }

    #[test]
    fn depth_tracks_backlog_in_bytes() {
        let mut q = RateQueue::new(1_000_000.0); // 125 000 B/s
        assert_eq!(q.depth_bytes(SimTime::ZERO), 0);
        q.reserve(SimTime::ZERO, 125_000); // 1 s of serialization
                                           // Everything is still queued at t=0, half at t=0.5.
        assert_eq!(q.depth_bytes(SimTime::ZERO), 125_000);
        assert_eq!(q.depth_bytes(SimTime::from_millis(500)), 62_500);
        assert_eq!(q.depth_bytes(SimTime::from_secs(2)), 0);
        // Max depth includes the reservation that created it.
        q.reserve(SimTime::ZERO, 125_000);
        assert_eq!(q.max_depth_bytes(), 250_000);
        // Draining never lowers the recorded maximum.
        q.reserve(SimTime::from_secs(10), 100);
        assert_eq!(q.max_depth_bytes(), 250_000);
    }
}
