//! # simnet — the network substrate MobiStreams runs on
//!
//! Three transports, each an [`simkernel::Actor`]:
//!
//! * [`wifi::WifiMedium`] — one per region: a shared, half-duplex,
//!   broadcast-capable, *lossy* channel (the phones' ad-hoc WiFi,
//!   1–5 Mbps in the paper). Supports unreliable datagrams (UDP), a
//!   retransmission-expanded reliable service (TCP), true broadcast
//!   (one airtime slot reaches every member), and efficient datagram
//!   *batches* used by the checkpoint broadcast protocol.
//! * [`cellular::CellularNet`] — one global: per-endpoint asymmetric
//!   uplink/downlink rate queues plus RTT (the 3G network: 0.016–0.32
//!   Mbps up, 0.35–1.14 Mbps down in the paper). Reliable.
//! * [`ethernet::EthernetNet`] — the datacenter switch used by the
//!   server-based DSPS baseline of Table I. Fast, symmetric, reliable.
//!
//! All three deliver payloads as [`Payload`] (an `Arc<dyn Event>`), so a
//! broadcast clones a pointer, not the tuple. Senders receive
//! [`TxDone`]/[`TxFailed`] completions keyed by caller-chosen tags;
//! failure of a reliable send to a dead or departed node is how the
//! upper layers *detect* failures, exactly as in the paper (§III-D).

pub mod bitmap;
pub mod cellular;
pub mod ethernet;
pub mod link;
pub mod stats;
pub mod wifi;

use simkernel::Event;
use std::sync::Arc;

/// Reference-counted, type-erased message payload. Cheap to fan out to
/// many receivers (broadcast) without cloning the content.
pub type Payload = Arc<dyn Event>;

/// Wrap a concrete event into a [`Payload`].
pub fn payload<T: Event>(ev: T) -> Payload {
    Arc::new(ev)
}

/// Borrowing downcast of a [`Payload`]'s *content*.
///
/// Important: call this rather than `payload.as_any()` — the blanket
/// `Event` impl also covers `Arc<dyn Event>` itself, so method syntax
/// would downcast the Arc, never the content.
pub fn payload_as<T: std::any::Any>(p: &Payload) -> Option<&T> {
    (**p).as_any().downcast_ref::<T>()
}

/// Sender-side completion: the logical message tagged `tag` has fully
/// left the sender (airtime reserved / uplink drained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxDone {
    /// Caller-chosen correlation tag (0 = caller did not ask).
    pub tag: u64,
}

/// Sender-side failure: a *reliable* send could not be delivered
/// (receiver dead, departed, or unknown). Delivered after the
/// transport's failure-detection timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxFailed {
    /// Caller-chosen correlation tag.
    pub tag: u64,
    /// The unreachable destination.
    pub dst: simkernel::ActorId,
}

/// Sender-side congestion loss: a bounded link queue was full, so the
/// message was tail-dropped *before* consuming link time. Unlike
/// [`TxFailed`] this says nothing about the destination's liveness —
/// the peer is alive, the pipe is just saturated — so receivers of
/// this event must not raise failure reports over it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxDropped {
    /// Caller-chosen correlation tag.
    pub tag: u64,
    /// The destination the message was headed for.
    pub dst: simkernel::ActorId,
}

/// Sender-side partition notice: the path between the endpoints is
/// administratively severed (a network-weather partition), so the
/// message aged out after the transport's failure-detection timeout.
/// Unlike [`TxFailed`] this says nothing about the destination's
/// liveness — both endpoints may be alive and the partition may heal —
/// so receivers must not raise death reports over it; the right
/// response is a capped-backoff retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxSevered {
    /// Caller-chosen correlation tag.
    pub tag: u64,
    /// The destination the message was headed for.
    pub dst: simkernel::ActorId,
}

/// Liveness of a node as seen by a transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkState {
    /// Sends and receives normally.
    #[default]
    Active,
    /// Crashed: receives nothing; reliable sends to it fail after the
    /// timeout.
    Dead,
    /// Departed the region: same observable behaviour as `Dead` on this
    /// transport, but upper layers distinguish the cause.
    Gone,
}

impl LinkState {
    /// Can this node currently receive on the transport?
    pub fn reachable(self) -> bool {
        matches!(self, LinkState::Active)
    }
}
