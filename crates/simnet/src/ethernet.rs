//! Datacenter Ethernet — the substrate of the server-based DSPS
//! baseline in Table I.
//!
//! Full-duplex switched network: each endpoint has a dedicated egress
//! queue at the link rate, plus a small switch latency. Reliable and
//! loss-free; Ethernet is never the bottleneck in the paper's Table I
//! (the 3G uplink is), and this model keeps it that way while still
//! charging realistic serialization time.

use std::collections::BTreeMap;

use simkernel::{impl_actor_any, Actor, ActorId, Ctx, EventBox, SimDuration};

use crate::link::RateQueue;
use crate::stats::{NetStats, TrafficClass};
use crate::{Payload, TxDone};

/// Ethernet parameters (defaults: GigE, 50 µs switch latency).
#[derive(Debug, Clone)]
pub struct EthConfig {
    /// Per-endpoint link rate, bits/s.
    pub rate_bps: f64,
    /// One-way switch latency.
    pub latency: SimDuration,
    /// Per-message framing overhead in bytes.
    pub overhead: u64,
}

impl Default for EthConfig {
    fn default() -> Self {
        EthConfig {
            rate_bps: 1_000_000_000.0,
            latency: SimDuration::from_micros(50),
            overhead: 66,
        }
    }
}

/// Request: transfer `bytes` from `src` to `dst`.
#[derive(Debug)]
pub struct EthSend {
    /// Sending endpoint.
    pub src: ActorId,
    /// Receiving endpoint.
    pub dst: ActorId,
    /// Accounting class.
    pub class: TrafficClass,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Completion tag; 0 = none.
    pub tag: u64,
    /// Message content.
    pub payload: Option<Payload>,
}

/// Delivery of an [`EthSend`].
#[derive(Debug, Clone)]
pub struct EthRx {
    /// Sending endpoint.
    pub src: ActorId,
    /// Payload size.
    pub bytes: u64,
    /// Accounting class.
    pub class: TrafficClass,
    /// Message content.
    pub payload: Payload,
}

/// The switched network actor.
pub struct EthernetNet {
    cfg: EthConfig,
    egress: BTreeMap<ActorId, RateQueue>,
    stats: NetStats,
}

impl EthernetNet {
    /// New switch.
    pub fn new(cfg: EthConfig) -> Self {
        EthernetNet {
            cfg,
            egress: BTreeMap::new(),
            stats: NetStats::default(),
        }
    }

    /// Attach an endpoint.
    pub fn register(&mut self, node: ActorId) {
        self.egress.insert(node, RateQueue::new(self.cfg.rate_bps));
    }

    /// Accounting.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn handle_send(&mut self, s: EthSend, ctx: &mut Ctx) {
        let now = ctx.now();
        let wire = s.bytes + self.cfg.overhead;
        // Sends from unregistered endpoints are counted, not fatal
        // (PR 2 de-panicking convention; see wifi.rs for the model).
        let Some(q) = self.egress.get_mut(&s.src) else {
            self.stats.rejects += 1;
            return;
        };
        let (_, end) = q.reserve(now, wire);
        let air = end - now;
        self.stats.record_send(s.class, s.bytes, wire, air);
        let deliver_at = end + self.cfg.latency;
        if let Some(p) = s.payload {
            ctx.send_in(
                deliver_at - now,
                s.dst,
                EthRx {
                    src: s.src,
                    bytes: s.bytes,
                    class: s.class,
                    payload: p,
                },
            );
        }
        if s.tag != 0 {
            ctx.send_in(end - now, s.src, TxDone { tag: s.tag });
        }
    }
}

impl Actor for EthernetNet {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        simkernel::match_event!(ev,
            s: EthSend => { self.handle_send(s, ctx); },
            @else _other => {
                // Unknown event types are counted, not fatal (PR 2
                // de-panicking convention).
                self.stats.rejects += 1;
            }
        );
    }

    fn name(&self) -> String {
        "ethernet".into()
    }

    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::{Sim, SimTime};

    #[derive(Default)]
    struct Sink {
        rx: Vec<(SimTime, u64)>,
    }

    impl Actor for Sink {
        fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
            if let Ok(r) = ev.downcast::<EthRx>() {
                self.rx.push((ctx.now(), r.bytes));
            }
        }
        impl_actor_any!();
    }

    #[test]
    fn fast_delivery_with_latency() {
        let mut sim = Sim::new(0);
        let a = sim.add_actor(Box::<Sink>::default());
        let b = sim.add_actor(Box::<Sink>::default());
        let mut net = EthernetNet::new(EthConfig {
            rate_bps: 1_000_000_000.0,
            latency: SimDuration::from_micros(50),
            overhead: 0,
        });
        net.register(a);
        net.register(b);
        let n = sim.add_actor(Box::new(net));
        sim.schedule_at(
            SimTime::ZERO,
            n,
            EthSend {
                src: a,
                dst: b,
                class: TrafficClass::Data,
                bytes: 125_000, // 1 ms at 1 Gbps
                tag: 0,
                payload: Some(crate::payload(())),
            },
        );
        sim.run();
        let rx = &sim.actor::<Sink>(b).rx;
        assert_eq!(rx.len(), 1);
        let expect = 0.001 + 50e-6;
        assert!((rx[0].0.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn egress_queues_are_per_endpoint() {
        let mut sim = Sim::new(0);
        let a = sim.add_actor(Box::<Sink>::default());
        let b = sim.add_actor(Box::<Sink>::default());
        let c = sim.add_actor(Box::<Sink>::default());
        let mut net = EthernetNet::new(EthConfig {
            rate_bps: 1_000_000.0, // slow to see serialization
            latency: SimDuration::ZERO,
            overhead: 0,
        });
        for id in [a, b, c] {
            net.register(id);
        }
        let n = sim.add_actor(Box::new(net));
        // Two sends from a: serialize. One from b: parallel.
        for src in [a, a, b] {
            sim.schedule_at(
                SimTime::ZERO,
                n,
                EthSend {
                    src,
                    dst: c,
                    class: TrafficClass::Data,
                    bytes: 125_000, // 1 s at 1 Mbps
                    tag: 0,
                    payload: Some(crate::payload(())),
                },
            );
        }
        sim.run();
        let times: Vec<f64> = sim
            .actor::<Sink>(c)
            .rx
            .iter()
            .map(|(t, _)| t.as_secs_f64())
            .collect();
        assert_eq!(times.len(), 3);
        // a's first and b's only send land at ~1 s; a's second at ~2 s.
        assert!((times[0] - 1.0).abs() < 1e-9);
        assert!((times[1] - 1.0).abs() < 1e-9);
        assert!((times[2] - 2.0).abs() < 1e-9);
    }
}
