//! Determinism regression tests (the kernel's core contract): two runs
//! built identically — same seed, same actor insertion order, same
//! scheduled events — must process the exact same event sequence and
//! draw the exact same numbers from the shared [`SimRng`]; different
//! seeds must diverge.

use simkernel::{
    impl_actor_any, Actor, ActorId, Ctx, EventBox, Sim, SimDuration, SimTime, TraceRecord,
};

#[derive(Debug, Clone, Copy)]
struct Tick(u64);

/// An actor that consumes randomness on every event, records its draws,
/// traces its activity, and keeps a randomized ping-pong going with a
/// peer until `budget` events have been seen.
struct Chatter {
    peer: Option<ActorId>,
    draws: Vec<u64>,
    budget: u32,
}

impl Chatter {
    fn new(budget: u32) -> Self {
        Chatter {
            peer: None,
            draws: Vec::new(),
            budget,
        }
    }
}

impl Actor for Chatter {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        let tick = ev.downcast::<Tick>().unwrap();
        let draw = ctx.rng().range_u64(0, 1_000_000);
        self.draws.push(draw);
        ctx.trace(format!("tick {} draw {draw}", tick.0));
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        let dst = self.peer.unwrap_or_else(|| ctx.self_id());
        // Randomized delay: the schedule itself depends on the RNG, so
        // any divergence cascades into the event order.
        let jitter = ctx.rng().range_u64(1, 50);
        ctx.send_in(SimDuration::from_millis(jitter), dst, Tick(tick.0 + 1));
    }
    impl_actor_any!();
}

/// Build a small randomized topology and run it to completion.
fn run(seed: u64) -> (Sim, Vec<ActorId>) {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(true);
    let ids: Vec<ActorId> = (0..4)
        .map(|i| sim.add_actor(Box::new(Chatter::new(40 + i * 3))))
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let peer = ids[(i + 1) % ids.len()];
        sim.actor_mut::<Chatter>(id).peer = Some(peer);
    }
    for (i, &id) in ids.iter().enumerate() {
        sim.schedule_at(SimTime::from_millis(i as u64), id, Tick(0));
    }
    sim.run();
    (sim, ids)
}

fn trace_key(r: &TraceRecord) -> (SimTime, ActorId, String) {
    (r.at, r.actor, r.message.clone())
}

#[test]
fn identical_builds_produce_identical_event_traces() {
    let (a, _) = run(1234);
    let (b, _) = run(1234);
    assert_eq!(a.events_processed(), b.events_processed());
    assert_eq!(a.now(), b.now());
    let ta: Vec<_> = a.trace().records().iter().map(trace_key).collect();
    let tb: Vec<_> = b.trace().records().iter().map(trace_key).collect();
    assert!(!ta.is_empty(), "trace must have captured the run");
    assert_eq!(ta, tb, "event traces must match record-for-record");
}

#[test]
fn identical_builds_produce_identical_rng_draw_sequences() {
    let (a, ids_a) = run(77);
    let (b, ids_b) = run(77);
    assert_eq!(ids_a, ids_b, "actor ids are assigned deterministically");
    for (&ia, &ib) in ids_a.iter().zip(&ids_b) {
        let da = &a.actor::<Chatter>(ia).draws;
        let db = &b.actor::<Chatter>(ib).draws;
        assert!(!da.is_empty());
        assert_eq!(da, db, "per-actor SimRng draw sequences must match");
    }
}

#[test]
fn different_seeds_diverge() {
    let (a, ids_a) = run(100);
    let (b, ids_b) = run(101);
    let da = &a.actor::<Chatter>(ids_a[0]).draws;
    let db = &b.actor::<Chatter>(ids_b[0]).draws;
    assert_ne!(da, db, "different seeds must produce different draws");
    let ta: Vec<_> = a.trace().records().iter().map(trace_key).collect();
    let tb: Vec<_> = b.trace().records().iter().map(trace_key).collect();
    assert_ne!(ta, tb, "different seeds must produce different traces");
}

#[test]
fn run_is_independent_of_host_state() {
    // Re-running in the same process (allocator warm, globals touched)
    // must not leak into the simulation: 3 consecutive runs agree.
    let baseline = run(555).0.events_processed();
    for _ in 0..2 {
        assert_eq!(run(555).0.events_processed(), baseline);
    }
}
