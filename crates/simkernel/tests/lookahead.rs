//! Per-destination lookahead fixture: two independent regions whose
//! only cross-region traffic is slow. Under the old uniform bound
//! every window closes after a few self-ticks (each region barriers on
//! the other's clock plus the tiny global lookahead); under
//! per-destination bounds the same run takes a fraction of the
//! windows — and both reproduce the unsharded schedule exactly.

use simkernel::{
    impl_actor_any, Actor, ActorId, Ctx, EventBox, ShardBound, Sim, SimDuration, SimTime,
};

#[derive(Debug, Clone, Copy)]
struct Tick(u64);

#[derive(Debug, Clone, Copy)]
struct Probe(u64);

/// The uniform (old, global) conservative bound of the fixture.
const UNIFORM: SimDuration = SimDuration::from_millis(2);

/// The true floor of any cross-region event chain in this fixture:
/// a probe leaves its region with zero delay, reaches the shard-0
/// relay, and is forwarded to the peer region exactly this much later.
const CROSS_FLOOR: SimDuration = SimDuration::from_millis(100);

/// Ask the shard-0 relay to forward a probe to the peer region.
#[derive(Debug, Clone, Copy)]
struct RelayProbe {
    to: ActorId,
    probe: Probe,
}

/// The global-shard relay: regions may only talk to each other through
/// shard 0 (the fixture mirror of the cellular network/coordinator).
struct Relay;
impl Actor for Relay {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        let m = ev.downcast::<RelayProbe>().expect("relay handles probes");
        ctx.send_in(CROSS_FLOOR, m.to, m.probe);
    }
    impl_actor_any!();
}

/// A region head: ticks itself every millisecond, records every
/// delivery in order (so any schedule divergence corrupts the log),
/// and probes the peer region on a slow cadence via the relay.
///
/// The witness is RNG-free on purpose: sharding forks one RNG stream
/// per shard, so draws differ from the unsharded run by design — the
/// contract compared here is the *event schedule* (delivery times,
/// payloads and per-actor order).
struct Region {
    relay: ActorId,
    peer: ActorId,
    /// Whether this region emits probes (a pure receiver has an empty
    /// outbox, so only the declared bound limits its window).
    probes: bool,
    /// `(now_ns, payload)` per delivery — the schedule witness.
    /// Probes are tagged with the high bit to keep them distinct.
    log: Vec<(u64, u64)>,
    probes_seen: u64,
    ticks: u64,
}

impl Actor for Region {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        let ev = match ev.downcast::<Tick>() {
            Ok(t) => {
                self.log.push((ctx.now().as_nanos(), t.0));
                self.ticks += 1;
                if t.0 > 0 {
                    ctx.send_in(SimDuration::from_millis(1), ctx.self_id(), Tick(t.0 - 1));
                }
                // Every 50th tick, probe the peer region through the
                // shard-0 relay (regions never talk directly).
                if t.0 % 50 == 0 && self.probes {
                    ctx.send(
                        self.relay,
                        RelayProbe {
                            to: self.peer,
                            probe: Probe(t.0),
                        },
                    );
                }
                return;
            }
            Err(ev) => ev,
        };
        let p = ev.downcast::<Probe>().expect("fixture sends Tick or Probe");
        self.log.push((ctx.now().as_nanos(), p.0 | 1 << 63));
        self.probes_seen += 1;
    }
    impl_actor_any!();
}

/// Build the two-region topology: actor 0 is the shard-0 relay,
/// actors 1 and 2 are the region heads.
fn build(seed: u64) -> (Sim, ActorId, ActorId) {
    build_with(seed, true)
}

fn build_with(seed: u64, b_probes: bool) -> (Sim, ActorId, ActorId) {
    let mut sim = Sim::new(seed);
    let relay = sim.add_actor(Box::new(Relay));
    let a = sim.add_actor(Box::new(Region {
        relay,
        peer: ActorId::UNSET,
        probes: true,
        log: Vec::new(),
        probes_seen: 0,
        ticks: 0,
    }));
    let b = sim.add_actor(Box::new(Region {
        relay,
        peer: ActorId::UNSET,
        probes: b_probes,
        log: Vec::new(),
        probes_seen: 0,
        ticks: 0,
    }));
    sim.actor_mut::<Region>(a).peer = b;
    sim.actor_mut::<Region>(b).peer = a;
    sim.schedule_at(SimTime::ZERO, a, Tick(1000));
    sim.schedule_at(SimTime::ZERO, b, Tick(1000));
    (sim, a, b)
}

/// Determinism witness of one finished run: both regions' delivery
/// logs plus their probe counters.
type Witness = (Vec<(u64, u64)>, Vec<(u64, u64)>, u64, u64);

/// Harvest the determinism witness of one finished run.
fn witness(sim: &Sim, a: ActorId, b: ActorId) -> Witness {
    let ra = sim.actor::<Region>(a);
    let rb = sim.actor::<Region>(b);
    (
        ra.log.clone(),
        rb.log.clone(),
        ra.probes_seen,
        rb.probes_seen,
    )
}

/// Run sharded to `until` with the given per-destination bounds
/// (`None` = keep the uniform defaults from `enable_sharding`).
fn run_sharded(seed: u64, bounds: Option<Vec<ShardBound>>, threads: usize) -> (Sim, u64) {
    let (mut sim, a, b) = build(seed);
    sim.enable_sharding(vec![0, 1, 2], UNIFORM, threads);
    if let Some(bounds) = bounds {
        sim.set_shard_bounds(bounds);
    }
    sim.enable_sanitizer();
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
    let windows = sim.causality_report().expect("sanitizer on").windows;
    let _ = (a, b);
    (sim, windows)
}

fn per_dest_bounds() -> Vec<ShardBound> {
    vec![
        ShardBound {
            self_bound: UNIFORM,
            cross_bound: UNIFORM,
        },
        ShardBound {
            self_bound: UNIFORM,
            cross_bound: CROSS_FLOOR,
        },
        ShardBound {
            self_bound: UNIFORM,
            cross_bound: CROSS_FLOOR,
        },
    ]
}

/// The headline claim: with the true 100 ms cross-region floor
/// declared per destination, the kernel needs far fewer barrier
/// windows than under the uniform 2 ms bound — and the witness logs
/// (delivery times, payloads, per-actor order) match the unsharded
/// run bit-exactly in both modes.
#[test]
fn per_destination_bound_cuts_windows_without_changing_the_schedule() {
    // Reference: plain sequential run, no sharding.
    let (mut seq, a, b) = build(7);
    seq.run_until(SimTime::ZERO + SimDuration::from_secs(2));
    let reference = witness(&seq, a, b);
    assert!(reference.2 > 0, "fixture must exchange cross-region probes");

    let (uni_sim, uni_windows) = run_sharded(7, None, 1);
    let (pd_sim, pd_windows) = run_sharded(7, Some(per_dest_bounds()), 1);

    assert_eq!(
        witness(&uni_sim, a, b),
        reference,
        "uniform-bound sharded run diverged from the unsharded schedule"
    );
    assert_eq!(
        witness(&pd_sim, a, b),
        reference,
        "per-destination sharded run diverged from the unsharded schedule"
    );
    assert_eq!(uni_sim.events_processed(), seq.events_processed());
    assert_eq!(pd_sim.events_processed(), seq.events_processed());

    // The event-count win: the uniform bound barriers every ~2 ms of
    // regional progress; the per-destination bound lets each region
    // run ~50× further between barriers.
    assert!(
        pd_windows * 10 <= uni_windows,
        "expected ≥10× fewer windows with per-destination bounds: \
         uniform {uni_windows}, per-destination {pd_windows}"
    );
}

/// The window win survives worker threads, and the logs still match
/// the sequential schedule.
#[test]
fn per_destination_bound_is_thread_invariant() {
    let (mut seq, a, b) = build(13);
    seq.run_until(SimTime::ZERO + SimDuration::from_secs(2));
    let reference = witness(&seq, a, b);

    let mut window_counts = Vec::new();
    for threads in [1, 2, 4] {
        let (sim, windows) = run_sharded(13, Some(per_dest_bounds()), threads);
        assert_eq!(
            witness(&sim, a, b),
            reference,
            "per-destination run at {threads} threads diverged"
        );
        window_counts.push(windows);
    }
    assert!(
        window_counts.windows(2).all(|w| w[0] == w[1]),
        "window count must not depend on thread count: {window_counts:?}"
    );
}

/// Declaring a cross bound *above* the true floor is a contract
/// violation the sanitizer catches. Region B is a pure receiver (no
/// outgoing probes), so only its declared bound limits its window:
/// lying that cross-region traffic takes ≥500 ms lets B's horizon run
/// half a second ahead, and A's real 100 ms probe then lands below it.
#[test]
#[should_panic(expected = "below its widened horizon")]
fn overdeclared_cross_bound_trips_the_sanitizer() {
    let (mut sim, _a, _b) = build_with(17, false);
    sim.enable_sharding(vec![0, 1, 2], UNIFORM, 1);
    sim.set_shard_bounds(vec![
        ShardBound {
            self_bound: UNIFORM,
            cross_bound: UNIFORM,
        },
        ShardBound {
            self_bound: UNIFORM,
            cross_bound: UNIFORM,
        },
        ShardBound {
            self_bound: UNIFORM,
            // Lie: claim 500 ms when probes really arrive after 100 ms.
            cross_bound: SimDuration::from_millis(500),
        },
    ]);
    sim.enable_sanitizer();
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
}
