//! Property tests for the generation-checked event pool: arbitrary
//! interleavings of allocations and consumptions must never alias a
//! slot, must round-trip every payload bit-exactly, and must run every
//! destructor exactly once. These are the memory-safety proof
//! obligations behind `CausalityReport::pool_aliasing == 0`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use simkernel::{Event, EventBox, EventPool};

/// Small pooled payload (first size class) carrying a checksum.
#[derive(Debug, PartialEq)]
struct Small {
    tag: u64,
    check: u64,
}

/// Mid-size payload (exercises a different size class than `Small`).
#[derive(Debug, PartialEq)]
struct Mid {
    tag: u64,
    fill: [u64; 12],
}

/// Oversized payload: must bypass the pool entirely.
#[derive(Debug)]
struct Huge {
    tag: u64,
    _fill: [u64; 128],
}

/// Payload with a destructor counter: proves drops run exactly once.
#[derive(Debug)]
struct Droppy {
    tag: u64,
    drops: Arc<AtomicU64>,
}
impl Drop for Droppy {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::Relaxed);
    }
}

fn small(tag: u64) -> Small {
    Small {
        tag,
        check: tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    }
}

fn mid(tag: u64) -> Mid {
    Mid {
        tag,
        fill: [tag; 12],
    }
}

/// One step of the interleaving the property explores.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Allocate a payload of the given kind (0 = small, 1 = mid,
    /// 2 = huge, 3 = droppy) and hold it.
    Alloc(u8),
    /// Consume a held event by value (`downcast`), verifying payload.
    Consume(u8),
    /// Drop a held event without consuming it.
    Drop(u8),
    /// Flatten a held event to a plain box (`into_plain`), verify, drop.
    Flatten(u8),
}

/// Decode one `(selector, operand)` byte pair into an [`Op`]. Alloc is
/// weighted up so interleavings keep the held table populated.
fn decode_op((sel, arg): (u8, u8)) -> Op {
    match sel % 6 {
        0..=2 => Op::Alloc(arg % 4),
        3 => Op::Consume(arg),
        4 => Op::Drop(arg),
        _ => Op::Flatten(arg),
    }
}

/// Verify and consume one `EventBox` known to hold `tag`.
fn consume(ev: EventBox, tag: u64) {
    if ev.is::<Small>() {
        let s = ev.downcast::<Small>().unwrap();
        assert_eq!(s, small(tag), "small payload corrupted across recycle");
    } else if ev.is::<Mid>() {
        let m = ev.downcast::<Mid>().unwrap();
        assert_eq!(m, mid(tag), "mid payload corrupted across recycle");
    } else if ev.is::<Huge>() {
        let h = ev.downcast::<Huge>().unwrap();
        assert_eq!(h.tag, tag, "huge payload corrupted");
    } else {
        let d = ev.downcast::<Droppy>().unwrap();
        assert_eq!(d.tag, tag, "droppy payload corrupted across recycle");
    }
}

proptest! {
    /// Arbitrary interleavings of alloc/consume/drop/flatten over one
    /// pool: every payload reads back bit-exact, every destructor runs
    /// exactly once, no slot is ever aliased, and the counters account
    /// for every allocation.
    #[test]
    fn prop_pool_interleavings_never_alias(
        raw_ops in prop::collection::vec((any::<u8>(), any::<u8>()), 1..200),
    ) {
        let ops = raw_ops.into_iter().map(decode_op);
        let pool = EventPool::new();
        let drops = Arc::new(AtomicU64::new(0));
        let mut held: Vec<(EventBox, u64)> = Vec::new();
        let mut next_tag = 0u64;
        let mut droppy_allocs = 0u64;
        let mut droppy_consumed = 0u64;
        let mut pooled_allocs = 0u64;
        let mut huge_allocs = 0u64;
        for op in ops {
            match op {
                Op::Alloc(kind) => {
                    let tag = next_tag;
                    next_tag += 1;
                    let ev = match kind {
                        0 => pool.make(small(tag)),
                        1 => pool.make(mid(tag)),
                        2 => pool.make(Huge { tag, _fill: [tag; 128] }),
                        _ => {
                            droppy_allocs += 1;
                            pool.make(Droppy { tag, drops: Arc::clone(&drops) })
                        }
                    };
                    if kind == 2 {
                        huge_allocs += 1;
                        prop_assert!(!ev.is_pooled(), "oversized payload must not pool");
                    } else {
                        pooled_allocs += 1;
                        prop_assert!(ev.is_pooled(), "small payload must pool");
                    }
                    held.push((ev, tag));
                }
                Op::Consume(ix) if !held.is_empty() => {
                    let (ev, tag) = held.swap_remove(ix as usize % held.len());
                    if ev.is::<Droppy>() {
                        droppy_consumed += 1;
                    }
                    consume(ev, tag);
                }
                Op::Drop(ix) if !held.is_empty() => {
                    let (ev, _) = held.swap_remove(ix as usize % held.len());
                    drop(ev);
                }
                Op::Flatten(ix) if !held.is_empty() => {
                    let (ev, tag) = held.swap_remove(ix as usize % held.len());
                    if ev.is::<Droppy>() {
                        droppy_consumed += 1;
                    }
                    let plain = ev.into_plain();
                    prop_assert!(!plain.is_pooled());
                    consume(plain, tag);
                }
                _ => {} // consume/drop/flatten on an empty table: no-op
            }
        }
        // Consumed droppies were moved out by value and dropped as plain
        // values; held + dropped ones ran `Drop` via the box. Either way
        // each destructor must have run exactly once once `held` clears.
        drop(held);
        prop_assert_eq!(
            drops.load(Ordering::Relaxed),
            droppy_allocs,
            "every Droppy destructor must run exactly once"
        );
        let s = pool.stats();
        prop_assert_eq!(s.aliasing, 0, "no interleaving may alias a slot");
        prop_assert_eq!(s.unpooled, huge_allocs);
        prop_assert_eq!(
            s.fresh + s.recycled,
            pooled_allocs,
            "every pooled allocation is either fresh or recycled"
        );
        let _ = droppy_consumed;
    }

    /// Churning one size class recycles aggressively (fresh slots stay
    /// bounded by the peak number of simultaneously-live events) and
    /// generations never collide.
    #[test]
    fn prop_recycling_bounded_by_peak_liveness(
        live in 1usize..8,
        rounds in 1u64..50,
    ) {
        let pool = EventPool::new();
        for r in 0..rounds {
            let batch: Vec<EventBox> =
                (0..live).map(|i| pool.make(small(r * 100 + i as u64))).collect();
            for (i, ev) in batch.into_iter().enumerate() {
                consume(ev, r * 100 + i as u64);
            }
        }
        let s = pool.stats();
        prop_assert_eq!(s.aliasing, 0);
        prop_assert!(
            s.fresh <= live as u64,
            "fresh slots ({}) must not exceed peak liveness ({live})",
            s.fresh
        );
        prop_assert_eq!(s.fresh + s.recycled, live as u64 * rounds);
    }
}

/// `EventBox::new` never pools; `EventPool::make` pools exactly the
/// class-sized payloads — and both present the identical `dyn Event`
/// surface.
#[test]
fn plain_and_pooled_boxes_are_interchangeable() {
    let pool = EventPool::new();
    let a = EventBox::new(small(1));
    let b = pool.make(small(2));
    assert!(!a.is_pooled());
    assert!(b.is_pooled());
    assert_eq!(a.type_name(), b.type_name());
    consume(a, 1);
    consume(b, 2);
    assert_eq!(pool.stats().aliasing, 0);
}
