//! Type-erased events exchanged between actors.
//!
//! Every message in the simulation — a WiFi frame, a stream tuple, a
//! controller ping, a timer — is a concrete struct implementing [`Event`]
//! (which is blanket-implemented for any `'static + Debug` type). Actors
//! receive an [`EventBox`](crate::EventBox) (pooled or plain, see
//! [`crate::pool`]) and downcast to the types they understand, which
//! keeps the crates decoupled: `simnet` never needs to know about
//! checkpoint tokens, and `mobistreams` never needs to know about
//! Ethernet frames.

use std::any::Any;
use std::fmt;

/// A simulation event/message. Blanket-implemented for every
/// `'static + Debug` type; do not implement manually.
pub trait Event: Any + fmt::Debug + Send + Sync {
    /// Upcast to `&dyn Any` for downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `Box<dyn Any>` for by-value downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    /// The event's type name, for traces and "unhandled event" panics.
    fn type_name(&self) -> &'static str;
}

impl<T: Any + fmt::Debug + Send + Sync> Event for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
    fn type_name(&self) -> &'static str {
        std::any::type_name::<T>()
    }
}

/// A typed downcast failure: the event that arrived is not the type the
/// handler expected. Carries both type names so a mis-routed event is
/// immediately diagnosable instead of a bare `expect` panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisroutedEvent {
    /// The type the handler asked for.
    pub expected: &'static str,
    /// The type that actually arrived.
    pub actual: &'static str,
}

impl fmt::Display for MisroutedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mis-routed event: handler expected {}, got {}",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for MisroutedEvent {}

impl dyn Event {
    /// True if the boxed event is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.as_any().is::<T>()
    }

    /// Borrowing downcast.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.as_any().downcast_ref::<T>()
    }

    /// Consuming downcast; returns the original box on mismatch so the
    /// caller can try the next candidate type.
    pub fn downcast<T: Any>(self: Box<dyn Event>) -> Result<Box<T>, Box<dyn Event>> {
        if self.is::<T>() {
            // simlint::allow(P001): guarded by the is::<T> check one line up — this downcast cannot fail
            Ok(self.into_any().downcast::<T>().expect("checked by is::<T>"))
        } else {
            Err(self)
        }
    }

    /// Consuming downcast for handlers that accept exactly one type:
    /// on mismatch, returns a [`MisroutedEvent`] naming both the
    /// expected and the actual type, so dispatch errors carry enough
    /// context to find the bad sender.
    pub fn downcast_expected<T: Any>(self: Box<dyn Event>) -> Result<Box<T>, MisroutedEvent> {
        let actual = (*self).type_name();
        self.downcast::<T>().map_err(|_| MisroutedEvent {
            expected: std::any::type_name::<T>(),
            actual,
        })
    }
}

/// Dispatch an event to per-type handlers. Expands to an
/// if-let-downcast chain; the final arm handles "no match". Accepts an
/// [`EventBox`](crate::EventBox) (the [`Actor::on_event`](crate::Actor)
/// argument) or a plain `Box<dyn Event>`.
///
/// ```
/// use simkernel::{match_event, Event, EventBox};
/// #[derive(Debug)] struct A(u32);
/// #[derive(Debug)] struct B;
/// let ev = EventBox::new(A(7));
/// let mut got = 0;
/// match_event!(ev,
///     a: A => { got = a.0; },
///     _b: B => { got = 99; },
///     @else other => { panic!("unhandled {}", other.type_name()); }
/// );
/// assert_eq!(got, 7);
/// ```
#[macro_export]
macro_rules! match_event {
    ($ev:expr, $( $name:ident : $ty:ty => $body:block ),+ , @else $fallback:ident => $fb:block ) => {{
        let mut __ev: $crate::EventBox = ::core::convert::Into::into($ev);
        #[allow(unreachable_code, clippy::never_loop)]
        loop {
            $(
                __ev = match __ev.downcast::<$ty>() {
                    Ok(__v) => {
                        let $name: $ty = __v;
                        $body
                        break;
                    }
                    Err(__e) => __e,
                };
            )+
            let $fallback = __ev;
            $fb
            break;
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u64);
    #[derive(Debug)]
    struct Pong;

    #[test]
    fn downcast_ref_and_is() {
        let ev: Box<dyn Event> = Box::new(Ping(9));
        assert!(ev.is::<Ping>());
        assert!(!ev.is::<Pong>());
        assert_eq!(ev.downcast_ref::<Ping>(), Some(&Ping(9)));
        assert!(ev.downcast_ref::<Pong>().is_none());
    }

    #[test]
    fn consuming_downcast_success_and_recovery() {
        let ev: Box<dyn Event> = Box::new(Ping(3));
        let ev = match ev.downcast::<Pong>() {
            Ok(_) => panic!("wrong type matched"),
            Err(original) => original,
        };
        let ping = ev.downcast::<Ping>().expect("should match Ping");
        assert_eq!(*ping, Ping(3));
    }

    #[test]
    fn type_name_reports_concrete_type() {
        let ev: Box<dyn Event> = Box::new(Pong);
        // Note: call through the deref — `Box<dyn Event>` itself satisfies
        // the blanket impl, so `ev.type_name()` would name the Box.
        assert!((*ev).type_name().ends_with("Pong"));
    }

    #[test]
    fn downcast_expected_names_both_types() {
        let ev: Box<dyn Event> = Box::new(Ping(4));
        let err = ev.downcast_expected::<Pong>().unwrap_err();
        assert!(
            err.expected.ends_with("Pong"),
            "expected = {}",
            err.expected
        );
        assert!(err.actual.ends_with("Ping"), "actual = {}", err.actual);
        let msg = err.to_string();
        assert!(msg.contains("mis-routed"), "message = {msg}");

        let ev: Box<dyn Event> = Box::new(Ping(4));
        assert_eq!(*ev.downcast_expected::<Ping>().unwrap(), Ping(4));
    }

    #[test]
    fn match_event_dispatch() {
        let ev: Box<dyn Event> = Box::new(Pong);
        #[allow(unused_assignments)]
        let mut hit = "";
        match_event!(ev,
            _p: Ping => { hit = "ping"; },
            _q: Pong => { hit = "pong"; },
            @else _other => { hit = "none"; }
        );
        assert_eq!(hit, "pong");
    }

    #[test]
    fn match_event_fallback() {
        #[derive(Debug)]
        struct Mystery;
        let ev: Box<dyn Event> = Box::new(Mystery);
        #[allow(unused_assignments)]
        let mut hit = "";
        match_event!(ev,
            _p: Ping => { hit = "ping"; },
            @else other => { hit = if other.is::<Mystery>() { "mystery" } else { "?" }; }
        );
        assert_eq!(hit, "mystery");
    }
}
