//! Simulated time: nanosecond-resolution instants and durations.
//!
//! `u64` nanoseconds gives ~584 years of simulated range, far beyond any
//! experiment in this workspace (the longest runs are a few simulated
//! hours). Arithmetic is checked in debug builds via the standard `+`/`-`
//! operator overflow semantics.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds from simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// sentinel (e.g. `run_until(SimTime::MAX)`).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future (robust for latency probes fed unordered data).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration, used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input — simulated spans are always forward in time.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative, got {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True for the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Duration scaled by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(self.0 >= rhs.0, "duration underflow: {self} - {rhs}");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis(), 500);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3u64).as_millis(), 30);
        assert_eq!((d / 2u64).as_millis(), 5);
        let ratio = SimDuration::from_secs(3) / SimDuration::from_secs(2);
        assert!((ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fractional_seconds() {
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.as_millis(), 250);
        let scaled = SimDuration::from_secs(2) * 0.25;
        assert_eq!(scaled.as_millis(), 500);
    }

    #[test]
    #[should_panic(expected = "duration must be finite")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(42)), "42ns");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
    }
}
