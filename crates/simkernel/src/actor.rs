//! Actors: the unit of simulated behaviour.
//!
//! An actor owns its private state and reacts to events delivered by the
//! [`crate::Sim`] event loop. All cross-actor interaction goes through
//! events scheduled via [`crate::Ctx`]; actors never hold references to
//! each other, only [`ActorId`]s.

use std::any::Any;
use std::fmt;

use crate::pool::EventBox;
use crate::sim::Ctx;

/// Stable identifier of an actor within one simulation (index into the
/// actor table). Copyable and cheap to embed in events.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub(crate) u32);

impl ActorId {
    /// A sentinel id used before wiring is complete; dispatching to it
    /// panics, which turns wiring bugs into loud failures.
    pub const UNSET: ActorId = ActorId(u32::MAX);

    /// Raw index (for dense per-actor side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Only for tests and side-table decode;
    /// normal code receives ids from [`crate::Sim::add_actor`].
    pub fn from_index(ix: usize) -> Self {
        // simlint::allow(P001): registration-time bound — more than 4B actors is a programming error, and ids are minted before the sim runs
        ActorId(u32::try_from(ix).expect("actor index exceeds u32"))
    }
}

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ActorId::UNSET {
            write!(f, "actor#UNSET")
        } else {
            write!(f, "actor#{}", self.0)
        }
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Simulated behaviour attached to an [`ActorId`].
pub trait Actor: Any + Send {
    /// Handle one event. `ctx` provides the clock, the RNG and the
    /// ability to schedule further events.
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx);

    /// Human-readable name for traces.
    fn name(&self) -> String {
        "actor".to_string()
    }

    /// Upcast for post-run result harvesting (`Sim::actor::<T>()`).
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements the `as_any`/`as_any_mut` boilerplate for an actor type.
#[macro_export]
macro_rules! impl_actor_any {
    () => {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_id_round_trip() {
        let id = ActorId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(format!("{id}"), "actor#17");
    }

    #[test]
    fn unset_is_distinct() {
        assert_ne!(ActorId::UNSET, ActorId::from_index(0));
        assert_eq!(format!("{}", ActorId::UNSET), "actor#UNSET");
    }
}
