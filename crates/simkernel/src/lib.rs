//! # simkernel — deterministic discrete-event simulation kernel
//!
//! The substrate every other crate in this workspace builds on. It provides
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`Event`] — type-erased messages exchanged between actors,
//! * [`Actor`] — the unit of simulated behaviour (a phone, a WiFi medium,
//!   the MobiStreams controller, …),
//! * [`Sim`] — the event loop: a binary heap of `(time, seq)`-ordered
//!   events dispatched to actors, plus one seeded RNG.
//!
//! Determinism contract: two runs constructed identically (same actor
//! insertion order, same seed, same scheduled events) process the exact
//! same event sequence. Ties in time are broken by a monotone sequence
//! number, and all randomness flows through the single [`rng::SimRng`].
//!
//! ```
//! use simkernel::{Sim, Actor, Ctx, EventBox, SimDuration, ActorId};
//!
//! #[derive(Debug)]
//! struct Tick(u32);
//!
//! struct Counter { seen: u32 }
//! impl Actor for Counter {
//!     fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
//!         let tick = ev.downcast::<Tick>().unwrap();
//!         self.seen += tick.0;
//!         if self.seen < 10 {
//!             ctx.send_in(SimDuration::from_millis(5), ctx.self_id(), Tick(1));
//!         }
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut sim = Sim::new(42);
//! let id = sim.add_actor(Box::new(Counter { seen: 0 }));
//! sim.schedule_in(SimDuration::ZERO, id, Tick(1));
//! sim.run();
//! assert_eq!(sim.actor::<Counter>(id).seen, 10);
//! ```

pub mod actor;
pub mod event;
pub mod pool;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use actor::{Actor, ActorId};
pub use event::{Event, MisroutedEvent};
pub use pool::{EventBox, EventPool, PoolStats};
pub use rng::SimRng;
pub use sim::{CausalityReport, Ctx, ShardBound, Sim};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceRecord};
