//! Deterministic randomness for simulations.
//!
//! A single [`SimRng`] per simulation keeps runs reproducible: identical
//! seeds and identical event orders yield identical draws. Distributions
//! beyond `rand`'s core (exponential, normal, Poisson) are implemented
//! here so the workspace stays within its vetted dependency set.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Seeded, deterministic random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// Cached second normal deviate from Box–Muller.
    spare_normal: Option<f64>,
    /// Primitive draws taken from the underlying stream so far. The
    /// causality sanitizer folds this into its per-window ledger: two
    /// runs of the same seed must consume every shard's stream at the
    /// same rate, or their schedules have already diverged.
    draws: u64,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            spare_normal: None,
            draws: 0,
        }
    }

    /// Primitive draws consumed from the stream since creation.
    /// Deterministic: a pure function of the call sequence.
    pub fn draw_count(&self) -> u64 {
        self.draws
    }

    /// Derive an independent child generator (e.g. one per experiment
    /// run) so parallel runs never share a stream.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        self.draws += 1;
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.draws += 1;
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.draws += 1;
        self.inner.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() over empty collection");
        self.draws += 1;
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw. `p` is clamped to `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.draws += 1;
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.f64()
    }

    /// Exponential deviate with the given mean (inverse-transform).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Guard the log: f64() may return exactly 0.
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard normal deviate (Box–Muller, with deviate caching).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with mean and standard deviation.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        assert!(stddev >= 0.0, "stddev must be non-negative");
        mean + stddev * self.standard_normal()
    }

    /// Poisson deviate (Knuth's product method; fine for the small means
    /// used by the passenger-arrival models).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson mean must be non-negative");
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            // Normal approximation for large means to bound loop length.
            return self.normal(mean, mean.sqrt()).round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Geometric deviate: the number of independent Bernoulli(`p`)
    /// failures before the first success, sampled by inversion from a
    /// single uniform (`floor(ln(1-U) / ln(1-p))`). Equivalent to
    /// counting `chance(p)` calls until one returns true, but O(1).
    ///
    /// Requires `0 < p <= 1`; `p >= 1` returns 0 without touching the
    /// stream.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0, "geometric requires p > 0");
        if p >= 1.0 {
            return 0;
        }
        // Guard the log: f64() may return exactly 0.
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).ln()).floor();
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Binomial deviate: successes in `n` Bernoulli(`p`) trials,
    /// sampled by geometric skips between successes (or between
    /// failures when `p > 1/2`), so the expected number of uniforms is
    /// `n·min(p, 1-p) + 1` rather than `n`. `p <= 0` and `p >= 1`
    /// never touch the stream.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        // Count the rarer outcome by skipping over runs of the common
        // one; each skip consumes exactly one uniform.
        let (q, invert) = if p <= 0.5 {
            (p, false)
        } else {
            (1.0 - p, true)
        };
        let mut rare = 0u64;
        let mut i = self.geometric(q); // trials before the first rare outcome
        while i < n {
            rare += 1;
            i += 1 + self.geometric(q);
        }
        if invert {
            n - rare
        } else {
            rare
        }
    }

    /// Pick a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.draws += 1;
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.draws += 1;
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "independent streams should rarely collide");
    }

    #[test]
    fn fork_is_deterministic_but_distinct() {
        let mut parent1 = SimRng::new(5);
        let mut parent2 = SimRng::new(5);
        let mut c1 = parent1.fork(11);
        let mut c2 = parent2.fork(11);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent1.fork(12);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_statistics() {
        let mut r = SimRng::new(99);
        let hits = (0..20_000).filter(|_| r.chance(0.3)).count() as f64;
        let p_hat = hits / 20_000.0;
        assert!((p_hat - 0.3).abs() < 0.02, "p_hat = {p_hat}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(13);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(17);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| r.normal(10.0, 3.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.5, "var = {var}");
    }

    #[test]
    fn poisson_mean() {
        let mut r = SimRng::new(23);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.poisson(4.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = SimRng::new(29);
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| r.poisson(100.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean = {mean}");
    }

    #[test]
    fn geometric_matches_bernoulli_mean() {
        let mut r = SimRng::new(41);
        let p = 0.2;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        // E[failures before first success] = (1-p)/p = 4.
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
        assert_eq!(r.geometric(1.0), 0);
    }

    #[test]
    fn binomial_moments() {
        let mut r = SimRng::new(43);
        let n_trials = 200u64;
        let p = 0.3;
        let reps = 20_000;
        let draws: Vec<u64> = (0..reps).map(|_| r.binomial(n_trials, p)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / reps as f64;
        let var = draws
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / reps as f64;
        assert!((mean - 60.0).abs() < 0.5, "mean = {mean}"); // n·p
        assert!((var - 42.0).abs() < 2.0, "var = {var}"); // n·p·(1-p)
        assert!(draws.iter().all(|&x| x <= n_trials));
    }

    #[test]
    fn binomial_high_p_uses_inverted_skips() {
        let mut r = SimRng::new(47);
        let reps = 20_000;
        let sum: u64 = (0..reps).map(|_| r.binomial(100, 0.9)).sum();
        let mean = sum as f64 / reps as f64;
        assert!((mean - 90.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn binomial_extremes_never_touch_the_stream() {
        let mut r = SimRng::new(53);
        let before = r.clone();
        assert_eq!(r.binomial(1000, 0.0), 0);
        assert_eq!(r.binomial(1000, -1.0), 0);
        assert_eq!(r.binomial(1000, 1.0), 1000);
        assert_eq!(r.binomial(1000, 2.0), 1000);
        let mut untouched = before;
        assert_eq!(r.next_u64(), untouched.next_u64(), "stream was consumed");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(31);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn draw_count_tracks_stream_consumption() {
        let mut a = SimRng::new(7);
        assert_eq!(a.draw_count(), 0);
        a.f64();
        a.range_u64(0, 10);
        a.chance(0.5);
        assert_eq!(a.draw_count(), 3);
        // Shortcut paths never touch the stream, so they never count.
        a.chance(0.0);
        a.chance(1.0);
        assert_eq!(a.binomial(100, 0.0), 0);
        assert_eq!(a.draw_count(), 3);
        // Identical call sequences consume identically.
        let mut b = SimRng::new(99);
        b.f64();
        b.range_u64(0, 10);
        b.chance(0.5);
        assert_eq!(a.draw_count(), b.draw_count());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(37);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }
}
