//! The simulation event loop.
//!
//! [`Sim`] owns the clock, the pending-event heap, the actor table, the
//! RNG and the trace. Events are totally ordered by `(time, sequence)`,
//! where the sequence number is assigned at scheduling time — so two
//! events scheduled for the same instant are delivered in the order they
//! were scheduled, and runs are bit-for-bit reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::actor::{Actor, ActorId};
use crate::event::Event;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

struct Entry {
    at: SimTime,
    seq: u64,
    to: ActorId,
    ev: Box<dyn Event>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
    // first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Shared mutable simulation internals handed to actors via [`Ctx`].
struct Core {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry>,
    rng: SimRng,
    trace: Trace,
    events_processed: u64,
    event_limit: u64,
}

impl Core {
    fn push(&mut self, at: SimTime, to: ActorId, ev: Box<dyn Event>) {
        debug_assert!(to != ActorId::UNSET, "event scheduled to ActorId::UNSET");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, to, ev });
    }
}

/// Per-dispatch view of the simulation handed to [`Actor::on_event`].
pub struct Ctx<'a> {
    core: &'a mut Core,
    self_id: ActorId,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The actor currently being dispatched.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Deliver `ev` to `to` at the current instant (after all events
    /// already queued for this instant — FIFO within a timestamp).
    pub fn send(&mut self, to: ActorId, ev: impl Event) {
        self.core.push(self.core.now, to, Box::new(ev));
    }

    /// Deliver an already-boxed event at the current instant.
    pub fn send_boxed(&mut self, to: ActorId, ev: Box<dyn Event>) {
        self.core.push(self.core.now, to, ev);
    }

    /// Deliver `ev` to `to` after `delay`.
    pub fn send_in(&mut self, delay: SimDuration, to: ActorId, ev: impl Event) {
        self.core.push(self.core.now + delay, to, Box::new(ev));
    }

    /// Deliver a boxed event after `delay`.
    pub fn send_boxed_in(&mut self, delay: SimDuration, to: ActorId, ev: Box<dyn Event>) {
        self.core.push(self.core.now + delay, to, ev);
    }

    /// Deliver `ev` at absolute time `at` (clamped to now if in the past).
    pub fn send_at(&mut self, at: SimTime, to: ActorId, ev: impl Event) {
        let at = at.max(self.core.now);
        self.core.push(at, to, Box::new(ev));
    }

    /// The simulation RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// Emit a trace record attributed to the current actor.
    pub fn trace(&mut self, message: impl Into<String>) {
        if self.core.trace.enabled() {
            let at = self.core.now;
            let actor = self.self_id;
            self.core.trace.record(at, actor, message.into());
        }
    }

    /// Bump a named counter.
    pub fn count(&mut self, key: &'static str, delta: u64) {
        self.core.trace.count(key, delta);
    }

    /// Read a named counter.
    pub fn counter(&self, key: &str) -> u64 {
        self.core.trace.counter(key)
    }
}

/// A discrete-event simulation: actor table + event heap + clock.
pub struct Sim {
    core: Core,
    actors: Vec<Option<Box<dyn Actor>>>,
}

impl Sim {
    /// Create an empty simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            core: Core {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                rng: SimRng::new(seed),
                trace: Trace::new(),
                events_processed: 0,
                event_limit: u64::MAX,
            },
            actors: Vec::new(),
        }
    }

    /// Register an actor; returns its id. Ids are assigned densely in
    /// insertion order, which is part of the determinism contract.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let id = ActorId::from_index(self.actors.len());
        self.actors.push(Some(actor));
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Abort (panic) if more than `limit` events are dispatched — a
    /// guard against runaway event loops in tests.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.core.event_limit = limit;
    }

    /// Schedule an event from outside any actor (setup code).
    pub fn schedule_at(&mut self, at: SimTime, to: ActorId, ev: impl Event) {
        let at = at.max(self.core.now);
        self.core.push(at, to, Box::new(ev));
    }

    /// Schedule `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, to: ActorId, ev: impl Event) {
        self.core.push(self.core.now + delay, to, Box::new(ev));
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.core.heap.peek().map(|e| e.at)
    }

    /// Dispatch one event. Returns `false` when the heap is empty.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.core.heap.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.core.now, "time went backwards");
        self.core.now = entry.at;
        self.core.events_processed += 1;
        assert!(
            self.core.events_processed <= self.core.event_limit,
            "event limit exceeded ({} events): runaway event loop?",
            self.core.event_limit
        );
        let ix = entry.to.index();
        let mut actor = self
            .actors
            .get_mut(ix)
            .unwrap_or_else(|| panic!("event for unknown {:?}", entry.to))
            .take()
            .unwrap_or_else(|| panic!("re-entrant dispatch to {:?}", entry.to));
        {
            let mut ctx = Ctx {
                core: &mut self.core,
                self_id: entry.to,
            };
            actor.on_event(entry.ev, &mut ctx);
        }
        self.actors[ix] = Some(actor);
        true
    }

    /// Run until the event heap is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Process every event with timestamp `<= until`, then advance the
    /// clock to exactly `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(next) = self.peek_next_time() {
            if next > until {
                break;
            }
            self.step();
        }
        if self.core.now < until {
            self.core.now = until;
        }
    }

    /// Run for a simulated span from the current time.
    pub fn run_for(&mut self, span: SimDuration) {
        let until = self.core.now + span;
        self.run_until(until);
    }

    /// Borrow an actor, downcast to its concrete type (post-run harvest).
    ///
    /// Panics if the id is unknown or the type does not match.
    pub fn actor<T: Actor>(&self, id: ActorId) -> &T {
        self.actors[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("{id:?} is mid-dispatch"))
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("{id:?} is not a {}", std::any::type_name::<T>()))
    }

    /// Mutable variant of [`Sim::actor`].
    pub fn actor_mut<T: Actor>(&mut self, id: ActorId) -> &mut T {
        self.actors[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("{id:?} is mid-dispatch"))
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("{id:?} is not a {}", std::any::type_name::<T>()))
    }

    /// Try to borrow an actor as `T`; `None` on type mismatch.
    pub fn try_actor<T: Actor>(&self, id: ActorId) -> Option<&T> {
        self.actors
            .get(id.index())?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// The trace/counter sink.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Mutable trace/counter sink (enable tracing, reset, …).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.core.trace
    }

    /// The simulation RNG (setup-time use, e.g. workload generation).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_actor_any;

    #[derive(Debug)]
    struct Ball {
        bounce: u32,
    }

    struct Paddle {
        peer: ActorId,
        hits: u32,
        max: u32,
        times: Vec<SimTime>,
    }

    impl Actor for Paddle {
        fn on_event(&mut self, ev: Box<dyn Event>, ctx: &mut Ctx) {
            let ball = ev.downcast::<Ball>().expect("only balls fly here");
            self.hits += 1;
            self.times.push(ctx.now());
            if ball.bounce < self.max {
                ctx.send_in(
                    SimDuration::from_millis(10),
                    self.peer,
                    Ball {
                        bounce: ball.bounce + 1,
                    },
                );
            }
        }
        impl_actor_any!();
    }

    fn ping_pong(max: u32) -> (Sim, ActorId, ActorId) {
        let mut sim = Sim::new(1);
        let a = sim.add_actor(Box::new(Paddle {
            peer: ActorId::UNSET,
            hits: 0,
            max,
            times: vec![],
        }));
        let b = sim.add_actor(Box::new(Paddle {
            peer: a,
            hits: 0,
            max,
            times: vec![],
        }));
        sim.actor_mut::<Paddle>(a).peer = b;
        sim.schedule_at(SimTime::ZERO, a, Ball { bounce: 0 });
        (sim, a, b)
    }

    #[test]
    fn ping_pong_counts_and_times() {
        let (mut sim, a, b) = ping_pong(4);
        sim.run();
        // bounce 0 -> a, 1 -> b, 2 -> a, 3 -> b, 4 -> a (max reached)
        assert_eq!(sim.actor::<Paddle>(a).hits, 3);
        assert_eq!(sim.actor::<Paddle>(b).hits, 2);
        assert_eq!(sim.now(), SimTime::from_millis(40));
        assert_eq!(
            sim.actor::<Paddle>(a).times,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(20),
                SimTime::from_millis(40)
            ]
        );
    }

    #[derive(Debug)]
    struct Tag(u32);

    #[derive(Default)]
    struct Recorder {
        seen: Vec<u32>,
    }

    impl Actor for Recorder {
        fn on_event(&mut self, ev: Box<dyn Event>, _ctx: &mut Ctx) {
            self.seen.push(ev.downcast::<Tag>().unwrap().0);
        }
        impl_actor_any!();
    }

    #[test]
    fn same_time_events_fifo() {
        let mut sim = Sim::new(0);
        let r = sim.add_actor(Box::<Recorder>::default());
        for i in 0..5 {
            sim.schedule_at(SimTime::from_secs(1), r, Tag(i));
        }
        sim.run();
        assert_eq!(sim.actor::<Recorder>(r).seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_is_inclusive_and_advances_clock() {
        let mut sim = Sim::new(0);
        let r = sim.add_actor(Box::<Recorder>::default());
        sim.schedule_at(SimTime::from_secs(1), r, Tag(1));
        sim.schedule_at(SimTime::from_secs(2), r, Tag(2));
        sim.schedule_at(SimTime::from_secs(3), r, Tag(3));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.actor::<Recorder>(r).seen, vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        // Clock advances to the target even with no events.
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.actor::<Recorder>(r).seen, vec![1, 2, 3]);
    }

    #[test]
    fn determinism_across_runs() {
        let (mut s1, a1, _) = ping_pong(20);
        let (mut s2, a2, _) = ping_pong(20);
        s1.run();
        s2.run();
        assert_eq!(s1.actor::<Paddle>(a1).times, s2.actor::<Paddle>(a2).times);
        assert_eq!(s1.events_processed(), s2.events_processed());
    }

    #[test]
    #[should_panic(expected = "event limit exceeded")]
    fn event_limit_catches_runaway() {
        struct Loopy;
        impl Actor for Loopy {
            fn on_event(&mut self, _ev: Box<dyn Event>, ctx: &mut Ctx) {
                let me = ctx.self_id();
                ctx.send(me, Tag(0));
            }
            impl_actor_any!();
        }
        let mut sim = Sim::new(0);
        let l = sim.add_actor(Box::new(Loopy));
        sim.set_event_limit(1000);
        sim.schedule_at(SimTime::ZERO, l, Tag(0));
        sim.run();
    }

    #[test]
    fn harvest_downcasts() {
        let mut sim = Sim::new(0);
        let r = sim.add_actor(Box::<Recorder>::default());
        assert!(sim.try_actor::<Recorder>(r).is_some());
        assert!(sim.try_actor::<Loud>(r).is_none());

        struct Loud;
        impl Actor for Loud {
            fn on_event(&mut self, _: Box<dyn Event>, _: &mut Ctx) {}
            impl_actor_any!();
        }
    }

    #[test]
    fn counters_via_ctx() {
        struct Counting;
        impl Actor for Counting {
            fn on_event(&mut self, _: Box<dyn Event>, ctx: &mut Ctx) {
                ctx.count("events.seen", 1);
            }
            impl_actor_any!();
        }
        let mut sim = Sim::new(0);
        let c = sim.add_actor(Box::new(Counting));
        sim.schedule_at(SimTime::ZERO, c, Tag(0));
        sim.schedule_at(SimTime::ZERO, c, Tag(1));
        sim.run();
        assert_eq!(sim.trace().counter("events.seen"), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::impl_actor_any;
    use proptest::prelude::*;

    #[derive(Debug, Clone, Copy)]
    struct Stamp(u64);

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u64)>,
    }

    impl Actor for Recorder {
        fn on_event(&mut self, ev: Box<dyn Event>, ctx: &mut Ctx) {
            let s = ev.downcast::<Stamp>().unwrap();
            self.seen.push((ctx.now(), s.0));
        }
        impl_actor_any!();
    }

    proptest! {
        /// Events are delivered in nondecreasing time order, and events
        /// scheduled for the same instant keep their scheduling order.
        #[test]
        fn prop_dispatch_order(times in prop::collection::vec(0u64..50, 1..60)) {
            let mut sim = Sim::new(0);
            let r = sim.add_actor(Box::<Recorder>::default());
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_millis(t), r, Stamp(i as u64));
            }
            sim.run();
            let seen = &sim.actor::<Recorder>(r).seen;
            prop_assert_eq!(seen.len(), times.len());
            for w in seen.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time monotone");
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "FIFO within an instant");
                }
            }
            // Every event arrived at its scheduled time.
            for &(at, ix) in seen {
                prop_assert_eq!(at, SimTime::from_millis(times[ix as usize]));
            }
        }
    }
}
