//! The simulation event loop.
//!
//! [`Sim`] owns the clock, the pending-event heaps, the actor table, the
//! RNG streams and the trace. Events are totally ordered by
//! `(time, sequence)`, where the sequence number is assigned at
//! scheduling time — so two events scheduled for the same instant are
//! delivered in the order they were scheduled, and runs are bit-for-bit
//! reproducible.
//!
//! # Sharded (parallel) mode
//!
//! A fresh `Sim` runs everything on one core, exactly as before. Once
//! the topology is known, [`Sim::enable_sharding`] partitions the actors
//! into a *global* shard 0 plus independent shards `1..n`, each with its
//! own event heap, clock, forked RNG stream and trace. The contract the
//! caller must uphold: **actors in shard `i > 0` never send to actors in
//! shard `j > 0, j ≠ i`**, and every event chain from a shard-`i` send
//! back into any non-global shard passes through shard 0 with a total
//! delay of at least the configured *lookahead*.
//!
//! Under that contract the barrier loop in [`Sim::run_until`] is a
//! classical conservative parallel DES: shard 0 runs alone while it
//! holds the earliest event; otherwise all other shards run concurrently
//! inside per-shard windows no in-flight or future message can land
//! inside. Cross-shard sends are buffered in per-core outboxes and
//! merged at the barrier with a stable `(time, source shard, source
//! sequence)` tie-break, and every shard's RNG stream is forked
//! deterministically — so the result is **bit-for-bit identical
//! regardless of worker thread count**, and the thread count only
//! decides how the per-window work is scheduled onto OS threads.
//!
//! Three hot-path optimisations preserve that schedule exactly:
//!
//! * **Per-destination lookahead** ([`Sim::set_shard_bounds`]): instead
//!   of one global lookahead, each shard `d` carries a [`ShardBound`] —
//!   `self_bound` (minimum delay of any chain leaving `d` through
//!   shard 0 and coming back) and `cross_bound` (minimum delay of any
//!   chain from *another* region into `d`). Shard `d`'s window runs to
//!   `min(t_global, t_other(d) + cross_bound(d))`, dynamically capped
//!   at its own earliest parked cross-shard send plus `self_bound(d)` —
//!   so independent regions no longer synchronise on every cellular
//!   hop, and a region doing pure intra-region work runs unbounded
//!   until it actually talks to the core.
//! * **Warm workers**: region windows run on a persistent worker pool
//!   (parked on a condvar between barriers) instead of re-spawning a
//!   `std::thread::scope` per window.
//! * **Pooled events** ([`crate::pool`]): intra-shard sends recycle
//!   generation-checked slab slots instead of heap-boxing every send;
//!   cross-shard sends are flattened to plain boxes so pool traffic
//!   never crosses shards (which would make free-list state depend on
//!   thread interleaving).
//!
//! # Causality sanitizer
//!
//! The sharding contract is the caller's promise, and a silently broken
//! promise surfaces as a wrong digest hours later. The **causality
//! sanitizer** ([`Sim::enable_sanitizer`], on by default in debug
//! builds) turns violations into immediate, diagnosable panics at the
//! barrier: direct region-to-region sends, deliveries below a shard's
//! safe horizon, and non-monotone merge keys are all caught with the
//! offending event's type, actors and times in the message. It also
//! folds every shard's RNG draw count and event count into a rolling
//! per-window ledger ([`Sim::causality_report`]) so two runs of the
//! same seed can be checked for identical per-window stream
//! consumption — the earliest observable symptom of a schedule
//! divergence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex};

use crate::actor::{Actor, ActorId};
use crate::event::Event;
use crate::pool::{EventBox, EventPool, PoolStats};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

struct Entry {
    at: SimTime,
    seq: u64,
    to: ActorId,
    ev: EventBox,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
    // first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A cross-shard send, parked until the next barrier merge. The event
/// is always plain-backed (never pooled): `Core::push` flattens pooled
/// payloads before they enter an outbox, so slot recycling stays a
/// per-shard affair and is thread-count deterministic.
struct OutEntry {
    dest: u16,
    at: SimTime,
    /// Sender-side sequence number: together with the source shard id it
    /// gives merges a stable, thread-count-independent tie-break.
    src_seq: u64,
    to: ActorId,
    ev: EventBox,
}

/// One shard's mutable simulation internals, handed to actors via
/// [`Ctx`]. An unsharded [`Sim`] is exactly one `Core`.
struct Core {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry>,
    rng: SimRng,
    trace: Trace,
    events_processed: u64,
    event_limit: u64,
    /// Which shard this core is (0 until sharding is enabled).
    my_shard: u16,
    /// Global actor → owning shard map; empty until sharding is
    /// enabled, which routes everything locally.
    shard_of: Arc<[u16]>,
    /// Sends addressed to other shards, merged at the next barrier.
    outbox: Vec<OutEntry>,
    /// Earliest arrival time currently parked in `outbox` (`None` when
    /// empty). Windows may not run past it plus the relevant response
    /// bound: a parked send can provoke a reply back into this shard
    /// after as little as that bound (zero for shard 0's solo window),
    /// so advancing further would put the reply below the shard's
    /// clock (see `run_barrier`).
    outbox_min: Option<SimTime>,
    /// This shard's slab pool for intra-shard event allocations.
    pool: EventPool,
}

impl Core {
    /// Route an event, choosing its allocation by destination: pooled
    /// for the intra-shard hot path, plain heap box for cross-shard
    /// sends (pooled slots must never migrate between shards).
    fn push_typed<E: Event>(&mut self, at: SimTime, to: ActorId, ev: E) {
        let dest = self
            .shard_of
            .get(to.index())
            .copied()
            .unwrap_or(self.my_shard);
        let ev = if dest == self.my_shard {
            self.pool.make(ev)
        } else {
            EventBox::new(ev)
        };
        self.push_routed(at, to, dest, ev);
    }

    /// Route an already-boxed event (flattening pooled payloads that
    /// are about to cross a shard boundary).
    fn push(&mut self, at: SimTime, to: ActorId, ev: EventBox) {
        let dest = self
            .shard_of
            .get(to.index())
            .copied()
            .unwrap_or(self.my_shard);
        let ev = if dest == self.my_shard {
            ev
        } else {
            ev.into_plain()
        };
        self.push_routed(at, to, dest, ev);
    }

    fn push_routed(&mut self, at: SimTime, to: ActorId, dest: u16, ev: EventBox) {
        debug_assert!(to != ActorId::UNSET, "event scheduled to ActorId::UNSET");
        let seq = self.seq;
        self.seq += 1;
        if dest == self.my_shard {
            self.heap.push(Entry { at, seq, to, ev });
        } else {
            self.outbox_min = Some(self.outbox_min.map_or(at, |m| m.min(at)));
            self.outbox.push(OutEntry {
                dest,
                at,
                src_seq: seq,
                to,
                ev,
            });
        }
    }

    /// A cheap placeholder with this core's identity but no state, used
    /// to move the real core into a worker slot for one window.
    fn hollow(&self) -> Core {
        Core {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            rng: SimRng::new(0),
            trace: Trace::new(),
            events_processed: 0,
            event_limit: u64::MAX,
            my_shard: self.my_shard,
            shard_of: Arc::clone(&self.shard_of),
            outbox: Vec::new(),
            outbox_min: None,
            pool: self.pool.clone(),
        }
    }
}

/// Per-dispatch view of the simulation handed to [`Actor::on_event`].
pub struct Ctx<'a> {
    core: &'a mut Core,
    self_id: ActorId,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The actor currently being dispatched.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Deliver `ev` to `to` at the current instant (after all events
    /// already queued for this instant — FIFO within a timestamp).
    pub fn send(&mut self, to: ActorId, ev: impl Event) {
        self.core.push_typed(self.core.now, to, ev);
    }

    /// Deliver an already-boxed event ([`EventBox`] or `Box<dyn Event>`)
    /// at the current instant.
    pub fn send_boxed(&mut self, to: ActorId, ev: impl Into<EventBox>) {
        self.core.push(self.core.now, to, ev.into());
    }

    /// Deliver `ev` to `to` after `delay`.
    pub fn send_in(&mut self, delay: SimDuration, to: ActorId, ev: impl Event) {
        self.core.push_typed(self.core.now + delay, to, ev);
    }

    /// Deliver a boxed event after `delay`.
    pub fn send_boxed_in(&mut self, delay: SimDuration, to: ActorId, ev: impl Into<EventBox>) {
        self.core.push(self.core.now + delay, to, ev.into());
    }

    /// Deliver `ev` at absolute time `at` (clamped to now if in the past).
    pub fn send_at(&mut self, at: SimTime, to: ActorId, ev: impl Event) {
        let at = at.max(self.core.now);
        self.core.push_typed(at, to, ev);
    }

    /// The simulation RNG (this shard's stream).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// Emit a trace record attributed to the current actor.
    pub fn trace(&mut self, message: impl Into<String>) {
        if self.core.trace.enabled() {
            let at = self.core.now;
            let actor = self.self_id;
            self.core.trace.record(at, actor, message.into());
        }
    }

    /// Bump a named counter (kept per shard; [`Sim::trace`] reads
    /// shard 0's).
    pub fn count(&mut self, key: &'static str, delta: u64) {
        self.core.trace.count(key, delta);
    }

    /// Read a named counter.
    pub fn counter(&self, key: &str) -> u64 {
        self.core.trace.counter(key)
    }
}

/// Rolling state of the runtime causality sanitizer (see the module
/// docs and [`Sim::enable_sanitizer`]).
struct Sanitizer {
    /// Barrier windows folded into the ledger so far.
    windows: u64,
    /// FNV-1a over `(window, shard, rng draws, events processed)`
    /// tuples, one per shard per barrier window.
    ledger: u64,
    /// Sharding-contract violations observed at merge time. Debug
    /// builds panic at the first one; release builds record and keep
    /// going so a long scenario run can finish and *report* the count
    /// (CI gates on it being zero).
    violations: u64,
}

impl Sanitizer {
    fn new() -> Self {
        Sanitizer {
            windows: 0,
            ledger: 0xcbf2_9ce4_8422_2325,
            violations: 0,
        }
    }

    fn fold(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.ledger ^= b as u64;
            self.ledger = self.ledger.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Snapshot of the causality sanitizer's ledger, for cross-run
/// comparison: two runs of the same seed and topology must produce
/// identical reports, or their per-window RNG/event schedules diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalityReport {
    /// Barrier windows observed.
    pub windows: u64,
    /// Rolling digest of per-window, per-shard `(rng draws, events)`.
    pub ledger: u64,
    /// Sharding-contract violations recorded (always 0 in debug
    /// builds, which panic at the first violation instead). Nonzero
    /// means the run's results cannot be trusted; CI exits nonzero.
    pub violations: u64,
    /// Event-pool allocations served from recycled slots, summed over
    /// shards. A pure function of the schedule (pooled slots never
    /// cross shards), so it must match across thread counts.
    pub pool_recycled: u64,
    /// Event-pool generation mismatches (double free / aliased live
    /// slot). Any nonzero value is a kernel memory-safety bug; the
    /// stress suite asserts zero.
    pub pool_aliasing: u64,
}

/// Per-shard conservative delay bounds for the barrier loop (see the
/// module docs). The defaults set by [`Sim::enable_sharding`] use the
/// single global lookahead for both; [`Sim::set_shard_bounds`] widens
/// them per destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBound {
    /// Minimum total delay of any event chain that leaves this shard,
    /// passes through shard 0, and re-enters this same shard.
    pub self_bound: SimDuration,
    /// Minimum total delay of any event chain from a send in *another*
    /// non-global shard to a delivery into this shard.
    pub cross_bound: SimDuration,
}

/// A discrete-event simulation: actor table + event heap(s) + clock(s).
pub struct Sim {
    cores: Vec<Core>,
    /// Actor storage, partitioned by shard. Before sharding everything
    /// lives in `shard_actors[0]`.
    shard_actors: Vec<Vec<Option<Box<dyn Actor>>>>,
    /// Global actor index → slot within its shard's actor vec.
    local_ix: Vec<u32>,
    /// Global actor index → owning shard (empty until sharded).
    shard_of: Arc<[u16]>,
    /// Worker threads for the parallel window phase.
    threads: usize,
    /// Minimum cross-boundary delay the topology guarantees.
    lookahead: SimDuration,
    /// Per-shard window bounds (index = shard; `[0]` unused). Uniform
    /// (`lookahead` everywhere) until [`Sim::set_shard_bounds`].
    bounds: Vec<ShardBound>,
    /// Widest window bound ever granted to each shard (index = shard).
    /// Maintained while the sanitizer is on; merged deliveries into a
    /// region below its horizon mean a configured bound overstated the
    /// real minimum delay — caught even when the delivery happens to
    /// land above the shard's current clock.
    horizons: Vec<SimTime>,
    /// Persistent worker pool for region windows (threads > 1 only).
    workers: Option<WorkerPool>,
    /// Runtime causality checks; `Some` = enabled (default in debug
    /// builds), `None` = disabled.
    sanitizer: Option<Sanitizer>,
}

impl Sim {
    /// Create an empty simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            cores: vec![Core {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                rng: SimRng::new(seed),
                trace: Trace::new(),
                events_processed: 0,
                event_limit: u64::MAX,
                my_shard: 0,
                shard_of: Arc::from([]),
                outbox: Vec::new(),
                outbox_min: None,
                pool: EventPool::new(),
            }],
            shard_actors: vec![Vec::new()],
            local_ix: Vec::new(),
            shard_of: Arc::from([]),
            threads: 1,
            lookahead: SimDuration::ZERO,
            bounds: Vec::new(),
            horizons: Vec::new(),
            workers: None,
            sanitizer: if cfg!(debug_assertions) {
                Some(Sanitizer::new())
            } else {
                None
            },
        }
    }

    /// Turn on the runtime causality sanitizer (already on by default
    /// in debug builds). Every cross-shard delivery is checked against
    /// the destination shard's safe horizon, barrier merge keys must be
    /// strictly increasing, direct region-to-region sends panic with
    /// the offending event named, and per-shard RNG draw counts are
    /// folded into a per-window ledger ([`Sim::causality_report`]).
    /// Adds no events and no RNG draws, so the simulated schedule — and
    /// every report digest — is identical with the sanitizer on or off.
    pub fn enable_sanitizer(&mut self) {
        if self.sanitizer.is_none() {
            self.sanitizer = Some(Sanitizer::new());
        }
    }

    /// Turn the causality sanitizer off (e.g. for release-mode
    /// benchmarking of the bare kernel). Discards the ledger.
    pub fn disable_sanitizer(&mut self) {
        self.sanitizer = None;
    }

    /// Whether the causality sanitizer is active.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// The sanitizer's rolling window/ledger snapshot, `None` when the
    /// sanitizer is disabled. Two runs of the same seed and topology
    /// must agree on this report — compare it across runs (or across
    /// thread counts) to catch schedule divergence at the first window
    /// where per-shard RNG or event consumption differs.
    pub fn causality_report(&self) -> Option<CausalityReport> {
        self.sanitizer.as_ref().map(|s| {
            let pool = self.pool_stats();
            CausalityReport {
                windows: s.windows,
                ledger: s.ledger,
                violations: s.violations,
                pool_recycled: pool.recycled,
                pool_aliasing: pool.aliasing,
            }
        })
    }

    /// Event-pool counters summed over every shard's pool. Pooled slots
    /// never cross shards, so each component is a pure function of the
    /// schedule and must be identical across thread counts.
    pub fn pool_stats(&self) -> PoolStats {
        self.cores
            .iter()
            .fold(PoolStats::default(), |acc, c| acc.merge(c.pool.stats()))
    }

    /// Register an actor; returns its id. Ids are assigned densely in
    /// insertion order, which is part of the determinism contract.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        assert_eq!(
            self.cores.len(),
            1,
            "actors must be registered before enable_sharding"
        );
        let id = ActorId::from_index(self.local_ix.len());
        self.local_ix.push(self.shard_actors[0].len() as u32);
        self.shard_actors[0].push(Some(actor));
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.local_ix.len()
    }

    /// Partition the simulation into a global shard 0 plus independent
    /// shards that may run on worker threads.
    ///
    /// `shard_of[i]` names the owning shard of actor `i`. The caller
    /// guarantees (a) non-global shards never message each other
    /// directly, and (b) any event chain from a non-global shard back
    /// into a non-global shard accumulates at least `lookahead` of
    /// delay while passing through shard 0. Violations are caught at
    /// merge time ("cross-shard message violates lookahead").
    ///
    /// The schedule this produces is a pure function of the seed and
    /// the event graph: `threads` only changes how window work is
    /// mapped onto OS threads, never the result.
    pub fn enable_sharding(&mut self, shard_of: Vec<u16>, lookahead: SimDuration, threads: usize) {
        assert_eq!(self.cores.len(), 1, "sharding already enabled");
        assert_eq!(shard_of.len(), self.local_ix.len(), "one shard per actor");
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative sharding needs lookahead > 0"
        );
        let n_shards = shard_of.iter().copied().max().map_or(1, |m| m as usize + 1);
        let shard_of: Arc<[u16]> = shard_of.into();
        self.shard_of = Arc::clone(&shard_of);
        self.cores[0].shard_of = Arc::clone(&shard_of);

        // Drain already-scheduled events in their global (time, seq)
        // order so per-shard FIFO order is preserved on re-routing.
        let mut pending: Vec<Entry> = std::mem::take(&mut self.cores[0].heap).into_vec();
        pending.sort_by_key(|a| (a.at, a.seq));

        for s in 1..n_shards {
            // Deterministic per-shard RNG streams, forked from the root
            // stream in shard order.
            let rng = self.cores[0].rng.fork(s as u64);
            let now = self.cores[0].now;
            let event_limit = self.cores[0].event_limit;
            self.cores.push(Core {
                now,
                seq: 0,
                heap: BinaryHeap::new(),
                rng,
                trace: Trace::new(),
                events_processed: 0,
                event_limit,
                my_shard: s as u16,
                shard_of: Arc::clone(&shard_of),
                outbox: Vec::new(),
                outbox_min: None,
                pool: EventPool::new(),
            });
        }

        // Re-partition the actor table, keeping global-id order within
        // each shard.
        let flat = std::mem::take(&mut self.shard_actors[0]);
        self.shard_actors = (0..n_shards).map(|_| Vec::new()).collect();
        self.local_ix.clear();
        for (g, a) in flat.into_iter().enumerate() {
            let s = shard_of[g] as usize;
            self.local_ix.push(self.shard_actors[s].len() as u32);
            self.shard_actors[s].push(a);
        }

        // Hand each pending event to its owner, flattening pooled
        // payloads that leave shard 0 (they were allocated from its
        // pool back when everything was local).
        for e in pending {
            let d = shard_of[e.to.index()] as usize;
            let ev = if d == 0 { e.ev } else { e.ev.into_plain() };
            let core = &mut self.cores[d];
            let seq = core.seq;
            core.seq += 1;
            core.heap.push(Entry {
                at: e.at,
                seq,
                to: e.to,
                ev,
            });
        }

        self.threads = threads.max(1);
        self.lookahead = lookahead;
        // Uniform bounds until `set_shard_bounds` widens them.
        self.bounds = vec![
            ShardBound {
                self_bound: lookahead,
                cross_bound: lookahead,
            };
            n_shards
        ];
        self.horizons = vec![SimTime::ZERO; n_shards];
        let workers = self.threads.min(n_shards.saturating_sub(1));
        if workers > 1 {
            self.workers = Some(WorkerPool::new(
                n_shards - 1,
                workers,
                self.local_ix.clone(),
            ));
        }
    }

    /// Replace the uniform per-shard window bounds installed by
    /// [`Sim::enable_sharding`] with per-destination ones (one
    /// [`ShardBound`] per shard; index 0 is unused). Each bound must be
    /// a true conservative minimum for its shard or the causality
    /// sanitizer (and ultimately the merge assertion) will fire.
    pub fn set_shard_bounds(&mut self, bounds: Vec<ShardBound>) {
        assert!(
            self.cores.len() > 1,
            "set_shard_bounds requires enable_sharding first"
        );
        assert_eq!(bounds.len(), self.cores.len(), "one ShardBound per shard");
        for (i, b) in bounds.iter().enumerate().skip(1) {
            assert!(
                b.self_bound > SimDuration::ZERO && b.cross_bound > SimDuration::ZERO,
                "shard {i}: conservative bounds must be > 0"
            );
        }
        self.bounds = bounds;
    }

    /// Worker threads used for the parallel window phase (1 until
    /// [`Sim::enable_sharding`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of shards (1 until [`Sim::enable_sharding`]).
    pub fn shard_count(&self) -> usize {
        self.cores.len()
    }

    /// Current simulated time (shard 0's clock; all clocks agree after
    /// `run_until`).
    pub fn now(&self) -> SimTime {
        self.cores[0].now
    }

    /// Total events dispatched so far, across all shards.
    pub fn events_processed(&self) -> u64 {
        self.cores.iter().map(|c| c.events_processed).sum()
    }

    /// Abort (panic) if more than `limit` events are dispatched on any
    /// one shard — a guard against runaway event loops in tests.
    pub fn set_event_limit(&mut self, limit: u64) {
        for c in &mut self.cores {
            c.event_limit = limit;
        }
    }

    fn owner_of(&self, id: ActorId) -> usize {
        self.shard_of.get(id.index()).copied().unwrap_or(0) as usize
    }

    /// Schedule an event from outside any actor (setup code).
    pub fn schedule_at(&mut self, at: SimTime, to: ActorId, ev: impl Event) {
        let core = &mut self.cores[self.shard_of.get(to.index()).copied().unwrap_or(0) as usize];
        let at = at.max(core.now);
        core.push(at, to, EventBox::new(ev));
    }

    /// Schedule `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, to: ActorId, ev: impl Event) {
        let core = &mut self.cores[self.shard_of.get(to.index()).copied().unwrap_or(0) as usize];
        let at = core.now + delay;
        core.push(at, to, EventBox::new(ev));
    }

    /// Timestamp of the next pending event anywhere, if any.
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.cores
            .iter()
            .flat_map(|c| {
                c.heap
                    .peek()
                    .map(|e| e.at)
                    .into_iter()
                    .chain(c.outbox.iter().map(|o| o.at))
            })
            .min()
    }

    /// Dispatch one event. Returns `false` when the heap is empty.
    /// Only meaningful on an unsharded sim (single-step debugging).
    pub fn step(&mut self) -> bool {
        assert_eq!(self.cores.len(), 1, "step() requires the unsharded sim");
        let core = &mut self.cores[0];
        let Some(head) = core.heap.peek() else {
            return false;
        };
        let bound = head.at;
        Self::run_window(
            core,
            &mut self.shard_actors[0],
            &self.local_ix,
            None,
            Some(bound),
            Some(1),
            None,
        );
        true
    }

    /// Pop-and-dispatch `core`'s events while `at < strict_before` (if
    /// set) and `at <= inclusive_until` (if set), up to `max_events`.
    ///
    /// With `outbox_cap: Some(offset)`, the window also ends before any
    /// event later than the earliest cross-shard arrival this very
    /// window has parked (`Core::outbox_min`, re-checked after every
    /// dispatch) plus `offset`. The global shard's solo window passes
    /// `offset = 0`: its own sends can wake a region *earlier* than the
    /// region's pending heap suggested, and the woken region may reply
    /// into shard 0 with zero delay — so shard 0 must not advance past
    /// any time at which such a reply could still arrive. Region
    /// windows pass their `ShardBound::self_bound`: a parked send can
    /// provoke a reply back into this shard no sooner than that bound
    /// after it leaves, which lets a region with no parked sends run
    /// its whole window regardless of how wide it is.
    fn run_window(
        core: &mut Core,
        actors: &mut [Option<Box<dyn Actor>>],
        local_ix: &[u32],
        strict_before: Option<SimTime>,
        inclusive_until: Option<SimTime>,
        max_events: Option<u64>,
        outbox_cap: Option<SimDuration>,
    ) {
        let mut budget = max_events.unwrap_or(u64::MAX);
        while budget > 0 {
            let Some(head) = core.heap.peek() else {
                break;
            };
            let at = head.at;
            if let Some(w) = strict_before {
                if at >= w {
                    break;
                }
            }
            if let Some(u) = inclusive_until {
                if at > u {
                    break;
                }
            }
            if let Some(offset) = outbox_cap {
                if let Some(m) = core.outbox_min {
                    // `at == m + offset` stays safe: a reply provoked
                    // by the parked send arrives at `>= m + offset`,
                    // never below this event's time.
                    if at > m + offset {
                        break;
                    }
                }
            }
            let Some(entry) = core.heap.pop() else {
                break;
            };
            debug_assert!(entry.at >= core.now, "time went backwards");
            core.now = entry.at;
            core.events_processed += 1;
            assert!(
                core.events_processed <= core.event_limit,
                "event limit exceeded ({} events): runaway event loop?",
                core.event_limit
            );
            let ix = local_ix[entry.to.index()] as usize;
            let mut actor = actors
                .get_mut(ix)
                // simlint::allow(P001): kernel-integrity invariant — an event addressed past the actor table means the shard map is corrupt; fail fast
                .unwrap_or_else(|| panic!("event for unknown {:?}", entry.to))
                .take()
                // simlint::allow(P001): the slot is always restored after dispatch; a vacant slot here is kernel corruption, not an input error
                .unwrap_or_else(|| panic!("re-entrant dispatch to {:?}", entry.to));
            {
                let mut ctx = Ctx {
                    core,
                    self_id: entry.to,
                };
                actor.on_event(entry.ev, &mut ctx);
            }
            actors[ix] = Some(actor);
            budget -= 1;
        }
    }

    /// Move every parked cross-shard send into its destination heap.
    /// Arrival order is the stable `(time, source shard, source seq)`
    /// sort, independent of which worker thread ran which shard.
    fn merge_outboxes(&mut self) {
        let n = self.cores.len();
        let sanitize = self.sanitizer.is_some();
        let lookahead = self.lookahead;
        // Violations are tallied locally (the sanitizer can't be
        // borrowed while the cores are) and folded in at the end. Debug
        // builds panic at the first one; release builds record so the
        // run completes and the report carries the count.
        let mut violations = 0u64;
        let mut inbound: Vec<Vec<OutEntry>> = (0..n).map(|_| Vec::new()).collect();
        for (src, core) in self.cores.iter_mut().enumerate() {
            core.outbox_min = None;
            for mut e in core.outbox.drain(..) {
                let d = e.dest as usize;
                if sanitize && src > 0 && d > 0 && d != src {
                    if cfg!(debug_assertions) {
                        // simlint::allow(P001): causality sanitizer — the sharding contract forbids region shards messaging each other directly
                        panic!(
                            "causality sanitizer: direct region-to-region send \
                             shard {src} -> shard {d} ({} for {:?} at {:?}); regions \
                             may only communicate through the global shard 0",
                            (*e.ev).type_name(),
                            e.to,
                            e.at,
                        );
                    }
                    violations += 1;
                }
                // Reuse `dest` to carry the source shard through the
                // sort; the vec index already names the destination.
                e.dest = src as u16;
                inbound[d].push(e);
            }
        }
        for (d, mut entries) in inbound.into_iter().enumerate() {
            entries.sort_by_key(|a| (a.at, a.dest, a.src_seq));
            if sanitize {
                for w in entries.windows(2) {
                    let a = (w[0].at, w[0].dest, w[0].src_seq);
                    let b = (w[1].at, w[1].dest, w[1].src_seq);
                    if a >= b {
                        if cfg!(debug_assertions) {
                            // simlint::allow(P001): causality sanitizer — ambiguous merge keys mean the deterministic merge order is broken
                            panic!(
                                "causality sanitizer: merge keys into shard {d} are not \
                                 strictly increasing ({a:?} then {b:?}): duplicate \
                                 (source shard, source seq) pairs make the merge order \
                                 ambiguous"
                            );
                        }
                        violations += 1;
                    }
                }
            }
            let core = &mut self.cores[d];
            for e in entries {
                if sanitize && d > 0 {
                    if let Some(&h) = self.horizons.get(d) {
                        if e.at < h {
                            if cfg!(debug_assertions) {
                                // simlint::allow(P001): causality sanitizer — a delivery below the widest window ever granted means a configured ShardBound overstated the real minimum delay
                                panic!(
                                    "causality sanitizer: cross-shard message into shard {d} \
                                     is below its widened horizon: {} from shard {} for {:?} \
                                     at {:?}, but windows up to {h:?} were already granted — \
                                     a configured ShardBound exceeds the actual minimum \
                                     cross-shard delay of this event chain",
                                    (*e.ev).type_name(),
                                    e.dest,
                                    e.to,
                                    e.at,
                                );
                            }
                            violations += 1;
                        }
                    }
                }
                assert!(
                    e.at >= core.now,
                    "cross-shard message into shard {d} is below the shard's \
                     safe horizon: {} from shard {} for {:?} at {:?}, but the \
                     shard already ran to {:?} — the configured lookahead \
                     ({lookahead:?}) exceeds the actual minimum cross-shard \
                     delay of this event chain",
                    (*e.ev).type_name(),
                    e.dest,
                    e.to,
                    e.at,
                    core.now,
                );
                let seq = core.seq;
                core.seq += 1;
                core.heap.push(Entry {
                    at: e.at,
                    seq,
                    to: e.to,
                    ev: e.ev,
                });
            }
        }
        if violations > 0 {
            if let Some(s) = &mut self.sanitizer {
                s.violations += violations;
            }
        }
    }

    /// Run every non-global shard's window, each bounded by its own
    /// [`ShardBound`] (∩ `<= until`), on the warm worker pool when one
    /// exists.
    ///
    /// Shard `d`'s static window is `min(t_g, t_other(d) +
    /// cross_bound(d))` where `t_other(d)` is the earliest pending
    /// event of any *other* region: resident global events all sit at
    /// `>= t_g`, and any chain seeded by another region's window starts
    /// at its head and accumulates at least `cross_bound(d)` before it
    /// can land in `d`. Chains seeded by `d`'s *own* sends are handled
    /// dynamically by the outbox cap (`self_bound(d)` past the earliest
    /// parked send), so a region doing pure intra-region work runs
    /// unbounded until it actually talks to the core. Progress is
    /// guaranteed: outboxes are empty at window start (the barrier
    /// merge drained them), so the earliest region's first event always
    /// dispatches.
    fn run_region_windows(&mut self, t_g: Option<SimTime>, until: Option<SimTime>) {
        let n = self.cores.len() - 1;
        // Earliest pending event per region, plus the min / second-min
        // needed to form each shard's "earliest OTHER region" time.
        let mut min1: Option<(SimTime, usize)> = None;
        let mut min2: Option<SimTime> = None;
        for (i, c) in self.cores[1..].iter().enumerate() {
            let Some(t) = c.heap.peek().map(|e| e.at) else {
                continue;
            };
            match min1 {
                None => min1 = Some((t, i)),
                Some((m, _)) if t < m => {
                    min2 = Some(m);
                    min1 = Some((t, i));
                }
                Some(_) => min2 = Some(min2.map_or(t, |m2| m2.min(t))),
            }
        }
        let plans: Vec<(Option<SimTime>, Option<SimDuration>)> = (0..n)
            .map(|i| {
                let other = match min1 {
                    Some((m, am)) if am != i => Some(m),
                    _ => min2,
                };
                let cross = other.map(|t| t + self.bounds[i + 1].cross_bound);
                let w = match (t_g, cross) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                (w, Some(self.bounds[i + 1].self_bound))
            })
            .collect();

        let threads = self.threads.min(n).max(1);
        match &self.workers {
            Some(pool) if threads > 1 => {
                pool.run(
                    &mut self.cores[1..],
                    &mut self.shard_actors[1..],
                    &plans,
                    until,
                );
            }
            _ => {
                for (i, (core, actors)) in self.cores[1..]
                    .iter_mut()
                    .zip(self.shard_actors[1..].iter_mut())
                    .enumerate()
                {
                    Self::run_window(
                        core,
                        actors,
                        &self.local_ix,
                        plans[i].0,
                        until,
                        None,
                        plans[i].1,
                    );
                }
            }
        }

        if self.sanitizer.is_some() {
            // Ratchet each shard's widest effective horizon: the window
            // really granted is the static bound clipped by `until` and
            // by the dynamic outbox cap (whose final value is visible
            // in `outbox_min` now that the window is over). All-None
            // means the shard ran to exhaustion — its heap emptied, so
            // no horizon was promised and none is recorded.
            for (i, plan) in plans.iter().enumerate().take(n) {
                let core = &self.cores[i + 1];
                let cap = core.outbox_min.map(|m| m + self.bounds[i + 1].self_bound);
                // Deliveries at exactly a cap time are legal (ties are
                // broken by merge seq), so every term — strict window,
                // inclusive until, outbox cap — yields the same check:
                // a violation is a delivery strictly below it.
                let eff = [plan.0, until, cap].into_iter().flatten().min();
                if let Some(e) = eff {
                    if e > self.horizons[i + 1] {
                        self.horizons[i + 1] = e;
                    }
                }
            }
        }
    }

    /// The conservative barrier loop (see the module docs). `None`
    /// runs to event exhaustion.
    fn run_barrier(&mut self, until: Option<SimTime>) {
        loop {
            self.merge_outboxes();
            let t_g = self.cores[0].heap.peek().map(|e| e.at);
            let t_r = self.cores[1..]
                .iter()
                .filter_map(|c| c.heap.peek().map(|e| e.at))
                .min();
            let next = match (t_g, t_r) {
                (Some(g), Some(r)) => Some(g.min(r)),
                (g, r) => g.or(r),
            };
            let Some(next) = next else { break };
            if let Some(u) = until {
                if next > u {
                    break;
                }
            }
            let global_first = match (t_g, t_r) {
                (Some(g), Some(r)) => g <= r,
                (Some(_), None) => true,
                _ => false,
            };
            match t_r {
                Some(_) if !global_first => {
                    // Every region runs a window bounded by its own
                    // ShardBound (see `run_region_windows`).
                    self.run_region_windows(t_g, until);
                }
                _ => {
                    // Shard 0 runs alone while it holds the earliest
                    // event. Anything a region's *pending* events can
                    // send it arrives at `>= t_r`, so `<= t_r` is safe
                    // — but only until shard 0's own sends wake a
                    // region earlier than `t_r`. The zero-offset
                    // outbox cap ends the window at the first such
                    // wake time, because the woken region's zero-delay
                    // reply lands right back at it.
                    let bound = match (t_r, until) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    Self::run_window(
                        &mut self.cores[0],
                        &mut self.shard_actors[0],
                        &self.local_ix,
                        None,
                        bound,
                        None,
                        Some(SimDuration::ZERO),
                    );
                }
            }
            if let Some(s) = &mut self.sanitizer {
                // Fold every shard's cumulative RNG draw count and event
                // count into the per-window ledger: two runs of the same
                // seed must agree on this at every single window, so a
                // diverging schedule is pinned to the first window where
                // stream consumption differs.
                let window = s.windows;
                s.windows += 1;
                s.fold(window);
                for (i, c) in self.cores.iter().enumerate() {
                    s.fold(i as u64);
                    s.fold(c.rng.draw_count());
                    s.fold(c.events_processed);
                }
            }
        }
        if let Some(u) = until {
            for c in &mut self.cores {
                if c.now < u {
                    c.now = u;
                }
            }
        }
    }

    /// Run until every event heap is empty.
    pub fn run(&mut self) {
        self.run_barrier(None);
    }

    /// Process every event with timestamp `<= until`, then advance all
    /// clocks to exactly `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.run_barrier(Some(until));
    }

    /// Run for a simulated span from the current time.
    pub fn run_for(&mut self, span: SimDuration) {
        let until = self.cores[0].now + span;
        self.run_until(until);
    }

    /// Borrow an actor, downcast to its concrete type (post-run harvest).
    ///
    /// Panics if the id is unknown or the type does not match; use
    /// [`Sim::try_actor`] for the fallible variant.
    pub fn actor<T: Actor>(&self, id: ActorId) -> &T {
        self.shard_actors[self.owner_of(id)][self.local_ix[id.index()] as usize]
            .as_ref()
            // simlint::allow(P001): documented harvest-time API, never on the event path; try_actor is the fallible variant
            .unwrap_or_else(|| panic!("{id:?} is mid-dispatch"))
            .as_any()
            .downcast_ref::<T>()
            // simlint::allow(P001): documented harvest-time API, never on the event path; try_actor is the fallible variant
            .unwrap_or_else(|| panic!("{id:?} is not a {}", std::any::type_name::<T>()))
    }

    /// Mutable variant of [`Sim::actor`].
    pub fn actor_mut<T: Actor>(&mut self, id: ActorId) -> &mut T {
        let shard = self.owner_of(id);
        self.shard_actors[shard][self.local_ix[id.index()] as usize]
            .as_mut()
            // simlint::allow(P001): documented harvest-time API, never on the event path; try_actor is the fallible variant
            .unwrap_or_else(|| panic!("{id:?} is mid-dispatch"))
            .as_any_mut()
            .downcast_mut::<T>()
            // simlint::allow(P001): documented harvest-time API, never on the event path; try_actor is the fallible variant
            .unwrap_or_else(|| panic!("{id:?} is not a {}", std::any::type_name::<T>()))
    }

    /// Try to borrow an actor as `T`; `None` on type mismatch.
    pub fn try_actor<T: Actor>(&self, id: ActorId) -> Option<&T> {
        let ix = id.index();
        if ix >= self.local_ix.len() {
            return None;
        }
        self.shard_actors[self.owner_of(id)]
            .get(self.local_ix[ix] as usize)?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// The trace/counter sink (shard 0's).
    pub fn trace(&self) -> &Trace {
        &self.cores[0].trace
    }

    /// Mutable trace/counter sink (enable tracing, reset, …).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.cores[0].trace
    }

    /// The simulation RNG (setup-time use, e.g. workload generation;
    /// shard 0's stream).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.cores[0].rng
    }
}

/// Lock a mutex, tolerating poison: a worker that panicked mid-window
/// already stashed its payload for `resume_unwind` on the main thread,
/// and the state it guarded is either discarded or re-panicked over.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One region shard's state, moved into a worker slot for one window.
struct ShardTask {
    core: Core,
    actors: Vec<Option<Box<dyn Actor>>>,
    strict_before: Option<SimTime>,
    until: Option<SimTime>,
    outbox_cap: Option<SimDuration>,
}

struct Gate {
    /// Bumped by the main thread to start a window round.
    epoch: u64,
    /// Workers finished with the current round.
    done: usize,
    shutdown: bool,
}

struct WorkerShared {
    gate: Mutex<Gate>,
    start_cv: Condvar,
    done_cv: Condvar,
    /// One slot per region shard (index = shard - 1). Filled by the
    /// main thread before an epoch bump, drained by it after the round.
    slots: Vec<Mutex<Option<ShardTask>>>,
    /// Global actor index → slot within its shard's actor vec (fixed
    /// after `enable_sharding`).
    local_ix: Vec<u32>,
    /// First panic caught in a worker this round; re-thrown on the main
    /// thread once every worker has parked again.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Persistent worker threads for the region-window phase. Spawned once
/// at `enable_sharding` and parked on a condvar between barriers, so a
/// window costs two notifications instead of N thread spawns.
struct WorkerPool {
    shared: Arc<WorkerShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    n_workers: usize,
}

impl WorkerPool {
    fn new(n_region_shards: usize, workers: usize, local_ix: Vec<u32>) -> WorkerPool {
        let n_workers = workers.min(n_region_shards).max(1);
        let shared = Arc::new(WorkerShared {
            gate: Mutex::new(Gate {
                epoch: 0,
                done: 0,
                shutdown: false,
            }),
            start_cv: Condvar::new(),
            done_cv: Condvar::new(),
            slots: (0..n_region_shards).map(|_| Mutex::new(None)).collect(),
            local_ix,
            panic: Mutex::new(None),
        });
        // Static shard→worker assignment: worker w owns a contiguous
        // chunk of slots, the same partition every window (results are
        // identical either way; this just keeps shard state on the
        // same thread's caches across windows).
        let chunk = n_region_shards.div_ceil(n_workers);
        let handles = (0..n_workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let range = w * chunk..((w + 1) * chunk).min(n_region_shards);
                std::thread::Builder::new()
                    .name(format!("sim-worker-{w}"))
                    .spawn(move || worker_loop(&shared, range))
                    // simlint::allow(P001): thread spawn at setup time; failing to create workers is unrecoverable
                    .expect("spawn simulation worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            n_workers,
        }
    }

    /// Run one window round: move every region shard's state into its
    /// slot, wake the workers, wait for all of them to park again, and
    /// move the state back. Panics from worker-side actor code are
    /// re-thrown here (after the barrier, so no state is lost to a
    /// mid-round unwind).
    fn run(
        &self,
        cores: &mut [Core],
        actors: &mut [Vec<Option<Box<dyn Actor>>>],
        plans: &[(Option<SimTime>, Option<SimDuration>)],
        until: Option<SimTime>,
    ) {
        for i in 0..cores.len() {
            let hollow = cores[i].hollow();
            let core = std::mem::replace(&mut cores[i], hollow);
            let acts = std::mem::take(&mut actors[i]);
            *lock(&self.shared.slots[i]) = Some(ShardTask {
                core,
                actors: acts,
                strict_before: plans[i].0,
                until,
                outbox_cap: plans[i].1,
            });
        }
        {
            let mut g = lock(&self.shared.gate);
            g.epoch += 1;
            g.done = 0;
        }
        self.shared.start_cv.notify_all();
        {
            let mut g = lock(&self.shared.gate);
            while g.done < self.n_workers {
                g = self
                    .shared
                    .done_cv
                    .wait(g)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        for i in 0..cores.len() {
            if let Some(task) = lock(&self.shared.slots[i]).take() {
                cores[i] = task.core;
                actors[i] = task.actors;
            }
        }
        if let Some(p) = lock(&self.shared.panic).take() {
            std::panic::resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock(&self.shared.gate).shutdown = true;
        self.shared.start_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &WorkerShared, range: std::ops::Range<usize>) {
    let mut seen_epoch = 0u64;
    loop {
        {
            let mut g = lock(&shared.gate);
            while g.epoch == seen_epoch && !g.shutdown {
                g = shared.start_cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            if g.shutdown {
                return;
            }
            seen_epoch = g.epoch;
        }
        for i in range.clone() {
            let mut slot = lock(&shared.slots[i]);
            if let Some(task) = slot.as_mut() {
                // Actor panics must not tear down the worker (the pool
                // is reused across windows); catch, stash the first,
                // and let the main thread re-throw after the barrier.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    Sim::run_window(
                        &mut task.core,
                        &mut task.actors,
                        &shared.local_ix,
                        task.strict_before,
                        task.until,
                        None,
                        task.outbox_cap,
                    );
                }));
                if let Err(p) = result {
                    let mut stash = lock(&shared.panic);
                    if stash.is_none() {
                        *stash = Some(p);
                    }
                }
            }
        }
        {
            let mut g = lock(&shared.gate);
            g.done += 1;
        }
        shared.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_actor_any;

    #[derive(Debug)]
    struct Ball {
        bounce: u32,
    }

    struct Paddle {
        peer: ActorId,
        hits: u32,
        max: u32,
        times: Vec<SimTime>,
    }

    impl Actor for Paddle {
        fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
            // Typed dispatch: a mis-routed event yields a MisroutedEvent
            // naming both types instead of an opaque expect message.
            let ball = ev.downcast_expected::<Ball>().unwrap();
            self.hits += 1;
            self.times.push(ctx.now());
            if ball.bounce < self.max {
                ctx.send_in(
                    SimDuration::from_millis(10),
                    self.peer,
                    Ball {
                        bounce: ball.bounce + 1,
                    },
                );
            }
        }
        impl_actor_any!();
    }

    fn ping_pong(max: u32) -> (Sim, ActorId, ActorId) {
        let mut sim = Sim::new(1);
        let a = sim.add_actor(Box::new(Paddle {
            peer: ActorId::UNSET,
            hits: 0,
            max,
            times: vec![],
        }));
        let b = sim.add_actor(Box::new(Paddle {
            peer: a,
            hits: 0,
            max,
            times: vec![],
        }));
        sim.actor_mut::<Paddle>(a).peer = b;
        sim.schedule_at(SimTime::ZERO, a, Ball { bounce: 0 });
        (sim, a, b)
    }

    #[test]
    fn ping_pong_counts_and_times() {
        let (mut sim, a, b) = ping_pong(4);
        sim.run();
        // bounce 0 -> a, 1 -> b, 2 -> a, 3 -> b, 4 -> a (max reached)
        assert_eq!(sim.actor::<Paddle>(a).hits, 3);
        assert_eq!(sim.actor::<Paddle>(b).hits, 2);
        assert_eq!(sim.now(), SimTime::from_millis(40));
        assert_eq!(
            sim.actor::<Paddle>(a).times,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(20),
                SimTime::from_millis(40)
            ]
        );
    }

    #[derive(Debug)]
    struct Tag(u32);

    #[derive(Default)]
    struct Recorder {
        seen: Vec<u32>,
    }

    impl Actor for Recorder {
        fn on_event(&mut self, ev: EventBox, _ctx: &mut Ctx) {
            self.seen.push(ev.downcast_expected::<Tag>().unwrap().0);
        }
        impl_actor_any!();
    }

    #[test]
    fn same_time_events_fifo() {
        let mut sim = Sim::new(0);
        let r = sim.add_actor(Box::<Recorder>::default());
        for i in 0..5 {
            sim.schedule_at(SimTime::from_secs(1), r, Tag(i));
        }
        sim.run();
        assert_eq!(sim.actor::<Recorder>(r).seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_is_inclusive_and_advances_clock() {
        let mut sim = Sim::new(0);
        let r = sim.add_actor(Box::<Recorder>::default());
        sim.schedule_at(SimTime::from_secs(1), r, Tag(1));
        sim.schedule_at(SimTime::from_secs(2), r, Tag(2));
        sim.schedule_at(SimTime::from_secs(3), r, Tag(3));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.actor::<Recorder>(r).seen, vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        // Clock advances to the target even with no events.
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.actor::<Recorder>(r).seen, vec![1, 2, 3]);
    }

    #[test]
    fn determinism_across_runs() {
        let (mut s1, a1, _) = ping_pong(20);
        let (mut s2, a2, _) = ping_pong(20);
        s1.run();
        s2.run();
        assert_eq!(s1.actor::<Paddle>(a1).times, s2.actor::<Paddle>(a2).times);
        assert_eq!(s1.events_processed(), s2.events_processed());
    }

    #[test]
    #[should_panic(expected = "event limit exceeded")]
    fn event_limit_catches_runaway() {
        struct Loopy;
        impl Actor for Loopy {
            fn on_event(&mut self, _ev: EventBox, ctx: &mut Ctx) {
                let me = ctx.self_id();
                ctx.send(me, Tag(0));
            }
            impl_actor_any!();
        }
        let mut sim = Sim::new(0);
        let l = sim.add_actor(Box::new(Loopy));
        sim.set_event_limit(1000);
        sim.schedule_at(SimTime::ZERO, l, Tag(0));
        sim.run();
    }

    #[test]
    fn harvest_downcasts() {
        let mut sim = Sim::new(0);
        let r = sim.add_actor(Box::<Recorder>::default());
        assert!(sim.try_actor::<Recorder>(r).is_some());
        assert!(sim.try_actor::<Loud>(r).is_none());

        struct Loud;
        impl Actor for Loud {
            fn on_event(&mut self, _: EventBox, _: &mut Ctx) {}
            impl_actor_any!();
        }
    }

    #[test]
    fn counters_via_ctx() {
        struct Counting;
        impl Actor for Counting {
            fn on_event(&mut self, _: EventBox, ctx: &mut Ctx) {
                ctx.count("events.seen", 1);
            }
            impl_actor_any!();
        }
        let mut sim = Sim::new(0);
        let c = sim.add_actor(Box::new(Counting));
        sim.schedule_at(SimTime::ZERO, c, Tag(0));
        sim.schedule_at(SimTime::ZERO, c, Tag(1));
        sim.run();
        assert_eq!(sim.trace().counter("events.seen"), 2);
    }

    // ---- sharded-kernel tests -------------------------------------

    /// A hub on shard 0 plus one echoer per region shard. The hub
    /// round-robins pings; every hop crosses the shard boundary with a
    /// delay >= the lookahead, so the barrier loop must deliver the
    /// same schedule as the sequential kernel.
    #[derive(Debug)]
    struct Ping(u32);

    struct Hub {
        peers: Vec<ActorId>,
        rounds: u32,
        replies: u32,
        log: Vec<(SimTime, u32)>,
    }

    impl Actor for Hub {
        fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
            let p = ev.downcast_expected::<Ping>().unwrap();
            self.log.push((ctx.now(), p.0));
            // Advance to the next round once every peer has replied
            // (the kickoff Ping(0) opens round 1 immediately).
            let advance = if p.0 == 0 {
                true
            } else {
                self.replies += 1;
                self.replies == self.peers.len() as u32
            };
            if advance && p.0 < self.rounds {
                self.replies = 0;
                for &peer in &self.peers {
                    ctx.send_in(SimDuration::from_millis(5), peer, Ping(p.0 + 1));
                }
            }
        }
        impl_actor_any!();
    }

    struct Echo {
        hub: ActorId,
        jitter_ms: u64,
        seen: Vec<(SimTime, u32, u64)>,
    }

    impl Actor for Echo {
        fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
            let p = ev.downcast_expected::<Ping>().unwrap();
            // Draw from this shard's RNG stream: thread-count
            // independence must hold even with randomness in play.
            let draw = ctx.rng().range_u64(0, 100);
            self.seen.push((ctx.now(), p.0, draw));
            let d = SimDuration::from_millis(self.jitter_ms + draw / 20);
            ctx.send_in(d, self.hub, Ping(p.0));
        }
        impl_actor_any!();
    }

    fn sharded_setup(regions: usize, threads: usize) -> (Sim, ActorId, Vec<ActorId>) {
        let mut sim = Sim::new(42);
        let hub = sim.add_actor(Box::new(Hub {
            peers: vec![],
            rounds: 20,
            replies: 0,
            log: vec![],
        }));
        let echoes: Vec<ActorId> = (0..regions)
            .map(|r| {
                sim.add_actor(Box::new(Echo {
                    hub,
                    jitter_ms: 5 + r as u64,
                    seen: vec![],
                }))
            })
            .collect();
        sim.actor_mut::<Hub>(hub).peers = echoes.clone();
        sim.schedule_at(SimTime::ZERO, hub, Ping(0));
        // Shard 0 = hub; shard r+1 = echo r. Every hop carries >= 5 ms.
        let mut shard_of = vec![0u16];
        shard_of.extend((0..regions).map(|r| r as u16 + 1));
        sim.enable_sharding(shard_of, SimDuration::from_millis(5), threads);
        (sim, hub, echoes)
    }

    #[test]
    fn sharded_run_crosses_boundaries() {
        let (mut sim, hub, echoes) = sharded_setup(3, 1);
        sim.run();
        let log = &sim.actor::<Hub>(hub).log;
        // Round 0 once, then 3 replies per round for rounds 1..=20.
        assert_eq!(log.len(), 1 + 3 * 20);
        for &e in &echoes {
            assert_eq!(sim.actor::<Echo>(e).seen.len(), 20);
        }
        assert_eq!(sim.events_processed(), 61 + 60);
    }

    #[test]
    fn thread_count_is_invisible_in_results() {
        let (mut s1, hub1, ech1) = sharded_setup(5, 1);
        let (mut s4, hub4, ech4) = sharded_setup(5, 4);
        s1.run();
        s4.run();
        assert_eq!(s1.actor::<Hub>(hub1).log, s4.actor::<Hub>(hub4).log);
        for (&e1, &e4) in ech1.iter().zip(&ech4) {
            assert_eq!(s1.actor::<Echo>(e1).seen, s4.actor::<Echo>(e4).seen);
        }
        assert_eq!(s1.events_processed(), s4.events_processed());
    }

    #[test]
    fn sharded_run_until_advances_all_clocks() {
        let (mut sim, _, _) = sharded_setup(2, 2);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // Harvest still works after the barrier run: every shard's
        // clock (observable via a zero-delay schedule + run) is at 5 s.
        assert!(sim.peek_next_time().is_none());
    }

    #[test]
    fn sharded_events_preserve_scheduling_fifo() {
        let mut sim = Sim::new(0);
        let r0 = sim.add_actor(Box::<Recorder>::default());
        let r1 = sim.add_actor(Box::<Recorder>::default());
        for i in 0..4 {
            sim.schedule_at(SimTime::from_secs(1), r0, Tag(i));
            sim.schedule_at(SimTime::from_secs(1), r1, Tag(i + 10));
        }
        sim.enable_sharding(vec![0, 1], SimDuration::from_millis(1), 2);
        sim.run();
        assert_eq!(sim.actor::<Recorder>(r0).seen, vec![0, 1, 2, 3]);
        assert_eq!(sim.actor::<Recorder>(r1).seen, vec![10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "lookahead > 0")]
    fn sharding_rejects_zero_lookahead() {
        let mut sim = Sim::new(0);
        sim.add_actor(Box::<Recorder>::default());
        sim.enable_sharding(vec![0], SimDuration::ZERO, 2);
    }

    // ---- causality sanitizer tests --------------------------------

    /// Self-ticks every `period` until `stop`, so its shard's clock
    /// runs ahead inside each barrier window.
    struct Ticker {
        period: SimDuration,
        stop: SimTime,
    }

    impl Actor for Ticker {
        fn on_event(&mut self, _ev: EventBox, ctx: &mut Ctx) {
            if ctx.now() < self.stop {
                let me = ctx.self_id();
                ctx.send_in(self.period, me, Tag(0));
            }
        }
        impl_actor_any!();
    }

    /// Forwards anything it receives to `dst` after `delay`.
    struct Relay {
        dst: ActorId,
        delay: SimDuration,
    }

    impl Actor for Relay {
        fn on_event(&mut self, _ev: EventBox, ctx: &mut Ctx) {
            ctx.send_in(self.delay, self.dst, Tag(1));
        }
        impl_actor_any!();
    }

    /// A relay on the global shard that forwards into a region with a
    /// delay far below the claimed lookahead, while that region's
    /// clock runs ahead inside its window: the merged delivery lands
    /// below the region's granted horizon and the sanitizer must name
    /// it (the widened-horizon check fires even when the delivery
    /// happens to sit above the region's current clock).
    #[test]
    #[should_panic(expected = "below its widened horizon")]
    fn sanitizer_catches_below_horizon_delivery() {
        let mut sim = Sim::new(0);
        // Shard 0: relay that turns a region message around in 0.5 ms —
        // far below the 5 ms lookahead the sharding call claims.
        let relay = sim.add_actor(Box::new(Relay {
            dst: ActorId::UNSET,
            delay: SimDuration::from_micros(500),
        }));
        // Shard 1: dense ticker (its clock runs ahead in each window).
        let ticker = sim.add_actor(Box::new(Ticker {
            period: SimDuration::from_micros(100),
            stop: SimTime::from_millis(50),
        }));
        // Shard 2: fires one message at the relay at t = 5 ms.
        let source = sim.add_actor(Box::new(Relay {
            dst: relay,
            delay: SimDuration::from_millis(1),
        }));
        sim.actor_mut::<Relay>(relay).dst = ticker;
        sim.schedule_at(SimTime::ZERO, ticker, Tag(0));
        sim.schedule_at(SimTime::from_millis(5), source, Tag(0));
        sim.enable_sharding(vec![0, 1, 2], SimDuration::from_millis(5), 1);
        sim.enable_sanitizer();
        sim.run_until(SimTime::from_millis(50));
    }

    /// A region actor that messages another region directly violates
    /// the sharding contract even when the timestamps happen to be
    /// safe; the sanitizer catches it at the first merge.
    #[test]
    #[should_panic(expected = "region-to-region")]
    fn sanitizer_catches_direct_region_to_region_send() {
        let mut sim = Sim::new(0);
        let _hub = sim.add_actor(Box::<Recorder>::default());
        let a = sim.add_actor(Box::new(Relay {
            dst: ActorId::UNSET,
            delay: SimDuration::from_secs(1), // plenty of delay: still illegal
        }));
        let b = sim.add_actor(Box::<Recorder>::default());
        sim.actor_mut::<Relay>(a).dst = b;
        sim.schedule_at(SimTime::from_millis(1), a, Tag(0));
        sim.enable_sharding(vec![0, 1, 2], SimDuration::from_millis(5), 1);
        sim.enable_sanitizer();
        sim.run();
    }

    /// The ledger is a pure function of the schedule: 1-thread and
    /// 4-thread runs of the same seed agree window for window, and the
    /// sanitizer adds no events or RNG draws of its own.
    #[test]
    fn sanitizer_ledger_is_thread_count_invariant() {
        let (mut s1, _, _) = sharded_setup(5, 1);
        let (mut s4, _, _) = sharded_setup(5, 4);
        s1.enable_sanitizer();
        s4.enable_sanitizer();
        s1.run();
        s4.run();
        let r1 = s1.causality_report().expect("sanitizer enabled");
        let r4 = s4.causality_report().expect("sanitizer enabled");
        assert!(r1.windows > 0, "barrier loop must fold windows");
        assert_eq!(r1, r4, "per-window RNG/event ledger diverged");
        assert_eq!(r1.violations, 0, "clean schedule must record none");

        // A structurally different schedule folds different counts.
        let (mut other, _, _) = sharded_setup(3, 1);
        other.enable_sanitizer();
        other.run();
        let ro = other.causality_report().expect("sanitizer enabled");
        assert_ne!(r1.ledger, ro.ledger, "different schedules must differ");
    }

    /// Disabling the sanitizer removes the checks and the report but
    /// cannot change the simulated schedule.
    #[test]
    fn sanitizer_toggle_never_changes_results() {
        let (mut on, hub_on, _) = sharded_setup(3, 1);
        on.enable_sanitizer();
        let (mut off, hub_off, _) = sharded_setup(3, 1);
        off.disable_sanitizer();
        on.run();
        off.run();
        assert!(on.sanitizer_enabled());
        assert!(!off.sanitizer_enabled());
        assert!(off.causality_report().is_none());
        assert_eq!(
            on.actor::<Hub>(hub_on).log,
            off.actor::<Hub>(hub_off).log,
            "sanitizer must be observation-only"
        );
        assert_eq!(on.events_processed(), off.events_processed());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::impl_actor_any;
    use proptest::prelude::*;

    #[derive(Debug, Clone, Copy)]
    struct Stamp(u64);

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u64)>,
    }

    impl Actor for Recorder {
        fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
            let s = ev.downcast_expected::<Stamp>().unwrap();
            self.seen.push((ctx.now(), s.0));
        }
        impl_actor_any!();
    }

    proptest! {
        /// Events are delivered in nondecreasing time order, and events
        /// scheduled for the same instant keep their scheduling order.
        #[test]
        fn prop_dispatch_order(times in prop::collection::vec(0u64..50, 1..60)) {
            let mut sim = Sim::new(0);
            let r = sim.add_actor(Box::<Recorder>::default());
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_millis(t), r, Stamp(i as u64));
            }
            sim.run();
            let seen = &sim.actor::<Recorder>(r).seen;
            prop_assert_eq!(seen.len(), times.len());
            for w in seen.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time monotone");
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "FIFO within an instant");
                }
            }
            // Every event arrived at its scheduled time.
            for &(at, ix) in seen {
                prop_assert_eq!(at, SimTime::from_millis(times[ix as usize]));
            }
        }
    }
}
