//! Lightweight structured tracing and counters.
//!
//! Tracing is off by default (experiments run millions of events); tests
//! and the examples enable it to show protocol walk-throughs. Counters
//! are always on — they are how experiments account for bytes saved,
//! bytes broadcast, recoveries performed, etc.

use std::collections::BTreeMap;
use std::fmt;

use crate::actor::ActorId;
use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Simulated time of the record.
    pub at: SimTime,
    /// Emitting actor.
    pub actor: ActorId,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.actor, self.message)
    }
}

/// Trace sink plus named counters.
///
/// Counters use a `BTreeMap` so dumps are deterministically ordered.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    records: Vec<TraceRecord>,
    max_records: usize,
    dropped: u64,
    counters: BTreeMap<&'static str, u64>,
}

impl Trace {
    /// A disabled trace with counters active.
    pub fn new() -> Self {
        Trace {
            enabled: false,
            records: Vec::new(),
            max_records: 100_000,
            dropped: 0,
            counters: BTreeMap::new(),
        }
    }

    /// Enable or disable record collection.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether record collection is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Cap on retained records (oldest beyond the cap are dropped).
    pub fn set_max_records(&mut self, max: usize) {
        self.max_records = max;
    }

    /// Append a record if tracing is enabled.
    pub fn record(&mut self, at: SimTime, actor: ActorId, message: String) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.max_records {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord { at, actor, message });
    }

    /// All retained records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records dropped due to the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Add `delta` to a named counter.
    pub fn count(&mut self, key: &'static str, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Read a counter (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Snapshot of all counters, deterministically ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Records whose message contains `needle` (test helper).
    pub fn find(&self, needle: &str) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.message.contains(needle))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, ActorId::from_index(0), "hello".into());
        assert!(t.records().is_empty());
    }

    #[test]
    fn enabled_trace_collects_and_finds() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.record(
            SimTime::from_secs(1),
            ActorId::from_index(2),
            "token sent".into(),
        );
        t.record(
            SimTime::from_secs(2),
            ActorId::from_index(3),
            "ckpt done".into(),
        );
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.find("token").len(), 1);
        assert!(format!("{}", t.records()[0]).contains("token sent"));
    }

    #[test]
    fn record_cap_drops() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.set_max_records(3);
        for i in 0..5 {
            t.record(SimTime::ZERO, ActorId::from_index(0), format!("r{i}"));
        }
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn counters_accumulate_deterministically() {
        let mut t = Trace::new();
        t.count("bytes.sent", 10);
        t.count("bytes.sent", 5);
        t.count("a.first", 1);
        assert_eq!(t.counter("bytes.sent"), 15);
        assert_eq!(t.counter("missing"), 0);
        let keys: Vec<_> = t.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.first", "bytes.sent"]);
    }
}
