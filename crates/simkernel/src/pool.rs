//! Generation-checked slab pool for intra-shard event allocations.
//!
//! Every send on the kernel hot path used to heap-allocate a
//! `Box<dyn Event>` and free it one dispatch later — malloc traffic
//! that dominates the per-event cost once actors themselves are cheap.
//! [`EventPool`] recycles those allocations per shard: an event small
//! enough for a size class is placed in a pooled slot (a 16-byte header
//! plus payload) and the slot returns to a free list when the event is
//! consumed or dropped. Oversized or over-aligned events fall back to a
//! plain heap box, so the pool is a pure optimisation, never a
//! capacity limit.
//!
//! [`EventBox`] is the owning handle the kernel and actors exchange: it
//! behaves like `Box<dyn Event>` (deref to `dyn Event`, by-value
//! [`EventBox::downcast`]) whether the payload is pooled or plain.
//!
//! # Safety & determinism
//!
//! Each slot header carries a **generation counter** bumped on every
//! free; the `EventBox` remembers the generation it was allocated with
//! and re-checks it before the payload is read or the slot released. A
//! mismatch means the slot was freed twice or aliased by a live event —
//! impossible through safe use of this module, counted (and panicked on
//! in debug builds) if kernel surgery ever breaks the invariant. The
//! causality sanitizer surfaces the counter as
//! `CausalityReport::pool_aliasing`, asserted zero by the stress suite.
//!
//! Determinism: a pooled event lives and dies on the shard that
//! allocated it (cross-shard sends are flattened to plain boxes before
//! they enter an outbox), so each shard's pool op sequence — and the
//! recycle/fresh counters — is a pure function of that shard's event
//! schedule, independent of worker thread count.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::fmt;
use std::mem::{align_of, size_of, ManuallyDrop};
use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Event, MisroutedEvent};

/// Payload capacities of the pooled size classes. Anything larger (or
/// aligned beyond [`MAX_ALIGN`]) is heap-boxed instead.
const CLASS_SIZES: [usize; 4] = [32, 64, 160, 384];

/// Maximum payload alignment a pooled slot guarantees.
const MAX_ALIGN: usize = 16;

/// Slot header magics: a slot is exactly one of these at all times.
const LIVE: u32 = 0xA11C_0DE5;
const FREE: u32 = 0x0DEA_D5ED;

/// Per-slot bookkeeping, placed immediately before the payload.
/// `align(16)` keeps the payload (at offset `size_of::<Header>()`)
/// aligned for every pooled type.
#[repr(C, align(16))]
struct Header {
    /// Bumped on every release; a stale `EventBox` ticket no longer
    /// matches and is diagnosed instead of corrupting a live event.
    gen: u32,
    /// [`LIVE`] or [`FREE`].
    state: u32,
}

const HEADER_SIZE: usize = size_of::<Header>();

fn class_of(size: usize, align: usize) -> Option<usize> {
    if align > MAX_ALIGN {
        return None;
    }
    CLASS_SIZES.iter().position(|&cap| size <= cap)
}

fn class_layout(class: usize) -> Layout {
    Layout::from_size_align(HEADER_SIZE + CLASS_SIZES[class], MAX_ALIGN)
        // simlint::allow(P001): const-correct by construction — sizes and alignment are compile-time constants
        .expect("pool class layout")
}

/// Pool counters, cumulative for the pool's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from a recycled slot.
    pub recycled: u64,
    /// Allocations that had to mint a fresh slot.
    pub fresh: u64,
    /// Events too large/over-aligned for any class (plain heap box).
    pub unpooled: u64,
    /// Generation/state mismatches observed — double frees or aliased
    /// live slots. Always zero through safe use; debug builds panic at
    /// the first one.
    pub aliasing: u64,
}

impl PoolStats {
    /// Component-wise sum (for aggregating per-shard pools).
    pub fn merge(self, other: PoolStats) -> PoolStats {
        PoolStats {
            recycled: self.recycled + other.recycled,
            fresh: self.fresh + other.fresh,
            unpooled: self.unpooled + other.unpooled,
            aliasing: self.aliasing + other.aliasing,
        }
    }
}

struct PoolShared {
    /// Per-class free lists of slot addresses (pointers to `Header`).
    free: [Mutex<Vec<usize>>; CLASS_SIZES.len()],
    recycled: AtomicU64,
    fresh: AtomicU64,
    unpooled: AtomicU64,
    aliasing: AtomicU64,
}

impl PoolShared {
    fn acquire(&self, class: usize) -> NonNull<Header> {
        let popped = self.free[class]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        if let Some(addr) = popped {
            let hdr = addr as *mut Header;
            // Safety: addresses on the free list are valid slots this
            // pool minted and has not deallocated (see `Drop`).
            unsafe {
                if (*hdr).state == FREE {
                    (*hdr).state = LIVE;
                    self.recycled.fetch_add(1, Ordering::Relaxed);
                    return NonNull::new_unchecked(hdr);
                }
            }
            // The slot is not in the state the free list promised:
            // record the aliasing and leak it rather than hand out
            // memory something else may still own.
            self.aliasing.fetch_add(1, Ordering::Relaxed);
            debug_assert!(false, "event pool free-list slot is not FREE");
        }
        let layout = class_layout(class);
        // Safety: layout has non-zero size; null is handled.
        unsafe {
            let raw = alloc(layout);
            if raw.is_null() {
                handle_alloc_error(layout);
            }
            let hdr = raw as *mut Header;
            (*hdr).gen = 0;
            (*hdr).state = LIVE;
            self.fresh.fetch_add(1, Ordering::Relaxed);
            NonNull::new_unchecked(hdr)
        }
    }

    /// Return a slot to its class free list.
    ///
    /// Safety: `header` must be a slot acquired from this pool whose
    /// payload has already been dropped or moved out, and must not be
    /// released twice.
    unsafe fn release(&self, header: NonNull<Header>, class: u8) {
        let hdr = header.as_ptr();
        (*hdr).gen = (*hdr).gen.wrapping_add(1);
        (*hdr).state = FREE;
        self.free[class as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(hdr as usize);
    }
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        // Live slots keep the pool alive through their `Arc`, so by the
        // time this runs every slot is on a free list.
        for (class, list) in self.free.iter_mut().enumerate() {
            let layout = class_layout(class);
            let slots = std::mem::take(list.get_mut().unwrap_or_else(|e| e.into_inner()));
            for addr in slots {
                // Safety: each address was minted by `acquire` with
                // exactly this class layout.
                unsafe { dealloc(addr as *mut u8, layout) };
            }
        }
    }
}

/// A per-shard slab pool of event slots. Cloning shares the slabs.
#[derive(Clone)]
pub struct EventPool {
    shared: Arc<PoolShared>,
}

impl Default for EventPool {
    fn default() -> Self {
        Self::new()
    }
}

impl EventPool {
    /// An empty pool; slots are minted on demand and recycled forever.
    pub fn new() -> Self {
        EventPool {
            shared: Arc::new(PoolShared {
                free: [
                    Mutex::new(Vec::new()),
                    Mutex::new(Vec::new()),
                    Mutex::new(Vec::new()),
                    Mutex::new(Vec::new()),
                ],
                recycled: AtomicU64::new(0),
                fresh: AtomicU64::new(0),
                unpooled: AtomicU64::new(0),
                aliasing: AtomicU64::new(0),
            }),
        }
    }

    /// Box `ev` in a pooled slot (or a plain heap box if it fits no
    /// size class).
    pub fn make<E: Event>(&self, ev: E) -> EventBox {
        let Some(class) = class_of(size_of::<E>(), align_of::<E>()) else {
            self.shared.unpooled.fetch_add(1, Ordering::Relaxed);
            return EventBox::new(ev);
        };
        let header = self.shared.acquire(class);
        // Safety: the slot's payload area is HEADER_SIZE past the
        // header, sized/aligned for any type admitted by `class_of`.
        unsafe {
            let payload = header.as_ptr().cast::<u8>().add(HEADER_SIZE).cast::<E>();
            ptr::write(payload, ev);
            let gen = (*header.as_ptr()).gen;
            EventBox {
                obj: NonNull::new_unchecked(payload as *mut dyn Event),
                ticket: Some(Ticket {
                    pool: Arc::clone(&self.shared),
                    header,
                    gen,
                    class: class as u8,
                    rebox: rebox_impl::<E>,
                }),
            }
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            recycled: self.shared.recycled.load(Ordering::Relaxed),
            fresh: self.shared.fresh.load(Ordering::Relaxed),
            unpooled: self.shared.unpooled.load(Ordering::Relaxed),
            aliasing: self.shared.aliasing.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for EventPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventPool")
            .field("stats", &self.stats())
            .finish()
    }
}

/// Monomorphised escape hatch: move a pooled payload into a plain
/// `Box<dyn Event>` without knowing `E` at the call site (the function
/// pointer is captured at allocation time).
///
/// Safety: `payload` must point at a valid, live `E` the caller owns;
/// the value is moved out (the slot must be released without dropping).
unsafe fn rebox_impl<E: Event>(payload: *mut u8) -> Box<dyn Event> {
    Box::new(ptr::read(payload.cast::<E>()))
}

struct Ticket {
    pool: Arc<PoolShared>,
    header: NonNull<Header>,
    gen: u32,
    class: u8,
    rebox: unsafe fn(*mut u8) -> Box<dyn Event>,
}

impl Ticket {
    /// True when the slot still belongs to this ticket.
    fn verify(&self) -> bool {
        // Safety: the ticket's Arc keeps the slot memory alive.
        unsafe {
            let h = self.header.as_ptr();
            (*h).state == LIVE && (*h).gen == self.gen
        }
    }

    fn flag_stale(&self, what: &str) {
        self.pool.aliasing.fetch_add(1, Ordering::Relaxed);
        debug_assert!(
            false,
            "stale event pool ticket on {what}: generation/state mismatch"
        );
        let _ = what;
    }
}

/// An owned, type-erased event: the kernel's unit of message exchange.
/// Either a pooled slot (intra-shard hot path) or a plain heap box
/// (cross-shard sends, oversized events); the distinction is invisible
/// to actors.
pub struct EventBox {
    obj: NonNull<dyn Event>,
    ticket: Option<Ticket>,
}

// Safety: EventBox uniquely owns its payload exactly like
// `Box<dyn Event>` would, `Event` requires `Send + Sync`, and the
// pool's shared state is `Mutex`/atomic protected.
unsafe impl Send for EventBox {}
unsafe impl Sync for EventBox {}

impl EventBox {
    /// Box `ev` on the plain heap (no pool).
    pub fn new<E: Event>(ev: E) -> Self {
        EventBox::from(Box::new(ev) as Box<dyn Event>)
    }

    /// Whether the payload lives in a pooled slot.
    pub fn is_pooled(&self) -> bool {
        self.ticket.is_some()
    }

    /// Disassemble without running `Drop`.
    fn into_parts(self) -> (NonNull<dyn Event>, Option<Ticket>) {
        let this = ManuallyDrop::new(self);
        // Safety: `this` is never dropped; each field is moved out once.
        (this.obj, unsafe { ptr::read(&this.ticket) })
    }

    /// Convert to a plain `Box<dyn Event>`, releasing any pooled slot.
    /// Cross-shard sends use this so pooled slots never migrate between
    /// shards (which would make free-list traffic thread-dependent).
    pub fn into_boxed(self) -> Box<dyn Event> {
        let (obj, ticket) = self.into_parts();
        match ticket {
            // Safety: `obj` came from `Box::into_raw` in `From`.
            None => unsafe { Box::from_raw(obj.as_ptr()) },
            Some(t) => {
                if !t.verify() {
                    t.flag_stale("into_boxed");
                }
                // Safety: the ticket proves unique ownership of the
                // payload; `rebox` moves it out, then the slot is
                // released without dropping.
                unsafe {
                    let boxed = (t.rebox)(obj.as_ptr() as *mut u8);
                    t.pool.release(t.header, t.class);
                    boxed
                }
            }
        }
    }

    /// Flatten to a plain-backed `EventBox` (no-op when already plain).
    pub fn into_plain(self) -> EventBox {
        if self.ticket.is_none() {
            self
        } else {
            EventBox::from(self.into_boxed())
        }
    }

    /// Consuming downcast; returns the event by value, or the original
    /// box on mismatch so the caller can try the next candidate type.
    pub fn downcast<T: Event>(self) -> Result<T, EventBox> {
        if !(*self).is::<T>() {
            return Err(self);
        }
        let (obj, ticket) = self.into_parts();
        match ticket {
            None => {
                // Safety: `obj` came from `Box::into_raw` in `From`.
                let b: Box<dyn Event> = unsafe { Box::from_raw(obj.as_ptr()) };
                match b.downcast::<T>() {
                    Ok(t) => Ok(*t),
                    Err(b) => Err(EventBox::from(b)),
                }
            }
            Some(t) => {
                if !t.verify() {
                    t.flag_stale("downcast");
                }
                // Safety: type checked above; the value is moved out
                // and the slot released without dropping.
                unsafe {
                    let v = ptr::read(obj.as_ptr() as *mut T);
                    t.pool.release(t.header, t.class);
                    Ok(v)
                }
            }
        }
    }

    /// Consuming downcast for handlers that accept exactly one type:
    /// on mismatch, returns a [`MisroutedEvent`] naming both the
    /// expected and the actual type.
    pub fn downcast_expected<T: Event>(self) -> Result<T, MisroutedEvent> {
        let actual = (*self).type_name();
        self.downcast::<T>().map_err(|_| MisroutedEvent {
            expected: std::any::type_name::<T>(),
            actual,
        })
    }
}

impl From<Box<dyn Event>> for EventBox {
    fn from(b: Box<dyn Event>) -> Self {
        // Safety: Box::into_raw never returns null.
        EventBox {
            obj: unsafe { NonNull::new_unchecked(Box::into_raw(b)) },
            ticket: None,
        }
    }
}

impl std::ops::Deref for EventBox {
    type Target = dyn Event;
    fn deref(&self) -> &dyn Event {
        // Safety: `obj` is valid for the lifetime of the box.
        unsafe { self.obj.as_ref() }
    }
}

impl fmt::Debug for EventBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl Drop for EventBox {
    fn drop(&mut self) {
        match self.ticket.take() {
            // Safety: `obj` came from `Box::into_raw` in `From`.
            None => unsafe {
                drop(Box::from_raw(self.obj.as_ptr()));
            },
            Some(t) => {
                if !t.verify() {
                    t.flag_stale("drop");
                    // Never touch a slot something else may own.
                    return;
                }
                // Safety: unique ownership; payload dropped in place,
                // then the slot is released exactly once.
                unsafe {
                    ptr::drop_in_place(self.obj.as_ptr());
                    t.pool.release(t.header, t.class);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Small(u64);

    #[derive(Debug)]
    struct Big(#[allow(dead_code)] [u64; 128]); // 1 KiB: larger than every class

    #[derive(Debug)]
    struct Droppy(Arc<AtomicU64>);
    impl Drop for Droppy {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn pooled_roundtrip_and_recycle() {
        let pool = EventPool::new();
        let b = pool.make(Small(7));
        assert!(b.is_pooled());
        assert!(b.is::<Small>());
        assert_eq!(b.downcast::<Small>().unwrap(), Small(7));
        // Second allocation of the same class reuses the slot.
        let b2 = pool.make(Small(8));
        let s = pool.stats();
        assert_eq!(s.fresh, 1, "second alloc must recycle");
        assert_eq!(s.recycled, 1);
        assert_eq!(s.aliasing, 0);
        drop(b2);
    }

    #[test]
    fn oversized_events_fall_back_to_plain_boxes() {
        let pool = EventPool::new();
        let b = pool.make(Big([0; 128]));
        assert!(!b.is_pooled());
        assert_eq!(pool.stats().unpooled, 1);
        assert!(b.downcast::<Big>().is_ok());
    }

    #[test]
    fn drop_runs_payload_destructor_once() {
        let drops = Arc::new(AtomicU64::new(0));
        let pool = EventPool::new();
        let b = pool.make(Droppy(Arc::clone(&drops)));
        drop(b);
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        // Moving the value out must NOT run the destructor.
        let b = pool.make(Droppy(Arc::clone(&drops)));
        let v = b.downcast::<Droppy>().unwrap();
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(v);
        assert_eq!(drops.load(Ordering::Relaxed), 2);
        assert_eq!(pool.stats().aliasing, 0);
    }

    #[test]
    fn into_boxed_flattens_pooled_payloads() {
        let pool = EventPool::new();
        let b = pool.make(Small(3));
        let plain: Box<dyn Event> = b.into_boxed();
        assert_eq!(*plain.downcast::<Small>().unwrap(), Small(3));
        // The slot is back on the free list.
        assert_eq!(pool.stats().fresh, 1);
        let again = pool.make(Small(4));
        assert_eq!(pool.stats().recycled, 1);
        drop(again);
    }

    #[test]
    fn downcast_mismatch_returns_original() {
        let pool = EventPool::new();
        let b = pool.make(Small(9));
        let b = b.downcast::<Big>().unwrap_err();
        assert_eq!(b.downcast::<Small>().unwrap(), Small(9));
        assert_eq!(pool.stats().aliasing, 0);
    }

    #[test]
    fn generations_advance_across_recycles() {
        let pool = EventPool::new();
        for i in 0..100u64 {
            let b = pool.make(Small(i));
            assert_eq!(b.downcast::<Small>().unwrap(), Small(i));
        }
        let s = pool.stats();
        assert_eq!(s.fresh, 1);
        assert_eq!(s.recycled, 99);
        assert_eq!(s.aliasing, 0);
    }
}
