use experiments::*;
use simkernel::SimDuration;

fn main() {
    for app in [AppKind::Bcp, AppKind::SignalGuru] {
        let mut base_t = 0.0;
        let mut base_l = 0.0;
        for scheme in [
            Scheme::Base,
            Scheme::Rep2,
            Scheme::Local,
            Scheme::Dist(1),
            Scheme::Dist(2),
            Scheme::Dist(3),
            Scheme::Ms,
        ] {
            let cfg = ScenarioConfig {
                app,
                scheme,
                seed: 7,
                ..Default::default()
            };
            let h = measured_run(
                cfg,
                SimDuration::from_secs(150),
                SimDuration::from_secs(600),
                |_| {},
            );
            if matches!(scheme, Scheme::Base) {
                base_t = h.mean_throughput;
                base_l = h.mean_latency_s;
            }
            println!("{:4} {:8} tput={:.3}/s ({:3.0}%) lat={:.1}s ({:.2}x) drops={} ckpt_repl={:.1}MB pres_log={:.1}MB pres_net={:.1}MB",
                app.label(), h.scheme, h.mean_throughput, 100.0*h.mean_throughput/base_t,
                h.mean_latency_s, h.mean_latency_s/base_l,
                h.per_region.iter().map(|r| r.source_drops).sum::<u64>(),
                h.ckpt_repl_bytes as f64/1e6, h.preserved_bytes as f64/1e6, h.wifi_bytes.preservation as f64/1e6);
        }
    }
}
