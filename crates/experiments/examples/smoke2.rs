use experiments::faults::*;
use experiments::*;
use simkernel::{SimDuration, SimTime};

fn main() {
    let warmup = SimDuration::from_secs(150);
    let window = SimDuration::from_secs(300);
    // Fig 9 style: n failures at warmup+30, reboot +60.
    for n in [0u32, 1, 2, 4, 8] {
        let cfg = ScenarioConfig {
            app: AppKind::Bcp,
            scheme: Scheme::Ms,
            seed: 7,
            ..Default::default()
        };
        let h = measured_run(cfg, warmup, window, |dep| {
            let at = SimTime::ZERO + warmup + SimDuration::from_secs(30);
            for region in 0..dep.cfg.regions {
                let order = failure_order(dep, region);
                for &slot in order.iter().take(n as usize) {
                    inject_failure(dep, region, slot, at);
                    inject_reboot(dep, region, slot, at + SimDuration::from_secs(60));
                }
            }
        });
        println!(
            "ms fail n={n}: tput={:.3} lat={:.1}s recov={} mean_rec={:.1}s stops={} discards={}",
            h.mean_throughput,
            h.mean_latency_s,
            h.recoveries,
            h.mean_recovery_s,
            h.stops,
            h.per_region.iter().map(|r| r.catchup_discards).sum::<u64>()
        );
    }
    for n in [1u32, 2, 4] {
        let cfg = ScenarioConfig {
            app: AppKind::Bcp,
            scheme: Scheme::Ms,
            seed: 7,
            ..Default::default()
        };
        let h = measured_run(cfg, warmup, window, |dep| {
            let at = SimTime::ZERO + warmup + SimDuration::from_secs(30);
            for region in 0..dep.cfg.regions {
                let order = failure_order(dep, region);
                for &slot in order.iter().take(n as usize) {
                    inject_departure(dep, region, slot, at);
                }
            }
        });
        println!(
            "ms depart n={n}: tput={:.3} lat={:.1}s departures_handled={} stops={}",
            h.mean_throughput, h.mean_latency_s, h.recoveries, h.stops
        );
    }
    for (label, scheme, n) in [
        ("rep2", Scheme::Rep2, 1u32),
        ("dist2", Scheme::Dist(2), 2),
        ("dist3", Scheme::Dist(3), 3),
    ] {
        let cfg = ScenarioConfig {
            app: AppKind::Bcp,
            scheme,
            seed: 7,
            ..Default::default()
        };
        let h = measured_run(cfg, warmup, window, |dep| {
            let at = SimTime::ZERO + warmup + SimDuration::from_secs(30);
            for region in 0..dep.cfg.regions {
                let order = failure_order(dep, region);
                for &slot in order.iter().take(n as usize) {
                    inject_failure(dep, region, slot, at);
                    inject_reboot(dep, region, slot, at + SimDuration::from_secs(60));
                }
            }
        });
        println!(
            "{label} fail n={n}: tput={:.3} lat={:.1}s recov={} mean_rec={:.1}s stops={}",
            h.mean_throughput, h.mean_latency_s, h.recoveries, h.mean_recovery_s, h.stops
        );
    }
    // Table 1 server rows
    for up in [16_000.0, 320_000.0] {
        let cfg = ScenarioConfig {
            app: AppKind::Bcp,
            scheme: Scheme::Base,
            checkpoints_enabled: false,
            platform: Platform::Server { uplink_bps: up },
            seed: 7,
            ..Default::default()
        };
        let h = measured_run(cfg, warmup, SimDuration::from_secs(600), |_| {});
        println!(
            "server up={:.3}Mbps: tput={:.3} lat={:.1}s",
            up / 1e6,
            h.mean_throughput,
            h.mean_latency_s
        );
    }
}
