//! Determinism stress layer for the warm-worker kernel: the library
//! profiles with the most concurrency-hostile shapes (metro's sharded
//! control plane, lossy-wifi's staggered loss ramps, flash-crowd's
//! arrival burst) must produce bit-identical report digests at 1, 2, 4
//! and 8 worker threads, with the causality sanitizer folding every
//! window and the event pool reporting zero aliasing.
//!
//! The scaled-down sweeps run in the default suite; the full 10-seed
//! soak (`stress_soak_ten_seeds`) is `#[ignore]`d and run by the
//! nightly CI step (`cargo test -p experiments --test
//! determinism_stress -- --ignored`).

use experiments::fleet::{profile, run_fleet, FleetConfig, FleetReport};
use simkernel::SimDuration;

/// Profiles whose shapes stress the parallel kernel hardest.
const STRESS_PROFILES: &[&str] = &["metro", "lossy-wifi", "flash-crowd"];

/// Thread counts the digest contract is pinned at.
const THREADS: &[usize] = &[1, 2, 4, 8];

/// Scale a library profile down so a multi-thread × multi-profile
/// sweep stays in test time, while preserving the stressor: sharded
/// control plane (metro keeps ≥2 controller groups), staggered loss
/// ramps, and the arrival burst all survive the truncation.
fn scaled(name: &str, seed: u64) -> FleetConfig {
    let mut cfg = profile(name, seed).expect("known stress profile");
    cfg.regions.truncate(4);
    for r in &mut cfg.regions {
        r.phones = r.phones.min(8);
    }
    cfg.ctl_group_size = cfg.ctl_group_size.min(2);
    cfg.duration = SimDuration::from_secs(240);
    cfg.warmup = SimDuration::from_secs(40);
    cfg.sanitize = true;
    cfg
}

/// Run `cfg` at every thread count and assert the full determinism
/// contract between each pair of runs.
fn assert_thread_invariant(name: &str, cfg: &FleetConfig) -> FleetReport {
    let mut base: Option<FleetReport> = None;
    for &threads in THREADS {
        let mut c = cfg.clone();
        c.threads = threads;
        let r = run_fleet(&c);
        assert_eq!(
            r.sanitizer_violations, 0,
            "{name} @ {threads} threads: causality violations"
        );
        assert_eq!(
            r.pool_aliasing, 0,
            "{name} @ {threads} threads: event pool aliased a slot"
        );
        assert!(
            r.sanitizer_windows > 0,
            "{name} @ {threads} threads: sanitizer saw no windows (not sharded?)"
        );
        match &base {
            None => base = Some(r),
            Some(b) => {
                assert_eq!(
                    b.digest, r.digest,
                    "{name}: digest at {threads} threads diverged from 1 thread"
                );
                assert_eq!(
                    b.events_processed, r.events_processed,
                    "{name}: event count at {threads} threads diverged"
                );
                assert_eq!(
                    b.pool_recycled, r.pool_recycled,
                    "{name}: pool recycling at {threads} threads diverged — \
                     a pooled slot crossed a shard"
                );
            }
        }
    }
    base.expect("at least one thread count")
}

#[test]
fn metro_digests_thread_invariant() {
    let cfg = scaled("metro", 23);
    let r = assert_thread_invariant("metro", &cfg);
    assert!(
        r.pool_recycled > 0,
        "metro: pool never recycled a slot — hot path not pooled?"
    );
}

#[test]
fn lossy_wifi_digests_thread_invariant() {
    let cfg = scaled("lossy-wifi", 29);
    assert_thread_invariant("lossy-wifi", &cfg);
}

#[test]
fn flash_crowd_digests_thread_invariant() {
    let cfg = scaled("flash-crowd", 31);
    assert_thread_invariant("flash-crowd", &cfg);
}

/// Per-destination lookahead is a window-shape knob, never a schedule
/// knob: disabling it (uniform global bound) must reproduce the exact
/// digest, at one thread and at many.
#[test]
fn uniform_lookahead_reproduces_per_destination_digests() {
    for &name in STRESS_PROFILES {
        let cfg = scaled(name, 37);
        let mut per_dest = cfg.clone();
        per_dest.threads = 4;
        let mut uniform = cfg;
        uniform.threads = 4;
        uniform.uniform_lookahead = true;
        let rd = run_fleet(&per_dest);
        let ru = run_fleet(&uniform);
        assert_eq!(
            rd.digest, ru.digest,
            "{name}: widened per-destination windows changed the schedule"
        );
        assert_eq!(rd.events_processed, ru.events_processed, "{name}");
        // Wider windows may only reduce barrier count, never raise it.
        assert!(
            rd.sanitizer_windows <= ru.sanitizer_windows,
            "{name}: per-destination bounds produced MORE windows \
             ({} vs {})",
            rd.sanitizer_windows,
            ru.sanitizer_windows
        );
    }
}

/// Nightly soak: every stress profile across ten seeds × four thread
/// counts. ~40 runs per profile — kept out of the default suite.
#[test]
#[ignore = "nightly soak: run with --ignored"]
fn stress_soak_ten_seeds() {
    for &name in STRESS_PROFILES {
        for seed in 100..110u64 {
            let cfg = scaled(name, seed);
            assert_thread_invariant(name, &cfg);
        }
    }
}
