//! Fast end-to-end smoke test: a tiny deployment (3 phones per region,
//! short window) drives the full simkernel → simnet → dsps →
//! mobistreams stack in a few seconds of wall clock, so CI always
//! exercises the whole pipeline even when the heavyweight paper
//! scenarios aren't run.

use experiments::{harvest, AppKind, Deployment, ScenarioConfig, Scheme};
use simkernel::{SimDuration, SimTime};

fn tiny(app: AppKind, scheme: Scheme) -> ScenarioConfig {
    // Shrink the operator states so a full checkpoint round (snapshot +
    // broadcast replication) fits comfortably inside the shortened
    // checkpoint period on a 3-phone region's WiFi budget.
    let cal = apps::Calibration {
        state_a: 16 * 1024,
        state_l: 16 * 1024,
        state_b: 64 * 1024,
        state_j: 48 * 1024,
        state_p: 16 * 1024,
        state_h: 16 * 1024,
        ..apps::Calibration::default()
    };
    ScenarioConfig {
        app,
        scheme,
        seed: 21,
        regions: 2,
        phones: 3,
        cal,
        ckpt_offset: SimDuration::from_secs(20),
        ckpt_period: SimDuration::from_secs(60),
        ..ScenarioConfig::default()
    }
}

#[test]
fn tiny_region_runs_end_to_end_with_ms() {
    let wall = std::time::Instant::now();
    let mut dep = Deployment::build(tiny(AppKind::Bcp, Scheme::Ms));
    dep.start();
    dep.run_until(SimTime::from_secs(180));

    let h = harvest(&dep, SimTime::from_secs(30), SimTime::from_secs(180));
    // The pipeline produced sink output in the first region, and the
    // cascade crossed cellular into the second.
    assert!(h.per_region[0].outputs > 0, "region 0 published nothing");
    assert!(h.per_region[1].outputs > 0, "region 1 published nothing");
    assert!(h.cell_bytes.data > 0, "no inter-region tuples on cellular");
    assert!(h.wifi_bytes.total() > 0, "no WiFi traffic at all");
    assert_eq!(h.stops, 0, "a tiny healthy region must not stop");

    // Token-triggered checkpoints committed and were broadcast.
    assert!(
        dep.ms_last_complete(0) >= 1,
        "no checkpoint committed in region 0 (got {})",
        dep.ms_last_complete(0)
    );
    assert!(h.ckpt_repl_bytes > 0, "checkpointing moved no bytes");

    // Smoke budget: this must stay fast enough for every CI run.
    assert!(
        wall.elapsed().as_secs() < 60,
        "smoke test too slow: {:?}",
        wall.elapsed()
    );
}

#[test]
fn tiny_region_runs_without_fault_tolerance() {
    // Scheme::Base on 2 phones: the smallest deployment that still
    // cascades — guards the squeeze-placement path at its minimum.
    let mut dep = Deployment::build(ScenarioConfig {
        phones: 2,
        checkpoints_enabled: false,
        ..tiny(AppKind::Bcp, Scheme::Base)
    });
    dep.start();
    dep.run_until(SimTime::from_secs(150));
    let h = harvest(&dep, SimTime::from_secs(30), SimTime::from_secs(150));
    assert!(h.per_region[0].outputs > 0);
    assert!(h.mean_throughput > 0.0);
    assert_eq!(h.ckpt_repl_bytes, 0, "base ships no checkpoint bytes");
}

#[test]
fn tiny_signalguru_region_runs_end_to_end() {
    let mut dep = Deployment::build(tiny(AppKind::SignalGuru, Scheme::Ms));
    dep.start();
    dep.run_until(SimTime::from_secs(150));
    let h = harvest(&dep, SimTime::from_secs(30), SimTime::from_secs(150));
    assert!(h.per_region[0].outputs > 0, "SignalGuru published nothing");
}
