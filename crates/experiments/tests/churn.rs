//! Churn edge cases around the departure protocol (§III-E) and
//! recovery (§III-D): timings chosen to land inside protocol windows
//! that fleet-scale churn hits constantly —
//!
//! * a departure while a checkpoint broadcast phase is still in
//!   flight,
//! * two simultaneous departures in one region,
//! * a phone rejoining while the region's recovery is still running.
//!
//! Each test asserts the deployment keeps making progress (no panic,
//! sink output continues, protocol counters move).

use experiments::faults::{inject_departure, inject_failure, inject_reboot};
use experiments::{harvest, AppKind, Deployment, ScenarioConfig, Scheme};
use simkernel::{SimDuration, SimTime};

/// A small-but-real MS deployment: 2 regions × 5 phones, shortened
/// checkpoint period, shrunk states (same trick as the smoke test so
/// a checkpoint round fits the channel budget).
fn cfg(seed: u64) -> ScenarioConfig {
    let cal = apps::Calibration {
        state_a: 16 * 1024,
        state_l: 16 * 1024,
        state_b: 64 * 1024,
        state_j: 48 * 1024,
        state_p: 16 * 1024,
        state_h: 16 * 1024,
        ..apps::Calibration::default()
    };
    ScenarioConfig {
        app: AppKind::Bcp,
        scheme: Scheme::Ms,
        seed,
        regions: 2,
        phones: 5,
        cal,
        ckpt_offset: SimDuration::from_secs(20),
        ckpt_period: SimDuration::from_secs(60),
        ..ScenarioConfig::default()
    }
}

#[test]
fn departure_during_inflight_broadcast_phase() {
    let mut dep = Deployment::build(cfg(11));
    dep.start();
    // The first checkpoint token fires at t = 20 s; state snapshots
    // then broadcast over several seconds of airtime. Injecting the
    // departure at t = 21 s lands inside an in-flight broadcast phase:
    // the sender must time the departed receiver out (bitmap never
    // arrives over the broken WiFi link), drop it from the job, and
    // still complete the checkpoint with the survivors.
    inject_departure(&mut dep, 0, 1, SimTime::from_secs(21));
    dep.run_until(SimTime::from_secs(180));

    assert!(
        dep.ms_last_complete(0) >= 1,
        "checkpoint never committed after mid-broadcast departure (got v{})",
        dep.ms_last_complete(0)
    );
    assert_eq!(
        dep.ms_departures_handled(),
        1,
        "departure transfer completed"
    );
    let h = harvest(&dep, SimTime::from_secs(40), SimTime::from_secs(180));
    assert!(
        h.per_region[0].outputs > 0,
        "region 0 stalled after departure"
    );
    assert!(h.per_region[1].outputs > 0, "cascade broke after departure");
    assert_eq!(h.stops, 0, "region must not stop over one departure");
}

#[test]
fn two_simultaneous_departures_in_one_region() {
    // 8 phones → two idle slots, so BOTH departures get replacements:
    // two state transfers run concurrently through the controller's
    // transfer map, and their urgent-edge sets overlap (edges 8/9
    // cross both phones' hosting).
    let mut dep = Deployment::build(ScenarioConfig {
        phones: 8,
        ..cfg(13)
    });
    dep.start();
    inject_departure(&mut dep, 0, 1, SimTime::from_secs(40));
    inject_departure(&mut dep, 0, 2, SimTime::from_secs(40));
    dep.run_until(SimTime::from_secs(200));

    assert_eq!(
        dep.ms_departures_handled(),
        2,
        "both concurrent transfers must finish"
    );
    let h = harvest(&dep, SimTime::from_secs(60), SimTime::from_secs(200));
    assert!(
        h.per_region[0].outputs > 0,
        "region 0 produced nothing after the double departure"
    );
    assert_eq!(h.stops, 0, "two departures must not stop an 8-phone region");
    // Later checkpoints still commit with the replacements in place.
    assert!(
        dep.ms_last_complete(0) >= 2,
        "checkpointing stalled after the double departure (v{})",
        dep.ms_last_complete(0)
    );
}

#[test]
fn degraded_departure_without_replacement_keeps_urgent_bridging() {
    // 5 phones → a single idle slot. Two simultaneous departures: the
    // first transfer claims the spare; the second phone computes on
    // remotely over cellular (degraded urgent mode). Regression: the
    // first transfer's ack used to release the urgent edges the
    // degraded departure still needed, cutting the region in half.
    let mut dep = Deployment::build(cfg(13));
    dep.start();
    inject_departure(&mut dep, 0, 1, SimTime::from_secs(40));
    inject_departure(&mut dep, 0, 2, SimTime::from_secs(40));
    dep.run_until(SimTime::from_secs(200));

    assert_eq!(dep.ms_departures_handled(), 1, "one transfer, one degraded");
    assert_eq!(dep.ms_stops(), 0, "region must limp along, not stop");
    // The degraded phone's urgent edges survive the other transfer's
    // release: its in-edges still route over cellular, so the crop
    // stream keeps reaching it (well beyond the single inter-region
    // hop's worth of bytes).
    let h = harvest(&dep, SimTime::from_secs(40), SimTime::from_secs(200));
    assert!(
        h.cell_bytes.data > 100_000,
        "urgent bridging moved only {} data bytes over cellular",
        h.cell_bytes.data
    );
}

#[test]
fn phone_rejoins_mid_recovery() {
    let mut dep = Deployment::build(cfg(17));
    dep.start();
    // Kill a hosting phone at t = 50 s. Failure detection (missed
    // pings / dead reports), burst gathering and the install round all
    // take seconds — rebooting the same phone at t = 56 s lands inside
    // the recovery window, exercising the deferred-reinstall path
    // (RegisterNode while `recovering`).
    inject_failure(&mut dep, 0, 2, SimTime::from_secs(50));
    inject_reboot(&mut dep, 0, 2, SimTime::from_secs(56));
    dep.run_until(SimTime::from_secs(240));

    assert!(!dep.ms_is_stopped(0), "region wrongly stopped");
    let h = harvest(&dep, SimTime::from_secs(80), SimTime::from_secs(240));
    assert!(
        h.per_region[0].outputs > 0,
        "region 0 never resumed after rejoin-mid-recovery"
    );
    assert!(
        h.recoveries >= 1,
        "the failure must have driven at least one recovery"
    );
}

/// Determinism holds under all three edge cases at once: the same
/// seed with the same injections yields byte-identical metrics.
#[test]
fn churn_edge_cases_stay_deterministic() {
    let run = || {
        let mut dep = Deployment::build(cfg(23));
        dep.start();
        inject_departure(&mut dep, 0, 1, SimTime::from_secs(21));
        inject_failure(&mut dep, 1, 2, SimTime::from_secs(50));
        inject_reboot(&mut dep, 1, 2, SimTime::from_secs(56));
        dep.run_until(SimTime::from_secs(150));
        let h = harvest(&dep, SimTime::from_secs(30), SimTime::from_secs(150));
        (
            dep.sim.events_processed(),
            h.per_region[0].outputs,
            h.per_region[1].outputs,
            h.wifi_bytes.total(),
            h.cell_bytes.total(),
        )
    };
    assert_eq!(run(), run());
}

/// Pull the MsScheme out of a node for protocol introspection.
fn ms_scheme(dep: &Deployment, region: usize, slot: u32) -> &mobistreams::MsScheme {
    let nid = dep.regions[region].nodes[slot as usize];
    let na = dep.sim.actor::<dsps::node::NodeActor>(nid);
    na.scheme
        .as_any()
        .downcast_ref::<mobistreams::MsScheme>()
        .expect("ms scheme")
}

/// Tentpole regression: a region whose degraded departure (no
/// replacement available) keeps computing over cellular must KEEP
/// COMMITTING checkpoints — the degraded phone ships each snapshot to
/// an in-region proxy over cellular, the proxy relays it onto WiFi and
/// reports on its behalf, and `ckpt_expected` stays satisfiable.
/// Before this fix the region's commit version froze until a phone
/// happened to rejoin.
#[test]
fn degraded_region_keeps_committing_checkpoints_over_cellular() {
    let mut dep = Deployment::build(cfg(13));
    dep.start();
    // Slot 4 is the region's only idle slot: its departure removes the
    // spare, so slot 3's departure at t = 50 s finds no replacement and
    // goes degraded with ~131 KB of operator state (B, J, P, K).
    inject_departure(&mut dep, 0, 4, SimTime::from_secs(40));
    inject_departure(&mut dep, 0, 3, SimTime::from_secs(50));
    dep.run_until(SimTime::from_secs(340));

    assert!(!dep.ms_is_stopped(0), "region wrongly stopped");
    // Ticks land at 20, 80, ..., 320 s; every round from v2 on runs
    // with the degraded slot in `ckpt_expected`. The commit version
    // must STRICTLY ADVANCE while degraded, not freeze at v1.
    assert!(
        dep.ms_last_complete(0) >= 5,
        "degraded region stopped committing (stuck at v{})",
        dep.ms_last_complete(0)
    );
    let degraded_commits = dep
        .ms_commits()
        .iter()
        .filter(|&&(r, v, _)| r == 0 && v >= 2)
        .count();
    assert!(
        degraded_commits >= 4,
        "only {degraded_commits} commits while degraded"
    );
    // The snapshots really travelled the cellular path...
    let ms = ms_scheme(&dep, 0, 3);
    assert!(
        ms.degraded_proxy.is_some(),
        "degraded phone never told about its proxy"
    );
    assert!(
        ms.stats.cell_snapshots >= 4,
        "only {} snapshots shipped over cellular",
        ms.stats.cell_snapshots
    );
    // ...at their full byte size (≥ 4 rounds × ~131 KB), and the relay
    // ran on the proxy (lowest active slot).
    let h = harvest(&dep, SimTime::from_secs(50), SimTime::from_secs(340));
    assert!(
        h.cell_bytes.checkpoint > 300_000,
        "cellular checkpoint traffic too small: {} B",
        h.cell_bytes.checkpoint
    );
    assert!(ms_scheme(&dep, 0, 0).stats.proxied_snapshots >= 4);
    assert!(h.per_region[0].outputs > 0, "region 0 dataflow stalled");
    // Commit notices reach the degraded phone over cellular too, so
    // its store keeps GCing instead of growing a state copy per round.
    let nid = dep.regions[0].nodes[3];
    let store = &dep.sim.actor::<dsps::node::NodeActor>(nid).inner.store;
    assert!(
        store.latest_complete() >= Some(4),
        "degraded phone never saw a commit notice: {:?}",
        store.latest_complete()
    );
}

/// Satellite regression: a degraded phone rejoining while its snapshot
/// is still crawling over cellular (a) immediately removes its slot
/// from `ckpt_expected` and re-runs the commit check — so a round that
/// is otherwise complete commits NOW instead of stalling until the
/// proxy relay lands an epoch later — and (b) the relay's late report
/// for the already-committed round must NOT double-commit it.
#[test]
fn rejoin_mid_cellular_snapshot_commits_once_without_stalling() {
    let mut c = cfg(13);
    // Fatten B's state so the degraded snapshot of round v2 (token at
    // t ≈ 83 s) occupies the 168 kbps uplink until t ≈ 99 s — a wide,
    // deterministic window to land the rejoin in.
    c.cal.state_b = 256 * 1024;
    let mut dep = Deployment::build(c);
    dep.start();
    inject_departure(&mut dep, 0, 4, SimTime::from_secs(40));
    inject_departure(&mut dep, 0, 3, SimTime::from_secs(50));
    // All survivors have reported v2 by t ≈ 97.7 s; the degraded
    // snapshot is still in flight. The rejoin at t = 98 s lands in
    // between: without the expected-set removal the round would wait
    // for the proxy relay (t ≈ 102 s).
    inject_reboot(&mut dep, 0, 3, SimTime::from_secs(98));
    dep.run_until(SimTime::from_secs(300));

    assert!(!dep.ms_is_stopped(0), "region wrongly stopped");
    // (a) The round was neither dropped nor stalled: v2 committed, and
    // it committed BEFORE the cellular snapshot even finished arriving
    // (uplink drains ≈ 99.3 s) — i.e. the rejoin triggered the check.
    let commits = dep.ms_commits();
    let v2 = commits
        .iter()
        .find(|&&(r, v, _)| r == 0 && v == 2)
        .unwrap_or_else(|| panic!("round v2 dropped: {commits:?}"));
    assert!(
        v2.2 < SimTime::from_secs(100),
        "v2 waited for the proxy relay instead of committing at the rejoin ({})",
        v2.2
    );
    // (b) The proxy relay still completed afterwards and reported the
    // rejoined slot — without double-committing the round.
    assert!(ms_scheme(&dep, 0, 0).stats.proxied_snapshots >= 1);
    let mut seen = std::collections::BTreeSet::new();
    for &(r, v, _) in &dep.ms_commits() {
        assert!(seen.insert((r, v)), "round (r{r}, v{v}) committed twice");
    }
    // Checkpointing continues normally after the rejoin.
    assert!(
        dep.ms_last_complete(0) >= 4,
        "commits stalled after rejoin (v{})",
        dep.ms_last_complete(0)
    );
}

/// The fleet report must expose the cellular-collapse signals: under
/// the flash-crowd profile (departure churn funnels 32 KB crops
/// through 168 kbps uplinks in urgent mode) the bounded link queues
/// tail-drop data and the per-region report fields show it.
#[test]
fn flash_crowd_reports_cellular_queue_pressure() {
    let cfg = experiments::fleet::profile("flash-crowd", 1).expect("built-in profile");
    let r = experiments::run_fleet(&cfg);
    assert_eq!(r.per_region_cell_drops.len(), r.regions);
    assert_eq!(r.per_region_cell_max_queue_depth.len(), r.regions);
    assert!(
        r.cell_drops > 0,
        "no cellular queue drops under flash-crowd churn"
    );
    assert_eq!(
        r.per_region_cell_drops.iter().sum::<u64>(),
        r.cell_drops,
        "per-region drops must add up to the fleet total"
    );
    assert!(
        r.per_region_cell_max_queue_depth.iter().all(|&d| d > 0),
        "every region queues on cellular: {:?}",
        r.per_region_cell_max_queue_depth
    );
    // The fields are part of the determinism contract (digest input).
    let json = serde_json::to_string(&r).expect("serialize");
    assert!(json.contains("per_region_cell_drops"));
    assert!(json.contains("per_region_cell_max_queue_depth"));
}
