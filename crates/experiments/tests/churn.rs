//! Churn edge cases around the departure protocol (§III-E) and
//! recovery (§III-D): timings chosen to land inside protocol windows
//! that fleet-scale churn hits constantly —
//!
//! * a departure while a checkpoint broadcast phase is still in
//!   flight,
//! * two simultaneous departures in one region,
//! * a phone rejoining while the region's recovery is still running.
//!
//! Each test asserts the deployment keeps making progress (no panic,
//! sink output continues, protocol counters move).

use experiments::faults::{inject_departure, inject_failure, inject_reboot};
use experiments::{harvest, AppKind, Deployment, ScenarioConfig, Scheme};
use mobistreams::MsController;
use simkernel::{SimDuration, SimTime};

/// A small-but-real MS deployment: 2 regions × 5 phones, shortened
/// checkpoint period, shrunk states (same trick as the smoke test so
/// a checkpoint round fits the channel budget).
fn cfg(seed: u64) -> ScenarioConfig {
    let cal = apps::Calibration {
        state_a: 16 * 1024,
        state_l: 16 * 1024,
        state_b: 64 * 1024,
        state_j: 48 * 1024,
        state_p: 16 * 1024,
        state_h: 16 * 1024,
        ..apps::Calibration::default()
    };
    ScenarioConfig {
        app: AppKind::Bcp,
        scheme: Scheme::Ms,
        seed,
        regions: 2,
        phones: 5,
        cal,
        ckpt_offset: SimDuration::from_secs(20),
        ckpt_period: SimDuration::from_secs(60),
        ..ScenarioConfig::default()
    }
}

#[test]
fn departure_during_inflight_broadcast_phase() {
    let mut dep = Deployment::build(cfg(11));
    dep.start();
    // The first checkpoint token fires at t = 20 s; state snapshots
    // then broadcast over several seconds of airtime. Injecting the
    // departure at t = 21 s lands inside an in-flight broadcast phase:
    // the sender must time the departed receiver out (bitmap never
    // arrives over the broken WiFi link), drop it from the job, and
    // still complete the checkpoint with the survivors.
    inject_departure(&mut dep, 0, 1, SimTime::from_secs(21));
    dep.run_until(SimTime::from_secs(180));

    let ctl = dep.sim.actor::<MsController>(dep.controller.unwrap());
    assert!(
        ctl.last_complete(0) >= 1,
        "checkpoint never committed after mid-broadcast departure (got v{})",
        ctl.last_complete(0)
    );
    assert_eq!(ctl.departures_handled, 1, "departure transfer completed");
    let h = harvest(&dep, SimTime::from_secs(40), SimTime::from_secs(180));
    assert!(
        h.per_region[0].outputs > 0,
        "region 0 stalled after departure"
    );
    assert!(h.per_region[1].outputs > 0, "cascade broke after departure");
    assert_eq!(h.stops, 0, "region must not stop over one departure");
}

#[test]
fn two_simultaneous_departures_in_one_region() {
    // 8 phones → two idle slots, so BOTH departures get replacements:
    // two state transfers run concurrently through the controller's
    // transfer map, and their urgent-edge sets overlap (edges 8/9
    // cross both phones' hosting).
    let mut dep = Deployment::build(ScenarioConfig {
        phones: 8,
        ..cfg(13)
    });
    dep.start();
    inject_departure(&mut dep, 0, 1, SimTime::from_secs(40));
    inject_departure(&mut dep, 0, 2, SimTime::from_secs(40));
    dep.run_until(SimTime::from_secs(200));

    let ctl = dep.sim.actor::<MsController>(dep.controller.unwrap());
    assert_eq!(
        ctl.departures_handled, 2,
        "both concurrent transfers must finish"
    );
    let h = harvest(&dep, SimTime::from_secs(60), SimTime::from_secs(200));
    assert!(
        h.per_region[0].outputs > 0,
        "region 0 produced nothing after the double departure"
    );
    assert_eq!(h.stops, 0, "two departures must not stop an 8-phone region");
    // Later checkpoints still commit with the replacements in place.
    assert!(
        ctl.last_complete(0) >= 2,
        "checkpointing stalled after the double departure (v{})",
        ctl.last_complete(0)
    );
}

#[test]
fn degraded_departure_without_replacement_keeps_urgent_bridging() {
    // 5 phones → a single idle slot. Two simultaneous departures: the
    // first transfer claims the spare; the second phone computes on
    // remotely over cellular (degraded urgent mode). Regression: the
    // first transfer's ack used to release the urgent edges the
    // degraded departure still needed, cutting the region in half.
    let mut dep = Deployment::build(cfg(13));
    dep.start();
    inject_departure(&mut dep, 0, 1, SimTime::from_secs(40));
    inject_departure(&mut dep, 0, 2, SimTime::from_secs(40));
    dep.run_until(SimTime::from_secs(200));

    let ctl = dep.sim.actor::<MsController>(dep.controller.unwrap());
    assert_eq!(ctl.departures_handled, 1, "one transfer, one degraded");
    assert_eq!(ctl.stops, 0, "region must limp along, not stop");
    // The degraded phone's urgent edges survive the other transfer's
    // release: its in-edges still route over cellular, so the crop
    // stream keeps reaching it (well beyond the single inter-region
    // hop's worth of bytes).
    let h = harvest(&dep, SimTime::from_secs(40), SimTime::from_secs(200));
    assert!(
        h.cell_bytes.data > 100_000,
        "urgent bridging moved only {} data bytes over cellular",
        h.cell_bytes.data
    );
}

#[test]
fn phone_rejoins_mid_recovery() {
    let mut dep = Deployment::build(cfg(17));
    dep.start();
    // Kill a hosting phone at t = 50 s. Failure detection (missed
    // pings / dead reports), burst gathering and the install round all
    // take seconds — rebooting the same phone at t = 56 s lands inside
    // the recovery window, exercising the deferred-reinstall path
    // (RegisterNode while `recovering`).
    inject_failure(&mut dep, 0, 2, SimTime::from_secs(50));
    inject_reboot(&mut dep, 0, 2, SimTime::from_secs(56));
    dep.run_until(SimTime::from_secs(240));

    let ctl = dep.sim.actor::<MsController>(dep.controller.unwrap());
    assert!(!ctl.is_stopped(0), "region wrongly stopped");
    let h = harvest(&dep, SimTime::from_secs(80), SimTime::from_secs(240));
    assert!(
        h.per_region[0].outputs > 0,
        "region 0 never resumed after rejoin-mid-recovery"
    );
    assert!(
        h.recoveries >= 1,
        "the failure must have driven at least one recovery"
    );
}

/// Determinism holds under all three edge cases at once: the same
/// seed with the same injections yields byte-identical metrics.
#[test]
fn churn_edge_cases_stay_deterministic() {
    let run = || {
        let mut dep = Deployment::build(cfg(23));
        dep.start();
        inject_departure(&mut dep, 0, 1, SimTime::from_secs(21));
        inject_failure(&mut dep, 1, 2, SimTime::from_secs(50));
        inject_reboot(&mut dep, 1, 2, SimTime::from_secs(56));
        dep.run_until(SimTime::from_secs(150));
        let h = harvest(&dep, SimTime::from_secs(30), SimTime::from_secs(150));
        (
            dep.sim.events_processed(),
            h.per_region[0].outputs,
            h.per_region[1].outputs,
            h.wifi_bytes.total(),
            h.cell_bytes.total(),
        )
    };
    assert_eq!(run(), run());
}
