//! Sharded-control-plane acceptance tests:
//!
//! * churn storm — membership reconciliation traffic scales with the
//!   *delta* (slots that changed), not the *population* (phones that
//!   must hear about it): the same single departure/rejoin costs the
//!   same messages and bytes in an 8-phone region and a 32-phone
//!   region, and far less than one full-snapshot fan-out.
//! * group blackout — severing one region-group controller freezes
//!   only its own regions; every other group keeps committing rounds
//!   through the window, and the dark group resumes after the heal.

use experiments::faults::{inject_departure, inject_reboot};
use experiments::fleet::{build_fleet, ChurnProfile, FleetConfig, FleetRegion};
use experiments::weather::{WeatherProgram, WeatherSystem};
use experiments::{AppKind, Deployment, ScenarioConfig, Scheme};
use simkernel::{SimDuration, SimTime};

/// Shrunk operator states (same trick as the smoke tests) so a
/// checkpoint round fits the shortened period.
fn small_cal() -> apps::Calibration {
    apps::Calibration {
        state_a: 16 * 1024,
        state_l: 16 * 1024,
        state_b: 64 * 1024,
        state_j: 48 * 1024,
        state_p: 16 * 1024,
        state_h: 16 * 1024,
        ..apps::Calibration::default()
    }
}

/// One ms region with `phones` phones; identical graph and hosting
/// pattern regardless of the population, so idle capacity is the only
/// thing that grows.
fn one_region(phones: u32) -> ScenarioConfig {
    ScenarioConfig {
        app: AppKind::Bcp,
        scheme: Scheme::Ms,
        seed: 77,
        regions: 1,
        phones,
        cal: small_cal(),
        ckpt_offset: SimDuration::from_secs(20),
        ckpt_period: SimDuration::from_secs(60),
        ..ScenarioConfig::default()
    }
}

/// Run the storm scenario: boot, then an idle phone departs at t=35 s
/// and rejoins at t=42 s. Returns the membership traffic (messages,
/// bytes) attributable to the two events — counters sampled after the
/// boot snapshot fan-out settles and again after the rejoin flush.
/// The window [32 s, 58 s) dodges the periodic reconcile sweep (30 s
/// cadence), whose anti-entropy deltas to lagging idle phones are the
/// one intentionally population-sized path.
fn storm_membership_delta(phones: u32) -> (u64, u64) {
    let mut dep = Deployment::build(one_region(phones));
    dep.start();
    dep.run_until(SimTime::from_secs(32));
    let (m0, b0) = dep.ms_membership_traffic();
    let idle = phones - 1;
    inject_departure(&mut dep, 0, idle, SimTime::from_secs(35));
    inject_reboot(&mut dep, 0, idle, SimTime::from_secs(42));
    dep.run_until(SimTime::from_secs(58));
    let (m1, b1) = dep.ms_membership_traffic();
    assert!(!dep.ms_is_stopped(0), "{phones}-phone region stopped");
    (m1 - m0, b1 - b0)
}

#[test]
fn membership_traffic_scales_with_delta_not_population() {
    let small = storm_membership_delta(8);
    let large = storm_membership_delta(32);

    // The SAME events cost the SAME reconciliation traffic at 4x the
    // population: deltas go to the stakeholders of the change (hosting
    // phones + the proxy candidate + the unsynced rejoiner), a set
    // fixed by the query graph, never to every phone in the region.
    assert_eq!(
        small, large,
        "membership traffic grew with the population: {small:?} at 8 phones vs {large:?} at 32"
    );

    // A departure plus a rejoin is a handful of per-change deltas and
    // one snapshot for the rejoined (unsynced) phone — nothing near a
    // full-snapshot fan-out to 32 phones.
    let (msgs, bytes) = large;
    assert!(msgs > 0, "the storm produced no membership updates at all");
    assert!(msgs <= 20, "O(delta) bound blown: {msgs} membership msgs");
    assert!(
        bytes < 32 * 256 / 4,
        "O(delta) bound blown: {bytes} membership bytes vs a 32-snapshot fan-out of {}",
        32 * 256
    );
}

/// Per-tick coalescing: every membership change in a tick folds into
/// at most one update per target phone, so a single departure costs at
/// most one message per stakeholder.
#[test]
fn same_tick_changes_coalesce_into_one_update_per_target() {
    let mut dep = Deployment::build(one_region(8));
    dep.start();
    dep.run_until(SimTime::from_secs(40));
    let (m0, _) = dep.ms_membership_traffic();
    inject_departure(&mut dep, 0, 7, SimTime::from_secs(45));
    dep.run_until(SimTime::from_secs(50));
    let (m1, _) = dep.ms_membership_traffic();
    // 8 phones, one of them departed: even a full-region flush could
    // not exceed 7 live targets, and the stakeholder scope keeps it at
    // the hosting set. More than 8 messages would mean some phone was
    // updated twice for one tick's worth of change.
    assert!(
        m1 - m0 <= 8,
        "departure flushed {} membership msgs into an 8-phone region",
        m1 - m0
    );
}

/// The blackout-isolation contract of the sharded control plane.
fn blackout_fleet() -> FleetConfig {
    FleetConfig {
        name: "blackout-isolation".into(),
        app: AppKind::Bcp,
        scheme: Scheme::Ms,
        regions: (0..3).map(|_| FleetRegion::of(5)).collect(),
        ctl_group_size: 1, // three groups: one controller per region
        churn: ChurnProfile::default(),
        // Group 1's controller goes dark for 60 s; starts sit in the
        // ping-safe band (102 ≡ 162 ≡ 12 mod 30).
        weather: Some(WeatherProgram {
            name: "one-group-blackout".into(),
            systems: vec![WeatherSystem::ControllerBlackout {
                group: 1,
                at_s: 102.0,
                heal_s: 162.0,
            }],
            recovery_slo_s: -1.0,
        }),
        cal: small_cal(),
        ckpt_period: SimDuration::from_secs(30),
        ckpt_offset: SimDuration::from_secs(20),
        duration: SimDuration::from_secs(260),
        warmup: SimDuration::from_secs(40),
        seed: 19,
        threads: 1,
        sanitize: false,
        uniform_lookahead: false,
    }
}

#[test]
fn one_group_blackout_leaves_other_groups_committing() {
    let cfg = blackout_fleet();
    let (mut dep, _schedule) = build_fleet(&cfg);
    dep.run_until(SimTime::ZERO + cfg.duration);

    let commits = dep.ms_commits();
    let window = |r: usize, lo: u64, hi: u64| {
        commits
            .iter()
            .filter(|&&(reg, _, at)| {
                reg == r && at > SimTime::from_secs(lo) && at < SimTime::from_secs(hi)
            })
            .count()
    };

    // Healthy groups commit straight through the blackout window.
    assert!(
        window(0, 106, 162) >= 1,
        "region 0 froze during another group's blackout: {commits:?}"
    );
    assert!(
        window(2, 106, 162) >= 1,
        "region 2 froze during another group's blackout: {commits:?}"
    );
    // The dark group commits nothing inside the window...
    assert_eq!(
        window(1, 106, 162),
        0,
        "region 1 committed through its own controller blackout: {commits:?}"
    );
    // ...but resumes after the heal.
    assert!(
        window(1, 162, 260) >= 1,
        "region 1 never resumed after the heal: {commits:?}"
    );
    assert!(!dep.ms_is_stopped(1), "region 1 wrongly stopped");

    // The group controller observed its own severed episode, and no
    // round was ever committed twice across the resync.
    assert!(
        dep.ms_severed_episodes().iter().any(|&(r, _, _)| r == 1),
        "no severed episode recorded for the dark group: {:?}",
        dep.ms_severed_episodes()
    );
    let mut seen = std::collections::BTreeSet::new();
    for &(r, v, _) in &commits {
        assert!(seen.insert((r, v)), "round (r{r}, v{v}) committed twice");
    }
}
