//! `msx` — regenerate the paper's tables and figures.
//!
//! ```text
//! msx table1 [--quick] [--seeds N]
//! msx fig8   [--quick] [--seeds N]
//! msx fig9   [--quick] [--seeds N] [--max-n N]
//! msx fig10  [--quick] [--seeds N]
//! msx all    [--quick] [--seeds N]
//! ```
//!
//! Text tables print to stdout; JSON copies land in `./results/`.

use std::path::PathBuf;

use experiments::{ablate, fig10, fig8, fig9, table1, ExpOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let seeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok());
    let max_n = args
        .iter()
        .position(|a| a == "--max-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(8);

    let mut opts = if quick {
        ExpOptions::quick()
    } else {
        ExpOptions::default()
    };
    if let Some(s) = seeds {
        opts.seeds = s;
    }

    let out = PathBuf::from("results");
    let started = std::time::Instant::now();

    match cmd {
        "table1" => table1_cmd(opts, &out),
        "fig8" => fig8_cmd(opts, &out),
        "fig9" => fig9_cmd(opts, max_n, &out),
        "fig10" => fig10_cmd(opts, &out),
        "ablate" => ablate_cmd(opts, &out),
        "all" => {
            table1_cmd(opts, &out);
            fig8_cmd(opts, &out);
            fig9_cmd(opts, max_n, &out);
            fig10_cmd(opts, &out);
            ablate_cmd(opts, &out);
        }
        other => {
            eprintln!("unknown command '{other}'; use table1|fig8|fig9|fig10|ablate|all");
            std::process::exit(2);
        }
    }
    eprintln!("[msx] done in {:.1}s", started.elapsed().as_secs_f64());
}

fn table1_cmd(opts: ExpOptions, out: &PathBuf) {
    eprintln!("[msx] Table I ({} seed(s))...", opts.seeds);
    let r = table1::run_table1(opts);
    let t = r.table();
    println!("{}", t.render());
    let _ = t.save_json(out, "table1");
}

fn fig8_cmd(opts: ExpOptions, out: &PathBuf) {
    eprintln!("[msx] Fig 8 ({} seed(s))...", opts.seeds);
    let r = fig8::run_fig8(opts);
    for (i, t) in r.tables().iter().enumerate() {
        println!("{}", t.render());
        let _ = t.save_json(out, &format!("fig8_{i}"));
    }
}

fn fig9_cmd(opts: ExpOptions, max_n: u32, out: &PathBuf) {
    eprintln!("[msx] Fig 9 (n = 0..={max_n}, {} seed(s))...", opts.seeds);
    let r = fig9::run_fig9(opts, max_n);
    for (i, t) in r.tables(max_n).iter().enumerate() {
        println!("{}", t.render());
        let _ = t.save_json(out, &format!("fig9_{i}"));
    }
}

fn ablate_cmd(opts: ExpOptions, out: &PathBuf) {
    eprintln!("[msx] ablations...");
    let r = ablate::run_ablation(opts);
    let t = r.table();
    println!("{}", t.render());
    let _ = t.save_json(out, "ablations");
}

fn fig10_cmd(opts: ExpOptions, out: &PathBuf) {
    eprintln!("[msx] Fig 10 ({} seed(s))...", opts.seeds);
    let r = fig10::run_fig10(opts);
    for (i, t) in r.tables().iter().enumerate() {
        println!("{}", t.render());
        let _ = t.save_json(out, &format!("fig10_{i}"));
    }
}
