//! `msx` — regenerate the paper's tables and figures, and run
//! fleet-scale scenarios.
//!
//! ```text
//! msx table1 [--quick] [--seeds N]
//! msx fig8   [--quick] [--seeds N]
//! msx fig9   [--quick] [--seeds N] [--max-n N]
//! msx fig10  [--quick] [--seeds N]
//! msx all    [--quick] [--seeds N]
//! msx scenarios list
//! msx scenarios run --profile <stadium|commute|flash-crowd|lossy-wifi> [--seed N]
//! ```
//!
//! Text tables print to stdout; JSON copies land in `./results/`
//! (fleet reports under `./results/scenarios/`).

use std::path::{Path, PathBuf};

use experiments::report::{Cell, Table};
use experiments::{ablate, fig10, fig8, fig9, fleet, table1, ExpOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let seeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok());
    let max_n = args
        .iter()
        .position(|a| a == "--max-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(8);

    let mut opts = if quick {
        ExpOptions::quick()
    } else {
        ExpOptions::default()
    };
    if let Some(s) = seeds {
        opts.seeds = s;
    }

    let out = PathBuf::from("results");
    let started = std::time::Instant::now();

    match cmd {
        "table1" => table1_cmd(opts, &out),
        "fig8" => fig8_cmd(opts, &out),
        "fig9" => fig9_cmd(opts, max_n, &out),
        "fig10" => fig10_cmd(opts, &out),
        "ablate" => ablate_cmd(opts, &out),
        "scenarios" => scenarios_cmd(&args, &out),
        "all" => {
            table1_cmd(opts, &out);
            fig8_cmd(opts, &out);
            fig9_cmd(opts, max_n, &out);
            fig10_cmd(opts, &out);
            ablate_cmd(opts, &out);
        }
        other => {
            eprintln!("unknown command '{other}'; use table1|fig8|fig9|fig10|ablate|scenarios|all");
            std::process::exit(2);
        }
    }
    eprintln!("[msx] done in {:.1}s", started.elapsed().as_secs_f64());
}

fn scenarios_cmd(args: &[String], out: &Path) {
    let sub = args.get(1).map(String::as_str).unwrap_or("list");
    match sub {
        "list" => {
            println!("available scenario profiles:");
            for name in fleet::PROFILE_NAMES {
                let cfg = fleet::profile(name, 1).expect("built-in profile");
                println!(
                    "  {name:<12} {} regions × {} phones = {} total, {:.0}s sim",
                    cfg.regions.len(),
                    cfg.regions.first().map(|r| r.phones).unwrap_or(0),
                    cfg.total_phones(),
                    cfg.duration.as_secs_f64(),
                );
            }
        }
        "run" => {
            let name = args
                .iter()
                .position(|a| a == "--profile")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("stadium");
            let seed = args
                .iter()
                .position(|a| a == "--seed")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(1);
            let Some(cfg) = fleet::profile(name, seed) else {
                eprintln!(
                    "unknown profile '{name}'; available: {}",
                    fleet::PROFILE_NAMES.join(", ")
                );
                std::process::exit(2);
            };
            eprintln!(
                "[msx] scenario '{name}' seed {seed}: {} regions × ~{} phones ({} total), {:.0}s sim...",
                cfg.regions.len(),
                cfg.regions.first().map(|r| r.phones).unwrap_or(0),
                cfg.total_phones(),
                cfg.duration.as_secs_f64(),
            );
            let r = fleet::run_fleet(&cfg);
            println!("{}", fleet_table(&r).render());
            let dir = out.join("scenarios");
            match r.save_json(&dir) {
                Ok(path) => eprintln!(
                    "[msx] report: {} (digest {:#018x})",
                    path.display(),
                    r.digest
                ),
                Err(e) => eprintln!("[msx] failed to write report: {e}"),
            }
        }
        other => {
            eprintln!("unknown scenarios subcommand '{other}'; use list|run");
            std::process::exit(2);
        }
    }
}

fn fleet_table(r: &fleet::FleetReport) -> Table {
    let mut t = Table::new(
        format!("scenario '{}' (seed {})", r.profile, r.seed),
        vec!["metric".into(), "value".into()],
    );
    t.row("regions", vec![Cell::Num(r.regions as f64)]);
    t.row("phones", vec![Cell::Num(r.phones as f64)]);
    t.row("sim seconds", vec![Cell::Num(r.sim_secs)]);
    t.row(
        "events processed",
        vec![Cell::Num(r.events_processed as f64)],
    );
    t.row("events/sec (wall)", vec![Cell::Num(r.events_per_sec)]);
    t.row("churn: failures", vec![Cell::Num(r.churn_failures as f64)]);
    t.row(
        "churn: departures",
        vec![Cell::Num(r.churn_departures as f64)],
    );
    t.row("churn: rejoins", vec![Cell::Num(r.churn_rejoins as f64)]);
    t.row("sink outputs", vec![Cell::Num(r.outputs as f64)]);
    t.row("mean tput (tuple/s)", vec![Cell::Num(r.mean_throughput)]);
    t.row(
        "mean latency (s)",
        vec![if r.mean_latency_s >= 0.0 {
            Cell::Num(r.mean_latency_s)
        } else {
            Cell::Dash
        }],
    );
    t.row("recoveries", vec![Cell::Num(r.recoveries as f64)]);
    t.row("mean recovery (s)", vec![Cell::Num(r.mean_recovery_s)]);
    t.row(
        "departures handled",
        vec![Cell::Num(r.departures_handled as f64)],
    );
    t.row("region stops", vec![Cell::Num(r.region_stops as f64)]);
    t.row(
        "checkpoint commits",
        vec![Cell::Num(r.checkpoint_commits as f64)],
    );
    t.row("wifi MB", vec![Cell::Num(r.wifi_total_bytes as f64 / 1e6)]);
    t.row(
        "cellular MB",
        vec![Cell::Num(r.cell_total_bytes as f64 / 1e6)],
    );
    t.row("cellular drops", vec![Cell::Num(r.cell_drops as f64)]);
    t.row(
        "cellular max queue KB",
        vec![Cell::Num(r.cell_max_queue_depth as f64 / 1024.0)],
    );
    for (i, (&d, &q)) in r
        .per_region_cell_drops
        .iter()
        .zip(&r.per_region_cell_max_queue_depth)
        .enumerate()
    {
        t.row(
            format!("  region {i} drops / maxq KB"),
            vec![Cell::Num(d as f64), Cell::Num(q as f64 / 1024.0)],
        );
    }
    t
}

fn table1_cmd(opts: ExpOptions, out: &Path) {
    eprintln!("[msx] Table I ({} seed(s))...", opts.seeds);
    let r = table1::run_table1(opts);
    let t = r.table();
    println!("{}", t.render());
    let _ = t.save_json(out, "table1");
}

fn fig8_cmd(opts: ExpOptions, out: &Path) {
    eprintln!("[msx] Fig 8 ({} seed(s))...", opts.seeds);
    let r = fig8::run_fig8(opts);
    for (i, t) in r.tables().iter().enumerate() {
        println!("{}", t.render());
        let _ = t.save_json(out, &format!("fig8_{i}"));
    }
}

fn fig9_cmd(opts: ExpOptions, max_n: u32, out: &Path) {
    eprintln!("[msx] Fig 9 (n = 0..={max_n}, {} seed(s))...", opts.seeds);
    let r = fig9::run_fig9(opts, max_n);
    for (i, t) in r.tables(max_n).iter().enumerate() {
        println!("{}", t.render());
        let _ = t.save_json(out, &format!("fig9_{i}"));
    }
}

fn ablate_cmd(opts: ExpOptions, out: &Path) {
    eprintln!("[msx] ablations...");
    let r = ablate::run_ablation(opts);
    let t = r.table();
    println!("{}", t.render());
    let _ = t.save_json(out, "ablations");
}

fn fig10_cmd(opts: ExpOptions, out: &Path) {
    eprintln!("[msx] Fig 10 ({} seed(s))...", opts.seeds);
    let r = fig10::run_fig10(opts);
    for (i, t) in r.tables().iter().enumerate() {
        println!("{}", t.render());
        let _ = t.save_json(out, &format!("fig10_{i}"));
    }
}
