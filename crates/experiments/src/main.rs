//! `msx` — regenerate the paper's tables and figures, and run
//! fleet-scale scenarios.
//!
//! ```text
//! msx table1 [--quick] [--seeds N]
//! msx fig8   [--quick] [--seeds N]
//! msx fig9   [--quick] [--seeds N] [--max-n N]
//! msx fig10  [--quick] [--seeds N]
//! msx all    [--quick] [--seeds N]
//! msx scenarios list
//! msx scenarios run --profile <stadium|commute|flash-crowd|lossy-wifi|metro> [--seed N] [--threads N] [--sanitize] [--weather NAME] [--uniform-lookahead]
//! msx scenarios matrix [--smoke] [--seed N] [--threads N]
//! msx bench fleet [--smoke] [--threads N] [--out FILE]
//! msx lint [--rules] [--root DIR]
//! ```
//!
//! Text tables print to stdout; JSON copies land in `./results/`
//! (fleet reports under `./results/scenarios/`). `bench fleet` emits
//! the tracked `BENCH_*.json` fleet-throughput checkpoint.

use std::path::{Path, PathBuf};

use experiments::report::{Cell, Table};
use experiments::{ablate, fig10, fig8, fig9, fleet, table1, weather, ExpOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let seeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok());
    let max_n = args
        .iter()
        .position(|a| a == "--max-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(8);

    let mut opts = if quick {
        ExpOptions::quick()
    } else {
        ExpOptions::default()
    };
    if let Some(s) = seeds {
        opts.seeds = s;
    }

    let out = PathBuf::from("results");
    let started = std::time::Instant::now();

    match cmd {
        "table1" => table1_cmd(opts, &out),
        "fig8" => fig8_cmd(opts, &out),
        "fig9" => fig9_cmd(opts, max_n, &out),
        "fig10" => fig10_cmd(opts, &out),
        "ablate" => ablate_cmd(opts, &out),
        "scenarios" => scenarios_cmd(&args, &out),
        "bench" => bench_cmd(&args),
        "lint" => lint_cmd(&args),
        "all" => {
            table1_cmd(opts, &out);
            fig8_cmd(opts, &out);
            fig9_cmd(opts, max_n, &out);
            fig10_cmd(opts, &out);
            ablate_cmd(opts, &out);
        }
        other => {
            eprintln!(
                "unknown command '{other}'; use table1|fig8|fig9|fig10|ablate|scenarios|bench|lint|all"
            );
            std::process::exit(2);
        }
    }
    eprintln!("[msx] done in {:.1}s", started.elapsed().as_secs_f64());
}

/// `msx lint [--rules] [--root DIR]` — run the determinism lint pass
/// over every `crates/*/src` file. Exits 1 on any finding, 2 if the
/// workspace cannot be read. See `crates/simlint` and the README's
/// "Determinism rules" section for the rule catalogue.
fn lint_cmd(args: &[String]) {
    if args.iter().any(|a| a == "--rules") {
        println!("simlint rules:");
        for r in simlint::RULES {
            println!("  {}  {}", r.id, r.summary);
            println!("        {}", r.rationale);
        }
        println!("  L100  an allow directive that suppressed nothing");
        println!("  L101  a malformed allow directive");
        println!("\nsuppress with a comment: simlint::allow(RULE): reason");
        return;
    }
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    match simlint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("[msx] lint clean: no determinism findings");
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("[msx] lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!(
                "[msx] lint: cannot read workspace at {}: {e}",
                root.display()
            );
            std::process::exit(2);
        }
    }
}

fn scenarios_cmd(args: &[String], out: &Path) {
    let sub = args.get(1).map(String::as_str).unwrap_or("list");
    match sub {
        "list" => {
            println!("available scenario profiles:");
            for name in fleet::PROFILE_NAMES {
                let cfg = fleet::profile(name, 1).expect("built-in profile");
                println!(
                    "  {name:<12} {} regions × {} phones = {} total, {:.0}s sim",
                    cfg.regions.len(),
                    cfg.regions.first().map(|r| r.phones).unwrap_or(0),
                    cfg.total_phones(),
                    cfg.duration.as_secs_f64(),
                );
            }
            println!("available weather programs (see README, \"Fault model & network weather\"):");
            for name in weather::WEATHER_NAMES {
                println!("  {name}");
            }
        }
        "run" => {
            let name = args
                .iter()
                .position(|a| a == "--profile")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("stadium");
            let seed = args
                .iter()
                .position(|a| a == "--seed")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(1);
            let threads = args
                .iter()
                .position(|a| a == "--threads")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(1);
            let Some(mut cfg) = fleet::profile(name, seed) else {
                eprintln!(
                    "unknown profile '{name}'; available: {}",
                    fleet::PROFILE_NAMES.join(", ")
                );
                std::process::exit(2);
            };
            cfg.threads = threads.max(1);
            cfg.sanitize = args.iter().any(|a| a == "--sanitize");
            cfg.uniform_lookahead = args.iter().any(|a| a == "--uniform-lookahead");
            if let Some(wname) = args
                .iter()
                .position(|a| a == "--weather")
                .and_then(|i| args.get(i + 1))
            {
                let Some(program) = weather::weather(wname, seed, cfg.topo()) else {
                    eprintln!(
                        "unknown weather '{wname}'; available: {}",
                        weather::WEATHER_NAMES.join(", ")
                    );
                    std::process::exit(2);
                };
                cfg.weather = Some(program);
            }
            eprintln!(
                "[msx] scenario '{name}' seed {seed}: {} regions × ~{} phones ({} total), {:.0}s sim...",
                cfg.regions.len(),
                cfg.regions.first().map(|r| r.phones).unwrap_or(0),
                cfg.total_phones(),
                cfg.duration.as_secs_f64(),
            );
            let r = fleet::run_fleet(&cfg);
            if cfg.sanitize {
                eprintln!(
                    "[msx] causality sanitizer: {} windows clean, ledger {:#018x}",
                    r.sanitizer_windows, r.sanitizer_ledger
                );
            }
            println!("{}", fleet_table(&r).render());
            let dir = out.join("scenarios");
            match r.save_json(&dir) {
                Ok(path) => eprintln!(
                    "[msx] report: {} (digest {:#018x})",
                    path.display(),
                    r.digest
                ),
                Err(e) => eprintln!("[msx] failed to write report: {e}"),
            }
            let faults = report_faults(&r);
            if !faults.is_empty() {
                for f in &faults {
                    eprintln!("[msx] FAIL: {f}");
                }
                std::process::exit(1);
            }
        }
        "matrix" => matrix_cmd(args, out),
        other => {
            eprintln!("unknown scenarios subcommand '{other}'; use list|run|matrix");
            std::process::exit(2);
        }
    }
}

/// The per-report conditions that make `scenarios run`/`matrix` fail:
/// causality violations, pool aliasing, a missed recovery SLO, or a
/// round committed twice across a heal.
fn report_faults(r: &fleet::FleetReport) -> Vec<String> {
    let mut faults = Vec::new();
    if r.sanitizer_violations > 0 {
        faults.push(format!(
            "causality sanitizer recorded {} violation(s)",
            r.sanitizer_violations
        ));
    }
    if r.pool_aliasing > 0 {
        faults.push(format!(
            "event pool recorded {} generation mismatch(es) (aliased slot)",
            r.pool_aliasing
        ));
    }
    if r.slo_violations > 0 {
        faults.push(format!(
            "{} fault window(s) missed the {:.0}s recovery SLO",
            r.slo_violations, r.recovery_slo_s
        ));
    }
    if r.duplicate_commits > 0 {
        faults.push(format!(
            "{} checkpoint round(s) committed more than once",
            r.duplicate_commits
        ));
    }
    faults
}

/// `msx scenarios matrix [--smoke] [--seed N] [--threads N]`
///
/// Runs the full profile × weather grid. Every cell runs twice under
/// the causality sanitizer — once single-threaded, once with
/// `--threads` workers (default 4) — and the two digests must be
/// bit-identical. Emits a per-cell regression table (commit rate,
/// recovery p50/p99, cellular drops/rejects) plus a machine-readable
/// `results/scenarios/matrix.json` whose fields are all deterministic,
/// so two runs of the same binary can be diffed byte-for-byte.
/// `--smoke` shrinks every profile to 3 regions × ≤8 phones over 360 s
/// for CI. Exits nonzero on any digest mismatch, sanitizer violation,
/// missed recovery SLO, or double-committed round.
fn matrix_cmd(args: &[String], out: &Path) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1);
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(4)
        .max(2);
    eprintln!(
        "[msx] scenario matrix: {} profiles × {} weathers, seed {seed}, digests at 1 vs {threads} threads{}...",
        fleet::PROFILE_NAMES.len(),
        weather::WEATHER_NAMES.len(),
        if smoke { " (smoke scale)" } else { "" },
    );

    let mut labels = Vec::new();
    let mut jobs: Vec<experiments::Job<(fleet::FleetReport, fleet::FleetReport)>> = Vec::new();
    for pname in fleet::PROFILE_NAMES {
        for wname in weather::WEATHER_NAMES {
            labels.push((*pname, *wname));
            let (p, w) = (pname.to_string(), wname.to_string());
            jobs.push(Box::new(move || {
                let mut cfg = fleet::profile(&p, seed).expect("built-in profile");
                if smoke {
                    cfg.regions.truncate(3);
                    for region in &mut cfg.regions {
                        region.phones = region.phones.min(8);
                    }
                    // 360 s keeps the latest partition-heal window and
                    // its post-heal commit round inside the horizon;
                    // the checkpoint cadence shrinks with it so the
                    // post-heal commit opportunities per horizon match
                    // the full-scale profiles (~5-6 rounds).
                    cfg.duration = simkernel::SimDuration::from_secs(360);
                    cfg.warmup = simkernel::SimDuration::from_secs(60);
                    cfg.ckpt_period = simkernel::SimDuration::from_secs(60);
                    cfg.ckpt_offset = simkernel::SimDuration::from_secs(20);
                }
                cfg.weather = weather::weather(&w, seed, cfg.topo());
                cfg.sanitize = true;
                cfg.threads = 1;
                let r1 = fleet::run_fleet(&cfg);
                let mut cfg_n = cfg.clone();
                cfg_n.threads = threads;
                let rn = fleet::run_fleet(&cfg_n);
                (r1, rn)
            }));
        }
    }
    // Full-scale cells are too big to overlap safely; smoke cells fan
    // out across cores.
    let results = experiments::run_jobs(smoke, jobs);

    let mut t = Table::new(
        format!("scenario matrix (seed {seed})"),
        vec![
            "profile/weather".into(),
            "commits/s".into(),
            "rec p50 s".into(),
            "rec p99 s".into(),
            "drops".into(),
            "rejects".into(),
            "slo miss".into(),
            "dup".into(),
        ],
    );
    let num_or_dash = |x: f64| if x >= 0.0 { Cell::Num(x) } else { Cell::Dash };
    let mut cells_json = Vec::new();
    let mut failures = Vec::new();
    for ((pname, wname), (r1, rn)) in labels.iter().zip(&results) {
        let label = format!("{pname}/{wname}");
        if r1.digest != rn.digest {
            failures.push(format!(
                "{label}: digest {:#018x} at 1 thread vs {:#018x} at {threads}",
                r1.digest, rn.digest
            ));
        }
        // Pooled slots never cross shards, so recycling is a pure
        // function of the schedule — any divergence means the pool
        // leaked into the parallel schedule.
        if r1.pool_recycled != rn.pool_recycled {
            failures.push(format!(
                "{label}: pool recycling diverged: {} at 1 thread vs {} at {threads}",
                r1.pool_recycled, rn.pool_recycled
            ));
        }
        for (tag, r) in [("1 thread", r1), ("multi-thread", rn)] {
            for f in report_faults(r) {
                failures.push(format!("{label} ({tag}): {f}"));
            }
        }
        t.row(
            label.as_str(),
            vec![
                Cell::Num(r1.checkpoint_commits as f64 / r1.sim_secs.max(1e-9)),
                num_or_dash(r1.recovery_p50_s),
                num_or_dash(r1.recovery_p99_s),
                Cell::Num(r1.cell_drops as f64),
                Cell::Num(r1.cell_rejects as f64),
                Cell::Num(r1.slo_violations as f64),
                Cell::Num(r1.duplicate_commits as f64),
            ],
        );
        // Deterministic fields only, so matrix.json diffs clean across
        // runs of the same binary (no wall-clock, no host data).
        cells_json.push(serde_json::json!({
            "profile": pname,
            "weather": wname,
            "events": r1.events_processed,
            "digest": format!("{:#018x}", r1.digest),
            "digest_threads_equal": r1.digest == rn.digest,
            "checkpoint_commits": r1.checkpoint_commits,
            "weather_injections": r1.weather_injections,
            "fault_windows": r1.fault_timelines.len(),
            "recovery_p50_s": r1.recovery_p50_s,
            "recovery_p99_s": r1.recovery_p99_s,
            "cell_drops": r1.cell_drops,
            "cell_rejects": r1.cell_rejects,
            "cell_severed_sends": r1.cell_severed_sends,
            "severed_observed": r1.severed_observed,
            "slo_violations": r1.slo_violations,
            "duplicate_commits": r1.duplicate_commits,
            "sanitizer_violations": r1.sanitizer_violations.max(rn.sanitizer_violations),
            "pool_recycled": r1.pool_recycled,
            "pool_aliasing": r1.pool_aliasing.max(rn.pool_aliasing),
        }));
    }
    println!("{}", t.render());

    let dir = out.join("scenarios");
    let doc = serde_json::json!({
        "seed": seed,
        "smoke": smoke,
        "threads_compared": vec![1usize, threads],
        "cells": cells_json,
        "failures": failures,
    });
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[msx] cannot create {}: {e}", dir.display());
    } else {
        let path = dir.join("matrix.json");
        match std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serialize matrix") + "\n",
        ) {
            Ok(()) => eprintln!("[msx] matrix report: {}", path.display()),
            Err(e) => eprintln!("[msx] failed to write {}: {e}", path.display()),
        }
    }

    if failures.is_empty() {
        println!(
            "[msx] matrix OK: {} cells, digests thread-count-invariant, no sanitizer/SLO/commit faults",
            results.len()
        );
    } else {
        for f in &failures {
            eprintln!("[msx] FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// `msx bench fleet [--smoke] [--threads N] [--out FILE] [--check FILE]`
///
/// Runs the tracked fleet-engine throughput benchmark — the tracked
/// workload at 1/2/4/8 worker threads so the scaling curve is visible
/// in the checkpoint — and writes a `BENCH_*.json`. `--smoke` runs a
/// seconds-scale variant whose deterministic fields (event count,
/// digest, and the thread-scaling shape: every thread count must
/// reproduce the digest) are compared against the checked-in
/// checkpoint named by `--check` (default `BENCH_0010.json`) — exits
/// nonzero on drift, so CI catches any change to the simulated
/// schedule without caring about the wall clock of the runner.
fn bench_cmd(args: &[String]) {
    let what = args.get(1).map(String::as_str).unwrap_or("fleet");
    if what != "fleet" && !what.starts_with("--") {
        eprintln!("unknown bench target '{what}'; use fleet");
        std::process::exit(2);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(host_cores)
        .max(1);
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_0010.json".to_string());

    /// Thread counts every scaling row is pinned at.
    const THREAD_CURVE: [usize; 4] = [1, 2, 4, 8];

    let timed = |cfg: &fleet::FleetConfig| {
        let wall = std::time::Instant::now();
        let r = fleet::run_fleet(cfg);
        let secs = wall.elapsed().as_secs_f64();
        eprintln!(
            "[msx] bench {} threads={}: {} events in {:.2}s = {:.0} ev/s (digest {:#018x})",
            cfg.name,
            cfg.threads,
            r.events_processed,
            secs,
            r.events_processed as f64 / secs.max(1e-9),
            r.digest
        );
        (r, secs)
    };
    let run_json = |r: &fleet::FleetReport, secs: f64, threads: usize| {
        serde_json::json!({
            "threads": threads,
            "events": r.events_processed,
            "wall_secs": (secs * 1000.0).round() / 1000.0,
            "events_per_sec": (r.events_processed as f64 / secs.max(1e-9)).round(),
            "digest": format!("{:#018x}", r.digest),
        })
    };

    // Smoke workload: small enough for CI, still multi-region so the
    // parallel kernel's merge path is exercised. Run the whole thread
    // curve so the checkpoint pins the scaling *shape*, not one pair.
    let mut smoke_cfg = fleet::bench_profile(2, 8, 7);
    smoke_cfg.duration = simkernel::SimDuration::from_secs(30);
    let smoke_runs: Vec<fleet::FleetReport> = THREAD_CURVE
        .iter()
        .map(|&t| {
            let mut c = smoke_cfg.clone();
            c.threads = t;
            timed(&c).0
        })
        .collect();
    let s1 = &smoke_runs[0];
    for (r, &t) in smoke_runs.iter().zip(&THREAD_CURVE) {
        assert_eq!(
            s1.digest, r.digest,
            "smoke digest differs between 1 and {t} threads"
        );
        assert_eq!(
            s1.pool_recycled, r.pool_recycled,
            "smoke pool recycling differs between 1 and {t} threads"
        );
    }
    let smoke_json = serde_json::json!({
        "workload": serde_json::json!({"regions": 2u64, "phones": 16u64, "sim_secs": 30.0, "seed": 7u64}),
        "events": s1.events_processed,
        "digest": format!("{:#018x}", s1.digest),
        "thread_counts": THREAD_CURVE.to_vec(),
        "thread_digest_equal": true,
        "pool_recycled": s1.pool_recycled,
    });

    if smoke {
        let checked_in: serde_json::Value = match std::fs::read_to_string(&check_path) {
            Ok(s) => serde_json::from_str(&s).expect("parse checked-in bench checkpoint"),
            Err(e) => {
                eprintln!("[msx] cannot read {check_path}: {e}");
                std::process::exit(1);
            }
        };
        let expect = &checked_in["smoke"];
        let mut drift = Vec::new();
        // Deterministic fields AND the thread-scaling shape: the same
        // thread counts must have been swept and all must reproduce
        // the digest (the sweep above already asserted equality, so a
        // mismatch here means the checkpoint's shape is stale).
        for field in ["events", "digest", "thread_counts", "thread_digest_equal"] {
            if expect[field] != smoke_json[field] {
                drift.push(format!(
                    "{field}: checked-in {} vs fresh {}",
                    expect[field], smoke_json[field]
                ));
            }
        }
        if drift.is_empty() {
            println!(
                "[msx] bench smoke OK: {} events, digest {} at {:?} threads match {}",
                s1.events_processed, smoke_json["digest"], THREAD_CURVE, check_path
            );
        } else {
            eprintln!(
                "[msx] bench smoke DRIFT vs {check_path} — the simulated schedule changed; \
                 regenerate with `msx bench fleet --out {check_path}` and commit the diff:"
            );
            for d in &drift {
                eprintln!("[msx]   {d}");
            }
            std::process::exit(1);
        }
        return;
    }

    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_0010.json".to_string());

    // The tracked workload: 1000 phones (8 × 125), 60 s window, run
    // over the whole thread curve so the checkpoint carries one
    // wall-clock row per thread count (the scaling curve).
    let cfg1 = fleet::bench_profile(8, 125, 42);
    let mut curve: Vec<(fleet::FleetReport, f64, usize)> = Vec::new();
    for &t in &THREAD_CURVE {
        let mut c = cfg1.clone();
        c.threads = t;
        let (r, secs) = timed(&c);
        curve.push((r, secs, t));
    }
    if !THREAD_CURVE.contains(&threads) {
        let mut c = cfg1.clone();
        c.threads = threads;
        let (r, secs) = timed(&c);
        curve.push((r, secs, threads));
    }
    let r1 = curve[0].0.clone();
    for (r, _, t) in &curve {
        assert_eq!(
            r1.digest, r.digest,
            "digest differs between 1 and {t} threads"
        );
    }

    // Thread-equality of the full profile library, at each profile's
    // full spec.
    let mut profiles = Vec::new();
    for name in fleet::PROFILE_NAMES {
        let mut p1 = fleet::profile(name, 1).expect("built-in profile");
        p1.threads = 1;
        let (d1, _) = timed(&p1);
        let mut pn = p1.clone();
        pn.threads = threads.max(2);
        let (dn, _) = timed(&pn);
        assert_eq!(
            d1.digest, dn.digest,
            "profile {name}: digest differs between 1 and {} threads",
            pn.threads
        );
        profiles.push(serde_json::json!({
            "profile": name,
            "seed": 1,
            "digest": format!("{:#018x}", d1.digest),
            "thread_digest_equal": true,
        }));
    }

    let best = curve
        .iter()
        .map(|(r, secs, _)| r.events_processed as f64 / secs.max(1e-9))
        .fold(0.0f64, f64::max);
    let baseline = 1_200_000.0; // pre-series events/s at 1000 phones (ROADMAP item 2)
    let doc = serde_json::json!({
        "bench_id": "BENCH_0010",
        "series": "fleet-engine-throughput",
        "unix_time": std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        "host_cores": host_cores,
        "workload": serde_json::json!({"regions": 8u64, "phones": 1000u64, "sim_secs": 60.0, "seed": 42u64}),
        "baseline_events_per_sec": baseline,
        "runs": curve
            .iter()
            .map(|(r, secs, t)| run_json(r, *secs, *t))
            .collect::<Vec<_>>(),
        "best_events_per_sec": best.round(),
        "speedup_vs_baseline": (best / baseline * 100.0).round() / 100.0,
        "profile_digests": profiles,
        "smoke": smoke_json,
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serialize bench checkpoint") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "[msx] wrote {out_path}: best {:.0} ev/s = {:.2}x the {:.1}M ev/s baseline",
        best,
        best / baseline,
        baseline / 1e6
    );
}

fn fleet_table(r: &fleet::FleetReport) -> Table {
    let mut t = Table::new(
        format!("scenario '{}' (seed {})", r.profile, r.seed),
        vec!["metric".into(), "value".into()],
    );
    t.row("regions", vec![Cell::Num(r.regions as f64)]);
    t.row("phones", vec![Cell::Num(r.phones as f64)]);
    t.row("sim seconds", vec![Cell::Num(r.sim_secs)]);
    t.row(
        "events processed",
        vec![Cell::Num(r.events_processed as f64)],
    );
    t.row("events/sec (wall)", vec![Cell::Num(r.events_per_sec)]);
    t.row("churn: failures", vec![Cell::Num(r.churn_failures as f64)]);
    t.row(
        "churn: departures",
        vec![Cell::Num(r.churn_departures as f64)],
    );
    t.row("churn: rejoins", vec![Cell::Num(r.churn_rejoins as f64)]);
    t.row("sink outputs", vec![Cell::Num(r.outputs as f64)]);
    t.row("mean tput (tuple/s)", vec![Cell::Num(r.mean_throughput)]);
    t.row(
        "mean latency (s)",
        vec![if r.mean_latency_s >= 0.0 {
            Cell::Num(r.mean_latency_s)
        } else {
            Cell::Dash
        }],
    );
    t.row("recoveries", vec![Cell::Num(r.recoveries as f64)]);
    t.row("mean recovery (s)", vec![Cell::Num(r.mean_recovery_s)]);
    t.row(
        "departures handled",
        vec![Cell::Num(r.departures_handled as f64)],
    );
    t.row("region stops", vec![Cell::Num(r.region_stops as f64)]);
    t.row(
        "checkpoint commits",
        vec![Cell::Num(r.checkpoint_commits as f64)],
    );
    t.row("wifi MB", vec![Cell::Num(r.wifi_total_bytes as f64 / 1e6)]);
    t.row(
        "cellular MB",
        vec![Cell::Num(r.cell_total_bytes as f64 / 1e6)],
    );
    t.row("cellular drops", vec![Cell::Num(r.cell_drops as f64)]);
    t.row(
        "cellular max queue KB",
        vec![Cell::Num(r.cell_max_queue_depth as f64 / 1024.0)],
    );
    for (i, (&d, &q)) in r
        .per_region_cell_drops
        .iter()
        .zip(&r.per_region_cell_max_queue_depth)
        .enumerate()
    {
        t.row(
            format!("  region {i} drops / maxq KB"),
            vec![Cell::Num(d as f64), Cell::Num(q as f64 / 1024.0)],
        );
    }
    if !r.weather.is_empty() {
        let num_or_dash = |x: f64| if x >= 0.0 { Cell::Num(x) } else { Cell::Dash };
        t.row(
            format!("weather '{}' injections", r.weather),
            vec![Cell::Num(r.weather_injections as f64)],
        );
        t.row(
            "severed episodes seen",
            vec![Cell::Num(r.severed_observed as f64)],
        );
        t.row(
            "cell severed sends",
            vec![Cell::Num(r.cell_severed_sends as f64)],
        );
        t.row(
            "cell queue-drop KB",
            vec![Cell::Num(r.cell_queue_drop_bytes as f64 / 1024.0)],
        );
        t.row("cell rejects", vec![Cell::Num(r.cell_rejects as f64)]);
        t.row("recovery SLO (s)", vec![num_or_dash(r.recovery_slo_s)]);
        t.row(
            "recovery p50 / p99 (s)",
            vec![num_or_dash(r.recovery_p50_s), num_or_dash(r.recovery_p99_s)],
        );
        t.row("SLO violations", vec![Cell::Num(r.slo_violations as f64)]);
        t.row(
            "duplicate commits",
            vec![Cell::Num(r.duplicate_commits as f64)],
        );
        for tl in &r.fault_timelines {
            t.row(
                format!(
                    "  region {} fault {:.0}s heal {:.0}s: recovery s",
                    tl.region, tl.fault_at_s, tl.heal_at_s
                ),
                vec![num_or_dash(tl.recovery_s)],
            );
        }
    }
    t
}

fn table1_cmd(opts: ExpOptions, out: &Path) {
    eprintln!("[msx] Table I ({} seed(s))...", opts.seeds);
    let r = table1::run_table1(opts);
    let t = r.table();
    println!("{}", t.render());
    let _ = t.save_json(out, "table1");
}

fn fig8_cmd(opts: ExpOptions, out: &Path) {
    eprintln!("[msx] Fig 8 ({} seed(s))...", opts.seeds);
    let r = fig8::run_fig8(opts);
    for (i, t) in r.tables().iter().enumerate() {
        println!("{}", t.render());
        let _ = t.save_json(out, &format!("fig8_{i}"));
    }
}

fn fig9_cmd(opts: ExpOptions, max_n: u32, out: &Path) {
    eprintln!("[msx] Fig 9 (n = 0..={max_n}, {} seed(s))...", opts.seeds);
    let r = fig9::run_fig9(opts, max_n);
    for (i, t) in r.tables(max_n).iter().enumerate() {
        println!("{}", t.render());
        let _ = t.save_json(out, &format!("fig9_{i}"));
    }
}

fn ablate_cmd(opts: ExpOptions, out: &Path) {
    eprintln!("[msx] ablations...");
    let r = ablate::run_ablation(opts);
    let t = r.table();
    println!("{}", t.render());
    let _ = t.save_json(out, "ablations");
}

fn fig10_cmd(opts: ExpOptions, out: &Path) {
    eprintln!("[msx] Fig 10 ({} seed(s))...", opts.seeds);
    let r = fig10::run_fig10(opts);
    for (i, t) in r.tables().iter().enumerate() {
        println!("{}", t.render());
        let _ = t.save_json(out, &format!("fig10_{i}"));
    }
}
