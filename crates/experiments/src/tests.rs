//! Unit tests for the experiment harness itself.

#[cfg(test)]
mod unit {
    use crate::faults::failure_order;
    use crate::report::{Cell, Table};
    use crate::run::ClassBytes;
    use crate::{AppKind, Deployment, Platform, ScenarioConfig, Scheme};

    #[test]
    fn failure_order_covers_every_slot_once() {
        let dep = Deployment::build(ScenarioConfig {
            regions: 1,
            seed: 1,
            ..ScenarioConfig::default()
        });
        let order = failure_order(&dep, 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        // Idle slots come last; sources just before them.
        assert_eq!(&order[6..], &[6, 7], "idle last");
        assert!(order[4] == 0 || order[4] == 1, "sources after compute");
    }

    #[test]
    fn rep2_deployment_has_disjoint_flows_per_phone() {
        let dep = Deployment::build(ScenarioConfig {
            scheme: Scheme::Rep2,
            regions: 1,
            seed: 1,
            ..ScenarioConfig::default()
        });
        let handles = &dep.regions[0];
        let n = handles.graph.op_count() / 2;
        // Every phone hosts ops of exactly one flow.
        for slot in 0..8u32 {
            let flows: std::collections::BTreeSet<bool> = handles
                .op_slot
                .iter()
                .enumerate()
                .filter(|(_, &s)| s == slot)
                .map(|(op, _)| op >= n)
                .collect();
            assert!(flows.len() <= 1, "slot {slot} mixes flows");
        }
        // Flow 0 on the first half of phones, flow 1 on the second.
        for (op, &s) in handles.op_slot.iter().enumerate() {
            if op < n {
                assert!(s < 4);
            } else {
                assert!(s >= 4);
            }
        }
    }

    #[test]
    fn server_deployment_wires_uplink() {
        let dep = Deployment::build(ScenarioConfig {
            platform: Platform::Server {
                uplink_bps: 64_000.0,
            },
            regions: 2,
            seed: 1,
            ..ScenarioConfig::default()
        });
        assert!(dep.eth.is_some());
        for r in &dep.regions {
            assert!(r.uplink.is_some());
            assert_eq!(r.nodes.len(), 4, "4 servers per region");
        }
    }

    #[test]
    fn class_bytes_total_sums_all_classes() {
        let c = ClassBytes {
            data: 1,
            replication: 2,
            checkpoint: 3,
            preservation: 4,
            control: 5,
            recovery: 6,
        };
        assert_eq!(c.total(), 21);
    }

    #[test]
    fn scheme_labels_match_paper() {
        assert_eq!(Scheme::Ms.label(), "ms-8");
        assert_eq!(Scheme::Dist(3).label(), "dist-3");
        assert_eq!(AppKind::SignalGuru.label(), "SignalGuru");
    }

    #[test]
    fn table_cells_render_bands() {
        let mut t = Table::new("x", vec!["a".into(), "b".into()]);
        t.row("r", vec![Cell::Num(f64::INFINITY), Cell::Pct(0.5)]);
        let s = t.render();
        assert!(s.contains("inf"));
        assert!(s.contains("50%"));
    }

    #[test]
    fn run_jobs_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = crate::run_jobs(true, jobs);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }
}
