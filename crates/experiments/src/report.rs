//! Paper-style text tables plus machine-readable JSON.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A generic labeled numeric table (rows × columns).
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Rows: label + cells.
    pub rows: Vec<(String, Vec<Cell>)>,
}

/// One table cell.
#[derive(Debug, Clone, Copy, Serialize)]
pub enum Cell {
    /// A number rendered with 3 significant decimals.
    Num(f64),
    /// A percentage (of 1.0).
    Pct(f64),
    /// Not applicable / unrecoverable.
    Dash,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Num(x) if x.is_finite() => {
                if x.abs() >= 100.0 {
                    format!("{x:.0}")
                } else if x.abs() >= 10.0 {
                    format!("{x:.1}")
                } else {
                    format!("{x:.3}")
                }
            }
            Cell::Num(_) => "inf".into(),
            Cell::Pct(x) if x.is_finite() => format!("{:.0}%", x * 100.0),
            Cell::Pct(_) => "inf".into(),
            Cell::Dash => "-".into(),
        }
    }
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<Cell>) {
        self.rows.push((label.into(), cells));
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<(String, Vec<String>)> = self
            .rows
            .iter()
            .map(|(l, cs)| (l.clone(), cs.iter().map(|c| c.render()).collect()))
            .collect();
        for (label, cells) in &rendered {
            widths[0] = widths[0].max(label.len());
            for (i, c) in cells.iter().enumerate() {
                if i + 1 < widths.len() {
                    widths[i + 1] = widths[i + 1].max(c.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        for (label, cells) in &rendered {
            let mut line = format!("{:>w$}", label, w = widths[0]);
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(
                    line,
                    "  {:>w$}",
                    c,
                    w = widths.get(i + 1).copied().unwrap_or(8)
                );
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Write the table as JSON next to the text output.
    pub fn save_json(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(self).expect("serialize table");
        std::fs::write(path, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_formats() {
        let mut t = Table::new("demo", vec!["scheme".into(), "tput".into(), "lat".into()]);
        t.row("base", vec![Cell::Num(0.54), Cell::Pct(1.0)]);
        t.row("ms-8", vec![Cell::Num(0.48), Cell::Dash]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("0.540"));
        assert!(s.contains("100%"));
        assert!(s.contains('-'));
        // Header aligned with rows.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn json_round_trip() {
        let mut t = Table::new("x", vec!["a".into()]);
        t.row("r", vec![Cell::Num(1.0)]);
        let dir = std::env::temp_dir().join("msx-test-report");
        t.save_json(&dir, "t").unwrap();
        let s = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert!(s.contains("\"title\""));
    }
}
