//! Fleet-scale scenario engine: N regions × M phones under seeded,
//! parameterized churn.
//!
//! The paper validates MobiStreams on an 8-phone, 4-region testbed;
//! this module opens the scale and scenario-diversity axes. A
//! [`FleetConfig`] describes a deployment (per-region phone counts,
//! per-region WiFi loss profiles) plus a *churn model* (fail-stop
//! crashes, departures, inter-region mobility, rejoins). From the
//! config's seed a deterministic [`ChurnEvent`] schedule is generated
//! and injected into the simulation before it starts, so a fleet run
//! is exactly as reproducible as the paper scenarios: same seed, same
//! report.
//!
//! A small library of named profiles covers the scenarios the ROADMAP
//! asks for:
//!
//! * `stadium` — 8 regions × 128 phones (1024 total): huge idle
//!   capacity, light churn; stresses broadcast fan-out, membership
//!   updates and the controller's many-region bookkeeping.
//! * `commute` — 8 regions × 16 phones with heavy inter-region
//!   mobility: phones continuously depart one region and re-appear in
//!   the next, exercising the §III-E departure protocol and urgent
//!   cellular routing under churn.
//! * `flash-crowd` — regions start half-empty; the crowd arrives in
//!   one burst, then drains away; stresses join/registration and
//!   late-capacity recovery.
//! * `lossy-wifi` — per-region loss profiles ramp from 5 % up to 30 %
//!   and back, at staggered times per region; stresses the multi-phase
//!   broadcast's cost/gain logic and the TCP residue path.
//! * `metro` — 32 regions × 320 phones (10 240 total) under a sharded
//!   control plane (8 region-group controllers of 4 regions each):
//!   stresses the coordinator/region-controller split, delta-based
//!   membership reconciliation and the per-group cellular budget.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::Serialize;
use simkernel::{SimDuration, SimRng, SimTime};
use simnet::cellular::CellSetPartition;
use simnet::wifi::{WifiConfig, WifiSetBrownout, WifiSetLoss};

use crate::faults::{inject_departure, inject_failure, inject_reboot};
use crate::run::harvest;
use crate::scenario::{AppKind, Deployment, RegionOverride, ScenarioConfig, Scheme};
use crate::weather::{self, CtlTopology, WeatherAction, WeatherProgram};

/// Churn model: rates are per phone-hour, so the same profile scales
/// from 10 phones to 10 000.
#[derive(Debug, Clone)]
pub struct ChurnProfile {
    /// Mean fail-stop crashes per phone-hour.
    pub fail_per_phone_hour: f64,
    /// Mean departures (GPS-out mobility exits) per phone-hour.
    pub depart_per_phone_hour: f64,
    /// Fraction of departures that are inter-region *moves*: the
    /// leaving phone re-appears in the next region `travel_s` later by
    /// re-activating an absent slot there (falls back to a plain
    /// departure when the destination is full).
    pub move_fraction: f64,
    /// Mean absence before a failed/departed phone rejoins its region.
    pub mean_rejoin_s: f64,
    /// Travel time of an inter-region move.
    pub travel_s: f64,
    /// No churn before this time (deployment boot window).
    pub quiet_start_s: f64,
    /// Fraction of each region's phones absent at t = 0 (taken from
    /// the highest slots — idle standby capacity).
    pub initial_absent_fraction: f64,
    /// Window `(from_s, to_s)` in which the initially-absent phones
    /// arrive (uniformly, seeded). `None` = they never arrive.
    pub arrival_burst: Option<(f64, f64)>,
}

impl Default for ChurnProfile {
    fn default() -> Self {
        ChurnProfile {
            fail_per_phone_hour: 0.0,
            depart_per_phone_hour: 0.0,
            move_fraction: 0.0,
            mean_rejoin_s: 60.0,
            travel_s: 20.0,
            quiet_start_s: 30.0,
            initial_absent_fraction: 0.0,
            arrival_burst: None,
        }
    }
}

/// Time-varying WiFi loss for one region: `(at_s, loss)` steps applied
/// to the region's medium while the simulation runs.
#[derive(Debug, Clone, Default)]
pub struct LossProfile {
    /// Scheduled loss changes.
    pub steps: Vec<(f64, f64)>,
}

/// One region of the fleet.
#[derive(Debug, Clone)]
pub struct FleetRegion {
    /// Phones deployed here.
    pub phones: u32,
    /// Base WiFi channel parameters.
    pub wifi: WifiConfig,
    /// Scheduled loss changes (empty = constant `wifi.loss`).
    pub loss: LossProfile,
}

impl FleetRegion {
    /// A region with `phones` phones on the default channel.
    pub fn of(phones: u32) -> Self {
        FleetRegion {
            phones,
            wifi: WifiConfig::default(),
            loss: LossProfile::default(),
        }
    }
}

/// A full fleet scenario: deployment shape + churn + run windows.
#[derive(Clone)]
pub struct FleetConfig {
    /// Profile name (report label).
    pub name: String,
    /// Application.
    pub app: AppKind,
    /// FT scheme.
    pub scheme: Scheme,
    /// The regions, cascaded in a line as in the paper.
    pub regions: Vec<FleetRegion>,
    /// Regions per region-group controller (ms only). 1 = one
    /// controller per region; `regions.len()` = a single controller
    /// owning the whole fleet.
    pub ctl_group_size: usize,
    /// Churn model.
    pub churn: ChurnProfile,
    /// Network weather rolling over the fleet (None = clear skies).
    /// Compiled into the event schedule before the run starts, so
    /// weather is exactly as deterministic as churn.
    pub weather: Option<WeatherProgram>,
    /// Application calibration (fleet profiles shrink operator states
    /// so checkpoint rounds fit their shorter periods).
    pub cal: apps::Calibration,
    /// Checkpoint period.
    pub ckpt_period: SimDuration,
    /// First checkpoint offset.
    pub ckpt_offset: SimDuration,
    /// Total simulated span.
    pub duration: SimDuration,
    /// Measurement starts here (boot/warm-up excluded).
    pub warmup: SimDuration,
    /// Seed driving the whole run (workload, channel AND churn).
    pub seed: u64,
    /// Worker threads for the parallel event kernel. Purely a
    /// wall-clock knob: the report digest is bit-identical for every
    /// value (see `Sim::enable_sharding`).
    pub threads: usize,
    /// Force the kernel's causality sanitizer on (it is already on by
    /// default in debug builds). Observation-only: the simulated
    /// schedule and the report digest are unchanged; the report's
    /// `sanitizer_*` fields carry the per-window ledger.
    pub sanitize: bool,
    /// Disable per-destination cross-shard bounds and barrier on the
    /// uniform cellular lookahead instead (see
    /// [`Deployment::enable_sharding_opts`]). Purely a wall-clock
    /// knob: the report digest is identical either way.
    pub uniform_lookahead: bool,
}

impl FleetConfig {
    /// Phones across the fleet.
    pub fn total_phones(&self) -> u32 {
        self.regions.iter().map(|r| r.phones).sum()
    }

    /// Control-plane topology (regions × group size).
    pub fn topo(&self) -> CtlTopology {
        CtlTopology::new(self.regions.len(), self.ctl_group_size)
    }

    /// The underlying deployment parameters.
    pub fn scenario(&self) -> ScenarioConfig {
        ScenarioConfig {
            app: self.app,
            scheme: self.scheme,
            regions: self.regions.len(),
            phones: self.regions.iter().map(|r| r.phones).max().unwrap_or(8),
            cal: self.cal.clone(),
            ckpt_period: self.ckpt_period,
            ckpt_offset: self.ckpt_offset,
            ctl_group_size: self.ctl_group_size,
            seed: self.seed,
            overrides: self
                .regions
                .iter()
                .map(|r| RegionOverride {
                    phones: Some(r.phones),
                    wifi: Some(r.wifi.clone()),
                })
                .collect(),
            ..ScenarioConfig::default()
        }
    }
}

/// What happens to one phone at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// Fail-stop crash (links die; controller detects emergently).
    Fail,
    /// Mobility exit (§III-E: phone reports itself, urgent mode).
    Depart,
    /// A phone (re)joins the region (reboot/arrival registration).
    Rejoin,
}

/// One scheduled churn injection.
#[derive(Debug, Clone, Copy)]
pub struct ChurnEvent {
    /// When.
    pub at: SimTime,
    /// Region hit.
    pub region: usize,
    /// Slot hit.
    pub slot: u32,
    /// What happens.
    pub kind: ChurnKind,
}

/// Per-slot presence bookkeeping used by the schedule generator.
/// `Present` also covers "absent but already scheduled to return":
/// such a slot is reserved and can't be claimed by a move, and the
/// heap pops in time order so its next leave candidate always lands
/// after the scheduled return.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Presence {
    Present,
    /// Absent and available as an arrival target for a move.
    AbsentFree,
}

/// Generate the deterministic churn schedule for `cfg`. Pure function
/// of the config (notably its seed): two calls yield identical events.
pub fn churn_schedule(cfg: &FleetConfig) -> Vec<ChurnEvent> {
    let mut rng = SimRng::new(cfg.seed ^ 0xF1EE_7CA5_7A60_0D5E);
    let churn = &cfg.churn;
    let horizon = cfg.duration.as_secs_f64();
    let leave_rate = (churn.fail_per_phone_hour + churn.depart_per_phone_hour) / 3600.0;
    let p_fail = if leave_rate > 0.0 {
        churn.fail_per_phone_hour / (churn.fail_per_phone_hour + churn.depart_per_phone_hour)
    } else {
        0.0
    };

    let mut events: Vec<ChurnEvent> = Vec::new();
    let mut presence: Vec<Vec<Presence>> = cfg
        .regions
        .iter()
        .map(|r| vec![Presence::Present; r.phones as usize])
        .collect();
    // Slots whose first leave candidate is already scheduled (arrival-
    // burst phones): the general seeding loop below must not give them
    // a second, independent candidate — it could fire before the phone
    // even arrives.
    let mut seeded: Vec<Vec<bool>> = cfg
        .regions
        .iter()
        .map(|r| vec![false; r.phones as usize])
        .collect();
    // Min-heap of candidate leave times per present phone; fully
    // deterministic (ties break on (region, slot)).
    let mut heap: BinaryHeap<Reverse<(u64, usize, u32)>> = BinaryHeap::new();

    // Initially-absent phones: the highest slots of each region (idle
    // standby capacity) start out of range, optionally arriving in the
    // configured burst window. An arriving phone becomes churn-eligible
    // after its arrival; slots with no scheduled arrival are the free
    // capacity inter-region moves claim.
    for (r, region) in cfg.regions.iter().enumerate() {
        let absent = (region.phones as f64 * churn.initial_absent_fraction).floor() as u32;
        for s in (region.phones - absent)..region.phones {
            // A failure at t=0 models "was never there": links dead
            // before the first ping round.
            events.push(ChurnEvent {
                at: SimTime::ZERO,
                region: r,
                slot: s,
                kind: ChurnKind::Fail,
            });
            let arrival = churn
                .arrival_burst
                .map(|(from, to)| rng.uniform(from, to.max(from)))
                .filter(|&at| at < horizon);
            if let Some(at) = arrival {
                events.push(ChurnEvent {
                    at: SimTime::from_nanos((at * 1e9) as u64),
                    region: r,
                    slot: s,
                    kind: ChurnKind::Rejoin,
                });
                // Reserved: returns at `at`, churn-eligible afterwards.
                seeded[r][s as usize] = true;
                if leave_rate > 0.0 {
                    let next = at.max(churn.quiet_start_s) + rng.exponential(1.0 / leave_rate);
                    if next < horizon {
                        heap.push(Reverse(((next * 1e9) as u64, r, s)));
                    }
                }
            } else {
                presence[r][s as usize] = Presence::AbsentFree;
            }
        }
    }

    if leave_rate > 0.0 {
        for (r, region) in cfg.regions.iter().enumerate() {
            for s in 0..region.phones {
                if presence[r][s as usize] != Presence::Present || seeded[r][s as usize] {
                    continue;
                }
                let at = churn.quiet_start_s + rng.exponential(1.0 / leave_rate);
                if at < horizon {
                    heap.push(Reverse(((at * 1e9) as u64, r, s)));
                }
            }
        }
    }
    while let Some(Reverse((at_ns, r, s))) = heap.pop() {
        if presence[r][s as usize] != Presence::Present {
            continue; // stale candidate (slot was consumed by a move)
        }
        let at = SimTime::from_nanos(at_ns);
        let is_fail = rng.chance(p_fail);
        let kind = if is_fail {
            ChurnKind::Fail
        } else {
            ChurnKind::Depart
        };
        events.push(ChurnEvent {
            at,
            region: r,
            slot: s,
            kind,
        });
        presence[r][s as usize] = Presence::AbsentFree;

        // Inter-region move: the phone re-appears in the next region,
        // claiming a free absent slot there.
        let moved = !is_fail
            && rng.chance(cfg.churn.move_fraction)
            && cfg.regions.len() > 1
            && arrive_next_region(
                cfg,
                &mut presence,
                &mut events,
                &mut heap,
                &mut rng,
                r,
                at_ns,
                horizon,
                leave_rate,
            );
        if !moved {
            // Plain absence: rejoin the same region later.
            let back_s = at_ns as f64 / 1e9 + rng.exponential(churn.mean_rejoin_s.max(1.0));
            if back_s < horizon {
                let back_ns = (back_s * 1e9) as u64;
                events.push(ChurnEvent {
                    at: SimTime::from_nanos(back_ns),
                    region: r,
                    slot: s,
                    kind: ChurnKind::Rejoin,
                });
                presence[r][s as usize] = Presence::Present;
                // Next leave after the rejoin.
                let next = back_s + rng.exponential(1.0 / leave_rate.max(1e-12));
                if next < horizon {
                    heap.push(Reverse(((next * 1e9) as u64, r, s)));
                }
            } else {
                presence[r][s as usize] = Presence::AbsentFree;
            }
        }
    }

    events.sort_by_key(|e| (e.at, e.region, e.slot, e.kind as u8));
    events
}

/// Claim an absent slot in the region after `from` for an arriving
/// phone; returns false when no capacity is free there.
#[allow(clippy::too_many_arguments)]
fn arrive_next_region(
    cfg: &FleetConfig,
    presence: &mut [Vec<Presence>],
    events: &mut Vec<ChurnEvent>,
    heap: &mut BinaryHeap<Reverse<(u64, usize, u32)>>,
    rng: &mut SimRng,
    from: usize,
    at_ns: u64,
    horizon: f64,
    leave_rate: f64,
) -> bool {
    let dest = (from + 1) % cfg.regions.len();
    let Some(free) = presence[dest]
        .iter()
        .position(|&p| p == Presence::AbsentFree)
    else {
        return false;
    };
    let arrive_s = at_ns as f64 / 1e9 + cfg.churn.travel_s.max(0.1);
    if arrive_s >= horizon {
        return false;
    }
    let slot = free as u32;
    events.push(ChurnEvent {
        at: SimTime::from_nanos((arrive_s * 1e9) as u64),
        region: dest,
        slot,
        kind: ChurnKind::Rejoin,
    });
    presence[dest][free] = Presence::Present;
    let next = arrive_s + rng.exponential(1.0 / leave_rate.max(1e-12));
    if next < horizon {
        heap.push(Reverse(((next * 1e9) as u64, dest, slot)));
    }
    true
}

/// Build the deployment and inject the churn + loss schedules.
/// Returns the deployment (started, not yet run) and the applied
/// schedule for reporting.
pub fn build_fleet(cfg: &FleetConfig) -> (Deployment, Vec<ChurnEvent>) {
    let schedule = churn_schedule(cfg);
    let mut dep = Deployment::build(cfg.scenario());
    dep.start();
    for ev in &schedule {
        match ev.kind {
            ChurnKind::Fail => inject_failure(&mut dep, ev.region, ev.slot, ev.at),
            ChurnKind::Depart => inject_departure(&mut dep, ev.region, ev.slot, ev.at),
            ChurnKind::Rejoin => inject_reboot(&mut dep, ev.region, ev.slot, ev.at),
        }
    }
    for (r, region) in cfg.regions.iter().enumerate() {
        let wifi = dep.regions[r].wifi;
        for &(at_s, loss) in &region.loss.steps {
            dep.sim.schedule_at(
                SimTime::from_nanos((at_s * 1e9) as u64),
                wifi,
                WifiSetLoss { loss },
            );
        }
    }
    if let Some(program) = &cfg.weather {
        apply_weather(&mut dep, program, cfg.topo());
    }
    (dep, schedule)
}

/// Compile a weather program and schedule its injections against the
/// deployment's simnet actors. Returns the number of injections.
fn apply_weather(dep: &mut Deployment, program: &WeatherProgram, topo: CtlTopology) -> u64 {
    let injections = weather::compile(program, topo);
    for inj in &injections {
        match inj.action {
            WeatherAction::PartitionRegion { region, on } => {
                // Sever every phone endpoint of the region; endpoints
                // stay alive behind the cut (weather, not death).
                for &node in &dep.regions[region].nodes {
                    dep.sim
                        .schedule_at(inj.at, dep.cell, CellSetPartition { node, on });
                }
            }
            WeatherAction::Brownout { region, on, loss } => {
                let wifi = dep.regions[region].wifi;
                dep.sim
                    .schedule_at(inj.at, wifi, WifiSetBrownout { on, loss });
            }
            WeatherAction::PartitionController { group, on } => {
                // Sever the one region-group controller: its regions
                // lose the control plane while every other group keeps
                // committing rounds.
                if let Some(&node) = dep.region_controllers.get(group) {
                    dep.sim
                        .schedule_at(inj.at, dep.cell, CellSetPartition { node, on });
                }
            }
        }
    }
    injections.len() as u64
}

/// One region's recovery timeline through one weather fault window:
/// fault start → scheduled heal → first checkpoint round committed
/// after the heal. Recovery latency is measured from the *scheduled*
/// heal (when the weather clears), so it includes the controller's
/// heal-detection probes — that is the latency a declared SLO is
/// about.
#[derive(Debug, Clone, Serialize)]
pub struct FaultTimeline {
    /// Region the window covers.
    pub region: usize,
    /// Partition start (seconds).
    pub fault_at_s: f64,
    /// Scheduled heal (seconds).
    pub heal_at_s: f64,
    /// First committed round at/after the heal (-1 = none before the
    /// simulation ended).
    pub first_commit_s: f64,
    /// `first_commit_s - heal_at_s` (-1 = never recovered).
    pub recovery_s: f64,
    /// Whether the window met the program's declared recovery SLO
    /// (vacuously true when no SLO is declared).
    pub slo_met: bool,
}

/// Machine-readable result of one fleet run. Everything except the
/// wall-clock and sanitizer-observation fields is a pure function of
/// the config — the [`FleetReport::digest`] over those fields is the
/// determinism contract (same seed ⇒ same digest).
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Profile name.
    pub profile: String,
    /// Seed used.
    pub seed: u64,
    /// Regions deployed.
    pub regions: usize,
    /// Phones deployed.
    pub phones: u32,
    /// Simulated span (seconds).
    pub sim_secs: f64,
    /// Events the kernel dispatched.
    pub events_processed: u64,
    /// Wall-clock run time (seconds; excluded from the digest).
    pub wall_secs: f64,
    /// Simulation throughput (events/s of wall time; excluded from the
    /// digest).
    pub events_per_sec: f64,
    /// Scheduled fail-stop crashes.
    pub churn_failures: u64,
    /// Scheduled departures.
    pub churn_departures: u64,
    /// Scheduled rejoins/arrivals.
    pub churn_rejoins: u64,
    /// Sink outputs inside the measurement window, per region.
    pub per_region_outputs: Vec<u64>,
    /// Sink outputs inside the measurement window, total.
    pub outputs: u64,
    /// Mean per-region throughput (tuples/s).
    pub mean_throughput: f64,
    /// Mean latency over regions with output (seconds; -1 = no output).
    pub mean_latency_s: f64,
    /// Source inputs shed at full queues / congestion.
    pub source_drops: u64,
    /// Recoveries the controller completed.
    pub recoveries: u64,
    /// Mean recovery duration (seconds).
    pub mean_recovery_s: f64,
    /// Departure transfers completed.
    pub departures_handled: u64,
    /// Regions stopped (bypass) at least once.
    pub region_stops: u64,
    /// Checkpoint versions committed across regions.
    pub checkpoint_commits: u64,
    /// WiFi payload bytes, all classes and regions.
    pub wifi_total_bytes: u64,
    /// Cellular payload bytes, all classes.
    pub cell_total_bytes: u64,
    /// Cellular messages tail-dropped at full bounded link queues,
    /// network-wide (the cellular-collapse signal).
    pub cell_drops: u64,
    /// Deepest cellular link backlog observed network-wide (bytes).
    pub cell_max_queue_depth: u64,
    /// Cellular tail-drops at each region's phones.
    pub per_region_cell_drops: Vec<u64>,
    /// Deepest cellular link backlog at each region's phones (bytes).
    pub per_region_cell_max_queue_depth: Vec<u64>,
    /// Weather program applied ("" = clear skies).
    pub weather: String,
    /// Compiled weather injections scheduled.
    pub weather_injections: u64,
    /// Declared recovery SLO (seconds; negative = none declared).
    pub recovery_slo_s: f64,
    /// Per-region fault timelines, one per control-path fault window.
    pub fault_timelines: Vec<FaultTimeline>,
    /// Median recovery latency over recovered windows (-1 = no
    /// windows recovered).
    pub recovery_p50_s: f64,
    /// 99th-percentile recovery latency (-1 = no windows recovered).
    pub recovery_p99_s: f64,
    /// Fault windows that missed the declared recovery SLO (always 0
    /// when no SLO is declared).
    pub slo_violations: u64,
    /// `(region, version)` checkpoint rounds committed more than once
    /// — must be 0: a heal resync may never double-commit a round.
    pub duplicate_commits: u64,
    /// Partition episodes the controller actually observed (severed →
    /// healed transitions on its side).
    pub severed_observed: u64,
    /// Cellular sends aged out behind a weather partition.
    pub cell_severed_sends: u64,
    /// Backlogged cellular bytes drained undelivered (endpoint death
    /// or partition ageing).
    pub cell_queue_drop_bytes: u64,
    /// Cellular sends rejected at dead/unknown endpoints.
    pub cell_rejects: u64,
    /// Barrier windows the causality sanitizer folded (0 when it was
    /// off). Excluded from the digest: digests must agree between
    /// sanitized and unsanitized runs of the same config.
    pub sanitizer_windows: u64,
    /// The sanitizer's per-window RNG/event ledger (0 when off;
    /// excluded from the digest for the same reason).
    pub sanitizer_ledger: u64,
    /// Causality violations the sanitizer recorded (0 when off;
    /// excluded from the digest like the other sanitizer fields, and
    /// enforced separately — `msx scenarios run`/`matrix` exit nonzero
    /// when it is not 0).
    pub sanitizer_violations: u64,
    /// Event-pool allocations served from recycled slots, summed over
    /// shards. A pure function of the schedule (pooled slots never
    /// cross shards), so it must match across thread counts; excluded
    /// from the digest as an observation-only kernel counter.
    pub pool_recycled: u64,
    /// Event-pool generation mismatches (double free / aliased live
    /// slot). Any nonzero value is a kernel memory-safety bug — `msx
    /// scenarios run`/`matrix` exit nonzero when it is not 0. Excluded
    /// from the digest like the other observation fields.
    pub pool_aliasing: u64,
    /// FNV-1a digest of the deterministic fields above.
    pub digest: u64,
}

impl FleetReport {
    /// FNV-1a over the deterministic fields (wall-clock excluded).
    fn compute_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.seed);
        mix(self.regions as u64);
        mix(self.phones as u64);
        mix(self.events_processed);
        mix(self.churn_failures);
        mix(self.churn_departures);
        mix(self.churn_rejoins);
        for &o in &self.per_region_outputs {
            mix(o);
        }
        mix(self.outputs);
        mix(self.mean_throughput.to_bits());
        mix(self.mean_latency_s.to_bits());
        mix(self.source_drops);
        mix(self.recoveries);
        mix(self.mean_recovery_s.to_bits());
        mix(self.departures_handled);
        mix(self.region_stops);
        mix(self.checkpoint_commits);
        mix(self.wifi_total_bytes);
        mix(self.cell_total_bytes);
        mix(self.cell_drops);
        mix(self.cell_max_queue_depth);
        for &d in &self.per_region_cell_drops {
            mix(d);
        }
        for &d in &self.per_region_cell_max_queue_depth {
            mix(d);
        }
        for b in self.weather.bytes() {
            mix(b as u64);
        }
        mix(self.weather_injections);
        mix(self.recovery_slo_s.to_bits());
        for t in &self.fault_timelines {
            mix(t.region as u64);
            mix(t.fault_at_s.to_bits());
            mix(t.heal_at_s.to_bits());
            mix(t.first_commit_s.to_bits());
            mix(t.recovery_s.to_bits());
            mix(t.slo_met as u64);
        }
        mix(self.recovery_p50_s.to_bits());
        mix(self.recovery_p99_s.to_bits());
        mix(self.slo_violations);
        mix(self.duplicate_commits);
        mix(self.severed_observed);
        mix(self.cell_severed_sends);
        mix(self.cell_queue_drop_bytes);
        mix(self.cell_rejects);
        h
    }

    /// Write the report as pretty JSON under `dir`.
    pub fn save_json(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}_seed{}.json", self.profile, self.seed));
        let json = serde_json::to_string_pretty(self).expect("serialize fleet report");
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

/// Build, run and harvest one fleet scenario.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    let wall = std::time::Instant::now();
    let (mut dep, schedule) = build_fleet(cfg);
    dep.enable_sharding_opts(cfg.threads, !cfg.uniform_lookahead);
    if cfg.sanitize {
        dep.sim.enable_sanitizer();
    }
    let to = SimTime::ZERO + cfg.duration;
    dep.run_until(to);
    let san = dep.sim.causality_report();
    let pool = dep.sim.pool_stats();
    let h = harvest(&dep, SimTime::ZERO + cfg.warmup, to);

    let (churn_failures, churn_departures, churn_rejoins) =
        schedule
            .iter()
            .fold((0u64, 0u64, 0u64), |acc, e| match e.kind {
                ChurnKind::Fail => (acc.0 + 1, acc.1, acc.2),
                ChurnKind::Depart => (acc.0, acc.1 + 1, acc.2),
                ChurnKind::Rejoin => (acc.0, acc.1, acc.2 + 1),
            });

    let (departures_handled, commit_log, severed_observed) = if dep.region_controllers.is_empty() {
        (0, Vec::new(), 0)
    } else {
        (
            dep.ms_departures_handled(),
            dep.ms_commits(),
            dep.ms_severed_episodes().len() as u64,
        )
    };
    let checkpoint_commits = commit_log.len() as u64;
    let mut seen_rounds = std::collections::BTreeSet::new();
    let duplicate_commits = commit_log
        .iter()
        .filter(|&&(r, v, _)| !seen_rounds.insert((r, v)))
        .count() as u64;

    let recovery_slo_s = cfg
        .weather
        .as_ref()
        .map(|w| w.recovery_slo_s)
        .unwrap_or(-1.0);
    let weather_injections = cfg
        .weather
        .as_ref()
        .map(|w| weather::compile(w, cfg.topo()).len() as u64)
        .unwrap_or(0);
    let fault_timelines: Vec<FaultTimeline> = cfg
        .weather
        .as_ref()
        .map(|w| weather::fault_windows(w, cfg.topo()))
        .unwrap_or_default()
        .into_iter()
        .map(|(region, start, heal)| {
            let first = commit_log
                .iter()
                .filter(|&&(r, _, at)| r == region && at >= heal)
                .map(|&(_, _, at)| at)
                .min();
            let heal_at_s = heal.as_secs_f64();
            let (first_commit_s, recovery_s) = match first {
                Some(at) => (at.as_secs_f64(), at.as_secs_f64() - heal_at_s),
                None => (-1.0, -1.0),
            };
            let slo_met =
                recovery_slo_s < 0.0 || (recovery_s >= 0.0 && recovery_s <= recovery_slo_s);
            FaultTimeline {
                region,
                fault_at_s: start.as_secs_f64(),
                heal_at_s,
                first_commit_s,
                recovery_s,
                slo_met,
            }
        })
        .collect();
    let slo_violations = fault_timelines.iter().filter(|t| !t.slo_met).count() as u64;
    let mut recovered: Vec<f64> = fault_timelines
        .iter()
        .filter(|t| t.recovery_s >= 0.0)
        .map(|t| t.recovery_s)
        .collect();
    recovered.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |xs: &[f64], p: f64| -> f64 {
        if xs.is_empty() {
            return -1.0;
        }
        xs[((p / 100.0) * (xs.len() - 1) as f64).round() as usize]
    };
    let recovery_p50_s = pct(&recovered, 50.0);
    let recovery_p99_s = pct(&recovered, 99.0);

    let per_region_outputs: Vec<u64> = h.per_region.iter().map(|r| r.outputs as u64).collect();
    let wall_secs = wall.elapsed().as_secs_f64();
    let events_processed = dep.sim.events_processed();
    let mut report = FleetReport {
        profile: cfg.name.clone(),
        seed: cfg.seed,
        regions: cfg.regions.len(),
        phones: cfg.total_phones(),
        sim_secs: cfg.duration.as_secs_f64(),
        events_processed,
        wall_secs,
        events_per_sec: events_processed as f64 / wall_secs.max(1e-9),
        churn_failures,
        churn_departures,
        churn_rejoins,
        outputs: per_region_outputs.iter().sum(),
        per_region_outputs,
        mean_throughput: h.mean_throughput,
        mean_latency_s: if h.mean_latency_s.is_finite() {
            h.mean_latency_s
        } else {
            -1.0
        },
        source_drops: h.per_region.iter().map(|r| r.source_drops).sum(),
        recoveries: h.recoveries as u64,
        mean_recovery_s: h.mean_recovery_s,
        departures_handled,
        region_stops: h.stops,
        checkpoint_commits,
        wifi_total_bytes: h.wifi_bytes.total(),
        cell_total_bytes: h.cell_bytes.total(),
        cell_drops: h.cell_drops,
        cell_max_queue_depth: h.cell_max_queue_depth,
        per_region_cell_drops: h.per_region.iter().map(|r| r.cell_drops).collect(),
        per_region_cell_max_queue_depth: h
            .per_region
            .iter()
            .map(|r| r.cell_max_queue_depth)
            .collect(),
        weather: cfg
            .weather
            .as_ref()
            .map(|w| w.name.clone())
            .unwrap_or_default(),
        weather_injections,
        recovery_slo_s,
        fault_timelines,
        recovery_p50_s,
        recovery_p99_s,
        slo_violations,
        duplicate_commits,
        severed_observed,
        cell_severed_sends: h.cell_severed_sends,
        cell_queue_drop_bytes: h.cell_queue_drop_bytes,
        cell_rejects: h.cell_rejects,
        sanitizer_windows: san.map(|r| r.windows).unwrap_or(0),
        sanitizer_ledger: san.map(|r| r.ledger).unwrap_or(0),
        sanitizer_violations: san.map(|r| r.violations).unwrap_or(0),
        pool_recycled: pool.recycled,
        pool_aliasing: pool.aliasing,
        digest: 0,
    };
    report.digest = report.compute_digest();
    report
}

/// The `BENCH_*` series workload: a stadium-shaped fleet scaled to
/// `regions × phones`, trimmed to a 60 s window so one run stays
/// subsecond-ish. Shared by `cargo bench -p bench` and `msx bench
/// fleet` so the tracked numbers measure the same thing.
pub fn bench_profile(regions: usize, phones: u32, seed: u64) -> FleetConfig {
    let cal = apps::Calibration {
        state_a: 16 * 1024,
        state_l: 16 * 1024,
        state_b: 64 * 1024,
        state_j: 48 * 1024,
        state_p: 16 * 1024,
        state_h: 16 * 1024,
        ..apps::Calibration::default()
    };
    FleetConfig {
        name: format!("bench-{regions}x{phones}"),
        app: AppKind::Bcp,
        scheme: Scheme::Ms,
        regions: (0..regions).map(|_| FleetRegion::of(phones)).collect(),
        ctl_group_size: 1,
        churn: ChurnProfile {
            fail_per_phone_hour: 2.0,
            depart_per_phone_hour: 4.0,
            move_fraction: 0.3,
            mean_rejoin_s: 30.0,
            quiet_start_s: 15.0,
            ..ChurnProfile::default()
        },
        weather: None,
        cal,
        ckpt_period: SimDuration::from_secs(30),
        ckpt_offset: SimDuration::from_secs(10),
        duration: SimDuration::from_secs(60),
        warmup: SimDuration::from_secs(10),
        seed,
        threads: 1,
        sanitize: false,
        uniform_lookahead: false,
    }
}

// ---------------------------------------------------------------------
// Named profile library.

/// Names of the built-in profiles.
pub const PROFILE_NAMES: &[&str] = &["stadium", "commute", "flash-crowd", "lossy-wifi", "metro"];

/// Operator states shrunk so a checkpoint round (snapshot + broadcast
/// replication) fits the profiles' shortened checkpoint periods even
/// on a lossy channel — fleet profiles stress protocol scale, not raw
/// checkpoint mass.
fn fleet_cal() -> apps::Calibration {
    apps::Calibration {
        state_a: 16 * 1024,
        state_l: 16 * 1024,
        state_b: 64 * 1024,
        state_j: 48 * 1024,
        state_p: 16 * 1024,
        state_h: 16 * 1024,
        state_v: 16 * 1024,
        state_g: 16 * 1024,
        state_svm: 64 * 1024,
        state_m: 16 * 1024,
        ..apps::Calibration::default()
    }
}

fn base_profile(name: &str, seed: u64, regions: Vec<FleetRegion>) -> FleetConfig {
    FleetConfig {
        name: name.to_string(),
        app: AppKind::Bcp,
        scheme: Scheme::Ms,
        regions,
        ctl_group_size: 1,
        churn: ChurnProfile::default(),
        weather: None,
        cal: fleet_cal(),
        ckpt_period: SimDuration::from_secs(120),
        ckpt_offset: SimDuration::from_secs(45),
        duration: SimDuration::from_secs(420),
        warmup: SimDuration::from_secs(60),
        seed,
        threads: 1,
        sanitize: false,
        uniform_lookahead: false,
    }
}

/// Look up a named profile. `None` for unknown names.
pub fn profile(name: &str, seed: u64) -> Option<FleetConfig> {
    match name {
        "stadium" => {
            // 8 regions × 128 phones = 1024: a packed venue. Huge idle
            // standby capacity, light churn.
            let regions = (0..8).map(|_| FleetRegion::of(128)).collect();
            let mut cfg = base_profile(name, seed, regions);
            cfg.churn = ChurnProfile {
                fail_per_phone_hour: 0.5,
                depart_per_phone_hour: 1.0,
                move_fraction: 0.2,
                mean_rejoin_s: 90.0,
                ..ChurnProfile::default()
            };
            Some(cfg)
        }
        "commute" => {
            // Heavy inter-region mobility: phones stream from region to
            // region like cars along a road.
            let regions = (0..8).map(|_| FleetRegion::of(16)).collect();
            let mut cfg = base_profile(name, seed, regions);
            cfg.duration = SimDuration::from_secs(600);
            cfg.churn = ChurnProfile {
                fail_per_phone_hour: 1.0,
                depart_per_phone_hour: 24.0,
                move_fraction: 0.8,
                mean_rejoin_s: 45.0,
                travel_s: 20.0,
                ..ChurnProfile::default()
            };
            Some(cfg)
        }
        "flash-crowd" => {
            // Regions boot half-empty; the crowd arrives in one burst
            // after a minute, then churns away.
            let regions = (0..4).map(|_| FleetRegion::of(64)).collect();
            let mut cfg = base_profile(name, seed, regions);
            cfg.churn = ChurnProfile {
                fail_per_phone_hour: 1.0,
                depart_per_phone_hour: 12.0,
                move_fraction: 0.1,
                mean_rejoin_s: 60.0,
                quiet_start_s: 150.0,
                initial_absent_fraction: 0.5,
                arrival_burst: Some((60.0, 120.0)),
                ..ChurnProfile::default()
            };
            Some(cfg)
        }
        "lossy-wifi" => {
            // Staggered interference ramps per region: 5 % → 25 % → 10 %.
            let regions = (0..4)
                .map(|r| {
                    let mut region = FleetRegion::of(8);
                    let t0 = 90.0 + 60.0 * r as f64;
                    region.loss.steps = vec![(t0, 0.25), (t0 + 120.0, 0.10)];
                    region
                })
                .collect();
            let mut cfg = base_profile(name, seed, regions);
            cfg.duration = SimDuration::from_secs(600);
            cfg.churn = ChurnProfile {
                fail_per_phone_hour: 1.0,
                depart_per_phone_hour: 2.0,
                ..ChurnProfile::default()
            };
            Some(cfg)
        }
        "metro" => {
            // A whole metro area: 32 regions × 320 phones = 10 240,
            // run by a sharded control plane — 8 region-group
            // controllers of 4 regions each behind the thin global
            // coordinator. Light churn; the scale itself is the
            // stressor. Trimmed to 180 s so a smoke run stays cheap.
            let regions = (0..32).map(|_| FleetRegion::of(320)).collect();
            let mut cfg = base_profile(name, seed, regions);
            cfg.ctl_group_size = 4;
            cfg.ckpt_period = SimDuration::from_secs(60);
            cfg.ckpt_offset = SimDuration::from_secs(30);
            cfg.duration = SimDuration::from_secs(180);
            cfg.warmup = SimDuration::from_secs(45);
            cfg.churn = ChurnProfile {
                fail_per_phone_hour: 0.5,
                depart_per_phone_hour: 1.0,
                move_fraction: 0.2,
                mean_rejoin_s: 60.0,
                ..ChurnProfile::default()
            };
            Some(cfg)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini(seed: u64) -> FleetConfig {
        let mut cfg = base_profile("mini", seed, (0..3).map(|_| FleetRegion::of(6)).collect());
        cfg.duration = SimDuration::from_secs(240);
        cfg.warmup = SimDuration::from_secs(40);
        cfg.ckpt_period = SimDuration::from_secs(60);
        cfg.ckpt_offset = SimDuration::from_secs(20);
        cfg.churn = ChurnProfile {
            fail_per_phone_hour: 6.0,
            depart_per_phone_hour: 12.0,
            move_fraction: 0.5,
            mean_rejoin_s: 30.0,
            travel_s: 10.0,
            quiet_start_s: 25.0,
            ..ChurnProfile::default()
        };
        cfg
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = churn_schedule(&mini(7));
        let b = churn_schedule(&mini(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.at, x.region, x.slot, x.kind),
                (y.at, y.region, y.slot, y.kind)
            );
        }
        assert!(!a.is_empty(), "churny profile produced no events");
        let c = churn_schedule(&mini(8));
        let same = a.len() == c.len()
            && a.iter()
                .zip(&c)
                .all(|(x, y)| (x.at, x.region, x.slot) == (y.at, y.region, y.slot));
        assert!(!same, "different seeds produced identical schedules");
    }

    fn assert_presence_consistent(evs: &[ChurnEvent], regions: usize, phones: usize) {
        let mut present = vec![vec![true; phones]; regions];
        for e in evs {
            let p = &mut present[e.region][e.slot as usize];
            match e.kind {
                ChurnKind::Fail | ChurnKind::Depart => {
                    assert!(*p, "leave event for absent phone: {e:?}");
                    *p = false;
                }
                ChurnKind::Rejoin => {
                    assert!(!*p, "rejoin for present phone: {e:?}");
                    *p = true;
                }
            }
        }
    }

    #[test]
    fn schedule_never_hits_absent_phone_or_doubles_up() {
        assert_presence_consistent(&churn_schedule(&mini(3)), 3, 6);
    }

    /// Regression: an arrival-burst phone used to receive a second,
    /// independent leave candidate from the general seeding loop —
    /// with churn allowed before the burst window it could "leave"
    /// before it ever arrived.
    #[test]
    fn arrival_burst_phones_get_exactly_one_leave_stream() {
        let mut cfg = mini(9);
        cfg.churn.quiet_start_s = 10.0;
        cfg.churn.initial_absent_fraction = 0.5;
        cfg.churn.arrival_burst = Some((60.0, 120.0));
        assert_presence_consistent(&churn_schedule(&cfg), 3, 6);
    }

    #[test]
    fn fleet_run_is_deterministic_under_churn() {
        let r1 = run_fleet(&mini(21));
        let r2 = run_fleet(&mini(21));
        assert_eq!(r1.digest, r2.digest, "same seed must reproduce the report");
        assert_eq!(r1.events_processed, r2.events_processed);
        assert!(r1.outputs > 0, "fleet produced no sink output");
        assert!(
            r1.churn_failures + r1.churn_departures > 0,
            "no churn was injected"
        );
    }

    /// The load-bearing guarantee of the sharded kernel: for every
    /// library profile, running the regions on worker threads produces
    /// the exact report digest of the sequential run. Profiles are
    /// scaled down so this stays cheap, but the mix of schemes, churn
    /// shapes, and loss rates is preserved.
    #[test]
    fn thread_count_never_changes_profile_digests() {
        for name in PROFILE_NAMES {
            let mut cfg = profile(name, 11).expect("known profile");
            cfg.regions.truncate(3);
            for r in &mut cfg.regions {
                r.phones = r.phones.min(6);
            }
            // Keep metro's control plane sharded after the truncation
            // (2 groups over 3 regions) so the invariance check covers
            // region-group controllers on distinct shards.
            cfg.ctl_group_size = cfg.ctl_group_size.min(2);
            cfg.duration = SimDuration::from_secs(150);
            cfg.warmup = SimDuration::from_secs(30);

            let mut seq = cfg.clone();
            seq.threads = 1;
            let mut par = cfg;
            par.threads = 4;
            let r1 = run_fleet(&seq);
            let rn = run_fleet(&par);
            assert_eq!(
                r1.digest, rn.digest,
                "profile {name}: 4-thread digest diverged from sequential"
            );
            assert_eq!(r1.events_processed, rn.events_processed, "profile {name}");
        }
    }

    #[test]
    fn profiles_resolve_and_stadium_is_fleet_scale() {
        for name in PROFILE_NAMES {
            let cfg = profile(name, 1).expect("known profile");
            assert!(cfg.total_phones() > 0);
        }
        let stadium = profile("stadium", 1).unwrap();
        assert!(
            stadium.total_phones() >= 1000,
            "stadium must be 1000+ phones"
        );
        assert!(stadium.regions.len() >= 8, "stadium must span 8+ regions");
        assert!(profile("nope", 1).is_none());
    }

    /// D002's allowlist lets `run_fleet` read the wall clock, but the
    /// reading must never feed the determinism digest: rewriting every
    /// wall-clock-derived (and sanitizer) field leaves it unchanged.
    #[test]
    fn wall_clock_and_sanitizer_fields_never_feed_the_digest() {
        let mut r = run_fleet(&mini(13));
        let before = r.digest;
        r.wall_secs = 1e9;
        r.events_per_sec = -7.5;
        r.sanitizer_windows = u64::MAX;
        r.sanitizer_ledger = u64::MAX;
        r.sanitizer_violations = u64::MAX;
        r.pool_recycled = u64::MAX;
        r.pool_aliasing = u64::MAX;
        assert_eq!(
            r.compute_digest(),
            before,
            "digest must be a pure function of the simulated schedule"
        );
    }

    /// The sanitizer is observation-only: forcing it on cannot change
    /// the report digest, and a clean run folds a non-trivial ledger.
    #[test]
    fn sanitize_flag_never_changes_the_digest() {
        let plain = run_fleet(&mini(17));
        let mut cfg = mini(17);
        cfg.sanitize = true;
        let sanitized = run_fleet(&cfg);
        assert_eq!(plain.digest, sanitized.digest);
        assert_eq!(plain.events_processed, sanitized.events_processed);
        assert!(sanitized.sanitizer_windows > 0, "no windows folded");
        assert_ne!(sanitized.sanitizer_ledger, 0, "empty ledger");
    }

    /// The per-window ledger (RNG draw counts + events per shard at
    /// every barrier) is itself thread-count invariant: a stronger
    /// check than final-digest equality, because it pins the replayed
    /// schedule window by window.
    #[test]
    fn sanitizer_ledger_matches_across_thread_counts() {
        let mut seq = mini(23);
        seq.sanitize = true;
        let mut par = seq.clone();
        par.threads = 4;
        let r1 = run_fleet(&seq);
        let rn = run_fleet(&par);
        assert_eq!(r1.digest, rn.digest);
        assert_eq!(r1.sanitizer_windows, rn.sanitizer_windows);
        assert_eq!(
            r1.sanitizer_ledger, rn.sanitizer_ledger,
            "per-window RNG/event ledger diverged across thread counts"
        );
    }

    /// A mini fleet under the built-in partition-heal weather, long
    /// enough that both episodes heal and the post-heal checkpoint
    /// round lands inside the horizon.
    fn mini_weather(seed: u64) -> FleetConfig {
        let mut cfg = mini(seed);
        cfg.duration = SimDuration::from_secs(360);
        cfg.weather = crate::weather::weather("partition-heal", seed, cfg.topo());
        cfg
    }

    /// The tentpole acceptance check: under the partition-heal
    /// profile, every partitioned region resumes committing rounds
    /// within the declared recovery SLO after its scheduled heal, no
    /// round is ever committed twice (the heal resync must not replay
    /// the in-flight round), and the run stays digest-deterministic.
    #[test]
    fn partition_heal_meets_slo_and_never_double_commits() {
        let cfg = mini_weather(31);
        let r = run_fleet(&cfg);
        assert!(
            !r.fault_timelines.is_empty(),
            "partition-heal produced no fault windows"
        );
        assert!(r.severed_observed > 0, "controller never noticed the cut");
        for t in &r.fault_timelines {
            assert!(
                t.slo_met,
                "region {} missed the {}s SLO: healed {}s, first commit {}s",
                t.region, r.recovery_slo_s, t.heal_at_s, t.first_commit_s
            );
        }
        assert_eq!(r.slo_violations, 0);
        assert_eq!(r.duplicate_commits, 0, "a round was committed twice");
        assert!(r.recovery_p50_s >= 0.0 && r.recovery_p50_s <= r.recovery_p99_s);
        assert!(
            r.cell_severed_sends > 0,
            "no traffic aged out behind the partition"
        );
    }

    /// Weather is part of the determinism contract: same seed ⇒ same
    /// digest, and neither thread count nor the sanitizer may change
    /// it.
    #[test]
    fn weather_runs_are_digest_stable_across_threads_and_sanitize() {
        let r1 = run_fleet(&mini_weather(31));
        let mut par = mini_weather(31);
        par.threads = 4;
        par.sanitize = true;
        let rn = run_fleet(&par);
        assert_eq!(r1.digest, rn.digest, "weather digest diverged");
        assert_eq!(r1.events_processed, rn.events_processed);
        assert_eq!(rn.sanitizer_violations, 0, "sanitizer flagged the run");
    }

    mod weather_props {
        use super::*;
        use crate::weather::{WeatherProgram, WeatherSystem};
        use proptest::prelude::*;

        proptest! {
            cases = 4;
            /// Partition → heal → partition again on the same region is
            /// covered by the determinism contract: the report digest
            /// is a pure function of the config — bit-identical at 1
            /// and 4 worker threads with the sanitizer on — and the
            /// double cut still never double-commits a round. Each
            /// case is two full fleet runs, hence the low case cap.
            #[test]
            fn double_partition_digest_is_thread_invariant(seed in 0u64..1u64 << 16) {
                let mut cfg = mini(seed ^ 0xD1CE);
                cfg.duration = SimDuration::from_secs(300);
                // Cut the same region twice; starts sit in the
                // ping-safe band (42 ≡ 132 ≡ 12 mod 30).
                cfg.weather = Some(WeatherProgram {
                    name: "double-partition".into(),
                    systems: vec![
                        WeatherSystem::CellPartition {
                            regions: vec![0],
                            at_s: 42.0,
                            heal_s: 75.0,
                        },
                        WeatherSystem::CellPartition {
                            regions: vec![0],
                            at_s: 132.0,
                            heal_s: 165.0,
                        },
                    ],
                    recovery_slo_s: -1.0,
                });
                cfg.sanitize = true;
                cfg.threads = 1;
                let r1 = run_fleet(&cfg);
                let mut par = cfg.clone();
                par.threads = 4;
                let rn = run_fleet(&par);
                prop_assert_eq!(r1.digest, rn.digest, "digest diverged across threads");
                prop_assert_eq!(r1.events_processed, rn.events_processed);
                prop_assert_eq!(r1.sanitizer_violations, 0);
                prop_assert_eq!(rn.sanitizer_violations, 0);
                prop_assert_eq!(r1.duplicate_commits, 0, "double cut double-committed");
                prop_assert_eq!(r1.fault_timelines.len(), 2, "two cuts, two windows");
            }
        }
    }

    /// Brownouts pin loss but never cut the control path: no fault
    /// windows, no SLO bookkeeping, and the fleet keeps producing.
    #[test]
    fn brownout_weather_has_no_fault_windows() {
        let mut cfg = mini(37);
        cfg.weather = crate::weather::weather("brownout-front", 37, cfg.topo());
        let r = run_fleet(&cfg);
        assert!(r.weather_injections > 0);
        assert!(r.fault_timelines.is_empty());
        assert_eq!(r.slo_violations, 0);
        assert!(r.outputs > 0, "brownout silenced the fleet entirely");
    }

    #[test]
    fn flash_crowd_arrivals_follow_initial_absence() {
        let cfg = profile("flash-crowd", 5).unwrap();
        let evs = churn_schedule(&cfg);
        let t0_fails = evs
            .iter()
            .filter(|e| e.at == SimTime::ZERO && e.kind == ChurnKind::Fail)
            .count();
        // Half of each 64-phone region starts absent.
        assert_eq!(t0_fails, 4 * 32);
        let arrivals = evs
            .iter()
            .filter(|e| {
                e.kind == ChurnKind::Rejoin
                    && e.at >= SimTime::from_secs(60)
                    && e.at <= SimTime::from_secs(120)
            })
            .count();
        assert_eq!(arrivals, 4 * 32, "burst brings the whole crowd in");
    }
}
