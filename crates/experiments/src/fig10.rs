//! Fig 10: the data volumes behind the Fig 8 overheads.
//!
//! (a) bytes **saved** due to input/source preservation — ms preserves
//! only source inputs (once, logically); local/dist-n retain output
//! tuples at every operator, so their retained mass scales with both
//! throughput and pipeline depth.
//!
//! (b) bytes **sent over the network** due to checkpointing or
//! replication — ms broadcasts each state once (plus bitmaps and the
//! TCP residue); dist-n unicasts n copies; rep-2's duplicate dataflow
//! is all replication traffic; local sends nothing; base does nothing.

use serde::Serialize;

use crate::fig8::schemes;
use crate::report::{Cell, Table};
use crate::run::measured_run;
use crate::scenario::{AppKind, ScenarioConfig, Scheme};
use crate::{mean, run_jobs, ExpOptions};

/// One scheme's byte accounting.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Point {
    /// Application.
    pub app: String,
    /// Scheme.
    pub scheme: String,
    /// Preserved bytes (Fig 10a), absolute.
    pub preserved_bytes: f64,
    /// Checkpoint/replication network bytes (Fig 10b), absolute.
    pub ckpt_repl_bytes: f64,
    /// Preservation traffic shipped by ms (informational).
    pub preservation_net_bytes: f64,
    /// Relative to ms-8 (the paper normalizes to MobiStreams).
    pub rel_preserved: f64,
    /// Relative network bytes.
    pub rel_ckpt_repl: f64,
}

/// Full Fig 10 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// All points.
    pub points: Vec<Fig10Point>,
}

/// Run Fig 10 (fault-free steady state, same setup as Fig 8).
pub fn run_fig10(opts: ExpOptions) -> Fig10 {
    type Key = (AppKind, String);
    let mut jobs: Vec<crate::Job<(Key, f64, f64, f64)>> = Vec::new();
    for app in [AppKind::Bcp, AppKind::SignalGuru] {
        for scheme in schemes() {
            for seed in 0..opts.seeds {
                jobs.push(Box::new(move || {
                    let cfg = ScenarioConfig {
                        app,
                        scheme,
                        seed: 2000 + seed,
                        ..ScenarioConfig::default()
                    };
                    let h = measured_run(cfg, opts.warmup, opts.window, |_| {});
                    (
                        (app, scheme.label()),
                        h.preserved_bytes as f64,
                        h.ckpt_repl_bytes as f64,
                        h.wifi_bytes.preservation as f64,
                    )
                }));
            }
        }
    }
    let results = run_jobs(opts.parallel, jobs);
    let agg = |key: &Key| -> (f64, f64, f64) {
        let p: Vec<f64> = results
            .iter()
            .filter(|(k, ..)| k == key)
            .map(|&(_, p, _, _)| p)
            .collect();
        let c: Vec<f64> = results
            .iter()
            .filter(|(k, ..)| k == key)
            .map(|&(_, _, c, _)| c)
            .collect();
        let pn: Vec<f64> = results
            .iter()
            .filter(|(k, ..)| k == key)
            .map(|&(_, _, _, pn)| pn)
            .collect();
        (mean(&p), mean(&c), mean(&pn))
    };

    let mut points = Vec::new();
    for app in [AppKind::Bcp, AppKind::SignalGuru] {
        let (ms_p, ms_c, _) = agg(&(app, Scheme::Ms.label()));
        for scheme in schemes() {
            let (p, c, pn) = agg(&(app, scheme.label()));
            points.push(Fig10Point {
                app: app.label().into(),
                scheme: scheme.label(),
                preserved_bytes: p,
                ckpt_repl_bytes: c,
                preservation_net_bytes: pn,
                rel_preserved: if ms_p > 0.0 { p / ms_p } else { 0.0 },
                rel_ckpt_repl: if ms_c > 0.0 { c / ms_c } else { 0.0 },
            });
        }
    }
    Fig10 { points }
}

impl Fig10 {
    /// Paper-style tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut ta = Table::new(
            "Fig 10a — input/source preservation data (relative to ms-8)",
            vec![
                "scheme".into(),
                "BCP".into(),
                "BCP MB".into(),
                "SignalGuru".into(),
                "SG MB".into(),
            ],
        );
        let mut tb = Table::new(
            "Fig 10b — checkpoint/replication network data (relative to ms-8)",
            vec![
                "scheme".into(),
                "BCP".into(),
                "BCP MB".into(),
                "SignalGuru".into(),
                "SG MB".into(),
            ],
        );
        let mb = 1024.0 * 1024.0;
        for scheme in schemes() {
            let find = |app: &str| {
                self.points
                    .iter()
                    .find(|p| p.app == app && p.scheme == scheme.label())
                    .cloned()
            };
            let b = find("BCP");
            let s = find("SignalGuru");
            ta.row(
                scheme.label(),
                vec![
                    b.as_ref()
                        .map(|p| Cell::Num(p.rel_preserved))
                        .unwrap_or(Cell::Dash),
                    b.as_ref()
                        .map(|p| Cell::Num(p.preserved_bytes / mb))
                        .unwrap_or(Cell::Dash),
                    s.as_ref()
                        .map(|p| Cell::Num(p.rel_preserved))
                        .unwrap_or(Cell::Dash),
                    s.as_ref()
                        .map(|p| Cell::Num(p.preserved_bytes / mb))
                        .unwrap_or(Cell::Dash),
                ],
            );
            tb.row(
                scheme.label(),
                vec![
                    b.as_ref()
                        .map(|p| Cell::Num(p.rel_ckpt_repl))
                        .unwrap_or(Cell::Dash),
                    b.as_ref()
                        .map(|p| Cell::Num(p.ckpt_repl_bytes / mb))
                        .unwrap_or(Cell::Dash),
                    s.as_ref()
                        .map(|p| Cell::Num(p.rel_ckpt_repl))
                        .unwrap_or(Cell::Dash),
                    s.as_ref()
                        .map(|p| Cell::Num(p.ckpt_repl_bytes / mb))
                        .unwrap_or(Cell::Dash),
                ],
            );
        }
        vec![ta, tb]
    }
}
