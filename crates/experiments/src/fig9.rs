//! Fig 9: relative throughput and latency when `n` nodes fail (or
//! depart) simultaneously within one checkpoint period. Values include
//! down time and recovery time, normalized to the fault-free base.
//!
//! Expected shapes (paper): the ms-8 failure curve is flat — recovery
//! restores all nodes from local copies in parallel; dist-n degrades
//! as n grows (serialized state fetches over the shared WiFi) and ends
//! at n; rep-2 ends at 1; ms departures cost less than failures until
//! many phones hit the cellular network at once.

use serde::Serialize;
use simkernel::SimDuration;

use crate::faults::{failure_order, inject_departure, inject_failure, inject_reboot};
use crate::report::{Cell, Table};
use crate::run::measured_run;
use crate::scenario::{AppKind, ScenarioConfig, Scheme};
use crate::{mean, run_jobs, ExpOptions};

/// A Fig 9 curve id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Curve {
    /// ms-8 with n simultaneous failures.
    MsFailure,
    /// ms-8 with n simultaneous departures.
    MsDeparture,
    /// rep-2 with n failures.
    Rep2Failure,
    /// dist-n with n failures.
    DistFailure(u32),
}

impl Curve {
    /// Label.
    pub fn label(&self) -> String {
        match self {
            Curve::MsFailure => "ms-8 failure".into(),
            Curve::MsDeparture => "ms-8 departure".into(),
            Curve::Rep2Failure => "rep-2 failure".into(),
            Curve::DistFailure(n) => format!("dist-{n} failure"),
        }
    }

    fn scheme(&self) -> Scheme {
        match self {
            Curve::MsFailure | Curve::MsDeparture => Scheme::Ms,
            Curve::Rep2Failure => Scheme::Rep2,
            Curve::DistFailure(n) => Scheme::Dist(*n),
        }
    }

    /// Largest n the scheme claims to tolerate (paper truncates curves
    /// there); ms handles all.
    pub fn max_tolerated(&self, phones: u32) -> u32 {
        match self {
            Curve::MsFailure | Curve::MsDeparture => phones,
            Curve::Rep2Failure => 1,
            Curve::DistFailure(n) => *n,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Point {
    /// Application.
    pub app: String,
    /// Curve.
    pub curve: String,
    /// Burst size.
    pub n: u32,
    /// Relative throughput vs fault-free base.
    pub rel_throughput: f64,
    /// Relative latency vs fault-free base.
    pub rel_latency: f64,
    /// Whether the paper's scheme claims to tolerate this n.
    pub tolerated: bool,
}

/// Full Fig 9 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// All points.
    pub points: Vec<Fig9Point>,
}

/// The curves of the figure.
pub fn curves() -> Vec<Curve> {
    vec![
        Curve::MsFailure,
        Curve::MsDeparture,
        Curve::Rep2Failure,
        Curve::DistFailure(1),
        Curve::DistFailure(2),
        Curve::DistFailure(3),
    ]
}

/// Run Fig 9. `max_n` caps the burst size (paper: 8).
pub fn run_fig9(opts: ExpOptions, max_n: u32) -> Fig9 {
    // The measurement window is exactly one checkpoint period starting
    // after the first commit, with the burst 30 s in.
    let inject_after = SimDuration::from_secs(30);
    let reboot_after = SimDuration::from_secs(60);

    type Key = (AppKind, String, u32);
    let mut jobs: Vec<crate::Job<(Key, f64, f64)>> = Vec::new();

    // Base fault-free reference per app/seed.
    for app in [AppKind::Bcp, AppKind::SignalGuru] {
        for seed in 0..opts.seeds {
            jobs.push(Box::new(move || {
                let cfg = ScenarioConfig {
                    app,
                    scheme: Scheme::Base,
                    seed: 500 + seed,
                    ..ScenarioConfig::default()
                };
                let h = measured_run(cfg, opts.warmup, opts.window, |_| {});
                (
                    (app, "base-ref".to_string(), 0),
                    h.mean_throughput,
                    h.mean_latency_s,
                )
            }));
        }
    }

    for app in [AppKind::Bcp, AppKind::SignalGuru] {
        for curve in curves() {
            for n in 0..=max_n {
                for seed in 0..opts.seeds {
                    let warmup = opts.warmup;
                    let window = opts.window;
                    jobs.push(Box::new(move || {
                        let cfg = ScenarioConfig {
                            app,
                            scheme: curve.scheme(),
                            seed: 500 + seed,
                            ..ScenarioConfig::default()
                        };
                        let h = measured_run(cfg, warmup, window, |dep| {
                            let at = simkernel::SimTime::ZERO + warmup + inject_after;
                            for region in 0..dep.cfg.regions {
                                let order = failure_order(dep, region);
                                for &slot in order.iter().take(n as usize) {
                                    match curve {
                                        Curve::MsDeparture => {
                                            inject_departure(dep, region, slot, at)
                                        }
                                        _ => {
                                            inject_failure(dep, region, slot, at);
                                            inject_reboot(dep, region, slot, at + reboot_after);
                                        }
                                    }
                                }
                            }
                        });
                        ((app, curve.label(), n), h.mean_throughput, h.mean_latency_s)
                    }));
                }
            }
        }
    }

    let results = run_jobs(opts.parallel, jobs);
    let agg = |key: &Key| -> (f64, f64) {
        let t: Vec<f64> = results
            .iter()
            .filter(|(k, _, _)| k == key)
            .map(|&(_, t, _)| t)
            .collect();
        let l: Vec<f64> = results
            .iter()
            .filter(|(k, _, _)| k == key)
            .map(|&(_, _, l)| l)
            .collect();
        (mean(&t), mean(&l))
    };

    let mut points = Vec::new();
    for app in [AppKind::Bcp, AppKind::SignalGuru] {
        let (base_t, base_l) = agg(&(app, "base-ref".into(), 0));
        for curve in curves() {
            for n in 0..=max_n {
                let (t, l) = agg(&(app, curve.label(), n));
                points.push(Fig9Point {
                    app: app.label().into(),
                    curve: curve.label(),
                    n,
                    rel_throughput: if base_t > 0.0 { t / base_t } else { 0.0 },
                    rel_latency: if base_l > 0.0 && l.is_finite() {
                        l / base_l
                    } else {
                        f64::INFINITY
                    },
                    tolerated: n <= curve.max_tolerated(8),
                });
            }
        }
    }
    Fig9 { points }
}

impl Fig9 {
    /// Tables: one per app per metric.
    pub fn tables(&self, max_n: u32) -> Vec<Table> {
        let mut tables = Vec::new();
        for app in ["BCP", "SignalGuru"] {
            for (metric, title) in [("tput", "relative throughput"), ("lat", "relative latency")] {
                let mut cols = vec!["curve".to_string()];
                cols.extend((0..=max_n).map(|n| format!("n={n}")));
                let mut t = Table::new(
                    format!("Fig 9 — {app} {title} vs n simultaneous failures/departures"),
                    cols,
                );
                for curve in curves() {
                    let cells: Vec<Cell> = (0..=max_n)
                        .map(|n| {
                            let p = self
                                .points
                                .iter()
                                .find(|p| p.app == app && p.curve == curve.label() && p.n == n);
                            match p {
                                Some(p) if p.tolerated => {
                                    if metric == "tput" {
                                        Cell::Pct(p.rel_throughput)
                                    } else {
                                        Cell::Num(p.rel_latency)
                                    }
                                }
                                // Beyond the scheme's tolerance the paper
                                // truncates the curve.
                                _ => Cell::Dash,
                            }
                        })
                        .collect();
                    t.row(curve.label(), cells);
                }
                tables.push(t);
            }
        }
        tables
    }
}
