//! Fig 8: relative throughput and latency of every fault-tolerance
//! scheme on the smartphone platform, **without** failures — pure
//! steady-state overhead (source/input preservation, checkpointing or
//! replication traffic competing with the data flow).

use serde::Serialize;

use crate::report::{Cell, Table};
use crate::run::measured_run;
use crate::scenario::{AppKind, ScenarioConfig, Scheme};
use crate::{mean, run_jobs, ExpOptions};

/// Scheme order of the paper's bars.
pub fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Base,
        Scheme::Rep2,
        Scheme::Local,
        Scheme::Dist(1),
        Scheme::Dist(2),
        Scheme::Dist(3),
        Scheme::Ms,
    ]
}

/// One bar of Fig 8.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Point {
    /// Application.
    pub app: String,
    /// Scheme label.
    pub scheme: String,
    /// Absolute per-region throughput (tuples/s).
    pub throughput: f64,
    /// Absolute mean latency (s).
    pub latency_s: f64,
    /// Relative to the same app's base.
    pub rel_throughput: f64,
    /// Relative latency.
    pub rel_latency: f64,
}

/// Full Fig 8 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8 {
    /// All bars.
    pub points: Vec<Fig8Point>,
}

/// Run Fig 8.
pub fn run_fig8(opts: ExpOptions) -> Fig8 {
    let mut jobs: Vec<crate::Job<(AppKind, Scheme, f64, f64)>> = Vec::new();
    for app in [AppKind::Bcp, AppKind::SignalGuru] {
        for scheme in schemes() {
            for seed in 0..opts.seeds {
                jobs.push(Box::new(move || {
                    let cfg = ScenarioConfig {
                        app,
                        scheme,
                        seed: 1000 + seed,
                        ..ScenarioConfig::default()
                    };
                    let h = measured_run(cfg, opts.warmup, opts.window, |_| {});
                    (app, scheme, h.mean_throughput, h.mean_latency_s)
                }));
            }
        }
    }
    let results = run_jobs(opts.parallel, jobs);

    let agg = |app: AppKind, scheme: Scheme| -> (f64, f64) {
        let tputs: Vec<f64> = results
            .iter()
            .filter(|(a, s, _, _)| *a == app && *s == scheme)
            .map(|&(_, _, t, _)| t)
            .collect();
        let lats: Vec<f64> = results
            .iter()
            .filter(|(a, s, _, _)| *a == app && *s == scheme)
            .map(|&(_, _, _, l)| l)
            .collect();
        (mean(&tputs), mean(&lats))
    };

    let mut points = Vec::new();
    for app in [AppKind::Bcp, AppKind::SignalGuru] {
        let (base_t, base_l) = agg(app, Scheme::Base);
        for scheme in schemes() {
            let (t, l) = agg(app, scheme);
            points.push(Fig8Point {
                app: app.label().into(),
                scheme: scheme.label(),
                throughput: t,
                latency_s: l,
                rel_throughput: if base_t > 0.0 { t / base_t } else { 0.0 },
                rel_latency: if base_l > 0.0 {
                    l / base_l
                } else {
                    f64::INFINITY
                },
            });
        }
    }
    Fig8 { points }
}

impl Fig8 {
    /// Paper-style tables (one throughput, one latency).
    pub fn tables(&self) -> Vec<Table> {
        let mut t1 = Table::new(
            "Fig 8 — relative throughput (fault-free, normalized to base)",
            vec![
                "scheme".into(),
                "BCP".into(),
                "BCP tput/s".into(),
                "SignalGuru".into(),
                "SG tput/s".into(),
            ],
        );
        let mut t2 = Table::new(
            "Fig 8 — relative latency (fault-free, normalized to base)",
            vec![
                "scheme".into(),
                "BCP".into(),
                "BCP lat s".into(),
                "SignalGuru".into(),
                "SG lat s".into(),
            ],
        );
        for scheme in schemes() {
            let find = |app: &str| {
                self.points
                    .iter()
                    .find(|p| p.app == app && p.scheme == scheme.label())
                    .cloned()
            };
            let b = find("BCP");
            let s = find("SignalGuru");
            t1.row(
                scheme.label(),
                vec![
                    b.as_ref()
                        .map(|p| Cell::Pct(p.rel_throughput))
                        .unwrap_or(Cell::Dash),
                    b.as_ref()
                        .map(|p| Cell::Num(p.throughput))
                        .unwrap_or(Cell::Dash),
                    s.as_ref()
                        .map(|p| Cell::Pct(p.rel_throughput))
                        .unwrap_or(Cell::Dash),
                    s.as_ref()
                        .map(|p| Cell::Num(p.throughput))
                        .unwrap_or(Cell::Dash),
                ],
            );
            t2.row(
                scheme.label(),
                vec![
                    b.as_ref()
                        .map(|p| Cell::Num(p.rel_latency))
                        .unwrap_or(Cell::Dash),
                    b.as_ref()
                        .map(|p| Cell::Num(p.latency_s))
                        .unwrap_or(Cell::Dash),
                    s.as_ref()
                        .map(|p| Cell::Num(p.rel_latency))
                        .unwrap_or(Cell::Dash),
                    s.as_ref()
                        .map(|p| Cell::Num(p.latency_s))
                        .unwrap_or(Cell::Dash),
                ],
            );
        }
        vec![t1, t2]
    }
}
