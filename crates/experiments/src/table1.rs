//! Table I: MobiStreams vs the server-based DSPS.
//!
//! The server platform (Fig 1c) computes on datacenter servers but
//! must haul every camera frame over the 3G uplink (0.016–0.32 Mbps)
//! — the uplink is the bottleneck, so throughput and latency are
//! reported as a min–max band over that range. MobiStreams (Fig 1d)
//! computes in-region over WiFi; three rows: FT off, FT on with a
//! departure every 5 minutes, FT on with a failure every 5 minutes.

use serde::Serialize;
use simkernel::{SimDuration, SimTime};

use crate::faults::{failure_order, inject_departure, inject_failure, inject_reboot};
use crate::report::{Cell, Table};
use crate::run::measured_run;
use crate::scenario::{AppKind, Platform, ScenarioConfig, Scheme};
use crate::{mean, run_jobs, ExpOptions};

/// One Table I row for one app.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Cell {
    /// Row label.
    pub system: String,
    /// Application.
    pub app: String,
    /// Per-region throughput, tuples/s (min for bands).
    pub tput_lo: f64,
    /// Max of the band (== lo for single-value rows).
    pub tput_hi: f64,
    /// Latency seconds (min).
    pub lat_lo: f64,
    /// Latency max.
    pub lat_hi: f64,
}

/// Full Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// All cells.
    pub cells: Vec<Table1Cell>,
}

/// The periodic-fault pattern of the ms rows: one event per checkpoint
/// period, rotating over computing slots, with rebooted/returning
/// phones re-registering 120 s later.
fn periodic_faults(
    dep: &mut crate::scenario::Deployment,
    departures: bool,
    start: SimDuration,
    end: SimDuration,
    period: SimDuration,
) {
    for region in 0..dep.cfg.regions {
        let order = failure_order(dep, region);
        let mut at = SimTime::ZERO + start;
        let mut i = 0usize;
        while at < SimTime::ZERO + end {
            let slot = order[i % 3]; // rotate over the first three computing slots
            if departures {
                inject_departure(dep, region, slot, at);
            } else {
                inject_failure(dep, region, slot, at);
            }
            // The phone returns (reboot / re-enters the region) so the
            // spare pool never runs dry.
            inject_reboot(dep, region, slot, at + SimDuration::from_secs(120));
            at += period;
            i += 1;
        }
    }
}

/// Run Table I.
pub fn run_table1(opts: ExpOptions) -> Table1 {
    #[derive(Clone, Copy, PartialEq)]
    enum Row {
        ServerLo,
        ServerHi,
        MsFtOff,
        MsDeparture,
        MsFailure,
    }
    let rows = [
        Row::ServerLo,
        Row::ServerHi,
        Row::MsFtOff,
        Row::MsDeparture,
        Row::MsFailure,
    ];

    type Key = (AppKind, usize);
    let mut jobs: Vec<crate::Job<(Key, f64, f64)>> = Vec::new();
    for app in [AppKind::Bcp, AppKind::SignalGuru] {
        for (row_ix, &row) in rows.iter().enumerate() {
            for seed in 0..opts.seeds {
                let warmup = opts.warmup;
                let window = opts.window;
                jobs.push(Box::new(move || {
                    let (platform, scheme, checkpoints) = match row {
                        Row::ServerLo => (
                            Platform::Server {
                                uplink_bps: 16_000.0,
                            },
                            Scheme::Base,
                            false,
                        ),
                        Row::ServerHi => (
                            Platform::Server {
                                uplink_bps: 320_000.0,
                            },
                            Scheme::Base,
                            false,
                        ),
                        Row::MsFtOff => (Platform::Phones, Scheme::Base, false),
                        Row::MsDeparture | Row::MsFailure => (Platform::Phones, Scheme::Ms, true),
                    };
                    let cfg = ScenarioConfig {
                        app,
                        scheme,
                        platform,
                        checkpoints_enabled: checkpoints,
                        seed: 3000 + seed,
                        ..ScenarioConfig::default()
                    };
                    let period = cfg.ckpt_period;
                    let h = measured_run(cfg, warmup, window, |dep| match row {
                        Row::MsDeparture => periodic_faults(
                            dep,
                            true,
                            warmup + SimDuration::from_secs(30),
                            warmup + window,
                            period,
                        ),
                        Row::MsFailure => periodic_faults(
                            dep,
                            false,
                            warmup + SimDuration::from_secs(30),
                            warmup + window,
                            period,
                        ),
                        _ => {}
                    });
                    ((app, row_ix), h.mean_throughput, h.mean_latency_s)
                }));
            }
        }
    }
    let results = run_jobs(opts.parallel, jobs);
    let agg = |key: Key| -> (f64, f64) {
        let t: Vec<f64> = results
            .iter()
            .filter(|(k, _, _)| *k == key)
            .map(|&(_, t, _)| t)
            .collect();
        let l: Vec<f64> = results
            .iter()
            .filter(|(k, _, _)| *k == key)
            .map(|&(_, _, l)| l)
            .collect();
        (mean(&t), mean(&l))
    };

    let mut cells = Vec::new();
    for app in [AppKind::Bcp, AppKind::SignalGuru] {
        // Server band: combine the two uplink extremes.
        let (t_lo, l_hi) = agg((app, 0)); // 0.016 Mbps: lowest tput, highest lat
        let (t_hi, l_lo) = agg((app, 1));
        cells.push(Table1Cell {
            system: "Server-based DSPS".into(),
            app: app.label().into(),
            tput_lo: t_lo.min(t_hi),
            tput_hi: t_lo.max(t_hi),
            lat_lo: l_lo.min(l_hi),
            lat_hi: l_lo.max(l_hi),
        });
        for (label, row_ix) in [
            ("MobiStreams (FT off)", 2usize),
            ("MobiStreams (departure / 5 min)", 3),
            ("MobiStreams (failure / 5 min)", 4),
        ] {
            let (t, l) = agg((app, row_ix));
            cells.push(Table1Cell {
                system: label.into(),
                app: app.label().into(),
                tput_lo: t,
                tput_hi: t,
                lat_lo: l,
                lat_hi: l,
            });
        }
    }
    Table1 { cells }
}

impl Table1 {
    /// Paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table I — MobiStreams vs server-based DSPS (per-region)",
            vec![
                "system".into(),
                "BCP tput/s".into(),
                "BCP lat s".into(),
                "SG tput/s".into(),
                "SG lat s".into(),
            ],
        );
        let systems: Vec<String> = self
            .cells
            .iter()
            .map(|c| c.system.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        // Preserve paper row order.
        let order = [
            "Server-based DSPS",
            "MobiStreams (FT off)",
            "MobiStreams (departure / 5 min)",
            "MobiStreams (failure / 5 min)",
        ];
        for sys in order.iter().filter(|s| systems.iter().any(|x| x == *s)) {
            let find = |app: &str| {
                self.cells
                    .iter()
                    .find(|c| c.system == *sys && c.app == app)
                    .cloned()
            };
            let b = find("BCP");
            let s = find("SignalGuru");
            let fmt = |c: &Option<Table1Cell>, tput: bool| -> Cell {
                match c {
                    None => Cell::Dash,
                    Some(c) => {
                        if tput {
                            Cell::Num(c.tput_lo) // band rendered via two cells below
                        } else {
                            Cell::Num(c.lat_lo)
                        }
                    }
                }
            };
            let _ = fmt;
            let band = |c: &Option<Table1Cell>, tput: bool| -> String {
                match c {
                    None => "-".into(),
                    Some(c) => {
                        let (lo, hi) = if tput {
                            (c.tput_lo, c.tput_hi)
                        } else {
                            (c.lat_lo, c.lat_hi)
                        };
                        if (hi - lo).abs() < 1e-9 {
                            format!("{lo:.3}")
                        } else {
                            format!("{lo:.3}~{hi:.3}")
                        }
                    }
                }
            };
            // Table cells are numeric; encode bands in the row label
            // suffix instead: keep it simple by flattening into text.
            t.row(
                format!(
                    "{sys} | BCP {} t/s, {} s | SG {} t/s, {} s",
                    band(&b, true),
                    band(&b, false),
                    band(&s, true),
                    band(&s, false)
                ),
                vec![
                    b.as_ref()
                        .map(|c| Cell::Num(c.tput_lo))
                        .unwrap_or(Cell::Dash),
                    b.as_ref()
                        .map(|c| Cell::Num(c.lat_hi))
                        .unwrap_or(Cell::Dash),
                    s.as_ref()
                        .map(|c| Cell::Num(c.tput_lo))
                        .unwrap_or(Cell::Dash),
                    s.as_ref()
                        .map(|c| Cell::Num(c.lat_hi))
                        .unwrap_or(Cell::Dash),
                ],
            );
        }
        t
    }
}
