//! Deterministic network-weather engine: declarative weather programs
//! compiled into concrete simulation injections.
//!
//! A [`WeatherProgram`] is a list of [`WeatherSystem`]s — region-set
//! cellular partitions with scheduled heals, correlated AP brownouts,
//! flapping links, controller blackouts — plus a declared recovery
//! SLO. [`compile`] turns a program into a sorted schedule of
//! [`WeatherInjection`]s (pure function, unit-testable without a
//! deployment); `fleet::build_fleet` maps those onto the simnet
//! primitives ([`simnet::cellular::CellSetPartition`],
//! [`simnet::wifi::WifiSetBrownout`]). [`fault_windows`] derives the
//! per-region fault timeline skeleton (partition start → scheduled
//! heal) that `run_fleet` joins against the controller's commit log to
//! measure recovery latency and enforce the SLO.
//!
//! The seeded generators behind [`weather`] place partition starts in
//! *ping-safe* offsets of the controller's 30 s ping cadence: a
//! partition that begins while a ping round is in flight cuts the
//! pongs of pings that carried no severed evidence, so the deadline
//! can misread the first seconds of weather as a mass failure. Real
//! weather does that too — the engine keeps the named profiles out of
//! that window so their SLO numbers measure heal behavior, not
//! detection-race noise (the `flap` profile's cycle period is a
//! multiple of the cadence for the same reason).

use simkernel::{SimRng, SimTime};

/// Shape of the sharded control plane as weather sees it: how many
/// regions exist and how they group under region-group controllers
/// (region `r` belongs to group `r / group_size`). Controller
/// blackouts are per-group faults — one group controller dropping off
/// the cellular core severs its own regions and nobody else's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlTopology {
    /// Regions in the fleet.
    pub regions: usize,
    /// Regions per region-group controller (≥ 1).
    pub group_size: usize,
}

impl CtlTopology {
    /// A topology of `regions` regions grouped by `group_size`.
    pub fn new(regions: usize, group_size: usize) -> Self {
        CtlTopology {
            regions,
            group_size: group_size.max(1),
        }
    }

    /// Number of region groups.
    pub fn n_groups(&self) -> usize {
        self.regions.div_ceil(self.group_size)
    }

    /// The group owning region `r`.
    pub fn group_of(&self, r: usize) -> usize {
        r / self.group_size
    }

    /// The regions of group `g`.
    pub fn regions_of(&self, g: usize) -> std::ops::Range<usize> {
        let lo = g * self.group_size;
        lo..self.regions.min(lo + self.group_size)
    }
}

/// One weather system. Times are absolute simulation seconds; `heal_s`
/// is when the condition clears (not a duration).
#[derive(Debug, Clone)]
pub enum WeatherSystem {
    /// Sever a set of regions from the cellular core between `at_s`
    /// and `heal_s`. Endpoints stay alive: queued traffic ages out via
    /// the timeout path and tagged senders get `TxSevered`, not death.
    CellPartition {
        /// Regions cut off.
        regions: Vec<usize>,
        /// Partition start.
        at_s: f64,
        /// Scheduled heal.
        heal_s: f64,
    },
    /// Region-wide WiFi brownout: every phone's medium loss is pinned
    /// at `loss` between `at_s` and `heal_s`, then the pre-brownout
    /// loss profile is restored.
    ApBrownout {
        /// Regions affected.
        regions: Vec<usize>,
        /// Brownout start.
        at_s: f64,
        /// Scheduled heal.
        heal_s: f64,
        /// Pinned loss probability while the brownout lasts.
        loss: f64,
    },
    /// A flapping cellular link: `cycles` partition pulses of `down_s`
    /// seconds, `up_s` seconds apart, starting at `at_s`. Reported as
    /// ONE fault window spanning first cut to last heal.
    LinkFlap {
        /// Region flapping.
        region: usize,
        /// First cut.
        at_s: f64,
        /// Number of down pulses.
        cycles: u32,
        /// Length of each down pulse.
        down_s: f64,
        /// Gap between pulses.
        up_s: f64,
    },
    /// One region-group controller's cellular endpoint is partitioned:
    /// every region of that group is weather-severed at once, while
    /// the rest of the fleet keeps committing rounds.
    ControllerBlackout {
        /// Region group whose controller goes dark.
        group: usize,
        /// Blackout start.
        at_s: f64,
        /// Scheduled heal.
        heal_s: f64,
    },
}

/// A declarative weather program for one fleet run.
#[derive(Debug, Clone)]
pub struct WeatherProgram {
    /// Name (report label).
    pub name: String,
    /// The systems rolling through.
    pub systems: Vec<WeatherSystem>,
    /// Declared recovery SLO: after a partition's scheduled heal, each
    /// affected region must commit a checkpoint round within this many
    /// seconds. Negative = no SLO declared (e.g. brownout-only
    /// programs, which never cut the control path).
    pub recovery_slo_s: f64,
}

impl WeatherProgram {
    /// A program with no systems (the matrix baseline column).
    pub fn calm() -> Self {
        WeatherProgram {
            name: "calm".into(),
            systems: Vec::new(),
            recovery_slo_s: -1.0,
        }
    }
}

/// One concrete, compiled weather action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeatherAction {
    /// Partition (or heal) one region's phones off the cellular core.
    PartitionRegion {
        /// Region affected.
        region: usize,
        /// true = sever, false = heal.
        on: bool,
    },
    /// Pin (or restore) one region's WiFi loss.
    Brownout {
        /// Region affected.
        region: usize,
        /// true = pin at `loss`, false = restore.
        on: bool,
        /// Loss pinned while on.
        loss: f64,
    },
    /// Partition (or heal) one region-group controller's endpoint.
    PartitionController {
        /// Region group whose controller is affected.
        group: usize,
        /// true = sever, false = heal.
        on: bool,
    },
}

/// A scheduled weather action.
#[derive(Debug, Clone, Copy)]
pub struct WeatherInjection {
    /// When.
    pub at: SimTime,
    /// What.
    pub action: WeatherAction,
}

fn secs(s: f64) -> SimTime {
    SimTime::from_nanos((s.max(0.0) * 1e9) as u64)
}

/// Compile a program into a sorted injection schedule. Pure function:
/// same program, same schedule. Systems naming out-of-range regions or
/// groups or non-positive windows are skipped (a program is data, not
/// trusted input).
pub fn compile(program: &WeatherProgram, topo: CtlTopology) -> Vec<WeatherInjection> {
    let regions = topo.regions;
    let mut out = Vec::new();
    for sys in &program.systems {
        match sys {
            WeatherSystem::CellPartition {
                regions: set,
                at_s,
                heal_s,
            } => {
                if *heal_s <= *at_s {
                    continue;
                }
                for &r in set {
                    if r >= regions {
                        continue;
                    }
                    out.push(WeatherInjection {
                        at: secs(*at_s),
                        action: WeatherAction::PartitionRegion {
                            region: r,
                            on: true,
                        },
                    });
                    out.push(WeatherInjection {
                        at: secs(*heal_s),
                        action: WeatherAction::PartitionRegion {
                            region: r,
                            on: false,
                        },
                    });
                }
            }
            WeatherSystem::ApBrownout {
                regions: set,
                at_s,
                heal_s,
                loss,
            } => {
                if *heal_s <= *at_s {
                    continue;
                }
                for &r in set {
                    if r >= regions {
                        continue;
                    }
                    out.push(WeatherInjection {
                        at: secs(*at_s),
                        action: WeatherAction::Brownout {
                            region: r,
                            on: true,
                            loss: *loss,
                        },
                    });
                    out.push(WeatherInjection {
                        at: secs(*heal_s),
                        action: WeatherAction::Brownout {
                            region: r,
                            on: false,
                            loss: *loss,
                        },
                    });
                }
            }
            WeatherSystem::LinkFlap {
                region,
                at_s,
                cycles,
                down_s,
                up_s,
            } => {
                if *region >= regions || *down_s <= 0.0 || *cycles == 0 {
                    continue;
                }
                let period = down_s + up_s.max(0.0);
                for c in 0..*cycles {
                    let t0 = at_s + c as f64 * period;
                    out.push(WeatherInjection {
                        at: secs(t0),
                        action: WeatherAction::PartitionRegion {
                            region: *region,
                            on: true,
                        },
                    });
                    out.push(WeatherInjection {
                        at: secs(t0 + down_s),
                        action: WeatherAction::PartitionRegion {
                            region: *region,
                            on: false,
                        },
                    });
                }
            }
            WeatherSystem::ControllerBlackout {
                group,
                at_s,
                heal_s,
            } => {
                if *heal_s <= *at_s || *group >= topo.n_groups() {
                    continue;
                }
                out.push(WeatherInjection {
                    at: secs(*at_s),
                    action: WeatherAction::PartitionController {
                        group: *group,
                        on: true,
                    },
                });
                out.push(WeatherInjection {
                    at: secs(*heal_s),
                    action: WeatherAction::PartitionController {
                        group: *group,
                        on: false,
                    },
                });
            }
        }
    }
    // Deterministic total order; heals before cuts at equal instants so
    // back-to-back windows never fuse into a never-healed partition.
    out.sort_by_key(|i| (i.at, action_rank(&i.action)));
    out
}

fn action_rank(a: &WeatherAction) -> (u8, usize, u8) {
    match a {
        WeatherAction::PartitionRegion { region, on } => (0, *region, *on as u8),
        WeatherAction::Brownout { region, on, .. } => (1, *region, *on as u8),
        WeatherAction::PartitionController { group, on } => (2, *group, *on as u8),
    }
}

/// Control-path fault windows of a program: `(region, start, heal)`
/// for every interval during which the region cannot reach its
/// controller. Brownouts are excluded (WiFi weather never cuts the
/// control path); a [`WeatherSystem::LinkFlap`] is one window from
/// first cut to last heal; a controller blackout covers exactly the
/// regions of the blacked-out group. Overlapping windows of the same
/// region are merged.
pub fn fault_windows(
    program: &WeatherProgram,
    topo: CtlTopology,
) -> Vec<(usize, SimTime, SimTime)> {
    let regions = topo.regions;
    let mut raw: Vec<(usize, SimTime, SimTime)> = Vec::new();
    for sys in &program.systems {
        match sys {
            WeatherSystem::CellPartition {
                regions: set,
                at_s,
                heal_s,
            } if *heal_s > *at_s => {
                for &r in set {
                    if r < regions {
                        raw.push((r, secs(*at_s), secs(*heal_s)));
                    }
                }
            }
            WeatherSystem::LinkFlap {
                region,
                at_s,
                cycles,
                down_s,
                up_s,
            } if *region < regions && *down_s > 0.0 && *cycles > 0 => {
                let period = down_s + up_s.max(0.0);
                let last_heal = at_s + (*cycles - 1) as f64 * period + down_s;
                raw.push((*region, secs(*at_s), secs(last_heal)));
            }
            WeatherSystem::ControllerBlackout {
                group,
                at_s,
                heal_s,
            } if *heal_s > *at_s && *group < topo.n_groups() => {
                for r in topo.regions_of(*group) {
                    raw.push((r, secs(*at_s), secs(*heal_s)));
                }
            }
            _ => {}
        }
    }
    raw.sort_by_key(|&(r, a, b)| (r, a, b));
    let mut merged: Vec<(usize, SimTime, SimTime)> = Vec::new();
    for w in raw {
        match merged.last_mut() {
            Some(m) if m.0 == w.0 && w.1 <= m.2 => m.2 = m.2.max(w.2),
            _ => merged.push(w),
        }
    }
    merged
}

/// Names of the built-in weather profiles.
pub const WEATHER_NAMES: &[&str] = &[
    "calm",
    "partition-heal",
    "brownout-front",
    "flap",
    "blackout",
];

/// Snap a start time into a ping-safe offset of the 30 s cadence (see
/// the module docs): `[base, base+8)` seeded jitter inside the
/// `[+12, +20) mod 30` band.
fn ping_safe(rng: &mut SimRng, slot_30s: f64) -> f64 {
    slot_30s * 30.0 + 12.0 + rng.uniform(0.0, 8.0)
}

/// Build a named weather profile for a fleet with the given control
/// topology. Seeded and deterministic: same `(name, seed, topo)`, same
/// program. `None` for unknown names.
pub fn weather(name: &str, seed: u64, topo: CtlTopology) -> Option<WeatherProgram> {
    let mut rng = SimRng::new(seed ^ 0x5EA5_0B1A_57ED_C0DE);
    let r = topo.regions.max(1);
    let program = match name {
        "calm" => WeatherProgram::calm(),
        "partition-heal" => {
            // Two staggered partition episodes with scheduled heals:
            // a front over the first quarter of the fleet, then a
            // second cell over the last region. Early enough that the
            // post-heal checkpoint round lands well inside every
            // profile's horizon.
            let m = (r / 4).max(1);
            let ep0_at = ping_safe(&mut rng, 2.0); // ~[72, 80)
            let ep0_heal = ep0_at + 60.0 + rng.uniform(0.0, 10.0);
            let ep1_at = ping_safe(&mut rng, 5.0); // ~[162, 170)
            let ep1_heal = ep1_at + 25.0 + rng.uniform(0.0, 10.0);
            WeatherProgram {
                name: name.into(),
                systems: vec![
                    WeatherSystem::CellPartition {
                        regions: (0..m).collect(),
                        at_s: ep0_at,
                        heal_s: ep0_heal,
                    },
                    WeatherSystem::CellPartition {
                        regions: vec![r - 1],
                        at_s: ep1_at,
                        heal_s: ep1_heal,
                    },
                ],
                recovery_slo_s: 260.0,
            }
        }
        "brownout-front" => {
            // A correlated interference front sweeping the fleet:
            // region r browns out ~25 s after region r-1, each episode
            // pinning loss at 50-70 % for about a minute.
            let systems = (0..r)
                .map(|reg| {
                    let at = 90.0 + 25.0 * reg as f64 + rng.uniform(0.0, 10.0);
                    WeatherSystem::ApBrownout {
                        regions: vec![reg],
                        at_s: at,
                        heal_s: at + 50.0 + rng.uniform(0.0, 20.0),
                        loss: 0.5 + rng.uniform(0.0, 0.2),
                    }
                })
                .collect();
            WeatherProgram {
                name: name.into(),
                systems,
                recovery_slo_s: -1.0,
            }
        }
        "flap" => {
            // One region's backhaul flaps: 12 s cuts every 60 s. The
            // 60 s cycle is a multiple of the ping cadence, so every
            // cut stays in the same ping-safe phase as the first.
            let region = (seed as usize) % r;
            WeatherProgram {
                name: name.into(),
                systems: vec![WeatherSystem::LinkFlap {
                    region,
                    at_s: ping_safe(&mut rng, 2.0),
                    cycles: 3,
                    down_s: 12.0,
                    up_s: 48.0,
                }],
                recovery_slo_s: 260.0,
            }
        }
        "blackout" => {
            // One region-group controller drops off the cellular core
            // for ~45 s: its whole group is weather-severed at once
            // while every other group keeps committing.
            let group = (seed as usize) % topo.n_groups().max(1);
            let at = ping_safe(&mut rng, 3.0); // ~[102, 110)
            WeatherProgram {
                name: name.into(),
                systems: vec![WeatherSystem::ControllerBlackout {
                    group,
                    at_s: at,
                    heal_s: at + 45.0,
                }],
                recovery_slo_s: 260.0,
            }
        }
        _ => return None,
    };
    Some(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(regions: usize, group_size: usize) -> CtlTopology {
        CtlTopology::new(regions, group_size)
    }

    #[test]
    fn topology_groups_regions_contiguously() {
        let t = topo(7, 3);
        assert_eq!(t.n_groups(), 3);
        assert_eq!(t.group_of(0), 0);
        assert_eq!(t.group_of(5), 1);
        assert_eq!(t.group_of(6), 2);
        assert_eq!(t.regions_of(1), 3..6);
        assert_eq!(t.regions_of(2), 6..7);
    }

    #[test]
    fn compile_is_deterministic_and_sorted() {
        let p = weather("partition-heal", 9, topo(4, 1)).unwrap();
        let a = compile(&p, topo(4, 1));
        let b = compile(&p, topo(4, 1));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(format!("{:?}", x.action), format!("{:?}", y.action));
        }
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "unsorted");
        assert!(!a.is_empty());
    }

    #[test]
    fn weather_profiles_resolve_and_are_seed_sensitive() {
        for name in WEATHER_NAMES {
            let p = weather(name, 3, topo(4, 2)).expect("known weather");
            assert_eq!(&p.name, name);
        }
        assert!(weather("hurricane", 3, topo(4, 2)).is_none());
        let a = compile(
            &weather("partition-heal", 1, topo(4, 1)).unwrap(),
            topo(4, 1),
        );
        let b = compile(
            &weather("partition-heal", 2, topo(4, 1)).unwrap(),
            topo(4, 1),
        );
        let same = a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x.at == y.at);
        assert!(!same, "different seeds produced identical schedules");
    }

    #[test]
    fn blackout_targets_one_group_and_tracks_the_seed() {
        // The blacked-out group is seed-derived and always in range.
        let hit: std::collections::BTreeSet<usize> = (0..8)
            .map(|seed| {
                let p = weather("blackout", seed, topo(6, 2)).unwrap();
                match p.systems[0] {
                    WeatherSystem::ControllerBlackout { group, .. } => {
                        assert!(group < 3);
                        group
                    }
                    _ => panic!("blackout profile must be a ControllerBlackout"),
                }
            })
            .collect();
        assert!(hit.len() > 1, "seed never moved the blacked-out group");
    }

    #[test]
    fn every_partition_cut_has_a_matching_heal() {
        for name in WEATHER_NAMES {
            let p = weather(name, 5, topo(6, 2)).unwrap();
            let inj = compile(&p, topo(6, 2));
            let mut open: std::collections::BTreeMap<String, i64> = Default::default();
            for i in &inj {
                let (key, on) = match i.action {
                    WeatherAction::PartitionRegion { region, on } => (format!("r{region}"), on),
                    WeatherAction::Brownout { region, on, .. } => (format!("b{region}"), on),
                    WeatherAction::PartitionController { group, on } => (format!("ctl{group}"), on),
                };
                *open.entry(key).or_default() += if on { 1 } else { -1 };
            }
            for (k, v) in open {
                assert_eq!(v, 0, "{name}: unbalanced cut/heal for {k}");
            }
        }
    }

    #[test]
    fn fault_windows_merge_and_scope_blackouts_to_the_group() {
        let p = WeatherProgram {
            name: "t".into(),
            systems: vec![
                WeatherSystem::CellPartition {
                    regions: vec![0, 1],
                    at_s: 10.0,
                    heal_s: 30.0,
                },
                // Overlaps region 1's first window: must merge.
                WeatherSystem::CellPartition {
                    regions: vec![1],
                    at_s: 20.0,
                    heal_s: 50.0,
                },
                // Group 0 = regions {0, 1} under group_size 2; region 2
                // (group 1) must stay clear of this blackout.
                WeatherSystem::ControllerBlackout {
                    group: 0,
                    at_s: 100.0,
                    heal_s: 120.0,
                },
                // Brownouts never produce control-path windows.
                WeatherSystem::ApBrownout {
                    regions: vec![2],
                    at_s: 5.0,
                    heal_s: 500.0,
                    loss: 0.9,
                },
            ],
            recovery_slo_s: 100.0,
        };
        let w = fault_windows(&p, topo(3, 2));
        assert_eq!(
            w,
            vec![
                (0, secs(10.0), secs(30.0)),
                (0, secs(100.0), secs(120.0)),
                (1, secs(10.0), secs(50.0)),
                (1, secs(100.0), secs(120.0)),
            ]
        );
    }

    #[test]
    fn out_of_range_regions_and_empty_windows_are_skipped() {
        let p = WeatherProgram {
            name: "t".into(),
            systems: vec![
                WeatherSystem::CellPartition {
                    regions: vec![7],
                    at_s: 10.0,
                    heal_s: 20.0,
                },
                WeatherSystem::CellPartition {
                    regions: vec![0],
                    at_s: 20.0,
                    heal_s: 20.0,
                },
                // Group index past the topology: skipped like an
                // out-of-range region.
                WeatherSystem::ControllerBlackout {
                    group: 5,
                    at_s: 10.0,
                    heal_s: 20.0,
                },
            ],
            recovery_slo_s: 1.0,
        };
        assert!(compile(&p, topo(2, 1)).is_empty());
        assert!(fault_windows(&p, topo(2, 1)).is_empty());
    }

    #[test]
    fn partition_starts_sit_in_the_ping_safe_band() {
        for seed in 0..20 {
            let p = weather("partition-heal", seed, topo(8, 2)).unwrap();
            for sys in &p.systems {
                if let WeatherSystem::CellPartition { at_s, .. } = sys {
                    let phase = at_s % 30.0;
                    assert!(
                        (12.0..20.0).contains(&phase),
                        "seed {seed}: start {at_s} (phase {phase}) outside the safe band"
                    );
                }
            }
        }
    }
}
