//! Metric harvest: turn a finished deployment into the numbers the
//! paper reports.

use dsps::node::NodeActor;
use simkernel::{SimDuration, SimTime};
use simnet::cellular::CellularNet;
use simnet::stats::TrafficClass;
use simnet::wifi::WifiMedium;

use crate::scenario::{Deployment, Scheme};

/// Per-region observation window results.
#[derive(Debug, Clone)]
pub struct RegionStats {
    /// Sink outputs in the window.
    pub outputs: usize,
    /// Output tuples per second.
    pub throughput: f64,
    /// Mean enter-to-leave latency (seconds), if any output.
    pub mean_latency_s: Option<f64>,
    /// 95th-percentile latency.
    pub p95_latency_s: Option<f64>,
    /// Source inputs dropped at full queues.
    pub source_drops: u64,
    /// Catch-up discards at sinks.
    pub catchup_discards: u64,
    /// Cellular messages tail-dropped at this region's phones' full
    /// link queues (uplink + downlink).
    pub cell_drops: u64,
    /// Deepest cellular link backlog observed on any of this region's
    /// phones (bytes).
    pub cell_max_queue_depth: u64,
}

/// Whole-deployment harvest.
#[derive(Debug, Clone)]
pub struct Harvest {
    /// Scheme label.
    pub scheme: String,
    /// Per-region stats.
    pub per_region: Vec<RegionStats>,
    /// Mean per-region throughput (tuples/s).
    pub mean_throughput: f64,
    /// Mean latency (seconds) over regions with output.
    pub mean_latency_s: f64,
    /// WiFi payload bytes by class, summed over regions.
    pub wifi_bytes: ClassBytes,
    /// Cellular payload bytes by class.
    pub cell_bytes: ClassBytes,
    /// Logical preserved bytes (Fig 10a): source logs for ms, retention
    /// buffers for local/dist, 0 for base/rep-2.
    pub preserved_bytes: u64,
    /// Network bytes due to checkpointing or replication (Fig 10b):
    /// `Checkpoint + Replication` classes on WiFi.
    pub ckpt_repl_bytes: u64,
    /// Recoveries completed (count, mean seconds).
    pub recoveries: usize,
    /// Mean recovery duration.
    pub mean_recovery_s: f64,
    /// Regions stopped (unrecoverable).
    pub stops: u64,
    /// Cellular messages tail-dropped network-wide (bounded link
    /// queues; cellular-collapse signal).
    pub cell_drops: u64,
    /// Deepest cellular link backlog observed network-wide (bytes).
    pub cell_max_queue_depth: u64,
    /// Cellular sends aged out behind a network-weather partition.
    pub cell_severed_sends: u64,
    /// Backlogged cellular bytes drained without delivery (endpoint
    /// death or partition ageing), network-wide.
    pub cell_queue_drop_bytes: u64,
    /// Cellular sends rejected at dead/unknown endpoints.
    pub cell_rejects: u64,
}

/// Payload bytes per traffic class.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassBytes {
    /// Stream tuples.
    pub data: u64,
    /// rep-2 duplicate flow.
    pub replication: u64,
    /// Checkpoint state shipping.
    pub checkpoint: u64,
    /// Source-preservation replication.
    pub preservation: u64,
    /// Control plane.
    pub control: u64,
    /// Recovery traffic.
    pub recovery: u64,
}

impl ClassBytes {
    fn from_stats(s: &simnet::stats::NetStats) -> Self {
        ClassBytes {
            data: s.payload_bytes(TrafficClass::Data),
            replication: s.payload_bytes(TrafficClass::Replication),
            checkpoint: s.payload_bytes(TrafficClass::Checkpoint),
            preservation: s.payload_bytes(TrafficClass::Preservation),
            control: s.payload_bytes(TrafficClass::Control),
            recovery: s.payload_bytes(TrafficClass::Recovery),
        }
    }

    fn add(&mut self, other: &ClassBytes) {
        self.data += other.data;
        self.replication += other.replication;
        self.checkpoint += other.checkpoint;
        self.preservation += other.preservation;
        self.control += other.control;
        self.recovery += other.recovery;
    }

    /// Everything.
    pub fn total(&self) -> u64 {
        self.data
            + self.replication
            + self.checkpoint
            + self.preservation
            + self.control
            + self.recovery
    }
}

/// Harvest metrics over the window `[from, to)`.
pub fn harvest(dep: &Deployment, from: SimTime, to: SimTime) -> Harvest {
    let mut per_region = Vec::new();
    let mut wifi_bytes = ClassBytes::default();
    let mut preserved_raw_sum = 0u64;
    let mut preserved_max = 0u64;
    let mut active_per_region = Vec::new();

    let cellnet = dep.sim.actor::<CellularNet>(dep.cell);
    for handles in &dep.regions {
        let mut outputs = 0usize;
        let mut lat_sum = 0.0f64;
        let mut lats: Vec<f64> = Vec::new();
        let mut drops = 0u64;
        let mut discards = 0u64;
        let mut active = 0usize;
        let mut cell_drops = 0u64;
        let mut cell_depth = 0u64;
        for &nid in &handles.nodes {
            if let Some(ep) = cellnet.endpoint_stats(nid) {
                cell_drops += ep.queue_drops;
                cell_depth = cell_depth.max(ep.max_queue_bytes());
            }
        }
        for &nid in &handles.nodes {
            let na = dep.sim.actor::<NodeActor>(nid);
            let m = &na.inner.metrics;
            for s in &m.sink_samples {
                if s.at >= from && s.at < to {
                    outputs += 1;
                    let l = s.latency.as_secs_f64();
                    lat_sum += l;
                    lats.push(l);
                }
            }
            drops += m.source_drops;
            discards += m.catchup_discards;
            if na.inner.alive {
                active += 1;
            }
            let p = na.scheme.preserved_bytes(&na.inner);
            preserved_raw_sum += p;
            preserved_max = preserved_max.max(p);
        }
        active_per_region.push(active);
        let span = (to - from).as_secs_f64();
        lats.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = if lats.is_empty() {
            None
        } else {
            Some(lats[((lats.len() - 1) as f64 * 0.95).round() as usize])
        };
        per_region.push(RegionStats {
            outputs,
            throughput: outputs as f64 / span.max(1e-9),
            mean_latency_s: (outputs > 0).then(|| lat_sum / outputs as f64),
            p95_latency_s: p95,
            source_drops: drops,
            catchup_discards: discards,
            cell_drops,
            cell_max_queue_depth: cell_depth,
        });
        let med = dep.sim.actor::<WifiMedium>(handles.wifi);
        wifi_bytes.add(&ClassBytes::from_stats(med.stats()));
    }

    let cell_bytes = ClassBytes::from_stats(cellnet.stats());
    let cell_drops = cellnet.stats().queue_drops;
    let cell_max_queue_depth = cellnet.stats().max_queue_depth;
    let cell_severed_sends = cellnet.stats().severed_sends;
    let cell_queue_drop_bytes = cellnet.stats().queue_drop_bytes;
    let cell_rejects = cellnet.stats().rejects;

    // Logical preserved bytes: ms replicates the same log onto every
    // node (take the max = one logical copy); local/dist retain
    // distinct per-node buffers (take the sum).
    let preserved_bytes = match dep.cfg.scheme {
        Scheme::Ms => preserved_max * dep.cfg.regions as u64,
        _ => preserved_raw_sum,
    };

    let (recoveries, mean_recovery_s, stops) = if !dep.region_controllers.is_empty() {
        let recs = dep.ms_recoveries();
        let n = recs.len();
        let mean = if n > 0 {
            recs.iter()
                .map(|r| (r.finished - r.started).as_secs_f64())
                .sum::<f64>()
                / n as f64
        } else {
            0.0
        };
        (n, mean, dep.ms_stops())
    } else if let Some(co) = dep.coordinator {
        let c = dep.sim.actor::<baselines::BaselineCoordinator>(co);
        let n = c.recoveries.len();
        let mean = if n > 0 {
            c.recoveries
                .iter()
                .map(|r| (r.finished - r.started).as_secs_f64())
                .sum::<f64>()
                / n as f64
        } else {
            0.0
        };
        (n, mean, c.stops)
    } else {
        (0, 0.0, 0)
    };

    let with_output: Vec<&RegionStats> = per_region.iter().filter(|r| r.outputs > 0).collect();
    let mean_throughput =
        per_region.iter().map(|r| r.throughput).sum::<f64>() / per_region.len().max(1) as f64;
    let mean_latency_s = if with_output.is_empty() {
        f64::INFINITY
    } else {
        with_output
            .iter()
            .map(|r| r.mean_latency_s.unwrap_or(f64::INFINITY))
            .sum::<f64>()
            / with_output.len() as f64
    };

    Harvest {
        scheme: dep.cfg.scheme.label(),
        per_region,
        mean_throughput,
        mean_latency_s,
        ckpt_repl_bytes: wifi_bytes.checkpoint + wifi_bytes.replication,
        wifi_bytes,
        cell_bytes,
        preserved_bytes,
        recoveries,
        mean_recovery_s,
        stops,
        cell_drops,
        cell_max_queue_depth,
        cell_severed_sends,
        cell_queue_drop_bytes,
        cell_rejects,
    }
}

/// One standard measured run: build, start, warm up, measure, harvest.
///
/// `faults` is applied after build (scheduling injections); the
/// measurement window is `[warmup, warmup + window)`.
pub fn measured_run(
    cfg: crate::scenario::ScenarioConfig,
    warmup: SimDuration,
    window: SimDuration,
    faults: impl FnOnce(&mut Deployment),
) -> Harvest {
    let mut dep = Deployment::build(cfg);
    dep.start();
    faults(&mut dep);
    let from = SimTime::ZERO + warmup;
    let to = from + window;
    dep.run_until(to);
    harvest(&dep, from, to)
}
