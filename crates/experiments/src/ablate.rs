//! Ablations of MobiStreams' design choices (DESIGN.md §7):
//!
//! * **broadcast vs unicast replication** — ms's single broadcast
//!   reaching all 7 peers vs shipping the same state as 7 unicasts
//!   (`dist-7`): the airtime argument behind §III-C.
//! * **UDP block size** — the paper picks 1 KB because "large UDP
//!   messages are more susceptible to a lossy network"; sweep it.
//! * **checkpoint period** — §III-D: longer periods preserve more
//!   input and lengthen catch-up.
//! * **source preservation on/off** — what §III-B step 3 costs.

use serde::Serialize;
use simkernel::SimDuration;

use crate::report::{Cell, Table};
use crate::run::measured_run;
use crate::scenario::{AppKind, ScenarioConfig, Scheme};
use crate::{run_jobs, ExpOptions};

/// One ablation data point.
#[derive(Debug, Clone, Serialize)]
pub struct AblationPoint {
    /// Which knob.
    pub knob: String,
    /// Setting label.
    pub setting: String,
    /// Throughput (tuples/s/region).
    pub throughput: f64,
    /// Mean latency (s).
    pub latency_s: f64,
    /// Checkpoint/replication wifi bytes (MB).
    pub ckpt_mb: f64,
    /// Preservation wifi bytes (MB).
    pub preservation_mb: f64,
}

/// Full ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct Ablation {
    /// All points.
    pub points: Vec<AblationPoint>,
}

/// Run the ablation suite on BCP.
pub fn run_ablation(opts: ExpOptions) -> Ablation {
    type Job = Box<dyn FnOnce() -> AblationPoint + Send>;
    let mut jobs: Vec<Job> = Vec::new();

    let run_one = move |knob: String,
                        setting: String,
                        mutate: Box<dyn Fn(&mut ScenarioConfig) + Send>,
                        opts: ExpOptions| {
        move || {
            let mut cfg = ScenarioConfig {
                app: AppKind::Bcp,
                scheme: Scheme::Ms,
                seed: 4000,
                ..ScenarioConfig::default()
            };
            mutate(&mut cfg);
            let h = measured_run(cfg, opts.warmup, opts.window, |_| {});
            AblationPoint {
                knob,
                setting,
                throughput: h.mean_throughput,
                latency_s: h.mean_latency_s,
                ckpt_mb: h.ckpt_repl_bytes as f64 / 1e6,
                preservation_mb: h.wifi_bytes.preservation as f64 / 1e6,
            }
        }
    };

    // (a) replication strategy: ms broadcast vs n-unicast (dist-n).
    for (label, scheme) in [
        ("ms broadcast (7 peers, 1 airtime)", Scheme::Ms),
        ("unicast x1 (dist-1)", Scheme::Dist(1)),
        ("unicast x3 (dist-3)", Scheme::Dist(3)),
        ("unicast x7 (dist-7 ≈ same coverage)", Scheme::Dist(7)),
    ] {
        jobs.push(Box::new(run_one(
            "replication".into(),
            label.into(),
            Box::new(move |c| c.scheme = scheme),
            opts,
        )));
    }

    // (b) checkpoint period.
    for secs in [120u64, 300, 600] {
        jobs.push(Box::new(run_one(
            "ckpt-period".into(),
            format!("{secs}s"),
            Box::new(move |c| {
                c.ckpt_period = SimDuration::from_secs(secs);
            }),
            opts,
        )));
    }

    // (c) WiFi loss rate (drives the multi-phase loop depth).
    for loss in [0.01f64, 0.05, 0.15] {
        jobs.push(Box::new(run_one(
            "wifi-loss".into(),
            format!("{:.0}%", loss * 100.0),
            Box::new(move |c| c.wifi.loss = loss),
            opts,
        )));
    }

    // (d) preservation off (FT of state only — what §III-B step 3 buys
    // costs).
    jobs.push(Box::new(run_one(
        "preservation".into(),
        "on (paper)".into(),
        Box::new(|_| {}),
        opts,
    )));
    jobs.push(Box::new({
        move || {
            let cfg = ScenarioConfig {
                app: AppKind::Bcp,
                scheme: Scheme::Base, // no preservation, no checkpoints
                seed: 4000,
                ..ScenarioConfig::default()
            };
            let h = measured_run(cfg, opts.warmup, opts.window, |_| {});
            AblationPoint {
                knob: "preservation".into(),
                setting: "off (base)".into(),
                throughput: h.mean_throughput,
                latency_s: h.mean_latency_s,
                ckpt_mb: h.ckpt_repl_bytes as f64 / 1e6,
                preservation_mb: h.wifi_bytes.preservation as f64 / 1e6,
            }
        }
    }));

    let points = run_jobs(opts.parallel, jobs);
    Ablation { points }
}

impl Ablation {
    /// Render the ablation table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablations (BCP, MobiStreams unless noted)",
            vec![
                "knob / setting".into(),
                "tput/s".into(),
                "lat s".into(),
                "ckpt MB".into(),
                "pres MB".into(),
            ],
        );
        for p in &self.points {
            t.row(
                format!("{} = {}", p.knob, p.setting),
                vec![
                    Cell::Num(p.throughput),
                    Cell::Num(p.latency_s),
                    Cell::Num(p.ckpt_mb),
                    Cell::Num(p.preservation_mb),
                ],
            );
        }
        t
    }
}
