//! # experiments — regenerate every table and figure of the paper
//!
//! | Artifact | Function | Paper claim reproduced |
//! |---|---|---|
//! | Table I | [`table1::run_table1`] | phones beat the server platform 0.78–42.6× throughput, 10–94.8 % latency |
//! | Fig 8 | [`fig8::run_fig8`] | fault-free overhead: local ≈ best, ms close, dist-n worse with n, rep-2 worst |
//! | Fig 9 | [`fig9::run_fig9`] | ms recovery cost flat in n; dist-n degrades and truncates at n; rep-2 truncates at 1 |
//! | Fig 10 | [`fig10::run_fig10`] | preservation: ms ≪ input preservation; network: dist-n ≈ n×, rep-2 ≫, ms ≈ 1 |
//!
//! Run via the `msx` binary: `cargo run -p experiments --release -- all`.

pub mod ablate;
pub mod faults;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod report;
pub mod run;
pub mod scenario;
pub mod table1;
#[cfg(test)]
mod tests;
pub mod weather;

pub use fleet::{run_fleet, FleetConfig, FleetReport};
pub use run::{harvest, measured_run, Harvest};
pub use scenario::{AppKind, Deployment, Platform, RegionOverride, ScenarioConfig, Scheme};

use simkernel::SimDuration;

/// Common experiment options.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Independent seeded repetitions averaged per data point (the
    /// paper averages 5 runs).
    pub seeds: u64,
    /// Warm-up excluded from measurement (long enough to include the
    /// first committed checkpoint).
    pub warmup: SimDuration,
    /// Measurement window.
    pub window: SimDuration,
    /// Fan runs out over threads.
    pub parallel: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            seeds: 3,
            warmup: SimDuration::from_secs(150),
            window: SimDuration::from_secs(1200),
            parallel: true,
        }
    }
}

impl ExpOptions {
    /// Reduced durations for benches and smoke tests.
    pub fn quick() -> Self {
        ExpOptions {
            seeds: 1,
            warmup: SimDuration::from_secs(120),
            window: SimDuration::from_secs(420),
            parallel: true,
        }
    }
}

/// One boxed experiment run for [`run_jobs`].
pub type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// Run a batch of independent jobs, optionally in parallel, preserving
/// order. Each job builds its own simulation (sims are single-threaded
/// and not `Send`; parallelism is across runs, per the workspace's
/// determinism contract).
pub fn run_jobs<T: Send>(parallel: bool, jobs: Vec<Job<T>>) -> Vec<T> {
    if !parallel || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let n = jobs.len();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for job in jobs {
            handles.push(s.spawn(job));
        }
        for (i, h) in handles.into_iter().enumerate() {
            slots[i] = Some(h.join().expect("experiment job panicked"));
        }
    });
    slots.into_iter().map(|s| s.expect("filled")).collect()
}

/// Average of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}
