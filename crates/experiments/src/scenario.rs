//! Deployment builder: stands up a full MobiStreams (or baseline, or
//! server-based) system inside one deterministic simulation.
//!
//! The paper's testbed: 4 regions cascaded in a line, 8 phones per
//! region, ad-hoc WiFi 1–5 Mbps, 3G uplink 0.016–0.32 Mbps / downlink
//! 0.35–1.14 Mbps, checkpoint period 5 minutes, controller pings every
//! 30 s with a 10 s timeout (§IV).

use std::sync::Arc;

use apps::{AppBundle, Calibration};
use baselines::coordinator::{BaselineCoordinator, BaselineRegionSpec, CoordinatorConfig};
use baselines::rep2::{duplicate_graph, twin_of, Rep2Scheme};
use baselines::{BaselineKind, DistScheme, LocalScheme};
use dsps::ft::{FtScheme, NullScheme};
use dsps::graph::{OpId, QueryGraph};
use dsps::node::{InterRegionLink, NodeActor, NodeConfig, NodeInner, PrimaryTransport};
use dsps::placement::{squeeze_placement, Placement};
use dsps::workload::{Feed, StartFeeds, WorkloadDriver};
use mobistreams::controller::RecoveryRecord;
use mobistreams::{
    Coordinator, MsControllerConfig, MsScheme, MsSchemeConfig, RegionController, RegionSpec,
    RegionWiring,
};
use simkernel::{ActorId, ShardBound, Sim, SimDuration, SimTime};
use simnet::cellular::{CellConfig, CellularNet};
use simnet::ethernet::{EthConfig, EthernetNet};
use simnet::stats::TrafficClass;
use simnet::wifi::{WifiConfig, WifiMedium};

/// Which application drives the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// Bus Capacity Prediction.
    Bcp,
    /// SignalGuru.
    SignalGuru,
}

impl AppKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            AppKind::Bcp => "BCP",
            AppKind::SignalGuru => "SignalGuru",
        }
    }
}

/// Which fault-tolerance scheme runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No fault tolerance (also MobiStreams with FT off — Table I row 1).
    Base,
    /// MobiStreams (ms-8).
    Ms,
    /// Active standby.
    Rep2,
    /// Local checkpointing.
    Local,
    /// Distributed checkpointing to n peers.
    Dist(u32),
    /// Upstream backup (related-work extension; not in the paper's
    /// figures).
    Upstream,
}

impl Scheme {
    /// Bar label used in the paper's figures.
    pub fn label(self) -> String {
        match self {
            Scheme::Base => "base".into(),
            Scheme::Ms => "ms-8".into(),
            Scheme::Rep2 => "rep-2".into(),
            Scheme::Local => "local".into(),
            Scheme::Dist(n) => format!("dist-{n}"),
            Scheme::Upstream => "upstream".into(),
        }
    }
}

/// Phone platform or the server-based comparison system of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Platform {
    /// Phones in regions over ad-hoc WiFi (Fig 1d).
    Phones,
    /// Datacenter servers fed over the 3G uplink (Fig 1c).
    Server {
        /// Sensor phone uplink rate (the paper sweeps 0.016–0.32 Mbps).
        uplink_bps: f64,
    },
}

/// Per-region overrides for heterogeneous, fleet-scale deployments
/// (phones platform only; the server baseline ignores them). Entry `r`
/// overrides region `r`; missing entries fall back to the scenario's
/// homogeneous `phones`/`wifi`.
#[derive(Clone, Default)]
pub struct RegionOverride {
    /// Phones in this region.
    pub phones: Option<u32>,
    /// This region's WiFi channel parameters (loss profile, rate).
    pub wifi: Option<WifiConfig>,
}

/// Full deployment parameters.
#[derive(Clone)]
pub struct ScenarioConfig {
    /// Application.
    pub app: AppKind,
    /// FT scheme.
    pub scheme: Scheme,
    /// Platform.
    pub platform: Platform,
    /// Number of cascaded regions.
    pub regions: usize,
    /// Phones per region (the paper's 8).
    pub phones: u32,
    /// WiFi parameters.
    pub wifi: WifiConfig,
    /// Cellular parameters.
    pub cell: CellConfig,
    /// Application calibration.
    pub cal: Calibration,
    /// Checkpoint period.
    pub ckpt_period: SimDuration,
    /// First checkpoint offset.
    pub ckpt_offset: SimDuration,
    /// Enable periodic checkpointing.
    pub checkpoints_enabled: bool,
    /// RNG seed.
    pub seed: u64,
    /// Per-region overrides (fleet-scale heterogeneous deployments).
    pub overrides: Vec<RegionOverride>,
    /// Regions per region-group controller (MobiStreams only): regions
    /// `[g·size, (g+1)·size)` share one `RegionController`, placed on
    /// the group's first region's shard. 1 = one controller per region.
    pub ctl_group_size: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            app: AppKind::Bcp,
            scheme: Scheme::Ms,
            platform: Platform::Phones,
            regions: 4,
            phones: 8,
            wifi: WifiConfig::default(),
            cell: CellConfig::default(),
            cal: Calibration::default(),
            ckpt_period: SimDuration::from_secs(300),
            ckpt_offset: SimDuration::from_secs(60),
            checkpoints_enabled: true,
            seed: 1,
            overrides: Vec::new(),
            ctl_group_size: 1,
        }
    }
}

impl ScenarioConfig {
    /// Phones deployed in region `r`.
    pub fn phones_in(&self, r: usize) -> u32 {
        self.overrides
            .get(r)
            .and_then(|o| o.phones)
            .unwrap_or(self.phones)
    }

    /// WiFi channel parameters of region `r`.
    pub fn wifi_in(&self, r: usize) -> WifiConfig {
        self.overrides
            .get(r)
            .and_then(|o| o.wifi.clone())
            .unwrap_or_else(|| self.wifi.clone())
    }

    /// Phones across the whole deployment.
    pub fn total_phones(&self) -> u32 {
        (0..self.regions).map(|r| self.phones_in(r)).sum()
    }
}

/// Handles into one built region.
pub struct RegionHandles {
    /// Phone/server actor per slot.
    pub nodes: Vec<ActorId>,
    /// The region's WiFi medium.
    pub wifi: ActorId,
    /// The region's sensor driver.
    pub driver: ActorId,
    /// Query network actually deployed (duplicated for rep-2).
    pub graph: Arc<QueryGraph>,
    /// Initial op→slot assignment.
    pub op_slot: Vec<u32>,
    /// Sensor uplink actor (server platform only).
    pub uplink: Option<ActorId>,
}

/// A fully-wired simulation.
pub struct Deployment {
    /// The simulation.
    pub sim: Sim,
    /// Scenario parameters.
    pub cfg: ScenarioConfig,
    /// Per-region handles.
    pub regions: Vec<RegionHandles>,
    /// MobiStreams global coordinator (ms only).
    pub controller: Option<ActorId>,
    /// Baseline coordinator (rep-2/local/dist/base).
    pub coordinator: Option<ActorId>,
    /// MobiStreams per-region-group controllers (ms only), indexed by
    /// group; region `r` is owned by group `r / cfg.ctl_group_size`.
    pub region_controllers: Vec<ActorId>,
    /// Cellular network actor.
    pub cell: ActorId,
    /// Ethernet (server platform only).
    pub eth: Option<ActorId>,
}

fn build_bundle(cfg: &ScenarioConfig, phones: u32, first: bool) -> AppBundle {
    match cfg.app {
        AppKind::Bcp => apps::build_bcp(&cfg.cal, phones, first),
        AppKind::SignalGuru => apps::build_signalguru(&cfg.cal, phones, first),
    }
}

impl Deployment {
    /// Build the deployment. Call [`Deployment::start`] afterwards.
    pub fn build(cfg: ScenarioConfig) -> Deployment {
        match cfg.platform {
            Platform::Phones => Self::build_phones(cfg),
            Platform::Server { .. } => Self::build_server(cfg),
        }
    }

    fn make_scheme(cfg: &ScenarioConfig, flow_of: Option<Arc<Vec<u8>>>) -> Box<dyn FtScheme> {
        match cfg.scheme {
            Scheme::Base => Box::new(NullScheme),
            Scheme::Ms => Box::new(MsScheme::new(MsSchemeConfig {
                broadcast: Default::default(),
                preserve_inputs: cfg.checkpoints_enabled,
            })),
            Scheme::Rep2 => Box::new(Rep2Scheme::new(flow_of.expect("rep-2 flow map"))),
            Scheme::Local => Box::new(LocalScheme::new(cfg.ckpt_period)),
            Scheme::Dist(n) => Box::new(DistScheme::new(n, cfg.ckpt_period)),
            Scheme::Upstream => Box::new(baselines::UpstreamScheme::new(cfg.ckpt_period)),
        }
    }

    fn build_phones(cfg: ScenarioConfig) -> Deployment {
        let mut sim = Sim::new(cfg.seed);
        let cell_id = sim.add_actor(Box::new(CellularNet::new(cfg.cell.clone())));

        // Per-region: bundle (graph/placement), rep-2 duplication.
        struct RegionPlan {
            graph: Arc<QueryGraph>,
            op_slot: Vec<u32>,
            inter_input: OpId,
            feeds: Vec<(OpId, SimDuration, f64, usize)>, // op, period, jitter, feed ix
            bundle: AppBundle,
            flow_of: Option<Arc<Vec<u8>>>,
        }

        let mut plans = Vec::new();
        for r in 0..cfg.regions {
            let bundle = build_bundle(&cfg, cfg.phones_in(r), r == 0);
            let (graph, op_slot, flow_of) = if cfg.scheme == Scheme::Rep2 {
                let (g2, flows) = duplicate_graph(&bundle.graph);
                let n = bundle.graph.op_count();
                // rep-2 must fit two flows onto one region, so each
                // flow is squeezed onto half the phones and every phone
                // carries roughly two of the paper's operator groups
                // (this is where rep-2's 2× CPU cost bites). This uses
                // the shared proportional compaction (`s * k / slots`),
                // intentionally replacing the old ad-hoc `(s + 1) / 2`
                // mapping — group pairings shift slightly, but flows
                // stay disjoint and stage order is preserved.
                let half = cfg.phones_in(r) / 2;
                assert!(half >= 1, "rep-2 needs at least 2 phones (one per flow)");
                let compressed = squeeze_placement(&bundle.placement, half);
                // flow 0 on slots 0..k, flow 1 on slots k..2k.
                let mut op_slot = vec![u32::MAX; 2 * n];
                for (op, &s) in compressed.op_slot.iter().enumerate() {
                    if s == u32::MAX {
                        continue;
                    }
                    op_slot[op] = s;
                    op_slot[op + n] = s + half;
                }
                (Arc::new(g2), op_slot, Some(Arc::new(flows)))
            } else {
                (
                    Arc::clone(&bundle.graph),
                    bundle.placement.op_slot.clone(),
                    None,
                )
            };
            let feeds = bundle
                .feeds
                .iter()
                .enumerate()
                .map(|(i, f)| (f.op, f.period, f.jitter, i))
                .collect();
            plans.push(RegionPlan {
                graph,
                op_slot,
                inter_input: bundle.inter_region_input,
                feeds,
                bundle,
                flow_of,
            });
        }

        // Reserve the control-plane id slots LAST so nodes can
        // reference them: the controllers need node ids and nodes need
        // their controller's id. Create nodes first with controller =
        // a reserved id computed up front. Actor ids are assigned
        // densely: we know exactly how many actors precede them.
        //
        // Baselines: one coordinator actor right after the regions.
        // MobiStreams: one region controller per region group, then the
        // global coordinator.
        let actors_before_controller: usize = (0..cfg.regions)
            .map(
                |r| 1 /*wifi*/ + cfg.phones_in(r) as usize + 1, /*driver*/
            )
            .sum();
        let group_size = cfg.ctl_group_size.max(1);
        let n_groups = cfg.regions.div_ceil(group_size);
        let ctl_id_of_group = |g: usize| ActorId::from_index(1 + actors_before_controller + g);
        let controller_id = ActorId::from_index(1 + actors_before_controller);
        let coordinator_id = ActorId::from_index(1 + actors_before_controller + n_groups);

        let mut regions = Vec::new();
        for (r, plan) in plans.iter().enumerate() {
            let wifi_id = sim.add_actor(Box::new(WifiMedium::new(cfg.wifi_in(r))));
            let mut node_ids = Vec::new();
            for slot in 0..cfg.phones_in(r) {
                let ncfg = NodeConfig {
                    region: regions.len(),
                    slot,
                    cpu_factor: 1.0,
                    source_queue_cap: 10,
                    primary: PrimaryTransport::Wifi,
                };
                let node_ctl = if cfg.scheme == Scheme::Ms {
                    ctl_id_of_group(r / group_size)
                } else {
                    controller_id
                };
                let mut inner =
                    NodeInner::new(ncfg, Arc::clone(&plan.graph), wifi_id, cell_id, node_ctl);
                inner.op_slot = plan.op_slot.clone();
                let scheme = Self::make_scheme(&cfg, plan.flow_of.clone());
                let id = sim.add_actor(Box::new(NodeActor::new(inner, scheme)));
                node_ids.push(id);
            }
            // Driver.
            let driver_id = sim.add_actor(Box::new(WorkloadDriver::new(Vec::new())));
            regions.push(RegionHandles {
                nodes: node_ids,
                wifi: wifi_id,
                driver: driver_id,
                graph: Arc::clone(&plan.graph),
                op_slot: plan.op_slot.clone(),
                uplink: None,
            });
        }

        // Wire node internals now that all ids exist.
        for (r, plan) in plans.iter().enumerate() {
            let handles_nodes = regions[r].nodes.clone();
            let wifi = regions[r].wifi;
            for (slot, &nid) in handles_nodes.iter().enumerate() {
                let na = sim.actor_mut::<NodeActor>(nid);
                na.inner.slot_actors = handles_nodes.clone();
                for (op_ix, &s) in plan.op_slot.iter().enumerate() {
                    if s == slot as u32 {
                        na.inner.host_op(OpId(op_ix as u32));
                    }
                }
                // rep-2: the duplicate flow's traffic is the
                // replication overhead (Fig 10b).
                if let Some(flows) = &plan.flow_of {
                    let hosts_flow1 = plan
                        .op_slot
                        .iter()
                        .enumerate()
                        .any(|(op, &s)| s == slot as u32 && flows[op] == 1);
                    if hosts_flow1 {
                        na.inner.data_class = TrafficClass::Replication;
                    }
                }
            }
            // WiFi membership + cellular registration.
            {
                let med = sim.actor_mut::<WifiMedium>(wifi);
                for &n in &handles_nodes {
                    med.add_member(n);
                }
            }
            {
                let cn = sim.actor_mut::<CellularNet>(cell_id);
                for &n in &handles_nodes {
                    cn.register(n);
                }
            }
            // Inter-region links: sinks of r feed S0 of r+1 (both flows
            // for rep-2).
            if r + 1 < cfg.regions {
                let next = &plans[r + 1];
                let next_nodes = regions[r + 1].nodes.clone();
                let mut dst_ops = vec![next.inter_input];
                if let Some(flows) = &next.flow_of {
                    let orig = flows.len() / 2;
                    dst_ops.push(twin_of(next.inter_input, orig));
                }
                for &sink in &plan.graph.sinks() {
                    let slot = plan.op_slot[sink.index()];
                    let links: Vec<InterRegionLink> = dst_ops
                        .iter()
                        .map(|&dst_op| InterRegionLink {
                            src_op: sink,
                            dst_actor: next_nodes[next.op_slot[dst_op.index()] as usize],
                            dst_op,
                        })
                        .collect();
                    let na = sim.actor_mut::<NodeActor>(handles_nodes[slot as usize]);
                    na.inner.inter_region.extend(links);
                }
            }
            // Feeds.
            let driver = regions[r].driver;
            let mut feeds: Vec<Feed> = Vec::new();
            for &(op, _, _, ix) in &plan.feeds {
                let target = handles_nodes[plan.op_slot[op.index()] as usize];
                let mut feed = plan.bundle.feeds[ix].instantiate(target);
                if let Some(flows) = &plan.flow_of {
                    let orig = flows.len() / 2;
                    let t = twin_of(op, orig);
                    feed.mirrors
                        .push((t, handles_nodes[plan.op_slot[t.index()] as usize]));
                }
                feeds.push(feed);
            }
            let d = sim.actor_mut::<WorkloadDriver>(driver);
            *d = WorkloadDriver::new(feeds);
        }

        // Control plane.
        let (controller, coordinator, region_controllers) = match cfg.scheme {
            Scheme::Ms => {
                let specs: Vec<RegionSpec> = (0..cfg.regions)
                    .map(|r| {
                        let mut placement = Placement::new(&plans[r].graph, cfg.phones_in(r));
                        placement.op_slot = plans[r].op_slot.clone();
                        RegionSpec {
                            graph: Arc::clone(&plans[r].graph),
                            placement,
                            wifi: regions[r].wifi,
                            slot_actors: regions[r].nodes.clone(),
                            downstream: if r + 1 < cfg.regions {
                                vec![(r + 1, plans[r + 1].inter_input)]
                            } else {
                                vec![]
                            },
                            min_active: 1,
                            restart_min: {
                                let mut used: Vec<u32> = plans[r]
                                    .op_slot
                                    .iter()
                                    .copied()
                                    .filter(|&s| s != u32::MAX)
                                    .collect();
                                used.sort_unstable();
                                used.dedup();
                                used.len() as u32
                            },
                            sensors: vec![regions[r].driver],
                        }
                    })
                    .collect();
                let ctl_cfg = MsControllerConfig {
                    ckpt_period: cfg.ckpt_period,
                    ckpt_offset: cfg.ckpt_offset,
                    checkpoints_enabled: cfg.checkpoints_enabled,
                    ..MsControllerConfig::default()
                };
                // The coordinator keeps only the static cross-region
                // view (graph shape, wiring, initial placement).
                let wiring: Vec<RegionWiring> = specs
                    .iter()
                    .map(|s| RegionWiring {
                        graph: Arc::clone(&s.graph),
                        downstream: s.downstream.clone(),
                        slot_actors: s.slot_actors.clone(),
                        op_slot: s.placement.op_slot.clone(),
                    })
                    .collect();
                let ctl_of_region: Vec<ActorId> = (0..cfg.regions)
                    .map(|r| ctl_id_of_group(r / group_size))
                    .collect();
                let mut specs = specs;
                let mut ctls = Vec::new();
                for g in 0..n_groups {
                    let take = specs.len().min(group_size);
                    let group_specs: Vec<RegionSpec> = specs.drain(..take).collect();
                    let ctl = RegionController::new(
                        ctl_cfg.clone(),
                        cell_id,
                        coordinator_id,
                        g,
                        g * group_size,
                        group_specs,
                    );
                    let id = sim.add_actor(Box::new(ctl));
                    assert_eq!(id, ctl_id_of_group(g), "region controller id reservation");
                    ctls.push(id);
                }
                // Relayed side effects ride the cellular downlink
                // latency (rtt/2): relays model commands the
                // coordinator pushes over cellular without modelling
                // the payload bytes. Keeping the delay at the
                // physical-path floor (rather than the much smaller
                // kernel lookahead) lets the parallel kernel widen
                // per-destination windows to the same floor.
                let coord = Coordinator::new(cell_id, cfg.cell.rtt / 2, wiring, ctl_of_region);
                let id = sim.add_actor(Box::new(coord));
                assert_eq!(id, coordinator_id, "coordinator id reservation");
                (Some(id), None, ctls)
            }
            _ => {
                let kind = match cfg.scheme {
                    Scheme::Base => BaselineKind::Base,
                    Scheme::Rep2 => BaselineKind::Rep2 {
                        flow_of: plans[0].flow_of.clone().expect("rep-2"),
                    },
                    Scheme::Local => BaselineKind::Local,
                    Scheme::Dist(n) => BaselineKind::Dist { n },
                    Scheme::Upstream => BaselineKind::Upstream,
                    Scheme::Ms => unreachable!(),
                };
                let specs: Vec<BaselineRegionSpec> = (0..cfg.regions)
                    .map(|r| BaselineRegionSpec {
                        graph: Arc::clone(&plans[r].graph),
                        op_slot: plans[r].op_slot.clone(),
                        slot_actors: regions[r].nodes.clone(),
                    })
                    .collect();
                let coord = BaselineCoordinator::new(
                    CoordinatorConfig {
                        ckpt_period: cfg.ckpt_period,
                        ckpt_offset: cfg.ckpt_offset,
                        checkpoints_enabled: cfg.checkpoints_enabled,
                        ..CoordinatorConfig::default()
                    },
                    kind,
                    cell_id,
                    specs,
                );
                let id = sim.add_actor(Box::new(coord));
                assert_eq!(id, controller_id, "coordinator id reservation");
                (None, Some(id), Vec::new())
            }
        };
        {
            let cn = sim.actor_mut::<CellularNet>(cell_id);
            if region_controllers.is_empty() {
                cn.register_with_rates(controller_id, 1e9, 1e9);
            } else {
                // Each region-group controller models a per-metro-area
                // control server on provisioned-but-finite backhaul:
                // 2× the default phone uplink/downlink. The uplink must
                // stay UNDER ~368 kbps — the smallest tagged send (a
                // 32 B ping, 92 B on the wire) must serialize for at
                // least the kernel lookahead (`min_response_delay`,
                // 2 ms), or a region-shard controller's completion
                // events would violate conservative sharding.
                for &ctl in &region_controllers {
                    cn.register_with_rates(ctl, 336_000.0, 745_000.0);
                }
                // The global coordinator keeps the fat pipe: bulk
                // install shipping must not serialize recovery timing
                // behind a thin link (it lives on shard 0, where any
                // send delay is legal).
                cn.register_with_rates(coordinator_id, 1e9, 1e9);
            }
        }

        Deployment {
            sim,
            cfg,
            regions,
            controller,
            coordinator,
            region_controllers,
            cell: cell_id,
            eth: None,
        }
    }

    /// The server-based DSPS of Table I (Fig 1c): phones only sense and
    /// upload over the 3G uplink; computation runs on datacenter
    /// servers connected by Ethernet.
    fn build_server(cfg: ScenarioConfig) -> Deployment {
        let Platform::Server { uplink_bps } = cfg.platform else {
            unreachable!()
        };
        let mut sim = Sim::new(cfg.seed);
        let cell_id = sim.add_actor(Box::new(CellularNet::new(cfg.cell.clone())));
        let eth_id = sim.add_actor(Box::new(EthernetNet::new(EthConfig::default())));
        // Dummy WiFi (NodeInner requires one; unused on servers).
        let dummy_wifi = sim.add_actor(Box::new(WifiMedium::new(cfg.wifi.clone())));

        let servers_per_region = 4usize;
        let per_region_actors = servers_per_region + 2; // servers + driver + uplink
        let controller_id = ActorId::from_index(3 + cfg.regions * per_region_actors);

        let mut plans = Vec::new();
        for r in 0..cfg.regions {
            plans.push(build_bundle(&cfg, cfg.phones, r == 0));
        }

        let mut regions = Vec::new();
        for (r, bundle) in plans.iter().enumerate() {
            // Round-robin ops over the servers.
            let op_slot: Vec<u32> = bundle
                .graph
                .op_ids()
                .map(|op| (op.0 as usize % servers_per_region) as u32)
                .collect();
            let mut node_ids = Vec::new();
            for slot in 0..servers_per_region {
                let ncfg = NodeConfig {
                    region: r,
                    slot: slot as u32,
                    cpu_factor: 0.08, // 2013 server core vs 600 MHz A8
                    source_queue_cap: 64,
                    primary: PrimaryTransport::Ethernet,
                };
                let mut inner = NodeInner::new(
                    ncfg,
                    Arc::clone(&bundle.graph),
                    dummy_wifi,
                    cell_id,
                    controller_id,
                );
                inner.eth = Some(eth_id);
                inner.op_slot = op_slot.clone();
                let id = sim.add_actor(Box::new(NodeActor::new(inner, Box::new(NullScheme))));
                node_ids.push(id);
            }
            let driver_id = sim.add_actor(Box::new(WorkloadDriver::new(Vec::new())));
            // The sensor phone that uploads frames over 3G.
            let s1_slot = op_slot[bundle.feeds.first().map(|f| f.op.index()).unwrap_or(0)] as usize;
            let uplink_id = sim.add_actor(Box::new(SensorUplink {
                cell: cell_id,
                dst: node_ids[s1_slot],
                in_flight: 0,
                cap: 10,
                next_tag: 1,
                dropped: 0,
                forwarded: 0,
            }));
            regions.push(RegionHandles {
                nodes: node_ids,
                wifi: dummy_wifi,
                driver: driver_id,
                graph: Arc::clone(&bundle.graph),
                op_slot,
                uplink: Some(uplink_id),
            });
        }

        // Wire internals.
        for (r, bundle) in plans.iter().enumerate() {
            let nodes = regions[r].nodes.clone();
            let op_slot = regions[r].op_slot.clone();
            for (slot, &nid) in nodes.iter().enumerate() {
                let na = sim.actor_mut::<NodeActor>(nid);
                na.inner.slot_actors = nodes.clone();
                for (op_ix, &s) in op_slot.iter().enumerate() {
                    if s == slot as u32 {
                        na.inner.host_op(OpId(op_ix as u32));
                    }
                }
            }
            {
                let en = sim.actor_mut::<EthernetNet>(eth_id);
                for &n in &nodes {
                    en.register(n);
                }
            }
            {
                let cn = sim.actor_mut::<CellularNet>(cell_id);
                for &n in &nodes {
                    cn.register_with_rates(n, 1e9, 1e9); // datacenter frontend
                }
                let up = regions[r].uplink.unwrap();
                cn.register_with_rates(up, uplink_bps, cfg.cell.default_down_bps);
            }
            if r + 1 < cfg.regions {
                let next_input = plans[r + 1].inter_region_input;
                let next_nodes = regions[r + 1].nodes.clone();
                let next_op_slot = regions[r + 1].op_slot.clone();
                for &sink in &bundle.graph.sinks() {
                    let slot = op_slot_of(&regions[r].op_slot, sink);
                    let link = InterRegionLink {
                        src_op: sink,
                        dst_actor: next_nodes[next_op_slot[next_input.index()] as usize],
                        dst_op: next_input,
                    };
                    let na = sim.actor_mut::<NodeActor>(nodes[slot as usize]);
                    na.inner.inter_region.push(link);
                }
            }
            // Feeds: camera frames route through the sensor uplink; the
            // first region's bus feed goes straight to the server (tiny).
            let driver = regions[r].driver;
            let uplink = regions[r].uplink.unwrap();
            let mut feeds: Vec<Feed> = Vec::new();
            for (i, f) in bundle.feeds.iter().enumerate() {
                let target = if i == 0 {
                    uplink
                } else {
                    nodes[regions[r].op_slot[f.op.index()] as usize]
                };
                feeds.push(f.instantiate(target));
            }
            let d = sim.actor_mut::<WorkloadDriver>(driver);
            *d = WorkloadDriver::new(feeds);
        }

        // A trivial coordinator (base scheme) for ping infrastructure.
        let specs: Vec<BaselineRegionSpec> = (0..cfg.regions)
            .map(|r| BaselineRegionSpec {
                graph: Arc::clone(&regions[r].graph),
                op_slot: regions[r].op_slot.clone(),
                slot_actors: regions[r].nodes.clone(),
            })
            .collect();
        let coord = BaselineCoordinator::new(
            CoordinatorConfig {
                checkpoints_enabled: false,
                ..CoordinatorConfig::default()
            },
            BaselineKind::Base,
            cell_id,
            specs,
        );
        let id = sim.add_actor(Box::new(coord));
        assert_eq!(id, controller_id, "coordinator id reservation");
        {
            let cn = sim.actor_mut::<CellularNet>(cell_id);
            cn.register_with_rates(controller_id, 1e9, 1e9);
        }

        Deployment {
            sim,
            cfg,
            regions,
            controller: None,
            coordinator: Some(id),
            region_controllers: Vec::new(),
            cell: cell_id,
            eth: Some(eth_id),
        }
    }

    /// Kick off controller timers and sensor feeds at t = 0.
    pub fn start(&mut self) {
        if let Some(ctl) = self.controller {
            self.sim
                .schedule_at(SimTime::ZERO, ctl, mobistreams::controller::Start);
        }
        for &ctl in &self.region_controllers {
            self.sim
                .schedule_at(SimTime::ZERO, ctl, mobistreams::controller::Start);
        }
        if let Some(coord) = self.coordinator {
            self.sim
                .schedule_at(SimTime::ZERO, coord, baselines::coordinator::Start);
        }
        for r in &self.regions {
            self.sim.schedule_at(SimTime::ZERO, r.driver, StartFeeds);
        }
    }

    /// Run the simulation to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Actor → shard map for [`Sim::enable_sharding`]: shard 0 holds
    /// the global actors (cellular core, coordinator, ethernet), shard
    /// `r + 1` holds region `r`'s WiFi medium, phones and sensor
    /// driver. A MobiStreams region-group controller rides on its
    /// group's FIRST region's shard, so intra-group control traffic
    /// never crosses the shard-0 barrier. Valid because regions
    /// exchange messages only through the cellular network and the
    /// coordinator — never directly.
    pub fn shard_map(&self) -> Vec<u16> {
        let mut map = vec![0u16; self.sim.actor_count()];
        for (r, rh) in self.regions.iter().enumerate() {
            let s = (r + 1) as u16;
            map[rh.wifi.index()] = s;
            map[rh.driver.index()] = s;
            for &n in &rh.nodes {
                map[n.index()] = s;
            }
            if let Some(u) = rh.uplink {
                map[u.index()] = s;
            }
        }
        let group_size = self.cfg.ctl_group_size.max(1);
        for (g, &ctl) in self.region_controllers.iter().enumerate() {
            map[ctl.index()] = (g * group_size + 1) as u16;
        }
        map
    }

    /// Switch the kernel to deterministic parallel mode: one shard per
    /// region plus the global shard, with the cellular network's
    /// minimum response delay as the conservative lookahead and
    /// per-destination cross-shard bounds from [`Deployment::shard_bounds`].
    /// Call after [`Deployment::start`] and any setup-time scheduling;
    /// the result is bit-identical for every `threads` value.
    pub fn enable_sharding(&mut self, threads: usize) {
        self.enable_sharding_opts(threads, true);
    }

    /// As [`Deployment::enable_sharding`], with per-destination
    /// cross-shard bounds optionally disabled (`--uniform-lookahead`):
    /// the kernel then barriers on the uniform cellular lookahead for
    /// every destination. Digests are identical either way — the bound
    /// only changes how far region windows may run between barriers.
    pub fn enable_sharding_opts(&mut self, threads: usize, per_destination: bool) {
        let map = self.shard_map();
        let lookahead = self.cfg.cell.min_response_delay();
        let bounds = if per_destination {
            Some(self.shard_bounds())
        } else {
            None
        };
        self.sim.enable_sharding(map, lookahead, threads);
        if let Some(b) = bounds {
            self.sim.set_shard_bounds(b);
        }
    }

    /// Per-destination cross-shard bounds for the parallel kernel.
    ///
    /// Every event chain from one region shard into another passes
    /// through shard 0 and re-enters either as a cellular delivery
    /// (bounded below by [`CellularNet::min_delivery_delay_to`] for
    /// the destination endpoint) or — under MobiStreams — as a
    /// coordinator relay (bounded below by `Coordinator::relay_delay`
    /// = rtt/2). The smallest such re-entry delay is how far shard
    /// `d`'s window may safely run past the earliest foreign shard
    /// head; typically ~75 ms against a 2 ms uniform lookahead. The
    /// self-bound stays at the uniform lookahead (the kernel caps each
    /// window dynamically on the shard's own outbox instead).
    ///
    /// On the server platform ([`EthernetNet`] present) deliveries
    /// into region shards can undercut the cellular floor, so the
    /// bounds collapse to the uniform lookahead.
    pub fn shard_bounds(&self) -> Vec<ShardBound> {
        let map = self.shard_map();
        let lookahead = self.cfg.cell.min_response_delay();
        let n_shards = map.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        let uniform = ShardBound {
            self_bound: lookahead,
            cross_bound: lookahead,
        };
        if self.eth.is_some() {
            return vec![uniform; n_shards];
        }
        let cn = self.sim.actor::<CellularNet>(self.cell);
        let relay = self.controller.map(|_| self.cfg.cell.rtt / 2);
        let mut cell_min: Vec<Option<SimDuration>> = vec![None; n_shards];
        for (ix, &s) in map.iter().enumerate() {
            if s == 0 {
                continue;
            }
            if let Some(d) = cn.min_delivery_delay_to(ActorId::from_index(ix)) {
                let slot = &mut cell_min[s as usize];
                *slot = Some(slot.map_or(d, |c| c.min(d)));
            }
        }
        (0..n_shards)
            .map(|d| {
                if d == 0 {
                    return uniform;
                }
                let cross = [cell_min[d], relay]
                    .into_iter()
                    .flatten()
                    .min()
                    .unwrap_or(lookahead);
                ShardBound {
                    self_bound: lookahead,
                    cross_bound: cross.max(lookahead),
                }
            })
            .collect()
    }

    // --- MobiStreams control-plane aggregation (the control plane is
    // sharded across region-group controllers; these helpers present
    // the single-controller view harvests and tests expect, with
    // deterministic merge orders). ---

    /// The region-group controller owning region `r` (ms only).
    pub fn ms_ctl_of(&self, r: usize) -> &RegionController {
        let g = r / self.cfg.ctl_group_size.max(1);
        self.sim
            .actor::<RegionController>(self.region_controllers[g])
    }

    /// Latest committed checkpoint version of region `r` (ms only).
    pub fn ms_last_complete(&self, r: usize) -> u64 {
        self.ms_ctl_of(r).last_complete(r)
    }

    /// Is region `r` currently stopped/bypassed (ms only)?
    pub fn ms_is_stopped(&self, r: usize) -> bool {
        self.ms_ctl_of(r).is_stopped(r)
    }

    /// Departure replacements completed across all groups (ms only).
    pub fn ms_departures_handled(&self) -> u64 {
        self.region_controllers
            .iter()
            .map(|&c| self.sim.actor::<RegionController>(c).departures_handled)
            .sum()
    }

    /// Region stops across all groups (ms only).
    pub fn ms_stops(&self) -> u64 {
        self.region_controllers
            .iter()
            .map(|&c| self.sim.actor::<RegionController>(c).stops)
            .sum()
    }

    /// All committed checkpoint rounds, merged over groups and sorted
    /// by (time, region, version) for a deterministic order (ms only).
    pub fn ms_commits(&self) -> Vec<(usize, u64, SimTime)> {
        let mut out: Vec<(usize, u64, SimTime)> = self
            .region_controllers
            .iter()
            .flat_map(|&c| {
                self.sim
                    .actor::<RegionController>(c)
                    .commits
                    .iter()
                    .copied()
            })
            .collect();
        out.sort_by_key(|&(r, v, t)| (t, r, v));
        out
    }

    /// All recovery episodes, merged over groups and sorted by
    /// (start time, region) (ms only).
    pub fn ms_recoveries(&self) -> Vec<RecoveryRecord> {
        let mut out: Vec<RecoveryRecord> = self
            .region_controllers
            .iter()
            .flat_map(|&c| {
                self.sim
                    .actor::<RegionController>(c)
                    .recoveries
                    .iter()
                    .copied()
            })
            .collect();
        out.sort_by_key(|rec| (rec.started, rec.region));
        out
    }

    /// All partition episodes, merged over groups and sorted by
    /// (severed-at, region) (ms only).
    pub fn ms_severed_episodes(&self) -> Vec<(usize, SimTime, SimTime)> {
        let mut out: Vec<(usize, SimTime, SimTime)> = self
            .region_controllers
            .iter()
            .flat_map(|&c| {
                self.sim
                    .actor::<RegionController>(c)
                    .severed_episodes
                    .iter()
                    .copied()
            })
            .collect();
        out.sort_by_key(|&(r, s, _)| (s, r));
        out
    }

    /// Total membership (messages, bytes) sent by the control plane
    /// (ms only) — the churn-storm complexity tests assert these scale
    /// with delta size, not region population.
    pub fn ms_membership_traffic(&self) -> (u64, u64) {
        self.region_controllers
            .iter()
            .map(|&c| {
                let ctl = self.sim.actor::<RegionController>(c);
                (ctl.membership_msgs, ctl.membership_bytes)
            })
            .fold((0, 0), |(m, b), (dm, db)| (m + dm, b + db))
    }
}

fn op_slot_of(op_slot: &[u32], op: OpId) -> u32 {
    op_slot[op.index()]
}

/// The sensor phone of the server baseline: receives camera frames
/// locally and uploads them over its 3G uplink, with a bounded on-phone
/// buffer (drop-newest when 10 uploads are queued).
struct SensorUplink {
    cell: ActorId,
    dst: ActorId,
    in_flight: u32,
    cap: u32,
    next_tag: u64,
    dropped: u64,
    forwarded: u64,
}

impl simkernel::Actor for SensorUplink {
    fn on_event(&mut self, ev: simkernel::EventBox, ctx: &mut simkernel::Ctx) {
        simkernel::match_event!(ev,
            s: dsps::node::SourceEmit => {
                if self.in_flight >= self.cap {
                    self.dropped += 1;
                    return;
                }
                self.in_flight += 1;
                self.forwarded += 1;
                let tag = self.next_tag;
                self.next_tag += 1;
                let msg = dsps::node::InterRegionMsg {
                    dst_op: s.op,
                    value: s.value,
                    bytes: s.bytes,
                    entered: Some(ctx.now()),
                };
                let src = ctx.self_id();
                let cell = self.cell;
                let dst = self.dst;
                ctx.send(cell, simnet::cellular::CellSend {
                    src,
                    dst,
                    class: TrafficClass::Data,
                    bytes: s.bytes,
                    tag,
                    payload: Some(simnet::payload(msg)),
                });
            },
            _d: simnet::TxDone => {
                self.in_flight = self.in_flight.saturating_sub(1);
            },
            _f: simnet::TxFailed => {
                self.in_flight = self.in_flight.saturating_sub(1);
            },
            @else _other => {}
        );
    }

    fn name(&self) -> String {
        "sensor-uplink".into()
    }

    simkernel::impl_actor_any!();
}
