//! Fault injection: failures (fail-stop crashes), departures (GPS-out
//! mobility), and reboots.
//!
//! A failure kills the phone actor and marks its WiFi/cellular links
//! dead — detection is then *emergent*: upstream neighbors observe
//! failed sends, the controller observes missed pings. A departure
//! breaks only the WiFi link and tells the phone its GPS says it left;
//! the phone itself notifies the controller (§III-E).

use dsps::node::{Kill, NodeActor};
use simkernel::SimTime;
use simnet::cellular::CellSetLink;
use simnet::wifi::WifiSetLink;
use simnet::LinkState;

use crate::scenario::Deployment;

/// Schedule `(region, slot)`'s link-state change at `at`: the WiFi
/// medium always, the cellular link only when `cell` is given (a
/// departing phone keeps its cellular uplink). Single point all three
/// injectors go through, so their link semantics can't drift apart.
fn sever_links(
    dep: &mut Deployment,
    region: usize,
    slot: u32,
    at: SimTime,
    wifi_state: LinkState,
    cell_state: Option<LinkState>,
) {
    let node = dep.regions[region].nodes[slot as usize];
    let wifi = dep.regions[region].wifi;
    dep.sim.schedule_at(
        at,
        wifi,
        WifiSetLink {
            node,
            state: wifi_state,
        },
    );
    if let Some(state) = cell_state {
        dep.sim
            .schedule_at(at, dep.cell, CellSetLink { node, state });
    }
}

/// Schedule a fail-stop crash of `(region, slot)` at `at`.
pub fn inject_failure(dep: &mut Deployment, region: usize, slot: u32, at: SimTime) {
    let node = dep.regions[region].nodes[slot as usize];
    dep.sim.schedule_at(at, node, Kill);
    sever_links(
        dep,
        region,
        slot,
        at,
        LinkState::Dead,
        Some(LinkState::Dead),
    );
}

/// Schedule a departure of `(region, slot)` at `at`: WiFi breaks, the
/// phone stays reachable over cellular and reports itself.
pub fn inject_departure(dep: &mut Deployment, region: usize, slot: u32, at: SimTime) {
    let node = dep.regions[region].nodes[slot as usize];
    sever_links(dep, region, slot, at, LinkState::Gone, None);
    dep.sim.schedule_at(at, node, mobistreams::msgs::Depart);
}

/// Schedule a reboot of a previously failed phone at `at` (flash
/// intact; re-registers with the controller as an idle node).
pub fn inject_reboot(dep: &mut Deployment, region: usize, slot: u32, at: SimTime) {
    let node = dep.regions[region].nodes[slot as usize];
    sever_links(
        dep,
        region,
        slot,
        at,
        LinkState::Active,
        Some(LinkState::Active),
    );
    dep.sim.schedule_at(at, node, dsps::node::Reboot);
}

/// The order in which slots are hit by Fig 9's n-node bursts: compute
/// and sink slots first (detected fast via upstream reports), then
/// source slots (ping-detected), then idle. Deterministic so every
/// scheme faces the same burst.
pub fn failure_order(dep: &Deployment, region: usize) -> Vec<u32> {
    let handles = &dep.regions[region];
    let graph = &handles.graph;
    let sources: std::collections::BTreeSet<u32> = graph
        .sources()
        .iter()
        .map(|&op| handles.op_slot[op.index()])
        .collect();
    let hosting: std::collections::BTreeSet<u32> = handles
        .op_slot
        .iter()
        .copied()
        .filter(|&s| s != u32::MAX)
        .collect();
    let slots = handles.nodes.len() as u32;
    let mut order = Vec::new();
    // 1. hosting, non-source.
    for s in 0..slots {
        if hosting.contains(&s) && !sources.contains(&s) {
            order.push(s);
        }
    }
    // 2. source slots.
    for s in 0..slots {
        if sources.contains(&s) {
            order.push(s);
        }
    }
    // 3. idle.
    for s in 0..slots {
        if !hosting.contains(&s) {
            order.push(s);
        }
    }
    order
}

/// Convenience: is this slot currently alive in the sim? (test helper)
pub fn is_alive(dep: &Deployment, region: usize, slot: u32) -> bool {
    let node = dep.regions[region].nodes[slot as usize];
    dep.sim.actor::<NodeActor>(node).inner.alive
}
