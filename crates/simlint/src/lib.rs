//! # simlint — determinism lint pass for the simulation workspace
//!
//! The determinism contract of this workspace (bit-identical digests
//! for identical configs, at any thread count) is easy to break with
//! one innocent-looking line: a `HashMap` iteration, a wall-clock
//! read, an RNG seeded from entropy. `simlint` is a workspace-aware
//! static-analysis pass that walks every `crates/*/src` file with a
//! comment- and string-aware token scanner and enforces the contract
//! as named rules. It deliberately has **zero dependencies** — no
//! `syn`, no `dylint` — so it runs anywhere the workspace builds.
//!
//! ## Rules
//!
//! | id | what it forbids |
//! |------|------------------------------------------------------|
//! | D001 | `HashMap`/`HashSet`/`RandomState` in sim crates (iteration order is seeded per-process) |
//! | D002 | `Instant`/`SystemTime` outside the harness allowlist (wall clock must never feed results) |
//! | D003 | RNG outside `SimRng` (`thread_rng`, entropy seeding, raw `SmallRng`, …) |
//! | D004 | `static`/`thread_local!` in sim crates (hidden cross-run state) |
//! | D005 | plain `Box<dyn Event>`/`Arc<dyn Event>` in `simkernel` outside the pool/event modules (hot path must allocate through `EventPool`) |
//! | P001 | `panic!`/`unreachable!`/`.unwrap()`/`.expect(` in kernel/message-path crates |
//! | L100 | an allow directive that suppressed nothing |
//! | L101 | a malformed allow directive |
//!
//! ## Escape hatch
//!
//! A finding can be suppressed with an inline directive **that must
//! carry a reason**, either trailing on the same line or on the line
//! directly above:
//!
//! ```text
//! (comment) simlint::allow(P001): harvest-time API, never on the event path
//! ```
//!
//! Directives are only recognised at the start of a comment's text,
//! so prose that merely *mentions* the syntax (like this paragraph,
//! which wraps it in a code fence) does not count. An allow that does
//! not match any finding is itself reported (L100), so stale allows
//! cannot accumulate.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

// ---------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------

/// One lint rule: an id, a rationale, and the token patterns that
/// trigger it, scoped to a crate set and optional per-file allowlist.
pub struct Rule {
    /// Stable identifier (`D001`, `P001`, …) used in allow directives.
    pub id: &'static str,
    /// One-line description for `msx lint --rules`.
    pub summary: &'static str,
    /// Why the rule exists — what breaks when it is violated.
    pub rationale: &'static str,
    /// Crate names the rule applies to; empty slice = every crate.
    pub crates: &'static [&'static str],
    /// Skip `#[cfg(test)]` regions (panics in tests are fine).
    pub skip_test_code: bool,
    /// Workspace-relative path suffixes that are fully exempt.
    pub allow_files: &'static [&'static str],
    /// Identifier-boundary token patterns that trigger the rule.
    pub patterns: &'static [&'static str],
}

/// Crates whose event-path state must be deterministic end to end.
const SIM_CRATES: &[&str] = &[
    "simkernel",
    "simnet",
    "mobistreams",
    "dsps",
    "apps",
    "baselines",
];

/// Crates whose message/event paths must not panic (a lost phone or a
/// mis-wired send is simulation *input*, not a programming error).
const NO_PANIC_CRATES: &[&str] = &["simkernel", "simnet", "mobistreams", "dsps"];

/// The registry, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D001",
        summary: "no HashMap/HashSet/RandomState in sim crates",
        rationale: "std hash iteration order is seeded per-process; any \
                    iteration leaks that order into event order and breaks \
                    bit-identical digests. Use BTreeMap/BTreeSet.",
        crates: SIM_CRATES,
        skip_test_code: false,
        allow_files: &[],
        patterns: &["HashMap", "HashSet", "RandomState", "hash_map", "hash_set"],
    },
    Rule {
        id: "D002",
        summary: "no Instant/SystemTime outside the harness allowlist",
        rationale: "wall-clock reads differ run to run; they may time the \
                    harness (wall_secs in reports) but must never feed \
                    simulated state or the report digest.",
        crates: &[],
        skip_test_code: false,
        allow_files: &[
            "crates/experiments/src/main.rs",
            "crates/experiments/src/fleet.rs",
        ],
        patterns: &["Instant", "SystemTime"],
    },
    Rule {
        id: "D003",
        summary: "no RNG outside SimRng",
        rationale: "all randomness must flow through the per-shard forked \
                    SimRng streams; thread-local or entropy-seeded RNGs \
                    give different draws every run and every thread count.",
        crates: &[],
        skip_test_code: false,
        allow_files: &["crates/simkernel/src/rng.rs"],
        patterns: &[
            "thread_rng",
            "ThreadRng",
            "OsRng",
            "from_entropy",
            "getrandom",
            "SmallRng",
            "StdRng",
            "SeedableRng",
        ],
    },
    Rule {
        id: "D004",
        summary: "no statics or thread-locals in sim crates",
        rationale: "a static or thread_local! is hidden state that survives \
                    across runs (and differs across threads); all sim state \
                    must live in actors so a fresh Sim is a fresh world.",
        crates: SIM_CRATES,
        skip_test_code: false,
        allow_files: &[],
        patterns: &["static", "thread_local!"],
    },
    Rule {
        id: "D005",
        summary: "no plain Box<dyn Event>/Arc<dyn Event> on kernel hot paths",
        rationale: "the kernel's event hot path allocates through the \
                    generation-checked EventPool and moves EventBox values; \
                    a plain boxed trait object on a send/dispatch path \
                    silently bypasses the pool, dodging the pool_recycled/\
                    pool_aliasing accounting and regressing the warm-worker \
                    allocation win. Take `impl Into<EventBox>` or call \
                    `EventPool::make` instead; only the pool/event modules \
                    define the boxed representation.",
        crates: &["simkernel"],
        skip_test_code: true,
        allow_files: &[
            "crates/simkernel/src/pool.rs",
            "crates/simkernel/src/event.rs",
        ],
        patterns: &["Box<dyn Event>", "Arc<dyn Event>"],
    },
    Rule {
        id: "P001",
        summary: "no panics on kernel/message paths",
        rationale: "a lost phone, a late frame, or a mis-wired send is \
                    simulation input, not a programming error; count it in \
                    NetStats rejects (or return a typed error) instead of \
                    taking down a fleet-scale run.",
        crates: NO_PANIC_CRATES,
        skip_test_code: true,
        allow_files: &[],
        patterns: &[
            "panic!",
            "unreachable!",
            "todo!",
            "unimplemented!",
            ".unwrap()",
            ".expect(",
        ],
    },
];

// ---------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------

/// One lint hit: a rule violated at a file:line, with the offending
/// source line for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`D001`, …, or `L100`/`L101` for allow hygiene).
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
    /// The source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.snippet
        )
    }
}

// ---------------------------------------------------------------------
// Comment/string-aware scanner
// ---------------------------------------------------------------------

/// One source line split into its code (string contents blanked) and
/// the text of every comment that touches the line.
struct LineView {
    /// The line with comments removed and string/char contents
    /// replaced by spaces; quotes and all other code survive.
    code: String,
    /// Text of each comment segment on this line (`//`, `///`, `//!`
    /// or the per-line slice of a block comment), without delimiters.
    comments: Vec<String>,
}

/// Tokenizer state across a file.
enum St {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Split a file into per-line code/comment views. Handles line and
/// nested block comments, strings, raw strings (`r#"…"#`), byte
/// strings, and the `'a` lifetime vs `'a'` char-literal ambiguity.
fn scan(src: &str) -> Vec<LineView> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comments: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut st = St::Normal;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            match st {
                St::LineComment => {
                    comments.push(std::mem::take(&mut cur));
                    st = St::Normal;
                }
                St::BlockComment(_) => comments.push(std::mem::take(&mut cur)),
                St::CharLit => st = St::Normal, // malformed; resync
                _ => {}
            }
            out.push(LineView {
                code: std::mem::take(&mut code),
                comments: std::mem::take(&mut comments),
            });
            i += 1;
            continue;
        }
        match st {
            St::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    i += 2;
                    // Doc-comment markers are delimiter, not text.
                    while matches!(chars.get(i), Some('/') | Some('!')) {
                        i += 1;
                    }
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw/byte strings: (b?)r#*" — only when the leading
                // letter starts a token (not the tail of `for` etc.).
                if (c == 'r' || c == 'b') && !code.chars().next_back().is_some_and(is_ident) {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let raw = c == 'r' || chars.get(i + 1) == Some(&'r');
                    if raw {
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            code.push('"');
                            st = St::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        code.push('"');
                        st = St::Str;
                        i += 2;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    st = St::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // `'\n'` / `'x'` are char literals; `'a` in `<'a>`
                    // or `'static` is a lifetime and stays in the code
                    // view (the apostrophe guards D004's `static`).
                    if chars.get(i + 1) == Some(&'\\')
                        || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''))
                    {
                        code.push('\'');
                        st = St::CharLit;
                        i += 1;
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            St::LineComment => {
                cur.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        comments.push(std::mem::take(&mut cur));
                        st = St::Normal;
                    } else {
                        st = St::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // A backslash-newline continuation must leave the
                    // newline for the line splitter above.
                    code.push(' ');
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    code.push('"');
                    st = St::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                let mut close = c == '"';
                for k in 0..hashes as usize {
                    close = close && chars.get(i + 1 + k) == Some(&'#');
                }
                if close {
                    code.push('"');
                    st = St::Normal;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            St::CharLit => {
                if c == '\\' {
                    code.push(' ');
                    i += 2;
                } else if c == '\'' {
                    code.push('\'');
                    st = St::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if let St::LineComment | St::BlockComment(_) = st {
        comments.push(cur);
    }
    if !code.is_empty() || !comments.is_empty() {
        out.push(LineView { code, comments });
    }
    out
}

/// Mark every line that belongs to a `#[cfg(test)]` item's block
/// (attribute lines included), by brace-depth tracking on code views.
fn test_mask(lines: &[LineView]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth = 0usize;
    let mut pending = false;
    for (idx, lv) in lines.iter().enumerate() {
        if depth == 0 && lv.code.contains("#[cfg(test)]") {
            pending = true;
        }
        let mut in_test = depth > 0 || pending;
        if in_test {
            for c in lv.code.chars() {
                match c {
                    '{' => {
                        pending = false;
                        depth += 1;
                    }
                    '}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            in_test = true;
        }
        mask[idx] = in_test;
    }
    mask
}

// ---------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------

struct Allow {
    /// 0-based line index of the directive.
    line: usize,
    rule: String,
    used: bool,
}

/// Extract well-formed allow directives and report malformed ones
/// (L101). A directive is only recognised at the start of a comment's
/// trimmed text, so prose mentioning the syntax never triggers.
fn collect_allows(file: &str, lines: &[LineView], findings: &mut Vec<Finding>) -> Vec<Allow> {
    const HEAD: &str = "simlint::allow";
    let mut allows = Vec::new();
    for (idx, lv) in lines.iter().enumerate() {
        for text in &lv.comments {
            let t = text.trim();
            let Some(rest) = t.strip_prefix(HEAD) else {
                continue;
            };
            let parsed = rest
                .strip_prefix('(')
                .and_then(|r| r.split_once(')'))
                .and_then(|(rule, tail)| {
                    let rule = rule.trim();
                    let reason = tail.strip_prefix(':')?.trim();
                    let known =
                        rule == "L100" || rule == "L101" || RULES.iter().any(|r| r.id == rule);
                    (known && !reason.is_empty()).then(|| rule.to_string())
                });
            match parsed {
                Some(rule) => allows.push(Allow {
                    line: idx,
                    rule,
                    used: false,
                }),
                None => findings.push(Finding {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: "L101",
                    message: format!(
                        "malformed allow directive {t:?}: expected \
                         `simlint::allow(RULE): reason` with a known rule \
                         id and a non-empty reason"
                    ),
                    snippet: t.chars().take(120).collect(),
                }),
            }
        }
    }
    allows
}

// ---------------------------------------------------------------------
// Pattern matching
// ---------------------------------------------------------------------

/// Identifier-boundary occurrences of `needle` in a code view. The
/// char before an identifier-leading needle must not be an identifier
/// char **or `'`** (so `'static` never matches `static`); the char
/// after an identifier-trailing needle must not be an identifier char
/// (so `Instant` never matches `Instantiate`).
fn token_matches(code: &str, needle: &str) -> bool {
    let lead = needle.chars().next().is_some_and(is_ident);
    let trail = needle.chars().next_back().is_some_and(is_ident);
    for (pos, _) in code.match_indices(needle) {
        if lead {
            let prev = code[..pos].chars().next_back();
            if prev.is_some_and(|c| is_ident(c) || c == '\'') {
                continue;
            }
        }
        if trail {
            let next = code[pos + needle.len()..].chars().next();
            if next.is_some_and(is_ident) {
                continue;
            }
        }
        return true;
    }
    false
}

// ---------------------------------------------------------------------
// Lint driver
// ---------------------------------------------------------------------

/// Crate name from a workspace-relative path like
/// `crates/simnet/src/wifi.rs`.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// Lint one file's source. `path` is the workspace-relative path
/// (forward slashes) — it selects which rules and allowlists apply.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lines = scan(src);
    let mask = test_mask(&lines);
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    let mut allows = collect_allows(path, &lines, &mut findings);
    let krate = crate_of(path).unwrap_or("");

    for rule in RULES {
        if !rule.crates.is_empty() && !rule.crates.contains(&krate) {
            continue;
        }
        if rule.allow_files.iter().any(|s| path.ends_with(s)) {
            continue;
        }
        for (idx, lv) in lines.iter().enumerate() {
            if rule.skip_test_code && mask[idx] {
                continue;
            }
            let Some(needle) = rule.patterns.iter().find(|n| token_matches(&lv.code, n)) else {
                continue;
            };
            // A matching allow on this line or the line above
            // suppresses the finding and is marked used.
            if let Some(a) = allows
                .iter_mut()
                .find(|a| a.rule == rule.id && (a.line == idx || a.line + 1 == idx))
            {
                a.used = true;
                continue;
            }
            findings.push(Finding {
                file: path.to_string(),
                line: idx + 1,
                rule: rule.id,
                message: format!("`{}` — {}", needle.trim(), rule.summary),
                snippet: raw_lines
                    .get(idx)
                    .map(|l| l.trim().chars().take(120).collect())
                    .unwrap_or_default(),
            });
        }
    }

    for a in &allows {
        if !a.used {
            findings.push(Finding {
                file: path.to_string(),
                line: a.line + 1,
                rule: "L100",
                message: format!(
                    "unused allow: no {} finding on this line or the next \
                     — remove the stale directive",
                    a.rule
                ),
                snippet: raw_lines
                    .get(a.line)
                    .map(|l| l.trim().chars().take(120).collect())
                    .unwrap_or_default(),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Recursively collect `.rs` files under `dir`, sorted for
/// deterministic report order.
fn rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<Vec<_>>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            rs_files(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src/**/*.rs` under the workspace root.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no crates/)", root.display()),
        ));
    }
    let mut members: Vec<_> = fs::read_dir(&crates_dir)?.collect::<io::Result<Vec<_>>>()?;
    members.sort_by_key(|e| e.file_name());
    let mut findings = Vec::new();
    for m in members {
        let src_dir = m.path().join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src_dir, &mut files)?;
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&f)?;
            findings.extend(lint_source(&rel, &src));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_blanks_strings_and_comments() {
        let src = "let x = \"HashMap inside\"; // HashMap in comment\n";
        let lines = scan(src);
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("HashMap"));
        assert_eq!(lines[0].comments.len(), 1);
        assert!(lines[0].comments[0].contains("HashMap"));
    }

    #[test]
    fn scanner_handles_raw_strings_and_char_literals() {
        let src = "let r = r#\"panic! inside\"#; let c = '\"'; let l: &'static str = \"x\";\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("panic!"));
        // The lifetime survives in the code view, apostrophe included.
        assert!(lines[0].code.contains("'static"));
    }

    #[test]
    fn scanner_tracks_nested_block_comments() {
        let src = "/* outer /* inner panic! */ still comment */ let a = 1;\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].code.contains("let a = 1;"));
    }

    #[test]
    fn test_mask_covers_cfg_test_blocks() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let lines = scan(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(token_matches("let m: HashMap<u32, u32>;", "HashMap"));
        assert!(!token_matches("let m: MyHashMapLike;", "HashMap"));
        assert!(!token_matches("fn is_static() {}", "static"));
        assert!(!token_matches("x: &'static str", "static"));
        assert!(token_matches("static FOO: u32 = 3;", "static"));
        assert!(!token_matches("Instantiate::new()", "Instant"));
    }

    /// Regression for the sharded control plane split: rule selection
    /// keys on the crate segment of the path, so files nested below
    /// `src/` (e.g. `src/controller/region.rs`) must stay covered by
    /// the crate-scoped rules exactly like top-level modules.
    #[test]
    fn nested_module_paths_keep_crate_scoped_rules() {
        for path in [
            "crates/mobistreams/src/controller/region.rs",
            "crates/mobistreams/src/controller/deeper/nested.rs",
        ] {
            assert_eq!(crate_of(path), Some("mobistreams"));
            let panics = lint_source(path, "fn f() { panic!(\"boom\"); }\n");
            assert!(
                panics.iter().any(|f| f.rule == "P001"),
                "P001 missed a panic in {path}: {panics:?}"
            );
            let statics = lint_source(path, "static COUNT: u32 = 0;\n");
            assert!(
                statics.iter().any(|f| f.rule == "D004"),
                "D004 missed a static in {path}: {statics:?}"
            );
        }
        // The experiments crate stays exempt from P001 even in nested
        // modules — same selection logic, opposite outcome.
        let exempt = lint_source(
            "crates/experiments/src/sub/dir.rs",
            "fn f() { panic!(\"boom\"); }\n",
        );
        assert!(!exempt.iter().any(|f| f.rule == "P001"));
    }
}
