//! The workspace must lint clean: running the full test suite is
//! itself a lint gate, independent of the `msx lint` CLI entry point.

use std::path::Path;

#[test]
fn workspace_has_no_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = simlint::lint_workspace(&root).expect("workspace readable");
    if !findings.is_empty() {
        let mut msg = format!("{} lint finding(s):\n", findings.len());
        for f in &findings {
            msg.push_str(&format!("{f}\n"));
        }
        panic!("{msg}");
    }
}
