//! Fixture-driven self-tests: every rule must fire on its bad
//! fixture, the allow directive must suppress it, and per-file
//! allowlists must be honored.

use simlint::{lint_source, RULES};

const SIM_PATH: &str = "crates/simnet/src/fixture.rs";

fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
    lint_source(path, src).into_iter().map(|f| f.rule).collect()
}

#[test]
fn d001_fires_on_hashmap_in_sim_crate() {
    let src =
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    let hits = rules_hit(SIM_PATH, src);
    assert!(hits.contains(&"D001"), "hits = {hits:?}");
    // The harness crate may use std hashing: rule scope is sim crates.
    assert!(rules_hit("crates/experiments/src/fixture.rs", src).is_empty());
}

#[test]
fn d002_fires_everywhere_but_the_harness_allowlist() {
    let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
    assert!(rules_hit(SIM_PATH, src).contains(&"D002"));
    assert!(rules_hit("crates/experiments/src/fig8.rs", src).contains(&"D002"));
    // The two wall-clock harness files are exempt by path.
    assert!(rules_hit("crates/experiments/src/main.rs", src).is_empty());
    assert!(rules_hit("crates/experiments/src/fleet.rs", src).is_empty());
}

#[test]
fn d003_fires_outside_simrng() {
    let src = "use rand::rngs::SmallRng;\nfn f() { let r = rand::thread_rng(); }\n";
    let hits = rules_hit(SIM_PATH, src);
    assert_eq!(hits, vec!["D003", "D003"]);
    // The one place allowed to touch the raw generator.
    assert!(rules_hit("crates/simkernel/src/rng.rs", src).is_empty());
}

#[test]
fn d004_fires_on_statics_but_not_lifetimes() {
    assert!(rules_hit(SIM_PATH, "static COUNTER: u32 = 0;\n").contains(&"D004"));
    assert!(rules_hit(SIM_PATH, "thread_local! { static X: u32 = 0; }\n").contains(&"D004"));
    assert!(rules_hit(SIM_PATH, "fn f(s: &'static str) -> &'static str { s }\n").is_empty());
    assert!(rules_hit(SIM_PATH, "fn is_static(x: u32) -> bool { x == 0 }\n").is_empty());
}

#[test]
fn d005_fires_on_plain_boxed_events_in_simkernel() {
    let boxed = "fn f(ev: Box<dyn Event>) { let _ = ev; }\n";
    let arced = "fn g(ev: Arc<dyn Event>) { let _ = ev; }\n";
    let hits = rules_hit("crates/simkernel/src/sim.rs", boxed);
    assert!(hits.contains(&"D005"), "hits = {hits:?}");
    assert!(rules_hit("crates/simkernel/src/sim.rs", arced).contains(&"D005"));
    // The pool and event modules define the boxed representation.
    assert!(rules_hit("crates/simkernel/src/pool.rs", boxed).is_empty());
    assert!(rules_hit("crates/simkernel/src/event.rs", boxed).is_empty());
    // Scope is the kernel crate: harness and net crates may hold plain
    // boxes (they never sit on the per-shard dispatch loop).
    assert!(rules_hit(SIM_PATH, boxed).is_empty());
    // Kernel test code may box freely.
    let test_src = "#[cfg(test)]\nmod tests {\n    fn t(ev: Box<dyn Event>) { let _ = ev; }\n}\n";
    assert!(rules_hit("crates/simkernel/src/sim.rs", test_src).is_empty());
    // An EventBox-typed path does not trip the rule.
    let pooled = "fn h(ev: EventBox) { let _ = ev; }\n";
    assert!(rules_hit("crates/simkernel/src/sim.rs", pooled).is_empty());
}

#[test]
fn p001_fires_on_message_path_panics_but_not_tests() {
    for bad in [
        "fn f() { panic!(\"boom\"); }\n",
        "fn f() { unreachable!(); }\n",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        "fn f(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n",
    ] {
        assert!(rules_hit(SIM_PATH, bad).contains(&"P001"), "src = {bad}");
    }
    // Panics in #[cfg(test)] regions are fine.
    let test_src =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { panic!(\"expected\"); }\n}\n";
    assert!(rules_hit(SIM_PATH, test_src).is_empty());
    // P001 is scoped to kernel/message-path crates.
    assert!(rules_hit("crates/apps/src/fixture.rs", "fn f() { panic!(); }\n").is_empty());
}

#[test]
fn allow_with_reason_suppresses_same_line_and_next_line() {
    let trailing =
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // simlint::allow(P001): fixture reason\n";
    assert!(rules_hit(SIM_PATH, trailing).is_empty());
    let above = "// simlint::allow(P001): fixture reason\nfn f() { panic!(); }\n";
    assert!(rules_hit(SIM_PATH, above).is_empty());
    // An allow for the wrong rule does not suppress.
    let wrong = "// simlint::allow(D001): wrong rule\nfn f() { panic!(); }\n";
    let hits = rules_hit(SIM_PATH, wrong);
    assert!(
        hits.contains(&"P001") && hits.contains(&"L100"),
        "hits = {hits:?}"
    );
}

#[test]
fn l100_flags_unused_allows() {
    let src = "// simlint::allow(D001): nothing here violates it\nfn f() {}\n";
    assert_eq!(rules_hit(SIM_PATH, src), vec!["L100"]);
}

#[test]
fn l101_flags_malformed_allows() {
    // Missing reason, unknown rule, missing colon: all malformed.
    for bad in [
        "// simlint::allow(P001)\nfn f() {}\n",
        "// simlint::allow(P001):\nfn f() {}\n",
        "// simlint::allow(X999): unknown rule\nfn f() {}\n",
        "// simlint::allow P001: no parens\nfn f() {}\n",
    ] {
        assert_eq!(rules_hit(SIM_PATH, bad), vec!["L101"], "src = {bad}");
    }
}

#[test]
fn comments_and_strings_do_not_trigger() {
    let src = "// a HashMap would panic! here\nfn f() { let s = \"HashMap panic! Instant\"; let _ = s; }\n";
    assert!(rules_hit(SIM_PATH, src).is_empty());
    let raw = "fn f() { let s = r#\"thread_rng() static\"#; let _ = s; }\n";
    assert!(rules_hit(SIM_PATH, raw).is_empty());
}

#[test]
fn findings_carry_location_and_snippet() {
    let src = "fn ok() {}\nfn f() { panic!(\"boom\"); }\n";
    let fs = lint_source(SIM_PATH, src);
    assert_eq!(fs.len(), 1);
    assert_eq!(fs[0].file, SIM_PATH);
    assert_eq!(fs[0].line, 2);
    assert_eq!(fs[0].rule, "P001");
    assert!(
        fs[0].snippet.contains("panic!"),
        "snippet = {}",
        fs[0].snippet
    );
    let shown = fs[0].to_string();
    assert!(shown.contains("fixture.rs:2"), "display = {shown}");
}

#[test]
fn every_rule_documents_itself() {
    for r in RULES {
        assert!(!r.summary.is_empty() && !r.rationale.is_empty(), "{}", r.id);
        assert!(!r.patterns.is_empty(), "{}", r.id);
    }
}
