//! Protocol records shared by the baseline schemes.

use dsps::graph::OpId;
use dsps::operator::OpState;

/// Coordinator → all hosting nodes: take checkpoint `version` now
/// (uncoordinated per-node snapshot; consistency is restored at
/// recovery time via input preservation replay).
#[derive(Debug, Clone, Copy)]
pub struct CkptTick {
    /// Version to record.
    pub version: u64,
}

/// dist-n: a node's checkpoint states shipped to a peer.
#[derive(Debug, Clone)]
pub struct StateCopy {
    /// Version.
    pub version: u64,
    /// Originating slot.
    pub from_slot: u32,
    /// States (with sizes).
    pub states: Vec<(OpId, OpState, u64)>,
}

/// rep-2: which flow's sinks publish.
#[derive(Debug, Clone, Copy)]
pub struct SetPrimary {
    /// The now-primary flow (0 or 1).
    pub flow: u8,
}

/// dist-n recovery: a peer holding `slot`'s state ships it to the
/// replacement (the coordinator orchestrates who sends what).
#[derive(Debug, Clone, Copy)]
pub struct ShipStateTo {
    /// Whose state to ship.
    pub failed_slot: u32,
    /// Version wanted.
    pub version: u64,
    /// Replacement actor.
    pub to: simkernel::ActorId,
    /// Replacement slot.
    pub to_slot: u32,
}

/// local / dist-n recovery: re-send retained output tuples on the given
/// edges (upstream replay after a downstream rollback).
#[derive(Debug, Clone)]
pub struct ResendRetained {
    /// Edges to replay (upstream side).
    pub edges: Vec<dsps::graph::EdgeId>,
}

/// Node → coordinator: recovery install finished.
#[derive(Debug, Clone, Copy)]
pub struct BaselineAck {
    /// Region/slot of the recovered node.
    pub region: usize,
    /// Slot.
    pub slot: u32,
}

/// Wire sizes.
pub mod wire {
    /// Small control RPC.
    pub const CONTROL: u64 = 64;
    /// Ping probe.
    pub const PING_BYTES: u64 = 32;
}
