//! rep-2 — active standby, "representative of Flux and Borealis"
//! (§IV-B).
//!
//! The query network is duplicated into two parallel dataflows (flow 0
//! and flow 1); the workload driver feeds both; each flow runs on its
//! own subset of phones. The secondary flow's sinks are squelched. On
//! a failure in the primary flow the coordinator flips the primary —
//! takeover is immediate because the standby has been processing all
//! along ("the replica has maintained the same state as the failed
//! operator"). A second failure hitting the surviving flow is fatal:
//! rep-2 "can tolerate only single-node failures".
//!
//! Costs reproduced: 2× CPU (every operator runs twice on the same
//! 8-phone region), 2× network (the duplicate flow's tuple traffic —
//! accounted as `TrafficClass::Replication` for Fig 10b).

use std::sync::Arc;

use dsps::ft::FtScheme;
use dsps::graph::{OpId, QueryGraph};
use dsps::node::NodeInner;
use dsps::tuple::Tuple;
use simkernel::{Ctx, EventBox};
use simnet::cellular::CellRx;
use simnet::payload_as;

use crate::msgs::SetPrimary;

/// Duplicate a query network into two disjoint flows.
///
/// Returns the doubled graph and `flow_of[op]` (0 or 1). Ops
/// `0..n` are flow 0 (same ids as the original), ops `n..2n` flow 1.
pub fn duplicate_graph(g: &QueryGraph) -> (QueryGraph, Vec<u8>) {
    let n = g.op_count();
    let mut out = QueryGraph::new();
    let mut flow_of = Vec::with_capacity(2 * n);
    for flow in 0..2u8 {
        for op in g.op_ids() {
            let spec = g.op(op);
            let name = if flow == 0 {
                spec.name.clone()
            } else {
                format!("{}'", spec.name)
            };
            // Re-instantiate through the original spec's factory.
            let factory = clone_factory(g, op);
            out.add_op_boxed(name, spec.kind, factory);
            flow_of.push(flow);
        }
    }
    for e in 0..g.edge_count() {
        let edge = g.edge(dsps::graph::EdgeId(e as u32));
        out.connect(edge.from, edge.to);
    }
    for e in 0..g.edge_count() {
        let edge = g.edge(dsps::graph::EdgeId(e as u32));
        out.connect(OpId(edge.from.0 + n as u32), OpId(edge.to.0 + n as u32));
    }
    (out, flow_of)
}

/// The flow-1 twin of a flow-0 op (and vice versa).
pub fn twin_of(op: OpId, original_ops: usize) -> OpId {
    if (op.0 as usize) < original_ops {
        OpId(op.0 + original_ops as u32)
    } else {
        OpId(op.0 - original_ops as u32)
    }
}

fn clone_factory(
    g: &QueryGraph,
    op: OpId,
) -> Box<dyn Fn() -> Box<dyn dsps::operator::Operator> + Send + Sync> {
    let f = g.factory_of(op);
    Box::new(move || f())
}

/// The rep-2 per-node scheme: squelch non-primary sink output.
pub struct Rep2Scheme {
    /// `flow_of[op]` from [`duplicate_graph`].
    pub flow_of: Arc<Vec<u8>>,
    /// Currently publishing flow.
    pub primary: u8,
}

impl Rep2Scheme {
    /// New scheme; flow 0 starts primary.
    pub fn new(flow_of: Arc<Vec<u8>>) -> Self {
        Rep2Scheme {
            flow_of,
            primary: 0,
        }
    }
}

impl FtScheme for Rep2Scheme {
    fn name(&self) -> &'static str {
        "rep-2"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn allow_sink_publish(
        &mut self,
        tuple: &Tuple,
        op: OpId,
        node: &mut NodeInner,
        ctx: &mut Ctx,
    ) -> bool {
        let _ = (node, ctx);
        !tuple.replay && self.flow_of[op.index()] == self.primary
    }

    fn on_custom(&mut self, ev: EventBox, node: &mut NodeInner, ctx: &mut Ctx) -> bool {
        let _ = (node, ctx);
        simkernel::match_event!(ev,
            rx: CellRx => {
                if let Some(p) = payload_as::<SetPrimary>(&rx.payload) {
                    self.primary = p.flow;
                } else {
                    return false;
                }
            },
            @else _other => {
                return false;
            }
        );
        true
    }
}

/// Sanity helper: which flow a slot serves under a placement
/// (placements must keep flows on disjoint phones so one phone failure
/// breaks at most one flow).
pub fn flow_of_slot(
    placement: &dsps::placement::Placement,
    flow_of: &[u8],
    slot: u32,
) -> Option<u8> {
    let mut found: Option<u8> = None;
    for (op_ix, &s) in placement.op_slot.iter().enumerate() {
        if s == slot {
            let f = flow_of[op_ix];
            match found {
                None => found = Some(f),
                Some(prev) => assert_eq!(prev, f, "slot {slot} hosts both flows"),
            }
        }
    }
    found
}

/// Kinds re-exported for placement code.
pub use dsps::graph::OpKind as Rep2OpKind;

#[cfg(test)]
mod tests {
    use super::*;
    use dsps::graph::OpKind;
    use dsps::ops::Relay;
    use simkernel::SimDuration;

    fn base_graph() -> QueryGraph {
        let mut g = QueryGraph::new();
        let s = g.add_op("S", OpKind::Source, || {
            Box::new(Relay::new(SimDuration::from_millis(1)))
        });
        let a = g.add_op("A", OpKind::Compute, || {
            Box::new(Relay::new(SimDuration::from_millis(1)))
        });
        let k = g.add_op("K", OpKind::Sink, || {
            Box::new(Relay::new(SimDuration::from_millis(1)))
        });
        g.connect(s, a);
        g.connect(a, k);
        g
    }

    #[test]
    fn duplication_doubles_and_validates() {
        let g = base_graph();
        let (g2, flow_of) = duplicate_graph(&g);
        assert_eq!(g2.op_count(), 6);
        assert_eq!(g2.edge_count(), 4);
        assert!(g2.validate().is_ok());
        assert_eq!(flow_of, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(g2.sources().len(), 2);
        assert_eq!(g2.sinks().len(), 2);
    }

    #[test]
    fn flows_are_disjoint() {
        let g = base_graph();
        let (g2, _) = duplicate_graph(&g);
        // No edge crosses flows.
        for e in 0..g2.edge_count() {
            let edge = g2.edge(dsps::graph::EdgeId(e as u32));
            let f = |op: OpId| if op.index() < 3 { 0 } else { 1 };
            assert_eq!(f(edge.from), f(edge.to));
        }
    }

    #[test]
    fn twin_mapping_round_trips() {
        assert_eq!(twin_of(OpId(1), 3), OpId(4));
        assert_eq!(twin_of(OpId(4), 3), OpId(1));
    }

    #[test]
    fn scheme_squelches_secondary() {
        let flow_of = Arc::new(vec![0u8, 0, 0, 1, 1, 1]);
        let mut s = Rep2Scheme::new(flow_of);
        assert_eq!(s.primary, 0);
        // flow 1 op is squelched until takeover.
        assert_eq!(s.flow_of[5], 1);
        s.primary = 1;
        assert_eq!(s.flow_of[2], 0);
    }
}
