//! Local checkpointing — the paper's upper-bound benchmark.
//!
//! Each node periodically snapshots its operators into its *own*
//! storage (no network traffic) and practices input preservation:
//! every emitted tuple is retained until it is covered by a downstream
//! checkpoint (approximated by a retention window of one checkpoint
//! period). "It is not a realistic fault model in the context of
//! smartphones, but represents an upper bound in performance" (§IV-B),
//! so no recovery path exists — `local` only appears in the fault-free
//! experiments (Fig 8 and Fig 10).

use std::collections::{BTreeMap, VecDeque};

use dsps::ft::FtScheme;
use dsps::graph::EdgeId;
use dsps::node::NodeInner;
use dsps::tuple::Tuple;
use simkernel::{Ctx, EventBox, SimDuration, SimTime};
use simnet::cellular::CellRx;
use simnet::payload_as;

use crate::msgs::CkptTick;

/// Internal: clear the CPU hold placed while serializing a snapshot.
#[derive(Debug)]
struct CpuHoldDone;

/// Output-retention buffer shared by `local` and `dist-n` (input
/// preservation, §IV-B: "every operator retains its output tuples
/// until these tuples have been checkpointed by the downstream
/// operators").
#[derive(Default)]
pub struct RetentionBuffer {
    per_edge: BTreeMap<EdgeId, VecDeque<(SimTime, Tuple)>>,
}

impl RetentionBuffer {
    /// Retain a copy of an emitted tuple.
    pub fn retain(&mut self, edge: EdgeId, at: SimTime, tuple: Tuple) {
        self.per_edge
            .entry(edge)
            .or_default()
            .push_back((at, tuple));
    }

    /// Drop tuples older than `horizon`.
    pub fn trim_before(&mut self, horizon: SimTime) {
        for q in self.per_edge.values_mut() {
            while q.front().is_some_and(|(t, _)| *t < horizon) {
                q.pop_front();
            }
        }
    }

    /// Bytes currently retained.
    pub fn bytes(&self) -> u64 {
        self.per_edge
            .values()
            .flat_map(|q| q.iter())
            .map(|(_, t)| t.bytes)
            .sum()
    }

    /// Retained tuples on one edge (oldest first).
    pub fn tuples_on(&self, edge: EdgeId) -> Vec<Tuple> {
        self.per_edge
            .get(&edge)
            .map(|q| q.iter().map(|(_, t)| t.clone()).collect())
            .unwrap_or_default()
    }

    /// Clear everything.
    pub fn clear(&mut self) {
        self.per_edge.clear();
    }
}

/// Serialize-cost model: how long the phone core is busy writing a
/// snapshot of `bytes` (flash write + serialization, ~30 MB/s).
pub fn serialize_hold(bytes: u64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 / 30.0e6)
}

/// The `local` scheme.
pub struct LocalScheme {
    /// Retention window ≈ checkpoint period.
    pub retention_window: SimDuration,
    /// Retained output tuples.
    pub retention: RetentionBuffer,
    /// Last version taken.
    pub version: u64,
    cpu_held: bool,
}

impl LocalScheme {
    /// New scheme with the given retention window (set = checkpoint
    /// period).
    pub fn new(retention_window: SimDuration) -> Self {
        LocalScheme {
            retention_window,
            retention: RetentionBuffer::default(),
            version: 0,
            cpu_held: false,
        }
    }

    fn take_checkpoint(&mut self, version: u64, node: &mut NodeInner, ctx: &mut Ctx) {
        self.version = version;
        let snaps = node.snapshot_ops();
        let mut total = 0;
        for (op, st, bytes) in snaps {
            node.store.put_state(version, op, st, bytes);
            total += bytes;
        }
        node.store.mark_complete(version);
        node.store.gc_before(version);
        self.retention
            .trim_before(ctx.now() - self.retention_window);
        // Serialization briefly occupies the core (the paper's local
        // overhead); skipped if a tuple is in service (async thread).
        if total > 0 && !node.busy {
            node.busy = true;
            self.cpu_held = true;
            let me = ctx.self_id();
            ctx.send_in(serialize_hold(total), me, CpuHoldDone);
        }
        ctx.count("local.checkpoints", 1);
    }
}

impl FtScheme for LocalScheme {
    fn name(&self) -> &'static str {
        "local"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_emit(
        &mut self,
        tuple: &Tuple,
        edge: EdgeId,
        node: &mut NodeInner,
        ctx: &mut Ctx,
    ) -> bool {
        let _ = node;
        if !tuple.replay {
            self.retention.retain(edge, ctx.now(), tuple.clone());
        }
        true
    }

    fn on_custom(&mut self, ev: EventBox, node: &mut NodeInner, ctx: &mut Ctx) -> bool {
        simkernel::match_event!(ev,
            _h: CpuHoldDone => {
                if self.cpu_held {
                    self.cpu_held = false;
                    node.busy = false;
                }
            },
            rx: CellRx => {
                if let Some(t) = payload_as::<CkptTick>(&rx.payload) {
                    self.take_checkpoint(t.version, node, ctx);
                } else {
                    return false;
                }
            },
            @else _other => {
                return false;
            }
        );
        true
    }

    fn preserved_bytes(&self, node: &NodeInner) -> u64 {
        let _ = node;
        self.retention.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsps::tuple::value;

    fn tup(id: u64, bytes: u64) -> Tuple {
        Tuple::new(id, SimTime::ZERO, bytes, value(()))
    }

    #[test]
    fn retention_trims_by_time() {
        let mut r = RetentionBuffer::default();
        r.retain(EdgeId(0), SimTime::from_secs(1), tup(1, 100));
        r.retain(EdgeId(0), SimTime::from_secs(2), tup(2, 100));
        r.retain(EdgeId(1), SimTime::from_secs(3), tup(3, 50));
        assert_eq!(r.bytes(), 250);
        r.trim_before(SimTime::from_secs(2));
        assert_eq!(r.bytes(), 150);
        assert_eq!(r.tuples_on(EdgeId(0)).len(), 1);
        r.clear();
        assert_eq!(r.bytes(), 0);
    }

    #[test]
    fn serialize_hold_scales() {
        let small = serialize_hold(1024);
        let big = serialize_hold(8 * 1024 * 1024);
        assert!(big > small);
        // 8 MB at 30 MB/s ≈ 0.28 s.
        assert!((big.as_secs_f64() - 0.2796).abs() < 0.01, "{big}");
    }
}
