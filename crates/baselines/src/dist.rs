//! dist-n — distributed checkpointing, "modeled after Cooperative HA
//! Solution and SGuard" (§IV-B).
//!
//! On every checkpoint tick each node snapshots its operators and
//! unicasts the state to its `n` checkpoint peers (the next `n` slots,
//! cyclically) over reliable WiFi — that unicast traffic is exactly
//! the `0.76×/1.52×/2.28×` Fig 10b series. Input preservation retains
//! emitted tuples for replay. Recovery restores a failed node's
//! operators on a replacement from a surviving peer copy and replays
//! retained upstream tuples; more simultaneous failures mean more
//! serialized state fetches over the shared WiFi channel, which is why
//! dist-n recovery degrades with n (Fig 9). More than `n` simultaneous
//! failures are unrecoverable.

use dsps::ft::FtScheme;
use dsps::graph::EdgeId;
use dsps::node::{Install, InstallStates, NodeInner};
use dsps::tuple::{StreamItem, Tuple};
use simkernel::{Ctx, EventBox, SimDuration};
use simnet::cellular::CellRx;
use simnet::stats::TrafficClass;
use simnet::wifi::{SendMode, Service, WifiRx};
use simnet::{payload, payload_as};

use crate::local::{serialize_hold, RetentionBuffer};
use crate::msgs::{BaselineAck, CkptTick, ResendRetained, ShipStateTo, StateCopy};

/// Deterministic checkpoint peers of `slot`: the next `n` slots
/// cyclically, skipping the slot itself. Shared by the scheme and the
/// coordinator so both sides agree who holds whose state.
pub fn peers_of(slot: u32, n: u32, total_slots: u32) -> Vec<u32> {
    assert!(total_slots > 1);
    let mut v = Vec::new();
    let mut s = slot;
    while v.len() < n as usize && v.len() + 1 < total_slots as usize {
        s = (s + 1) % total_slots;
        if s != slot {
            v.push(s);
        }
    }
    v
}

/// Internal: clear the snapshot-serialization CPU hold.
#[derive(Debug)]
struct CpuHoldDone;

/// The dist-n scheme.
pub struct DistScheme {
    /// Number of peer copies.
    pub n: u32,
    /// Retention window (= checkpoint period).
    pub retention_window: SimDuration,
    /// Retained output tuples (input preservation).
    pub retention: RetentionBuffer,
    /// Last version taken.
    pub version: u64,
    cpu_held: bool,
}

impl DistScheme {
    /// New dist-n scheme.
    pub fn new(n: u32, retention_window: SimDuration) -> Self {
        assert!(n >= 1);
        DistScheme {
            n,
            retention_window,
            retention: RetentionBuffer::default(),
            version: 0,
            cpu_held: false,
        }
    }

    fn take_checkpoint(&mut self, version: u64, node: &mut NodeInner, ctx: &mut Ctx) {
        self.version = version;
        let snaps = node.snapshot_ops();
        let mut total = 0;
        for (op, st, bytes) in &snaps {
            node.store.put_state(version, *op, st.clone(), *bytes);
            total += *bytes;
        }
        node.store.mark_complete(version);
        node.store.gc_before(version.saturating_sub(1)); // keep v-1 and v
        self.retention
            .trim_before(ctx.now() - self.retention_window);
        if total > 0 {
            // Ship the state to each peer as reliable unicast — n copies
            // on the wire (vs MobiStreams' single broadcast).
            let total_slots = node.slot_actors.len() as u32;
            let copy = StateCopy {
                version,
                from_slot: node.cfg.slot,
                states: snaps,
            };
            for peer in peers_of(node.cfg.slot, self.n, total_slots) {
                let dst = node.slot_actors[peer as usize];
                node.send_wifi(
                    ctx,
                    SendMode::Unicast(dst),
                    Service::Reliable,
                    TrafficClass::Checkpoint,
                    total,
                    0,
                    Some(payload(copy.clone())),
                );
            }
            if !node.busy {
                node.busy = true;
                self.cpu_held = true;
                let me = ctx.self_id();
                ctx.send_in(serialize_hold(total), me, CpuHoldDone);
            }
        }
        ctx.count("dist.checkpoints", 1);
    }

    fn ship_state(&mut self, req: &ShipStateTo, node: &mut NodeInner, ctx: &mut Ctx) {
        // Collect the failed node's states we hold.
        let ops = node
            .graph
            .op_ids()
            .filter(|op| node.store.state(req.version, *op).is_some())
            .collect::<Vec<_>>();
        // Build the install: the coordinator already updated op_slot, so
        // the replacement's op set is whatever maps to its slot.
        let their_ops: Vec<dsps::graph::OpId> = node
            .op_slot
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == req.to_slot)
            .map(|(i, _)| dsps::graph::OpId(i as u32))
            .collect();
        let states: Vec<(dsps::graph::OpId, dsps::operator::OpState)> = their_ops
            .iter()
            .filter(|op| ops.contains(op))
            .filter_map(|&op| node.store.state(req.version, op).map(|s| (op, s.clone())))
            .collect();
        let bytes: u64 = their_ops
            .iter()
            .filter_map(|&op| {
                node.store
                    .version(req.version)
                    .and_then(|v| v.state_bytes.get(&op).copied())
            })
            .sum();
        let install = Install {
            ops: their_ops,
            states: InstallStates::Explicit(states),
            op_slot: node.op_slot.clone(),
            slot_actors: node.slot_actors.clone(),
            ready_in: SimDuration::from_secs(1),
        };
        // The fetch+restore crosses the shared WiFi channel: with k
        // simultaneous failures these transfers serialize — the dist-n
        // degradation of Fig 9.
        node.send_wifi(
            ctx,
            SendMode::Unicast(req.to),
            Service::Reliable,
            TrafficClass::Recovery,
            bytes.max(1),
            0,
            Some(payload(install)),
        );
    }

    fn resend_retained(&mut self, edges: &[EdgeId], node: &mut NodeInner, ctx: &mut Ctx) {
        for &edge in edges {
            for mut t in self.retention.tuples_on(edge) {
                t.replay = true;
                node.route_item(ctx, edge, StreamItem::Tuple(t));
            }
        }
    }
}

impl FtScheme for DistScheme {
    fn name(&self) -> &'static str {
        "dist-n"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_emit(
        &mut self,
        tuple: &Tuple,
        edge: EdgeId,
        node: &mut NodeInner,
        ctx: &mut Ctx,
    ) -> bool {
        let _ = node;
        if !tuple.replay {
            self.retention.retain(edge, ctx.now(), tuple.clone());
        }
        true
    }

    fn on_custom(&mut self, ev: EventBox, node: &mut NodeInner, ctx: &mut Ctx) -> bool {
        if !node.alive {
            return true;
        }
        simkernel::match_event!(ev,
            _h: CpuHoldDone => {
                if self.cpu_held {
                    self.cpu_held = false;
                    node.busy = false;
                }
            },
            rx: WifiRx => {
                if let Some(copy) = payload_as::<StateCopy>(&rx.payload) {
                    for (op, st, bytes) in &copy.states {
                        node.store.put_state(copy.version, *op, st.clone(), *bytes);
                    }
                    node.store.mark_complete(copy.version);
                } else {
                    return false;
                }
            },
            rx: CellRx => {
                if let Some(t) = payload_as::<CkptTick>(&rx.payload) {
                    self.take_checkpoint(t.version, node, ctx);
                } else if let Some(req) = payload_as::<ShipStateTo>(&rx.payload) {
                    let req = *req;
                    self.ship_state(&req, node, ctx);
                } else if let Some(r) = payload_as::<ResendRetained>(&rx.payload) {
                    let edges = r.edges.clone();
                    self.resend_retained(&edges, node, ctx);
                } else {
                    return false;
                }
            },
            @else _other => {
                return false;
            }
        );
        true
    }

    fn on_install(&mut self, node: &mut NodeInner, ctx: &mut Ctx) {
        self.retention.clear();
        let ack = BaselineAck {
            region: node.cfg.region,
            slot: node.cfg.slot,
        };
        node.send_controller(ctx, crate::msgs::wire::CONTROL, ack);
    }

    fn preserved_bytes(&self, node: &NodeInner) -> u64 {
        let _ = node;
        self.retention.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peers_are_cyclic_and_skip_self() {
        assert_eq!(peers_of(0, 3, 8), vec![1, 2, 3]);
        assert_eq!(peers_of(6, 3, 8), vec![7, 0, 1]);
        assert_eq!(peers_of(7, 1, 8), vec![0]);
        // Region smaller than n: everyone else.
        assert_eq!(peers_of(0, 5, 3), vec![1, 2]);
    }

    #[test]
    fn pigeonhole_survivability() {
        // With k ≤ n failures, at least one peer of any failed slot
        // survives: check exhaustively for a small region.
        let total = 6u32;
        let n = 2u32;
        for failed_mask in 0u32..(1 << total) {
            let failed: Vec<u32> = (0..total).filter(|&s| failed_mask >> s & 1 == 1).collect();
            if failed.len() as u32 > n || failed.is_empty() {
                continue;
            }
            for &f in &failed {
                let peers = peers_of(f, n, total);
                assert!(
                    peers.iter().any(|p| !failed.contains(p)),
                    "slot {f} lost all copies with failures {failed:?}"
                );
            }
        }
    }
}
