//! # baselines — the prior-art fault-tolerance schemes of §IV-B
//!
//! The paper compares MobiStreams against four configurations on the
//! same smartphone platform:
//!
//! * **base** — no fault tolerance ([`dsps::ft::NullScheme`]).
//! * **rep-2** — active standby, "representative of Flux and Borealis":
//!   two replicas of each operator run as parallel dataflows; the
//!   secondary's sink output is squelched; on a (single) failure the
//!   surviving flow takes over immediately. Tolerates exactly one
//!   failure ([`rep2`]).
//! * **local** — checkpoint to each node's own storage plus input
//!   preservation; "not a realistic fault model … but represents an
//!   upper bound in performance" ([`local`]).
//! * **dist-n** — "modeled after Cooperative HA and SGuard": each node
//!   periodically unicasts its checkpoint to `n` peers, and every
//!   operator retains its output tuples (input preservation) for
//!   replay. Tolerates up to `n` simultaneous failures ([`dist`]).
//!
//! All schemes plug into the same [`dsps::node::NodeActor`] runtime via
//! [`dsps::ft::FtScheme`]; the per-region [`coordinator`] actor
//! triggers checkpoint ticks, pings source nodes, and drives
//! scheme-specific recovery.

pub mod coordinator;
pub mod dist;
pub mod local;
pub mod msgs;
pub mod rep2;
pub mod upstream;

pub use coordinator::{BaselineCoordinator, BaselineKind, CoordinatorConfig};
pub use dist::DistScheme;
pub use local::LocalScheme;
pub use rep2::{duplicate_graph, Rep2Scheme};
pub use upstream::UpstreamScheme;
