//! Upstream backup (Hwang et al., ICDE'05) — related-work extension.
//!
//! "Every node acts as a backup for its downstream neighbors": there is
//! no checkpointing at all; each operator retains its output tuples,
//! and when a downstream node fails, its operators are *re-created on
//! the upstream neighbor*, which rebuilds their state by replaying the
//! retained outputs. The paper notes the limitations we reproduce:
//! "upstream backup cannot effectively support operators with large
//! windows, and it only handles single node failure."

use dsps::ft::FtScheme;
use dsps::graph::EdgeId;
use dsps::node::NodeInner;
use dsps::tuple::{StreamItem, Tuple};
use simkernel::{Ctx, EventBox, SimDuration};
use simnet::cellular::CellRx;
use simnet::payload_as;

use crate::local::RetentionBuffer;
use crate::msgs::{BaselineAck, ResendRetained};

/// The upstream-backup per-node scheme: pure output retention.
pub struct UpstreamScheme {
    /// Retention window (bounds memory; real upstream backup trims on
    /// downstream acks).
    pub retention_window: SimDuration,
    /// Retained output tuples.
    pub retention: RetentionBuffer,
    last_trim_s: f64,
}

impl UpstreamScheme {
    /// New scheme.
    pub fn new(retention_window: SimDuration) -> Self {
        UpstreamScheme {
            retention_window,
            retention: RetentionBuffer::default(),
            last_trim_s: 0.0,
        }
    }

    fn resend(&mut self, edges: &[EdgeId], node: &mut NodeInner, ctx: &mut Ctx) {
        for &edge in edges {
            for mut t in self.retention.tuples_on(edge) {
                t.replay = true;
                node.route_item(ctx, edge, StreamItem::Tuple(t));
            }
        }
    }
}

impl FtScheme for UpstreamScheme {
    fn name(&self) -> &'static str {
        "upstream-backup"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_emit(
        &mut self,
        tuple: &Tuple,
        edge: EdgeId,
        node: &mut NodeInner,
        ctx: &mut Ctx,
    ) -> bool {
        let _ = node;
        if !tuple.replay {
            self.retention.retain(edge, ctx.now(), tuple.clone());
            // Periodic trim (acks approximated by a time window).
            let now_s = ctx.now().as_secs_f64();
            if now_s - self.last_trim_s > self.retention_window.as_secs_f64() {
                self.last_trim_s = now_s;
                self.retention
                    .trim_before(ctx.now() - self.retention_window);
            }
        }
        true
    }

    fn on_custom(&mut self, ev: EventBox, node: &mut NodeInner, ctx: &mut Ctx) -> bool {
        if !node.alive {
            return true;
        }
        simkernel::match_event!(ev,
            rx: CellRx => {
                if let Some(r) = payload_as::<ResendRetained>(&rx.payload) {
                    let edges = r.edges.clone();
                    self.resend(&edges, node, ctx);
                } else {
                    return false;
                }
            },
            @else _other => {
                return false;
            }
        );
        true
    }

    fn on_install(&mut self, node: &mut NodeInner, ctx: &mut Ctx) {
        let ack = BaselineAck {
            region: node.cfg.region,
            slot: node.cfg.slot,
        };
        node.send_controller(ctx, crate::msgs::wire::CONTROL, ack);
    }

    fn preserved_bytes(&self, node: &NodeInner) -> u64 {
        let _ = node;
        self.retention.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsps::tuple::value;
    use simkernel::SimTime;

    #[test]
    fn retention_accumulates_and_trims() {
        let mut s = UpstreamScheme::new(SimDuration::from_secs(10));
        assert_eq!(s.name(), "upstream-backup");
        s.retention.retain(
            EdgeId(0),
            SimTime::from_secs(1),
            Tuple::new(1, SimTime::ZERO, 100, value(())),
        );
        s.retention.retain(
            EdgeId(0),
            SimTime::from_secs(20),
            Tuple::new(2, SimTime::ZERO, 50, value(())),
        );
        assert_eq!(s.retention.bytes(), 150);
        s.retention.trim_before(SimTime::from_secs(15));
        assert_eq!(s.retention.bytes(), 50);
    }
}
