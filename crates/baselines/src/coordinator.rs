//! The per-deployment coordinator for baseline schemes.
//!
//! Plays the controller's role for rep-2 / local / dist-n: broadcasts
//! checkpoint ticks, pings source nodes, receives failure reports, and
//! drives the scheme-specific recovery (rep-2 takeover, dist-n state
//! fetch + retained replay). `base` and `local` have no recovery — any
//! failure stops the region (they appear only in fault-free
//! experiments, plus rep-2's >1-failure and dist-n's >n-failure cases
//! which the paper shows as truncated curves in Fig 9).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use dsps::graph::{EdgeId, OpId, QueryGraph};
use dsps::node::{Ping, Pong, ReportDead, UpdateRouting};
use simkernel::{impl_actor_any, Actor, ActorId, Ctx, Event, EventBox, SimDuration, SimTime};
use simnet::cellular::{CellRx, CellSend};
use simnet::stats::TrafficClass;
use simnet::{payload, payload_as};

use crate::dist::peers_of;
use crate::msgs::*;

/// Which baseline this coordinator drives.
#[derive(Clone)]
pub enum BaselineKind {
    /// No fault tolerance.
    Base,
    /// Active standby over a duplicated graph.
    Rep2 {
        /// `flow_of[op]` from [`crate::rep2::duplicate_graph`].
        flow_of: Arc<Vec<u8>>,
    },
    /// Local checkpointing (upper bound; no recovery).
    Local,
    /// Distributed checkpointing to `n` peers.
    Dist {
        /// Copies per checkpoint.
        n: u32,
    },
    /// Upstream backup (Hwang'05): no checkpoints; on a failure the
    /// upstream neighbor re-hosts the failed operators and replays its
    /// retained outputs. Single-failure only.
    Upstream,
}

impl BaselineKind {
    /// Scheme label for reports.
    pub fn label(&self) -> String {
        match self {
            BaselineKind::Base => "base".into(),
            BaselineKind::Rep2 { .. } => "rep-2".into(),
            BaselineKind::Local => "local".into(),
            BaselineKind::Dist { n } => format!("dist-{n}"),
            BaselineKind::Upstream => "upstream".into(),
        }
    }
}

/// Coordinator parameters (paper-matched defaults).
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Checkpoint period.
    pub ckpt_period: SimDuration,
    /// First tick offset.
    pub ckpt_offset: SimDuration,
    /// Source ping period.
    pub ping_period: SimDuration,
    /// Ping timeout.
    pub ping_timeout: SimDuration,
    /// Burst gather window.
    pub gather_window: SimDuration,
    /// Checkpoint ticks on/off.
    pub checkpoints_enabled: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            ckpt_period: SimDuration::from_secs(300),
            ckpt_offset: SimDuration::from_secs(60),
            ping_period: SimDuration::from_secs(30),
            ping_timeout: SimDuration::from_secs(10),
            gather_window: SimDuration::from_secs(2),
            checkpoints_enabled: true,
        }
    }
}

/// One region as the coordinator sees it.
pub struct BaselineRegionSpec {
    /// Query network (already duplicated for rep-2).
    pub graph: Arc<QueryGraph>,
    /// Initial op→slot assignment.
    pub op_slot: Vec<u32>,
    /// Phone actor per slot.
    pub slot_actors: Vec<ActorId>,
}

struct BRegion {
    spec: BaselineRegionSpec,
    op_slot: Vec<u32>,
    alive: Vec<bool>,
    version: u64,
    stopped: bool,
    pending: BTreeSet<u32>,
    recover_scheduled: bool,
    recovering: bool,
    recovery_started: SimTime,
    recovery_failures: usize,
    outstanding_acks: BTreeSet<u32>,
    flow_broken: [bool; 2],
    primary: u8,
}

impl BRegion {
    fn hosting_slots(&self) -> BTreeSet<u32> {
        self.op_slot
            .iter()
            .copied()
            .filter(|&s| s != u32::MAX)
            .collect()
    }
    fn active_slots(&self) -> Vec<u32> {
        (0..self.alive.len() as u32)
            .filter(|&s| self.alive[s as usize])
            .collect()
    }
    fn idle_active_slots(&self) -> Vec<u32> {
        let hosting = self.hosting_slots();
        self.active_slots()
            .into_iter()
            .filter(|s| !hosting.contains(s))
            .collect()
    }
    fn ops_on(&self, slot: u32) -> Vec<OpId> {
        self.op_slot
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == slot)
            .map(|(i, _)| OpId(i as u32))
            .collect()
    }
    #[allow(dead_code)]
    fn source_slots(&self) -> BTreeSet<u32> {
        self.spec
            .graph
            .sources()
            .iter()
            .map(|&op| self.op_slot[op.index()])
            .filter(|&s| s != u32::MAX)
            .collect()
    }
}

impl BaselineCoordinator {
    /// Send a tagged state-ship request; a failed send retries with the
    /// next surviving holder.
    fn send_ship(
        &mut self,
        region: usize,
        dst: ActorId,
        ship: ShipStateTo,
        holder: u32,
        ctx: &mut Ctx,
    ) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.ship_tags.insert(tag, (region, ship, holder));
        let src = ctx.self_id();
        let cell = self.cell;
        ctx.send(
            cell,
            CellSend {
                src,
                dst,
                class: TrafficClass::Control,
                bytes: wire::CONTROL,
                tag,
                payload: Some(payload(ship)),
            },
        );
    }
}

fn holder_of(plan: &[(u32, u32, u32)], failed: u32) -> u32 {
    plan.iter()
        .find(|&&(f, _, _)| f == failed)
        .map(|&(_, _, h)| h)
        .unwrap_or(u32::MAX)
}

/// Startup trigger.
#[derive(Debug, Clone, Copy)]
pub struct Start;

#[derive(Debug, Clone, Copy)]
enum BTimer {
    Tick { region: usize },
    Ping,
    PingDeadline { round: u64 },
    Recover { region: usize },
}

/// Recovery episode record.
#[derive(Debug, Clone, Copy)]
pub struct BaselineRecovery {
    /// Region.
    pub region: usize,
    /// Burst size.
    pub failures: usize,
    /// Detection time.
    pub started: SimTime,
    /// Resumption time.
    pub finished: SimTime,
}

/// The coordinator actor.
pub struct BaselineCoordinator {
    cfg: CoordinatorConfig,
    kind: BaselineKind,
    cell: ActorId,
    regions: Vec<BRegion>,
    ping_round: u64,
    ping_outstanding: BTreeMap<u64, BTreeSet<(usize, u32)>>,
    next_tag: u64,
    ship_tags: BTreeMap<u64, (usize, ShipStateTo, u32)>, // tag -> (region, ship, holder)
    /// Regions stopped (unrecoverable).
    pub stops: u64,
    /// rep-2 primary flips.
    pub takeovers: u64,
    /// Completed recoveries.
    pub recoveries: Vec<BaselineRecovery>,
}

impl BaselineCoordinator {
    /// Build over the given regions.
    pub fn new(
        cfg: CoordinatorConfig,
        kind: BaselineKind,
        cell: ActorId,
        specs: Vec<BaselineRegionSpec>,
    ) -> Self {
        let regions = specs
            .into_iter()
            .map(|spec| BRegion {
                op_slot: spec.op_slot.clone(),
                alive: vec![true; spec.slot_actors.len()],
                version: 0,
                stopped: false,
                pending: BTreeSet::new(),
                recover_scheduled: false,
                recovering: false,
                recovery_started: SimTime::ZERO,
                recovery_failures: 0,
                outstanding_acks: BTreeSet::new(),
                flow_broken: [false; 2],
                primary: 0,
                spec,
            })
            .collect();
        BaselineCoordinator {
            cfg,
            kind,
            cell,
            regions,
            ping_round: 0,
            ping_outstanding: BTreeMap::new(),
            next_tag: 1,
            ship_tags: BTreeMap::new(),
            stops: 0,
            takeovers: 0,
            recoveries: Vec::new(),
        }
    }

    /// Is the region stopped?
    pub fn is_stopped(&self, region: usize) -> bool {
        self.regions[region].stopped
    }

    fn send_ctl(&mut self, ctx: &mut Ctx, dst: ActorId, bytes: u64, ev: impl Event) {
        let src = ctx.self_id();
        let cell = self.cell;
        ctx.send(
            cell,
            CellSend {
                src,
                dst,
                class: TrafficClass::Control,
                bytes,
                tag: 0,
                payload: Some(payload(ev)),
            },
        );
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.cfg.checkpoints_enabled
            && !matches!(self.kind, BaselineKind::Base | BaselineKind::Upstream)
        {
            for region in 0..self.regions.len() {
                let me = ctx.self_id();
                ctx.send_in(self.cfg.ckpt_offset, me, BTimer::Tick { region });
            }
        }
        let me = ctx.self_id();
        ctx.send_in(self.cfg.ping_period, me, BTimer::Ping);
    }

    fn on_tick(&mut self, region: usize, ctx: &mut Ctx) {
        let me = ctx.self_id();
        ctx.send_in(self.cfg.ckpt_period, me, BTimer::Tick { region });
        let rt = &mut self.regions[region];
        if rt.stopped || rt.recovering {
            return;
        }
        rt.version += 1;
        let version = rt.version;
        let targets: Vec<ActorId> = rt
            .hosting_slots()
            .into_iter()
            .filter(|&s| rt.alive[s as usize])
            .map(|s| rt.spec.slot_actors[s as usize])
            .collect();
        for dst in targets {
            self.send_ctl(ctx, dst, wire::CONTROL, CkptTick { version });
        }
    }

    fn on_ping(&mut self, ctx: &mut Ctx) {
        let me = ctx.self_id();
        ctx.send_in(self.cfg.ping_period, me, BTimer::Ping);
        self.ping_round += 1;
        let round = self.ping_round;
        let mut outstanding = BTreeSet::new();
        let mut targets = Vec::new();
        for (r, rt) in self.regions.iter().enumerate() {
            if rt.stopped {
                continue;
            }
            // The baseline coordinator heartbeats every hosting node
            // (server-style schemes assume cluster heartbeats); without
            // this, a node whose upstream also died is undetectable.
            for s in rt.hosting_slots() {
                if rt.alive[s as usize] {
                    outstanding.insert((r, s));
                    targets.push(rt.spec.slot_actors[s as usize]);
                }
            }
        }
        if outstanding.is_empty() {
            return;
        }
        self.ping_outstanding.insert(round, outstanding);
        for dst in targets {
            self.send_ctl(ctx, dst, wire::PING_BYTES, Ping { nonce: round });
        }
        let me = ctx.self_id();
        ctx.send_in(self.cfg.ping_timeout, me, BTimer::PingDeadline { round });
    }

    fn note_failure(&mut self, region: usize, slot: u32, ctx: &mut Ctx) {
        let kind = self.kind.clone();
        let rt = &mut self.regions[region];
        if rt.stopped || !rt.alive[slot as usize] {
            return;
        }
        ctx.count("bl.failures_noted", 1);
        rt.alive[slot as usize] = false;
        match kind {
            BaselineKind::Base | BaselineKind::Local => {
                // No recovery path: the region is lost.
                rt.stopped = true;
                self.stops += 1;
                ctx.count("bl.region_stops", 1);
            }
            BaselineKind::Rep2 { flow_of } => {
                let ops = rt.ops_on(slot);
                if ops.is_empty() {
                    return; // idle phone
                }
                let flow = flow_of[ops[0].index()];
                if rt.flow_broken[(1 - flow) as usize] {
                    // The other flow is already broken: game over.
                    rt.stopped = true;
                    self.stops += 1;
                    ctx.count("bl.region_stops", 1);
                    return;
                }
                if rt.flow_broken[flow as usize] {
                    return; // redundant failure in an already-dead flow
                }
                rt.flow_broken[flow as usize] = true;
                let started = ctx.now();
                if flow == rt.primary {
                    rt.primary = 1 - flow;
                    let new_primary = rt.primary;
                    let targets: Vec<ActorId> = rt
                        .active_slots()
                        .into_iter()
                        .map(|s| rt.spec.slot_actors[s as usize])
                        .collect();
                    self.takeovers += 1;
                    for dst in targets {
                        self.send_ctl(ctx, dst, wire::CONTROL, SetPrimary { flow: new_primary });
                    }
                    self.recoveries.push(BaselineRecovery {
                        region,
                        failures: 1,
                        started,
                        finished: ctx.now(),
                    });
                }
            }
            BaselineKind::Dist { .. } => {
                let rt = &mut self.regions[region];
                rt.pending.insert(slot);
                if !rt.recover_scheduled {
                    rt.recover_scheduled = true;
                    if rt.pending.len() == 1 {
                        rt.recovery_started = ctx.now();
                    }
                    let me = ctx.self_id();
                    ctx.send_in(self.cfg.gather_window, me, BTimer::Recover { region });
                }
            }
            BaselineKind::Upstream => {
                self.upstream_takeover(region, slot, ctx);
            }
        }
    }

    /// Upstream backup: move the failed node's operators onto their
    /// upstream neighbor (fresh state) and replay retained outputs into
    /// them. A second failure is fatal ("it only handles single node
    /// failure").
    fn upstream_takeover(&mut self, region: usize, slot: u32, ctx: &mut Ctx) {
        let started = ctx.now();
        let plan = {
            let rt = &mut self.regions[region];
            if rt.recovering {
                // Second failure while rebuilding: game over.
                rt.stopped = true;
                self.stops += 1;
                return;
            }
            let ops = rt.ops_on(slot);
            if ops.is_empty() {
                return;
            }
            // Host on the upstream neighbor of the first failed op; fall
            // back to any alive slot.
            let graph = Arc::clone(&rt.spec.graph);
            // The retained outputs live ONLY on the upstream neighbor;
            // if it is dead too, nothing can rebuild the state.
            let upstream = ops
                .iter()
                .flat_map(|&op| graph.op(op).in_edges.clone())
                .map(|e| rt.op_slot[graph.edge(e).from.index()])
                .find(|&s| s != slot && s != u32::MAX && rt.alive[s as usize]);
            let Some(host) = upstream else {
                rt.stopped = true;
                self.stops += 1;
                return;
            };
            for s in rt.op_slot.iter_mut() {
                if *s == slot {
                    *s = host;
                }
            }
            rt.recovering = true;
            rt.recovery_started = started;
            rt.recovery_failures = 1;
            rt.outstanding_acks = [host].into_iter().collect();
            Some((host, rt.ops_on(host)))
        };
        let Some((host, host_ops)) = plan else { return };
        let (routing, targets, install, dst) = {
            let rt = &self.regions[region];
            (
                UpdateRouting {
                    op_slot: Some(rt.op_slot.clone()),
                    slot_actors: Some(rt.spec.slot_actors.clone()),
                },
                rt.active_slots()
                    .into_iter()
                    .map(|s| rt.spec.slot_actors[s as usize])
                    .collect::<Vec<_>>(),
                dsps::node::Install {
                    ops: host_ops,
                    states: dsps::node::InstallStates::Fresh,
                    op_slot: rt.op_slot.clone(),
                    slot_actors: rt.spec.slot_actors.clone(),
                    ready_in: SimDuration::from_millis(500),
                },
                rt.spec.slot_actors[host as usize],
            )
        };
        for t in targets {
            self.send_ctl(ctx, t, wire::CONTROL, routing.clone());
        }
        self.send_ctl(ctx, dst, wire::CONTROL, install);
        ctx.count("bl.upstream_takeovers", 1);
    }

    fn on_recover(&mut self, region: usize, ctx: &mut Ctx) {
        ctx.count("bl.recover_runs", 1);
        let BaselineKind::Dist { n } = self.kind else {
            return;
        };
        let (failed, version) = {
            let rt = &mut self.regions[region];
            rt.recover_scheduled = false;
            if rt.stopped {
                rt.pending.clear();
                return;
            }
            let failed: Vec<u32> = std::mem::take(&mut rt.pending).into_iter().collect();
            if failed.is_empty() {
                return;
            }
            rt.recovering = true;
            rt.recovery_failures = failed.len();
            (failed, rt.version)
        };
        let hosting_failed: Vec<u32> = {
            let rt = &self.regions[region];
            failed
                .iter()
                .copied()
                .filter(|&s| !rt.ops_on(s).is_empty())
                .collect()
        };
        if hosting_failed.is_empty() {
            self.regions[region].recovering = false;
            return;
        }
        // dist-n tolerates at most n simultaneous failures.
        if hosting_failed.len() as u32 > n || version == 0 {
            let rt = &mut self.regions[region];
            rt.stopped = true;
            rt.recovering = false;
            self.stops += 1;
            ctx.count("bl.region_stops", 1);
            return;
        }
        // Pick replacements (idle preferred, then spread over healthy
        // hosting survivors) + surviving state holders.
        let mut plan: Vec<(u32, u32, u32)> = Vec::new(); // (failed, replacement, holder)
        {
            let rt = &self.regions[region];
            let total = rt.spec.slot_actors.len() as u32;
            let mut idle = rt.idle_active_slots();
            let survivors: Vec<u32> = rt
                .active_slots()
                .into_iter()
                .filter(|s| !idle.contains(s))
                .collect();
            let mut rr = 0usize;
            for &f in &hosting_failed {
                let repl = if let Some(r) = idle.pop() {
                    r
                } else if !survivors.is_empty() {
                    let r = survivors[rr % survivors.len()];
                    rr += 1;
                    r
                } else {
                    plan.clear();
                    break;
                };
                let Some(holder) = peers_of(f, n, total)
                    .into_iter()
                    .find(|&p| rt.alive[p as usize])
                else {
                    plan.clear();
                    break;
                };
                plan.push((f, repl, holder));
            }
        }
        if plan.is_empty() {
            let rt = &mut self.regions[region];
            rt.stopped = true;
            rt.recovering = false;
            self.stops += 1;
            ctx.count("bl.region_stops", 1);
            return;
        }
        // Apply the new assignment and publish routing.
        {
            let rt = &mut self.regions[region];
            for &(f, r, _) in &plan {
                for s in rt.op_slot.iter_mut() {
                    if *s == f {
                        *s = r;
                    }
                }
            }
        }
        let (routing_targets, routing) = {
            let rt = &self.regions[region];
            (
                rt.active_slots()
                    .into_iter()
                    .map(|s| rt.spec.slot_actors[s as usize])
                    .collect::<Vec<_>>(),
                UpdateRouting {
                    op_slot: Some(rt.op_slot.clone()),
                    slot_actors: Some(rt.spec.slot_actors.clone()),
                },
            )
        };
        for dst in routing_targets {
            self.send_ctl(ctx, dst, wire::CONTROL, routing.clone());
        }
        // Ask each holder to ship the failed node's state to the
        // replacement over WiFi.
        let ships: Vec<(ActorId, ShipStateTo)> = {
            let rt = &self.regions[region];
            plan.iter()
                .map(|&(f, r, holder)| {
                    (
                        rt.spec.slot_actors[holder as usize],
                        ShipStateTo {
                            failed_slot: f,
                            version,
                            to: rt.spec.slot_actors[r as usize],
                            to_slot: r,
                        },
                    )
                })
                .collect()
        };
        ctx.count("bl.ships", ships.len() as u64);
        for (dst, ship) in ships {
            let holder = holder_of(&plan, ship.failed_slot);
            self.send_ship(region, dst, ship, holder, ctx);
        }
        self.regions[region].outstanding_acks = plan.iter().map(|&(_, r, _)| r).collect();
        // Retry guard: if acks don't arrive (e.g. the state holder was
        // itself dead but not yet detected), re-run recovery.
        let me = ctx.self_id();
        ctx.send_in(
            SimDuration::from_secs(30),
            me,
            BTimer::Recover {
                region: region + 10_000,
            },
        );
    }

    /// Ack-deadline retry: re-queue still-dead hosting slots.
    fn on_ack_deadline(&mut self, region: usize, ctx: &mut Ctx) {
        let need_retry = {
            let rt = &mut self.regions[region];
            if !rt.recovering || rt.stopped {
                return;
            }
            rt.recovering = false;
            rt.outstanding_acks.clear();
            let stuck: Vec<u32> = rt
                .hosting_slots()
                .into_iter()
                .filter(|&s| !rt.alive[s as usize])
                .collect();
            for s in &stuck {
                rt.pending.insert(*s);
            }
            !stuck.is_empty()
        };
        if need_retry {
            let me = ctx.self_id();
            ctx.send_in(self.cfg.gather_window, me, BTimer::Recover { region });
        }
    }

    /// A rebooted phone re-registered: mark alive; if it still owns ops
    /// (no recovery ran), reinstall from its own flash copy.
    fn on_register(&mut self, m: dsps::node::RegisterNode, ctx: &mut Ctx) {
        let region = m.region;
        let (reinstall, version) = {
            let rt = &mut self.regions[region];
            rt.alive[m.slot as usize] = true;
            (!rt.ops_on(m.slot).is_empty() && !rt.recovering, rt.version)
        };
        if !reinstall {
            return;
        }
        let (install, dst) = {
            let rt = &mut self.regions[region];
            rt.recovering = true;
            rt.recovery_started = ctx.now();
            rt.recovery_failures = 1;
            rt.outstanding_acks = [m.slot].into_iter().collect();
            let ops = rt.ops_on(m.slot);
            let states = if version > 0 {
                dsps::node::InstallStates::FromLocalStore { version }
            } else {
                dsps::node::InstallStates::Fresh
            };
            (
                dsps::node::Install {
                    ops,
                    states,
                    op_slot: rt.op_slot.clone(),
                    slot_actors: rt.spec.slot_actors.clone(),
                    ready_in: SimDuration::from_secs(1),
                },
                rt.spec.slot_actors[m.slot as usize],
            )
        };
        self.send_ctl(ctx, dst, wire::CONTROL, install);
        let me = ctx.self_id();
        ctx.send_in(
            SimDuration::from_secs(30),
            me,
            BTimer::Recover {
                region: region + 10_000,
            },
        );
    }

    fn on_ack(&mut self, m: BaselineAck, ctx: &mut Ctx) {
        let region = m.region;
        let done = {
            let rt = &mut self.regions[region];
            rt.outstanding_acks.remove(&m.slot);
            rt.recovering && rt.outstanding_acks.is_empty()
        };
        if !done {
            return;
        }
        // All replacements installed: upstream nodes replay retained
        // tuples into the recovered operators.
        let resends: Vec<(ActorId, Vec<EdgeId>)> = {
            let rt = &mut self.regions[region];
            rt.recovering = false;
            let graph = Arc::clone(&rt.spec.graph);
            let recovered_ops: Vec<OpId> = rt
                .outstanding_acks
                .iter()
                .flat_map(|&s| rt.ops_on(s))
                .collect();
            // outstanding_acks is empty now; recompute from the plan's
            // replacements = slots that just acked. Use all ops whose
            // slot just acked: approximate by ops on m.slot.
            let mut recovered = recovered_ops;
            recovered.extend(rt.ops_on(m.slot));
            let mut per_slot: BTreeMap<u32, Vec<EdgeId>> = BTreeMap::new();
            for &op in &recovered {
                for &e in &graph.op(op).in_edges {
                    let from = graph.edge(e).from;
                    let from_slot = rt.op_slot[from.index()];
                    if from_slot != u32::MAX && from_slot != rt.op_slot[op.index()] {
                        per_slot.entry(from_slot).or_default().push(e);
                    }
                }
            }
            per_slot
                .into_iter()
                .filter(|(s, _)| rt.alive[*s as usize])
                .map(|(s, edges)| (rt.spec.slot_actors[s as usize], edges))
                .collect()
        };
        for (dst, edges) in resends {
            self.send_ctl(ctx, dst, wire::CONTROL, ResendRetained { edges });
        }
        // Authoritative routing broadcast: overlapping recovery flows
        // converge (nodes unhost ops that moved away).
        let (routing, targets) = {
            let rt = &self.regions[region];
            (
                UpdateRouting {
                    op_slot: Some(rt.op_slot.clone()),
                    slot_actors: Some(rt.spec.slot_actors.clone()),
                },
                rt.active_slots()
                    .into_iter()
                    .map(|s| rt.spec.slot_actors[s as usize])
                    .collect::<Vec<ActorId>>(),
            )
        };
        for dst in targets {
            self.send_ctl(ctx, dst, wire::CONTROL, routing.clone());
        }
        let rt = &mut self.regions[region];
        self.recoveries.push(BaselineRecovery {
            region,
            failures: rt.recovery_failures,
            started: rt.recovery_started,
            finished: ctx.now(),
        });
        rt.recovery_started = SimTime::ZERO;
        ctx.count("bl.recoveries", 1);
    }
}

impl Actor for BaselineCoordinator {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        let ev = match ev.downcast::<CellRx>() {
            Ok(rx) => {
                let p = rx.payload.clone();
                if let Some(m) = payload_as::<Pong>(&p) {
                    if let Some(out) = self.ping_outstanding.get_mut(&m.nonce) {
                        out.remove(&(m.region, m.slot));
                    }
                } else if let Some(m) = payload_as::<ReportDead>(&p) {
                    ctx.count("bl.reports", 1);
                    self.note_failure(m.region, m.slot, ctx);
                } else if let Some(m) = payload_as::<BaselineAck>(&p) {
                    ctx.count("bl.acks", 1);
                    self.on_ack(*m, ctx);
                } else if let Some(m) = payload_as::<dsps::node::RegisterNode>(&p) {
                    self.on_register(*m, ctx);
                }
                return;
            }
            Err(e) => e,
        };
        simkernel::match_event!(ev,
            _s: Start => { self.on_start(ctx); },
            f: simnet::TxFailed => {
                if let Some((region, ship, holder)) = self.ship_tags.remove(&f.tag) {
                    // The chosen state holder is dead too: mark it and
                    // retry the ship with the next surviving peer of the
                    // original failed slot.
                    let BaselineKind::Dist { n } = self.kind else {
                        return;
                    };
                    let next = {
                        let rt = &mut self.regions[region];
                        if holder != u32::MAX {
                            rt.alive[holder as usize] = false;
                        }
                        let total = rt.spec.slot_actors.len() as u32;
                        peers_of(ship.failed_slot, n, total)
                            .into_iter()
                            .find(|&p| rt.alive[p as usize])
                            .map(|p| (p, rt.spec.slot_actors[p as usize]))
                    };
                    match next {
                        Some((p, dst)) => self.send_ship(region, dst, ship, p, ctx),
                        None => {
                            // All copies perished: unrecoverable.
                            let rt = &mut self.regions[region];
                            rt.stopped = true;
                            rt.recovering = false;
                            self.stops += 1;
                        }
                    }
                }
            },
            d: simnet::TxDone => {
                self.ship_tags.remove(&d.tag);
            },
            t: BTimer => {
                match t {
                    BTimer::Tick { region } => self.on_tick(region, ctx),
                    BTimer::Ping => self.on_ping(ctx),
                    BTimer::PingDeadline { round } => {
                        if let Some(unanswered) = self.ping_outstanding.remove(&round) {
                            for (region, slot) in unanswered {
                                self.note_failure(region, slot, ctx);
                            }
                        }
                    }
                    BTimer::Recover { region } => {
                        if region >= 10_000 {
                            self.on_ack_deadline(region - 10_000, ctx);
                        } else {
                            self.on_recover(region, ctx);
                        }
                    }
                }
            },
            @else _other => {}
        );
    }

    fn name(&self) -> String {
        format!("coordinator[{}]", self.kind.label())
    }

    impl_actor_any!();
}

pub use crate::msgs::wire;
