//! Synthetic camera frames.
//!
//! Real deployments shipped VGA JPEG frames (~tens–hundreds of KB).
//! The simulation separates the two things a frame does:
//!
//! * **network/storage cost** — `wire_bytes` (e.g. 128 KB), which is
//!   what the WiFi medium, preservation logs and checkpoints charge;
//! * **computation** — a small real pixel grid (default 64×48
//!   grayscale + hue plane) that the Haar counter and the SignalGuru
//!   filters genuinely process, with planted ground truth to verify
//!   kernel accuracy.

use simkernel::SimRng;

/// Traffic-light colors (SignalGuru ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LightColor {
    /// Red phase.
    Red,
    /// Yellow phase.
    Yellow,
    /// Green phase.
    Green,
}

impl LightColor {
    /// Hue-plane encoding of the color (synthetic hue values).
    pub fn hue(self) -> u8 {
        match self {
            LightColor::Red => 16,
            LightColor::Yellow => 48,
            LightColor::Green => 112,
        }
    }

    /// Decode a hue value back (tolerant).
    pub fn from_hue(h: u8) -> Option<LightColor> {
        match h {
            8..=24 => Some(LightColor::Red),
            40..=56 => Some(LightColor::Yellow),
            104..=120 => Some(LightColor::Green),
            _ => None,
        }
    }
}

/// A synthetic frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame sequence number (camera-local).
    pub seq: u64,
    /// Bytes the frame occupies on the network / in storage.
    pub wire_bytes: u64,
    /// Proxy resolution.
    pub w: usize,
    /// Proxy resolution.
    pub h: usize,
    /// Grayscale plane, row-major, `w*h` bytes.
    pub pixels: Vec<u8>,
    /// Hue plane (0 = colorless), row-major.
    pub hue: Vec<u8>,
    /// Ground truth: faces planted.
    pub truth_faces: u32,
    /// Ground truth: traffic light planted (with disc center x,y,r).
    pub truth_light: Option<(LightColor, usize, usize, usize)>,
}

impl Frame {
    /// Grayscale pixel at (x, y).
    pub fn px(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.w + x]
    }

    /// Hue at (x, y).
    pub fn hue_at(&self, x: usize, y: usize) -> u8 {
        self.hue[y * self.w + x]
    }
}

/// Face block edge length in proxy pixels (faces are planted on a
/// grid so each face lies entirely inside one quadrant).
pub const FACE: usize = 8;

/// Frame generator parameters.
#[derive(Debug, Clone)]
pub struct FrameGen {
    /// Proxy width (multiple of `2*FACE`).
    pub w: usize,
    /// Proxy height (multiple of `2*FACE`).
    pub h: usize,
    /// Wire size of each frame.
    pub wire_bytes: u64,
    /// Mean planted faces per frame (Poisson).
    pub mean_faces: f64,
    /// Background gray level.
    pub background: u8,
    /// Additive noise amplitude.
    pub noise: u8,
}

impl Default for FrameGen {
    fn default() -> Self {
        FrameGen {
            w: 64,
            h: 48,
            wire_bytes: 128 * 1024,
            mean_faces: 6.0,
            background: 200,
            noise: 10,
        }
    }
}

impl FrameGen {
    /// Generate a bus-stop frame with planted faces.
    pub fn faces_frame(&self, rng: &mut SimRng, seq: u64) -> Frame {
        let mut f = self.blank(rng, seq);
        let n = rng.poisson(self.mean_faces).min(self.max_faces() as u64) as u32;
        let mut cells: Vec<(usize, usize)> = self.face_cells();
        rng.shuffle(&mut cells);
        for &(cx, cy) in cells.iter().take(n as usize) {
            plant_face(&mut f, cx, cy);
        }
        f.truth_faces = n;
        f
    }

    /// Generate an intersection frame showing a traffic light at a
    /// random position (convenience wrapper; cameras that stay at one
    /// intersection should use [`FrameGen::light_frame_at`] with a
    /// fixed position, or the motion filter will reject the light).
    pub fn light_frame(&self, rng: &mut SimRng, seq: u64, color: LightColor) -> Frame {
        let r = 4usize;
        let x = rng.index(self.w - 4 * r) + 2 * r;
        let y = rng.index(self.h / 2 - 2 * r) + r + 2;
        self.light_frame_at(rng, seq, color, x, y)
    }

    /// Generate an intersection frame with the light at `(x, y)`.
    pub fn light_frame_at(
        &self,
        rng: &mut SimRng,
        seq: u64,
        color: LightColor,
        x: usize,
        y: usize,
    ) -> Frame {
        let mut f = self.blank(rng, seq);
        let r = 4usize;
        let x = x.clamp(2 * r, self.w - 2 * r - 1);
        let y = y.clamp(r + 2, self.h / 2);
        plant_light(&mut f, x, y, r, color);
        f.truth_light = Some((color, x, y, r));
        f
    }

    fn blank(&self, rng: &mut SimRng, seq: u64) -> Frame {
        let n = self.w * self.h;
        let mut pixels = vec![self.background; n];
        if self.noise > 0 {
            for p in pixels.iter_mut() {
                let d = rng.range_u64(0, 2 * self.noise as u64 + 1) as i16 - self.noise as i16;
                *p = (*p as i16 + d).clamp(0, 255) as u8;
            }
        }
        Frame {
            seq,
            wire_bytes: self.wire_bytes,
            w: self.w,
            h: self.h,
            pixels,
            hue: vec![0; n],
            truth_faces: 0,
            truth_light: None,
        }
    }

    /// Grid cells where faces may be planted (each fully inside one
    /// quadrant, with a 1px margin).
    fn face_cells(&self) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        let (qw, qh) = (self.w / 2, self.h / 2);
        for qy in 0..2 {
            for qx in 0..2 {
                let (ox, oy) = (qx * qw, qy * qh);
                let cols = (qw - 2) / (FACE + 2);
                let rows = (qh - 2) / (FACE + 2);
                for r in 0..rows {
                    for c in 0..cols {
                        v.push((ox + 1 + c * (FACE + 2), oy + 1 + r * (FACE + 2)));
                    }
                }
            }
        }
        v
    }

    /// Maximum faces that fit on the planting grid.
    pub fn max_faces(&self) -> usize {
        self.face_cells().len()
    }
}

/// Draw a synthetic "face": a mid-gray block with two dark eye dots in
/// the upper third and a lighter mouth band — exactly the contrast
/// structure the Haar-like features in [`crate::haar`] test for.
fn plant_face(f: &mut Frame, x0: usize, y0: usize) {
    for dy in 0..FACE {
        for dx in 0..FACE {
            let v = if dy < FACE / 3 {
                90 // brow region
            } else if dy < FACE / 2 {
                110
            } else {
                130 // mouth region is lighter
            };
            f.pixels[(y0 + dy) * f.w + (x0 + dx)] = v;
        }
    }
    // Eyes: two dark dots in the brow region.
    let ey = y0 + 1;
    for &ex in &[x0 + 1, x0 + FACE - 3] {
        f.pixels[ey * f.w + ex] = 20;
        f.pixels[ey * f.w + ex + 1] = 20;
        f.pixels[(ey + 1) * f.w + ex] = 25;
        f.pixels[(ey + 1) * f.w + ex + 1] = 25;
    }
}

/// Draw a bright colored disc (the lit lamp) plus a dark housing box.
fn plant_light(f: &mut Frame, cx: usize, cy: usize, r: usize, color: LightColor) {
    // Housing: dark rectangle around the lamp column.
    for dy in 0..(4 * r) {
        for dx in 0..(2 * r + 2) {
            let x = cx as isize - r as isize - 1 + dx as isize;
            let y = cy as isize - r as isize - 1 + dy as isize;
            if x >= 0 && (x as usize) < f.w && y >= 0 && (y as usize) < f.h {
                f.pixels[y as usize * f.w + x as usize] = 40;
            }
        }
    }
    // Lamp disc.
    let rr = (r * r) as isize;
    for dy in -(r as isize)..=(r as isize) {
        for dx in -(r as isize)..=(r as isize) {
            if dx * dx + dy * dy <= rr {
                let x = cx as isize + dx;
                let y = cy as isize + dy;
                if x >= 0 && (x as usize) < f.w && y >= 0 && (y as usize) < f.h {
                    let ix = y as usize * f.w + x as usize;
                    f.pixels[ix] = 250;
                    f.hue[ix] = color.hue();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faces_frame_plants_requested_density() {
        let gen = FrameGen::default();
        let mut rng = SimRng::new(42);
        let total: u32 = (0..200)
            .map(|i| gen.faces_frame(&mut rng, i).truth_faces)
            .sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 6.0).abs() < 0.6, "mean faces = {mean}");
    }

    #[test]
    fn faces_lie_inside_quadrants() {
        let gen = FrameGen::default();
        let cells = gen.face_cells();
        let (qw, qh) = (gen.w / 2, gen.h / 2);
        for (x, y) in cells {
            let quad_x = x / qw;
            let quad_y = y / qh;
            // The whole face block stays in the same quadrant.
            assert_eq!((x + FACE - 1) / qw, quad_x);
            assert_eq!((y + FACE - 1) / qh, quad_y);
        }
    }

    #[test]
    fn light_frame_has_colored_disc() {
        let gen = FrameGen {
            wire_bytes: 64 * 1024,
            ..FrameGen::default()
        };
        let mut rng = SimRng::new(7);
        let f = gen.light_frame(&mut rng, 0, LightColor::Green);
        let (color, x, y, _r) = f.truth_light.unwrap();
        assert_eq!(color, LightColor::Green);
        assert_eq!(f.hue_at(x, y), LightColor::Green.hue());
        assert_eq!(f.px(x, y), 250);
        assert_eq!(f.wire_bytes, 64 * 1024);
    }

    #[test]
    fn hue_codec_round_trips() {
        for c in [LightColor::Red, LightColor::Yellow, LightColor::Green] {
            assert_eq!(LightColor::from_hue(c.hue()), Some(c));
        }
        assert_eq!(LightColor::from_hue(200), None);
    }

    #[test]
    fn determinism_per_seed() {
        let gen = FrameGen::default();
        let mut a = SimRng::new(3);
        let mut b = SimRng::new(3);
        let fa = gen.faces_frame(&mut a, 5);
        let fb = gen.faces_frame(&mut b, 5);
        assert_eq!(fa.pixels, fb.pixels);
        assert_eq!(fa.truth_faces, fb.truth_faces);
    }
}
