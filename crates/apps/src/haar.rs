//! A small Haar-like cascade face counter — the BCP kernel
//! ("counts the number of passengers in the images using the
//! HaarTraining face detection algorithm", §II-B).
//!
//! Classic structure, miniaturized: an integral image gives O(1) box
//! sums; a cascade of three Haar-like stage tests (window darker than
//! background → brow darker than mouth → eye corners darkest) slides
//! over the frame; overlapping detections are suppressed greedily.
//! It genuinely detects the faces planted by [`crate::image::FrameGen`].

use crate::image::{Frame, FACE};

/// Integral image: `sums[y][x]` = Σ pixels in `[0,x) × [0,y)`.
pub struct IntegralImage {
    w: usize,
    sums: Vec<u64>,
}

impl IntegralImage {
    /// Build from a grayscale plane.
    pub fn new(pixels: &[u8], w: usize, h: usize) -> Self {
        assert_eq!(pixels.len(), w * h);
        let sw = w + 1;
        let mut sums = vec![0u64; sw * (h + 1)];
        for y in 0..h {
            let mut row = 0u64;
            for x in 0..w {
                row += pixels[y * w + x] as u64;
                sums[(y + 1) * sw + (x + 1)] = sums[y * sw + (x + 1)] + row;
            }
        }
        IntegralImage { w: sw, sums }
    }

    /// Sum of the box `[x0, x1) × [y0, y1)`.
    pub fn box_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> u64 {
        debug_assert!(x0 <= x1 && y0 <= y1);
        self.sums[y1 * self.w + x1] + self.sums[y0 * self.w + x0]
            - self.sums[y0 * self.w + x1]
            - self.sums[y1 * self.w + x0]
    }

    /// Mean gray level of a box (0 for empty boxes).
    pub fn box_mean(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        let area = (x1 - x0) * (y1 - y0);
        if area == 0 {
            return 0.0;
        }
        self.box_sum(x0, y0, x1, y1) as f64 / area as f64
    }
}

/// Cascade thresholds.
#[derive(Debug, Clone)]
pub struct Cascade {
    /// Stage 1: window mean must be below this (faces are darker than
    /// the bright bus-stop background).
    pub max_window_mean: f64,
    /// Stage 2: brow-region mean minus mouth-region mean must be below
    /// `-brow_contrast` (brow darker).
    pub brow_contrast: f64,
    /// Stage 3: eye-corner mean must be below this.
    pub max_eye_mean: f64,
}

impl Default for Cascade {
    fn default() -> Self {
        Cascade {
            max_window_mean: 150.0,
            brow_contrast: 10.0,
            max_eye_mean: 90.0,
        }
    }
}

/// One detection (window top-left).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Window x.
    pub x: usize,
    /// Window y.
    pub y: usize,
}

/// Count faces inside the sub-rectangle `[x0, x1) × [y0, y1)` of the
/// frame (a quadrant crop for the C0–C3 counters).
pub fn count_faces_in(
    frame: &Frame,
    cascade: &Cascade,
    x0: usize,
    y0: usize,
    x1: usize,
    y1: usize,
) -> u32 {
    detect_in(frame, cascade, x0, y0, x1, y1).len() as u32
}

/// Detect faces inside a sub-rectangle (window size = planted face
/// size; stride 1; greedy non-maximum suppression).
pub fn detect_in(
    frame: &Frame,
    cascade: &Cascade,
    x0: usize,
    y0: usize,
    x1: usize,
    y1: usize,
) -> Vec<Detection> {
    let ii = IntegralImage::new(&frame.pixels, frame.w, frame.h);
    let mut hits = Vec::new();
    if x1 <= x0 + FACE || y1 <= y0 + FACE {
        return hits;
    }
    let mut taken = vec![false; frame.w * frame.h];
    for y in y0..=(y1 - FACE) {
        for x in x0..=(x1 - FACE) {
            if taken[y * frame.w + x] {
                continue;
            }
            // Stage 1: overall darkness.
            let mean = ii.box_mean(x, y, x + FACE, y + FACE);
            if mean > cascade.max_window_mean {
                continue;
            }
            // Stage 2: brow (upper third) darker than mouth (lower half).
            let brow = ii.box_mean(x, y, x + FACE, y + FACE / 3);
            let mouth = ii.box_mean(x, y + FACE / 2, x + FACE, y + FACE);
            if brow - mouth > -cascade.brow_contrast {
                continue;
            }
            // Stage 3: BOTH eye corners must be dark (rejects windows
            // straddling two adjacent faces, where only one side has
            // an eye).
            let eye_l = ii.box_mean(x + 1, y + 1, x + 3, y + 3);
            let eye_r = ii.box_mean(x + FACE - 3, y + 1, x + FACE - 1, y + 3);
            if eye_l.max(eye_r) > cascade.max_eye_mean {
                continue;
            }
            hits.push(Detection { x, y });
            // Suppress every window position overlapping this hit.
            for sy in y.saturating_sub(FACE - 1)..(y + FACE).min(frame.h) {
                for sx in x.saturating_sub(FACE - 1)..(x + FACE).min(frame.w) {
                    taken[sy * frame.w + sx] = true;
                }
            }
        }
    }
    hits
}

/// Count faces in one quadrant (0..4, row-major) of the frame.
pub fn count_faces_quadrant(frame: &Frame, cascade: &Cascade, quadrant: usize) -> u32 {
    let (qw, qh) = (frame.w / 2, frame.h / 2);
    let (qx, qy) = (quadrant % 2, quadrant / 2);
    count_faces_in(
        frame,
        cascade,
        qx * qw,
        qy * qh,
        (qx + 1) * qw,
        (qy + 1) * qh,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::FrameGen;
    use simkernel::SimRng;

    #[test]
    fn integral_image_box_sums() {
        // 3x3 frame of ones.
        let ii = IntegralImage::new(&[1; 9], 3, 3);
        assert_eq!(ii.box_sum(0, 0, 3, 3), 9);
        assert_eq!(ii.box_sum(1, 1, 3, 3), 4);
        assert_eq!(ii.box_sum(0, 0, 1, 1), 1);
        assert_eq!(ii.box_sum(2, 2, 2, 2), 0);
        assert!((ii.box_mean(0, 0, 3, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_match_ground_truth() {
        let gen = FrameGen::default();
        let cascade = Cascade::default();
        let mut rng = SimRng::new(11);
        let mut total_truth = 0u32;
        let mut total_detected = 0u32;
        for seq in 0..50 {
            let f = gen.faces_frame(&mut rng, seq);
            total_truth += f.truth_faces;
            let detected: u32 = (0..4).map(|q| count_faces_quadrant(&f, &cascade, q)).sum();
            total_detected += detected;
        }
        assert!(total_truth > 100, "enough faces planted");
        let ratio = total_detected as f64 / total_truth as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "detected {total_detected} of {total_truth} (ratio {ratio})"
        );
    }

    #[test]
    fn empty_frame_detects_nothing() {
        let gen = FrameGen {
            mean_faces: 0.0,
            ..FrameGen::default()
        };
        let mut rng = SimRng::new(1);
        let f = gen.faces_frame(&mut rng, 0);
        let detected: u32 = (0..4)
            .map(|q| count_faces_quadrant(&f, &Cascade::default(), q))
            .sum();
        assert_eq!(detected, 0);
    }

    #[test]
    fn quadrant_counts_partition_the_frame() {
        let gen = FrameGen::default();
        let cascade = Cascade::default();
        let mut rng = SimRng::new(23);
        let f = gen.faces_frame(&mut rng, 0);
        let per_quadrant: u32 = (0..4).map(|q| count_faces_quadrant(&f, &cascade, q)).sum();
        let whole = count_faces_in(&f, &cascade, 0, 0, f.w, f.h);
        // Faces are planted wholly within quadrants, so the partition
        // counts at least as many as the whole-frame scan (NMS at
        // quadrant borders can only merge, never split).
        assert!(per_quadrant >= whole);
        assert!(per_quadrant <= whole + 2);
    }

    #[test]
    fn degenerate_rectangles() {
        let gen = FrameGen::default();
        let mut rng = SimRng::new(2);
        let f = gen.faces_frame(&mut rng, 0);
        assert_eq!(count_faces_in(&f, &Cascade::default(), 5, 5, 5, 5), 0);
        assert_eq!(count_faces_in(&f, &Cascade::default(), 0, 0, 4, 4), 0);
    }
}
