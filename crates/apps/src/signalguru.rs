//! SignalGuru (Fig 3).
//!
//! ```text
//!  S0 ──────────────────────────→ G
//!  S1 → C0 → A0 → M0 ─┐           ↑
//!     ↘ C1 → A1 → M1 ─┼→ V ───────┘→ P → K → (next intersection)
//!     ↘ C2 → A2 → M2 ─┘
//! ```
//!
//! `S1` round-robins camera frames over three filter chains
//! (color → shape → motion); `V` majority-votes recent detections;
//! `G` groups the vote with the previous intersection's prediction;
//! `P` (SVM) predicts the transition schedule; `K` publishes it.

use std::sync::Arc;

use dsps::graph::{OpKind, QueryGraph};
use dsps::operator::{op_state, OpState, Operator, Outputs};
use dsps::placement::Placement;
use dsps::tuple::{value, Tuple};
use simkernel::{SimDuration, SimRng};

use crate::calib::Calibration;
use crate::image::{Frame, FrameGen, LightColor};
use crate::svm::PhasePredictor;
use crate::vision::{color_filter, shape_filter, ColorBlob, MotionFilter, VotingFilter};
use crate::{AppBundle, FeedSpec};

// ---------------------------------------------------------------- messages

/// A camera frame.
#[derive(Debug, Clone)]
pub struct SgFrameMsg {
    /// Shared frame.
    pub frame: Arc<Frame>,
}

/// A color-filter hit (frame travels on for the shape stage).
#[derive(Debug, Clone)]
pub struct BlobMsg {
    /// Frame sequence.
    pub seq: u64,
    /// The blob.
    pub blob: ColorBlob,
    /// Shared frame.
    pub frame: Arc<Frame>,
}

/// A confirmed static detection.
#[derive(Debug, Clone, Copy)]
pub struct DetectionMsg {
    /// Frame sequence.
    pub seq: u64,
    /// Signal color.
    pub color: LightColor,
    /// Capture time (seconds).
    pub at_s: f64,
}

/// The voted (smoothed) signal state.
#[derive(Debug, Clone, Copy)]
pub struct VotedMsg {
    /// Frame sequence.
    pub seq: u64,
    /// Majority color.
    pub color: LightColor,
    /// Capture time.
    pub at_s: f64,
}

/// Vote grouped with the previous intersection's schedule.
#[derive(Debug, Clone, Copy)]
pub struct GroupedMsg {
    /// Frame sequence.
    pub seq: u64,
    /// This intersection's color.
    pub color: LightColor,
    /// Capture time.
    pub at_s: f64,
    /// Previous intersection's predicted remaining green (seconds).
    pub upstream_remaining_s: Option<f64>,
}

/// Published transition prediction.
#[derive(Debug, Clone, Copy)]
pub struct TransitionMsg {
    /// Current color.
    pub color: LightColor,
    /// Predicted seconds until the next transition.
    pub remaining_s: f64,
    /// Prediction time.
    pub at_s: f64,
}

// ---------------------------------------------------------------- operators

/// `S1`: camera source that round-robins frames over the three chains.
struct CameraDispatch {
    cost: SimDuration,
    next: usize,
}

#[derive(Debug, Clone)]
struct CameraDispatchState(usize);

impl Operator for CameraDispatch {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let port = self.next % 3;
        self.next += 1;
        out.emit(port, tuple.value.clone(), tuple.bytes);
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        8
    }
    fn snapshot(&self) -> OpState {
        op_state(CameraDispatchState(self.next))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<CameraDispatchState>() {
            self.next = s.0;
        }
    }
}

/// `S0`: previous-intersection relay (accepts upstream
/// `TransitionMsg`).
struct PrevIntersectionSource {
    cost: SimDuration,
}

impl Operator for PrevIntersectionSource {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        if tuple.value_as::<TransitionMsg>().is_some() {
            out.emit(0, tuple.value.clone(), tuple.bytes);
        }
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
}

/// `C`: color filter — the kernel really scans the hue plane.
struct ColorOp {
    cost: SimDuration,
    small_bytes: u64,
}

impl Operator for ColorOp {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(m) = tuple.value_as::<SgFrameMsg>() else {
            return;
        };
        if let Some(blob) = color_filter(&m.frame) {
            out.emit(
                0,
                value(BlobMsg {
                    seq: m.frame.seq,
                    blob,
                    frame: Arc::clone(&m.frame),
                }),
                self.small_bytes + m.frame.wire_bytes / 8, // blob + ROI crop
            );
        }
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
}

/// `A`: shape (circle/arrow) filter.
struct ShapeOp {
    cost: SimDuration,
}

impl Operator for ShapeOp {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(m) = tuple.value_as::<BlobMsg>() else {
            return;
        };
        if shape_filter(&m.frame, &m.blob) {
            out.emit(0, tuple.value.clone(), tuple.bytes);
        }
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
}

/// `M`: motion filter (lights don't move).
struct MotionOp {
    cost: SimDuration,
    filter: MotionFilter,
    state_padding: u64,
    small_bytes: u64,
}

#[derive(Debug, Clone)]
struct MotionOpState(Option<(f64, f64)>);

impl Operator for MotionOp {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(m) = tuple.value_as::<BlobMsg>() else {
            return;
        };
        if self.filter.is_static(&m.blob) {
            out.emit(
                0,
                value(DetectionMsg {
                    seq: m.seq,
                    color: m.blob.color,
                    at_s: tuple.entered.as_secs_f64(),
                }),
                self.small_bytes,
            );
        }
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        16 + self.state_padding
    }
    fn snapshot(&self) -> OpState {
        op_state(MotionOpState(self.filter.state()))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<MotionOpState>() {
            self.filter.restore(s.0);
        }
    }
}

/// `V`: voting filter over recent detections from all chains.
struct VoteOp {
    cost: SimDuration,
    filter: VotingFilter,
    state_padding: u64,
    small_bytes: u64,
}

#[derive(Debug, Clone)]
struct VoteOpState(Vec<LightColor>);

impl Operator for VoteOp {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(d) = tuple.value_as::<DetectionMsg>() else {
            return;
        };
        if let Some(color) = self.filter.vote(d.color) {
            out.emit(
                0,
                value(VotedMsg {
                    seq: d.seq,
                    color,
                    at_s: d.at_s,
                }),
                self.small_bytes,
            );
        }
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        self.filter.state().len() as u64 + 8 + self.state_padding
    }
    fn snapshot(&self) -> OpState {
        op_state(VoteOpState(self.filter.state()))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<VoteOpState>() {
            self.filter.restore(s.0.clone());
        }
    }
}

/// `G`: group the vote with the previous intersection's schedule
/// (port 0 = V, port 1 = S0).
struct GroupOp {
    cost: SimDuration,
    latest_upstream: Option<TransitionMsg>,
    state_padding: u64,
    small_bytes: u64,
}

#[derive(Debug, Clone)]
struct GroupOpState(Option<TransitionMsg>);

impl Operator for GroupOp {
    fn process(&mut self, tuple: &Tuple, port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        if port == 1 {
            if let Some(t) = tuple.value_as::<TransitionMsg>() {
                self.latest_upstream = Some(*t);
            }
            return;
        }
        let Some(v) = tuple.value_as::<VotedMsg>() else {
            return;
        };
        out.emit(
            0,
            value(GroupedMsg {
                seq: v.seq,
                color: v.color,
                at_s: v.at_s,
                upstream_remaining_s: self.latest_upstream.map(|t| t.remaining_s),
            }),
            self.small_bytes,
        );
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        32 + self.state_padding
    }
    fn snapshot(&self) -> OpState {
        op_state(GroupOpState(self.latest_upstream))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<GroupOpState>() {
            self.latest_upstream = s.0;
        }
    }
}

/// `P`: SVM-backed transition predictor.
struct SvmOp {
    cost: SimDuration,
    predictor: PhasePredictor,
    current: Option<(LightColor, f64)>, // (color, phase start)
    small_bytes: u64,
}

#[derive(Debug, Clone)]
struct SvmOpState {
    predictor: PhasePredictor,
    current: Option<(LightColor, f64)>,
}

impl Operator for SvmOp {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(g) = tuple.value_as::<GroupedMsg>() else {
            return;
        };
        // Phase-change bookkeeping: when the color flips, the previous
        // phase's duration becomes a training observation.
        match self.current {
            Some((color, _start)) if color == g.color => {}
            Some((color, start)) => {
                self.predictor.observe(color, (g.at_s - start).max(0.0));
                self.current = Some((g.color, g.at_s));
            }
            None => self.current = Some((g.color, g.at_s)),
        }
        let (color, start) = self.current.expect("set above");
        let in_phase = (g.at_s - start).max(0.0);
        let remaining = self.predictor.remaining(color, in_phase);
        out.emit(
            0,
            value(TransitionMsg {
                color,
                remaining_s: remaining,
                at_s: g.at_s,
            }),
            self.small_bytes,
        );
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        self.predictor.state_bytes() + 24
    }
    fn snapshot(&self) -> OpState {
        op_state(SvmOpState {
            predictor: self.predictor.clone(),
            current: self.current,
        })
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<SvmOpState>() {
            self.predictor = s.predictor.clone();
            self.current = s.current;
        }
    }
}

/// `K`: sink.
struct SinkOp {
    cost: SimDuration,
}

impl Operator for SinkOp {
    fn process(&mut self, _t: &Tuple, _port: usize, _out: &mut Outputs, _rng: &mut SimRng) {}
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
}

// ---------------------------------------------------------------- builder

/// Build the SignalGuru region bundle.
///
/// Placement (8 phones):
///
/// | slot | ops |
/// |---|---|
/// | 0 | S1 |
/// | 1 | S0 |
/// | 2 | C0, A0, M0 |
/// | 3 | C1, A1, M1 |
/// | 4 | C2, A2, M2 |
/// | 5 | V, G, P, K |
/// | 6, 7 | idle (checkpoint replicas / standby) |
pub fn build_signalguru(cal: &Calibration, slots: u32, first: bool) -> AppBundle {
    let c = cal.clone();
    let mut g = QueryGraph::new();

    let s0 = g.add_op("S0", OpKind::Source, {
        let c = c.clone();
        move || Box::new(PrevIntersectionSource { cost: c.cost_src })
    });
    let s1 = g.add_op("S1", OpKind::Source, {
        let c = c.clone();
        move || {
            Box::new(CameraDispatch {
                cost: c.cost_src,
                next: 0,
            })
        }
    });
    let mut chain_heads = Vec::new();
    let mut chain_tails = Vec::new();
    for i in 0..3 {
        let ci = g.add_op(format!("C{i}"), OpKind::Compute, {
            let c = c.clone();
            move || {
                Box::new(ColorOp {
                    cost: c.cost_color,
                    small_bytes: c.sg_small_bytes,
                }) as Box<dyn Operator>
            }
        });
        let ai = g.add_op(format!("A{i}"), OpKind::Compute, {
            let c = c.clone();
            move || Box::new(ShapeOp { cost: c.cost_shape }) as Box<dyn Operator>
        });
        let mi = g.add_op(format!("M{i}"), OpKind::Compute, {
            let c = c.clone();
            move || {
                Box::new(MotionOp {
                    cost: c.cost_motion,
                    filter: MotionFilter::new(3.0),
                    state_padding: c.state_m,
                    small_bytes: c.sg_small_bytes,
                }) as Box<dyn Operator>
            }
        });
        g.connect(ci, ai);
        g.connect(ai, mi);
        chain_heads.push(ci);
        chain_tails.push(mi);
    }
    let v = g.add_op("V", OpKind::Compute, {
        let c = c.clone();
        move || {
            Box::new(VoteOp {
                cost: c.cost_vote,
                filter: VotingFilter::new(5),
                state_padding: c.state_v,
                small_bytes: c.sg_small_bytes,
            })
        }
    });
    let grp = g.add_op("G", OpKind::Compute, {
        let c = c.clone();
        move || {
            Box::new(GroupOp {
                cost: c.cost_group,
                latest_upstream: None,
                state_padding: c.state_g,
                small_bytes: c.sg_small_bytes,
            })
        }
    });
    let p = g.add_op("P", OpKind::Compute, {
        let c = c.clone();
        move || {
            Box::new(SvmOp {
                cost: c.cost_svm,
                predictor: PhasePredictor::new([40.0, 5.0, 35.0], c.state_svm),
                current: None,
                small_bytes: c.sg_small_bytes,
            })
        }
    });
    let k = g.add_op("K", OpKind::Sink, {
        let c = c.clone();
        move || Box::new(SinkOp { cost: c.cost_k })
    });

    // S1 round-robin ports must connect in chain order.
    for &ci in &chain_heads {
        g.connect(s1, ci);
    }
    for &mi in &chain_tails {
        g.connect(mi, v);
    }
    g.connect(v, grp); // G port 0
    g.connect(s0, grp); // G port 1
    g.connect(grp, p);
    g.connect(p, k);
    g.validate().expect("SignalGuru graph valid");

    // Canonical 8-slot grouping, squeezed if the region is smaller
    // than the paper's testbed.
    let mut placement = Placement::new(&g, slots.max(8));
    placement.assign(s1, 0).assign(s0, 1);
    for (i, (&ci, &mi)) in chain_heads.iter().zip(&chain_tails).enumerate() {
        let slot = 2 + i as u32;
        placement.assign(ci, slot);
        placement.assign(dsps::graph::OpId(ci.0 + 1), slot); // A_i
        placement.assign(mi, slot);
    }
    placement
        .assign(v, 5)
        .assign(grp, 5)
        .assign(p, 5)
        .assign(k, 5);
    placement.validate(&g).expect("SignalGuru placement valid");
    let placement = crate::squeeze_placement(&placement, slots);

    // Camera feed: frames show the intersection's light, cycling
    // through its phases.
    let mut feeds = Vec::new();
    {
        let cal2 = c.clone();
        feeds.push(FeedSpec {
            op: s1,
            period: c.sg_frame_period,
            jitter: c.sg_frame_jitter,
            make_gen: Box::new(move || {
                let gen = FrameGen {
                    wire_bytes: cal2.sg_frame_bytes,
                    mean_faces: 0.0,
                    ..FrameGen::default()
                };
                let phases = cal2.sg_phase_s;
                let period_s = cal2.sg_frame_period.as_secs_f64();
                let bytes = cal2.sg_frame_bytes;
                // The light is fixed in the scene: pick its position
                // once per deployment, jitter ≤1 px per frame (camera
                // shake) — the motion filter's whole point.
                let mut fixed_pos: Option<(usize, usize)> = None;
                Box::new(move |rng, seq| {
                    let t = seq as f64 * period_s;
                    let cycle = phases.iter().sum::<f64>();
                    let mut pos = t % cycle;
                    let color = if pos < phases[0] {
                        LightColor::Red
                    } else {
                        pos -= phases[0];
                        if pos < phases[1] {
                            LightColor::Yellow
                        } else {
                            LightColor::Green
                        }
                    };
                    let (x0, y0) =
                        *fixed_pos.get_or_insert_with(|| (16 + rng.index(32), 8 + rng.index(12)));
                    let jx = x0 + rng.index(3) - 1;
                    let jy = y0 + rng.index(3) - 1;
                    let frame = Arc::new(gen.light_frame_at(rng, seq, color, jx, jy));
                    (value(SgFrameMsg { frame }), bytes)
                })
            }),
        });
    }
    let _ = first; // SignalGuru's first intersection has no extra feed.

    AppBundle {
        graph: Arc::new(g),
        placement,
        feeds,
        inter_region_input: s0,
        name: "signalguru",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_matches_fig3() {
        let bundle = build_signalguru(&Calibration::default(), 8, true);
        let g = &bundle.graph;
        assert_eq!(g.op_count(), 15, "S0,S1,C0-2,A0-2,M0-2,V,G,P,K");
        assert_eq!(g.sources().len(), 2);
        assert_eq!(g.sinks().len(), 1);
        let s1 = g.op_by_name("S1").unwrap();
        assert_eq!(g.op(s1).out_edges.len(), 3, "three filter chains");
        let v = g.op_by_name("V").unwrap();
        assert_eq!(g.op(v).in_edges.len(), 3);
        let grp = g.op_by_name("G").unwrap();
        assert_eq!(g.op(grp).in_edges.len(), 2);
    }

    #[test]
    fn chain_detects_planted_light_end_to_end() {
        let cal = Calibration::default();
        let bundle = build_signalguru(&cal, 8, true);
        let g = &bundle.graph;
        let mk = |name: &str| g.op(g.op_by_name(name).unwrap()).instantiate();
        let mut rng = SimRng::new(31);
        let mut c0 = mk("C0");
        let mut a0 = mk("A0");
        let mut m0 = mk("M0");
        let mut v = mk("V");
        let mut grp = mk("G");
        let mut p = mk("P");

        let gen = FrameGen {
            wire_bytes: cal.sg_frame_bytes,
            mean_faces: 0.0,
            ..FrameGen::default()
        };
        let mut out_color = None;
        for seq in 0..4 {
            let frame = Arc::new(gen.light_frame(&mut rng, seq, LightColor::Green));
            let t = Tuple::new(
                seq,
                simkernel::SimTime::from_secs(seq),
                cal.sg_frame_bytes,
                value(SgFrameMsg { frame }),
            );
            let mut out = Outputs::default();
            c0.process(&t, 0, &mut out, &mut rng);
            for (_, blob, bytes) in out.drain() {
                let t2 = Tuple::new(seq, t.entered, bytes, blob);
                let mut out2 = Outputs::default();
                a0.process(&t2, 0, &mut out2, &mut rng);
                for (_, passed, bytes) in out2.drain() {
                    let t3 = Tuple::new(seq, t.entered, bytes, passed);
                    let mut out3 = Outputs::default();
                    m0.process(&t3, 0, &mut out3, &mut rng);
                    for (_, det, bytes) in out3.drain() {
                        let t4 = Tuple::new(seq, t.entered, bytes, det);
                        let mut out4 = Outputs::default();
                        v.process(&t4, 0, &mut out4, &mut rng);
                        for (_, voted, bytes) in out4.drain() {
                            let t5 = Tuple::new(seq, t.entered, bytes, voted);
                            let mut out5 = Outputs::default();
                            grp.process(&t5, 0, &mut out5, &mut rng);
                            for (_, grouped, bytes) in out5.drain() {
                                let t6 = Tuple::new(seq, t.entered, bytes, grouped);
                                let mut out6 = Outputs::default();
                                p.process(&t6, 0, &mut out6, &mut rng);
                                for (_, trans, _) in out6.drain() {
                                    let tm = (*trans)
                                        .as_any()
                                        .downcast_ref::<TransitionMsg>()
                                        .unwrap()
                                        .to_owned();
                                    out_color = Some(tm);
                                }
                            }
                        }
                    }
                }
            }
        }
        // NOTE: the motion filter needs ≥1 prior observation, and the
        // planted light jitters per frame — but within tolerance the
        // chain should produce at least one prediction.
        let tm = out_color.expect("pipeline produced a transition prediction");
        assert_eq!(tm.color, LightColor::Green);
        assert!(tm.remaining_s >= 0.0 && tm.remaining_s < 120.0);
    }

    #[test]
    fn phase_generator_cycles_colors() {
        let cal = Calibration::default();
        let bundle = build_signalguru(&cal, 8, true);
        let mut gen = (bundle.feeds[0].make_gen)();
        let mut rng = SimRng::new(2);
        let mut colors = std::collections::BTreeSet::new();
        let cycle_frames =
            (cal.sg_phase_s.iter().sum::<f64>() / cal.sg_frame_period.as_secs_f64()).ceil() as u64;
        for seq in 0..cycle_frames + 2 {
            let (v, _) = gen(&mut rng, seq);
            let f = (*v).as_any().downcast_ref::<SgFrameMsg>().unwrap();
            let (c, ..) = f.frame.truth_light.unwrap();
            colors.insert(format!("{c:?}"));
        }
        assert_eq!(colors.len(), 3, "all three phases appear in one cycle");
    }

    #[test]
    fn placement_groups_chains() {
        let bundle = build_signalguru(&Calibration::default(), 8, true);
        let g = &bundle.graph;
        let p = &bundle.placement;
        for i in 0..3 {
            let c = g.op_by_name(&format!("C{i}")).unwrap();
            let a = g.op_by_name(&format!("A{i}")).unwrap();
            let m = g.op_by_name(&format!("M{i}")).unwrap();
            assert_eq!(p.slot_of(c), p.slot_of(a));
            assert_eq!(p.slot_of(a), p.slot_of(m));
        }
        assert_eq!(p.idle_slots(&bundle.graph), vec![6, 7]);
    }
}
