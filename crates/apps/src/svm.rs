//! A small linear SVM (Pegasos-style SGD) — SignalGuru's predictor
//! ("a Support Vector Machine is used to train and predict the
//! transition pattern", §II-B).
//!
//! SignalGuru's actual task is regression-like (predict the remaining
//! time of the current phase); the paper's SVM classifies transition
//! patterns. We implement a standard linear SVM (hinge loss, L2
//! regularization, SGD) and use a one-vs-rest pair of classifiers to
//! pick the phase-duration *bucket*, from which the remaining time is
//! estimated. The model weights are the operator state the checkpoint
//! protocols ship around.

use simkernel::SimRng;

/// A linear model `w · x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    /// Weights.
    pub w: Vec<f64>,
    /// Bias.
    pub b: f64,
    /// L2 regularization.
    pub lambda: f64,
    steps: u64,
}

impl LinearSvm {
    /// Zero-initialized model of `dim` features.
    pub fn new(dim: usize, lambda: f64) -> Self {
        LinearSvm {
            w: vec![0.0; dim],
            b: 0.0,
            lambda,
            steps: 0,
        }
    }

    /// Raw margin.
    pub fn margin(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.w.len());
        self.w.iter().zip(x).map(|(w, x)| w * x).sum::<f64>() + self.b
    }

    /// Class prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.margin(x) >= 0.0
    }

    /// One Pegasos SGD step with label `y ∈ {-1, +1}`.
    pub fn step(&mut self, x: &[f64], y: f64) {
        self.steps += 1;
        let eta = 1.0 / (self.lambda * self.steps as f64);
        let margin = self.margin(x);
        // L2 shrink.
        let shrink = 1.0 - eta * self.lambda;
        for w in self.w.iter_mut() {
            *w *= shrink;
        }
        if y * margin < 1.0 {
            for (w, &xi) in self.w.iter_mut().zip(x) {
                *w += eta * y * xi;
            }
            self.b += eta * y;
        }
    }

    /// Train for `epochs` passes over the data.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64], epochs: usize, rng: &mut SimRng) {
        assert_eq!(xs.len(), ys.len());
        let mut order: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                self.step(&xs[i], ys[i]);
            }
        }
    }

    /// Training accuracy.
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| self.predict(x) == (y > 0.0))
            .count();
        correct as f64 / xs.len().max(1) as f64
    }

    /// Serialized size of the model (state bytes).
    pub fn state_bytes(&self) -> u64 {
        (self.w.len() as u64 + 2) * 8
    }
}

/// Signal-phase schedule predictor: learns typical phase durations and
/// predicts time-to-transition from (color, time-in-phase).
#[derive(Debug, Clone)]
pub struct PhasePredictor {
    /// Per-color EWMA of observed phase durations (seconds):
    /// [red, yellow, green].
    pub duration_ewma: [f64; 3],
    /// EWMA factor.
    pub alpha: f64,
    /// SVM deciding "long cycle" vs "short cycle" from features.
    pub svm: LinearSvm,
    /// Synthetic extra state (model tables etc.) counted into
    /// `state_bytes`.
    pub state_padding: u64,
}

impl PhasePredictor {
    /// New predictor with prior durations.
    pub fn new(prior: [f64; 3], state_padding: u64) -> Self {
        PhasePredictor {
            duration_ewma: prior,
            alpha: 0.2,
            svm: LinearSvm::new(3, 0.01),
            state_padding,
        }
    }

    fn color_ix(c: crate::image::LightColor) -> usize {
        match c {
            crate::image::LightColor::Red => 0,
            crate::image::LightColor::Yellow => 1,
            crate::image::LightColor::Green => 2,
        }
    }

    /// Observe a completed phase.
    pub fn observe(&mut self, color: crate::image::LightColor, duration_s: f64) {
        let ix = Self::color_ix(color);
        self.duration_ewma[ix] =
            (1.0 - self.alpha) * self.duration_ewma[ix] + self.alpha * duration_s;
        // Online SVM update: long cycle if the phase ran over its prior.
        let x = self.features(color, duration_s);
        let y = if duration_s > self.duration_ewma[ix] {
            1.0
        } else {
            -1.0
        };
        self.svm.step(&x, y);
    }

    fn features(&self, color: crate::image::LightColor, t: f64) -> Vec<f64> {
        let ix = Self::color_ix(color);
        vec![t / 60.0, self.duration_ewma[ix] / 60.0, ix as f64 / 2.0]
    }

    /// Predict remaining seconds of the current phase.
    pub fn remaining(&self, color: crate::image::LightColor, in_phase_s: f64) -> f64 {
        let ix = Self::color_ix(color);
        let mut expect = self.duration_ewma[ix];
        // SVM nudges the estimate for long-cycle patterns.
        if self.svm.predict(&self.features(color, in_phase_s)) {
            expect *= 1.2;
        }
        (expect - in_phase_s).max(0.0)
    }

    /// State size (weights + EWMAs + padding).
    pub fn state_bytes(&self) -> u64 {
        self.svm.state_bytes() + 3 * 8 + self.state_padding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two Gaussian clouds, linearly separable.
    fn toy_data(rng: &mut SimRng, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let cx = if y > 0.0 { 2.0 } else { -2.0 };
            xs.push(vec![rng.normal(cx, 0.6), rng.normal(cx * 0.5, 0.6)]);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn svm_separates_gaussians() {
        let mut rng = SimRng::new(19);
        let (xs, ys) = toy_data(&mut rng, 400);
        let mut svm = LinearSvm::new(2, 0.01);
        svm.fit(&xs, &ys, 12, &mut rng);
        let acc = svm.accuracy(&xs, &ys);
        assert!(acc > 0.95, "accuracy = {acc}");
    }

    #[test]
    fn svm_margin_sign_matches_predict() {
        let mut svm = LinearSvm::new(2, 0.1);
        svm.w = vec![1.0, -1.0];
        svm.b = 0.5;
        assert!(svm.predict(&[1.0, 0.0]));
        assert!(!svm.predict(&[0.0, 2.0]));
        assert!((svm.margin(&[1.0, 0.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn predictor_converges_to_true_durations() {
        use crate::image::LightColor::*;
        let mut p = PhasePredictor::new([30.0, 5.0, 30.0], 0);
        for _ in 0..60 {
            p.observe(Red, 45.0);
            p.observe(Green, 35.0);
            p.observe(Yellow, 4.0);
        }
        assert!((p.duration_ewma[0] - 45.0).abs() < 1.0);
        assert!((p.duration_ewma[2] - 35.0).abs() < 1.0);
        // Early in a red phase, most of the 45 s should remain.
        let rem = p.remaining(Red, 5.0);
        assert!(rem > 30.0 && rem < 55.0, "rem = {rem}");
        // Late in the phase, little remains.
        assert!(p.remaining(Red, 44.0) < 12.0);
    }

    #[test]
    fn state_bytes_include_padding() {
        let p = PhasePredictor::new([30.0, 5.0, 30.0], 1 << 20);
        assert!(p.state_bytes() > 1 << 20);
        let q = PhasePredictor::new([30.0, 5.0, 30.0], 0);
        assert_eq!(q.state_bytes(), q.svm.state_bytes() + 24);
    }
}
