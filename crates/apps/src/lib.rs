//! # apps — the paper's two driving applications
//!
//! * [`bcp`] — **Bus Capacity Prediction** (Fig 2): bus-stop cameras
//!   feed a face-counting pipeline (dispatcher → motion filter → four
//!   Haar counters → boarding model), joined with the previous stop's
//!   prediction to forecast on-bus passenger counts stop by stop.
//! * [`signalguru`] — **SignalGuru** (Fig 3, MobiSys'11): windshield
//!   phones photograph an intersection; color/shape/motion filter
//!   chains detect the signal, a voting filter smooths detections, and
//!   an SVM predicts the transition schedule passed to the next
//!   intersection.
//!
//! Kernels really execute on synthetic frames ([`image`], [`haar`],
//! [`vision`], [`svm`]); the *simulated* CPU time charged per tuple
//! comes from the [`calib`] cost model (an iPhone 3GS-class 600 MHz
//! core, the paper's testbed device).

pub mod bcp;
pub mod calib;
pub mod haar;
pub mod image;
pub mod models;
pub mod signalguru;
pub mod svm;
pub mod vision;

pub use bcp::build_bcp;
pub use calib::Calibration;
pub use signalguru::build_signalguru;

use dsps::graph::OpId;
use dsps::placement::Placement;
use simkernel::{ActorId, SimDuration, SimRng};
use std::sync::Arc;

/// Everything the deployment builder needs to stand up one region of
/// an application.
pub struct AppBundle {
    /// The query network (Fig 2 / Fig 3).
    pub graph: Arc<dsps::graph::QueryGraph>,
    /// The paper's "same color = same node" grouping.
    pub placement: Placement,
    /// Sensor feeds: `(source op, period, jitter, generator factory)`.
    pub feeds: Vec<FeedSpec>,
    /// The source op fed by the upstream region (`S0`).
    pub inter_region_input: OpId,
    /// Human-readable name ("bcp" / "signalguru").
    pub name: &'static str,
}

/// Specification of one sensor feed (turned into a
/// [`dsps::workload::Feed`] once actor ids exist).
pub struct FeedSpec {
    /// Target source operator.
    pub op: OpId,
    /// Mean period.
    pub period: SimDuration,
    /// Jitter fraction.
    pub jitter: f64,
    /// Generator factory (fresh closure per deployment, seeded by the
    /// deployment's RNG).
    #[allow(clippy::type_complexity)]
    pub make_gen: Box<dyn Fn() -> dsps::workload::SampleGen + Send + Sync>,
}

impl FeedSpec {
    /// Build the runtime feed once the hosting actor is known.
    pub fn instantiate(&self, target: ActorId) -> dsps::workload::Feed {
        dsps::workload::Feed {
            op: self.op,
            target,
            period: self.period,
            jitter: self.jitter,
            gen: (self.make_gen)(),
            produced: 0,
            mirrors: vec![],
        }
    }
}

/// Draw from a seeded child RNG (helper for generator factories).
pub fn child_rng(rng: &mut SimRng, salt: u64) -> SimRng {
    rng.fork(salt)
}

/// Proportionally remap a placement authored for `p.slots` phones onto
/// `k` phones (`k < p.slots`): canonical slot `s` hosts on
/// `s * k / p.slots`. Keeps the paper's grouping order, so pipeline
/// stages stay contiguous and any leftover high slots stay idle
/// (checkpoint replicas / standby), just denser — used for regions
/// smaller than the paper's 8-phone testbed.
pub fn squeeze_placement(p: &Placement, k: u32) -> Placement {
    assert!(k >= 1, "a region needs at least one phone");
    // Identity whenever the canonical assignment already fits: every
    // assigned slot exists among the k phones (6- and 7-phone regions
    // keep one stage group per phone; only the idle tail shrinks).
    let fits = p.op_slot.iter().all(|&s| s == u32::MAX || s < k);
    if fits {
        return Placement {
            op_slot: p.op_slot.clone(),
            slots: k,
        };
    }
    let op_slot = p
        .op_slot
        .iter()
        .map(|&s| {
            if s == u32::MAX {
                u32::MAX
            } else {
                s * k / p.slots
            }
        })
        .collect();
    Placement { op_slot, slots: k }
}

#[cfg(test)]
mod squeeze_tests {
    use super::*;

    fn canonical() -> Placement {
        // Shape of the paper's BCP grouping: ops on slots 0..=5 of 8.
        Placement {
            op_slot: vec![0, 1, 1, 2, 3, 3, 4, 5, 5],
            slots: 8,
        }
    }

    #[test]
    fn squeeze_keeps_every_op_assigned_in_range() {
        for k in 1..8 {
            let sq = squeeze_placement(&canonical(), k);
            assert_eq!(sq.slots, k);
            for &s in &sq.op_slot {
                assert!(s < k, "slot {s} out of range for {k} phones");
            }
        }
    }

    #[test]
    fn squeeze_preserves_stage_order() {
        let sq = squeeze_placement(&canonical(), 3);
        // Monotone: a later canonical slot never maps before an earlier
        // one, so upstream stages stay upstream.
        for w in sq.op_slot.windows(2) {
            if w[0] != u32::MAX && w[1] != u32::MAX {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn squeeze_is_identity_when_room_enough() {
        let sq = squeeze_placement(&canonical(), 8);
        assert_eq!(sq.op_slot, canonical().op_slot);
        let sq = squeeze_placement(&canonical(), 12);
        assert_eq!(sq.op_slot, canonical().op_slot);
        assert_eq!(sq.slots, 12);
    }

    #[test]
    fn squeeze_keeps_one_group_per_phone_at_six_and_seven() {
        // Canonical assignment uses slots 0..=5: a 6- or 7-phone region
        // already fits one stage group per phone and must not be
        // compacted (only the idle tail shrinks).
        for k in [6, 7] {
            let sq = squeeze_placement(&canonical(), k);
            assert_eq!(sq.op_slot, canonical().op_slot, "k={k}");
            assert_eq!(sq.slots, k);
        }
    }
}
