//! # apps — the paper's two driving applications
//!
//! * [`bcp`] — **Bus Capacity Prediction** (Fig 2): bus-stop cameras
//!   feed a face-counting pipeline (dispatcher → motion filter → four
//!   Haar counters → boarding model), joined with the previous stop's
//!   prediction to forecast on-bus passenger counts stop by stop.
//! * [`signalguru`] — **SignalGuru** (Fig 3, MobiSys'11): windshield
//!   phones photograph an intersection; color/shape/motion filter
//!   chains detect the signal, a voting filter smooths detections, and
//!   an SVM predicts the transition schedule passed to the next
//!   intersection.
//!
//! Kernels really execute on synthetic frames ([`image`], [`haar`],
//! [`vision`], [`svm`]); the *simulated* CPU time charged per tuple
//! comes from the [`calib`] cost model (an iPhone 3GS-class 600 MHz
//! core, the paper's testbed device).

pub mod bcp;
pub mod calib;
pub mod haar;
pub mod image;
pub mod models;
pub mod signalguru;
pub mod svm;
pub mod vision;

pub use bcp::build_bcp;
pub use calib::Calibration;
pub use signalguru::build_signalguru;

use dsps::graph::OpId;
use dsps::placement::Placement;
use simkernel::{ActorId, SimDuration, SimRng};
use std::sync::Arc;

/// Everything the deployment builder needs to stand up one region of
/// an application.
pub struct AppBundle {
    /// The query network (Fig 2 / Fig 3).
    pub graph: Arc<dsps::graph::QueryGraph>,
    /// The paper's "same color = same node" grouping.
    pub placement: Placement,
    /// Sensor feeds: `(source op, period, jitter, generator factory)`.
    pub feeds: Vec<FeedSpec>,
    /// The source op fed by the upstream region (`S0`).
    pub inter_region_input: OpId,
    /// Human-readable name ("bcp" / "signalguru").
    pub name: &'static str,
}

/// Specification of one sensor feed (turned into a
/// [`dsps::workload::Feed`] once actor ids exist).
pub struct FeedSpec {
    /// Target source operator.
    pub op: OpId,
    /// Mean period.
    pub period: SimDuration,
    /// Jitter fraction.
    pub jitter: f64,
    /// Generator factory (fresh closure per deployment, seeded by the
    /// deployment's RNG).
    #[allow(clippy::type_complexity)]
    pub make_gen: Box<dyn Fn() -> dsps::workload::SampleGen + Send + Sync>,
}

impl FeedSpec {
    /// Build the runtime feed once the hosting actor is known.
    pub fn instantiate(&self, target: ActorId) -> dsps::workload::Feed {
        dsps::workload::Feed {
            op: self.op,
            target,
            period: self.period,
            jitter: self.jitter,
            gen: (self.make_gen)(),
            produced: 0,
            mirrors: vec![],
        }
    }
}

/// Draw from a seeded child RNG (helper for generator factories).
pub fn child_rng(rng: &mut SimRng, salt: u64) -> SimRng {
    rng.fork(salt)
}

/// Placement compaction lives in `dsps` (the single implementation);
/// re-exported here because the app builders squeeze their canonical
/// 8-phone groupings onto smaller regions.
pub use dsps::placement::squeeze_placement;
