//! SignalGuru's image-processing kernels (§II-B): "detects a traffic
//! signal in an image through color (red, yellow or green) filtering,
//! shape (circle or arrow) filtering and motion filtering (traffic
//! lights are always fixed by the roadside)".

use crate::image::{Frame, LightColor};

/// A candidate blob found by the color filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColorBlob {
    /// Detected color.
    pub color: LightColor,
    /// Centroid x.
    pub cx: f64,
    /// Centroid y.
    pub cy: f64,
    /// Pixel count.
    pub area: u32,
}

/// Color filter: find the dominant signal-colored blob, if any.
pub fn color_filter(frame: &Frame) -> Option<ColorBlob> {
    let mut best: Option<ColorBlob> = None;
    for color in [LightColor::Red, LightColor::Yellow, LightColor::Green] {
        let mut sx = 0u64;
        let mut sy = 0u64;
        let mut n = 0u32;
        for y in 0..frame.h {
            for x in 0..frame.w {
                if LightColor::from_hue(frame.hue_at(x, y)) == Some(color) {
                    sx += x as u64;
                    sy += y as u64;
                    n += 1;
                }
            }
        }
        if n >= 4 {
            let blob = ColorBlob {
                color,
                cx: sx as f64 / n as f64,
                cy: sy as f64 / n as f64,
                area: n,
            };
            if best.map(|b| blob.area > b.area).unwrap_or(true) {
                best = Some(blob);
            }
        }
    }
    best
}

/// Shape filter: is the blob circular? Checks that the blob's area is
/// consistent with a disc of its bounding radius (a square or thin
/// streak fails), using the bright-pixel mask around the centroid.
pub fn shape_filter(frame: &Frame, blob: &ColorBlob) -> bool {
    // Estimate the radius from the area, then verify that bright
    // pixels fill ~π r² of the (2r)² bounding box around the centroid.
    let r = (blob.area as f64 / std::f64::consts::PI).sqrt();
    if r < 1.0 {
        return false;
    }
    let r_i = r.ceil() as isize;
    let (cx, cy) = (blob.cx.round() as isize, blob.cy.round() as isize);
    let mut inside = 0u32;
    let mut outside_box = 0u32;
    for dy in -r_i..=r_i {
        for dx in -r_i..=r_i {
            let x = cx + dx;
            let y = cy + dy;
            if x < 0 || y < 0 || x as usize >= frame.w || y as usize >= frame.h {
                continue;
            }
            let lit = frame.px(x as usize, y as usize) > 200;
            let in_disc = (dx * dx + dy * dy) as f64 <= r * r + r;
            match (lit, in_disc) {
                (true, true) => inside += 1,
                (true, false) => outside_box += 1,
                _ => {}
            }
        }
    }
    let fill = inside as f64 / blob.area.max(1) as f64;
    fill > 0.7 && outside_box < blob.area / 2
}

/// Motion filter state: traffic lights don't move, so the blob
/// centroid must stay put across frames (passing car lights drift).
#[derive(Debug, Clone, Default)]
pub struct MotionFilter {
    last: Option<(f64, f64)>,
    /// Maximum per-frame centroid drift (pixels) still considered
    /// static.
    pub max_drift: f64,
}

impl MotionFilter {
    /// New filter with the given drift tolerance.
    pub fn new(max_drift: f64) -> Self {
        MotionFilter {
            last: None,
            max_drift,
        }
    }

    /// Feed a blob; true if it is plausibly a fixed light.
    pub fn is_static(&mut self, blob: &ColorBlob) -> bool {
        let ok = match self.last {
            None => true, // first observation: give it the benefit
            Some((lx, ly)) => {
                let d = ((blob.cx - lx).powi(2) + (blob.cy - ly).powi(2)).sqrt();
                d <= self.max_drift
            }
        };
        self.last = Some((blob.cx, blob.cy));
        ok
    }

    /// Reset (e.g. after restore).
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// Snapshot of the internal state.
    pub fn state(&self) -> Option<(f64, f64)> {
        self.last
    }

    /// Restore the internal state.
    pub fn restore(&mut self, st: Option<(f64, f64)>) {
        self.last = st;
    }
}

/// Voting filter: majority color over a sliding window of recent
/// detections ("V: voting filter").
#[derive(Debug, Clone)]
pub struct VotingFilter {
    window: usize,
    recent: Vec<LightColor>,
}

impl VotingFilter {
    /// Majority vote over the last `window` detections.
    pub fn new(window: usize) -> Self {
        VotingFilter {
            window: window.max(1),
            recent: Vec::new(),
        }
    }

    /// Feed one detection; returns the current majority color once the
    /// window has at least 2 entries.
    pub fn vote(&mut self, c: LightColor) -> Option<LightColor> {
        self.recent.push(c);
        if self.recent.len() > self.window {
            self.recent.remove(0);
        }
        if self.recent.len() < 2 {
            return Some(c);
        }
        let mut counts = [0u32; 3];
        for &r in &self.recent {
            let ix = match r {
                LightColor::Red => 0,
                LightColor::Yellow => 1,
                LightColor::Green => 2,
            };
            counts[ix] += 1;
        }
        let best = (0..3).max_by_key(|&i| counts[i]).unwrap();
        Some(match best {
            0 => LightColor::Red,
            1 => LightColor::Yellow,
            _ => LightColor::Green,
        })
    }

    /// Snapshot the window.
    pub fn state(&self) -> Vec<LightColor> {
        self.recent.clone()
    }

    /// Restore the window.
    pub fn restore(&mut self, st: Vec<LightColor>) {
        self.recent = st;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::FrameGen;
    use simkernel::SimRng;

    fn light(rng: &mut SimRng, color: LightColor) -> Frame {
        let gen = FrameGen {
            wire_bytes: 64 * 1024,
            mean_faces: 0.0,
            ..FrameGen::default()
        };
        gen.light_frame(rng, 0, color)
    }

    #[test]
    fn color_filter_finds_planted_color() {
        let mut rng = SimRng::new(3);
        for c in [LightColor::Red, LightColor::Yellow, LightColor::Green] {
            let f = light(&mut rng, c);
            let blob = color_filter(&f).expect("blob found");
            assert_eq!(blob.color, c);
            let (_, x, y, _) = f.truth_light.unwrap();
            assert!((blob.cx - x as f64).abs() < 2.0);
            assert!((blob.cy - y as f64).abs() < 2.0);
        }
    }

    #[test]
    fn color_filter_none_without_light() {
        let gen = FrameGen::default();
        let mut rng = SimRng::new(5);
        let f = gen.faces_frame(&mut rng, 0);
        assert!(color_filter(&f).is_none());
    }

    #[test]
    fn shape_filter_accepts_planted_disc() {
        let mut rng = SimRng::new(7);
        let f = light(&mut rng, LightColor::Green);
        let blob = color_filter(&f).unwrap();
        assert!(shape_filter(&f, &blob), "planted disc should pass");
    }

    #[test]
    fn shape_filter_rejects_streak() {
        // Build a frame with a thin colored streak (a passing car's
        // brake light smear).
        let gen = FrameGen {
            mean_faces: 0.0,
            ..FrameGen::default()
        };
        let mut rng = SimRng::new(9);
        let mut f = gen.faces_frame(&mut rng, 0);
        for x in 10..40 {
            f.pixels[12 * f.w + x] = 250;
            f.hue[12 * f.w + x] = LightColor::Red.hue();
        }
        let blob = color_filter(&f).unwrap();
        assert!(!shape_filter(&f, &blob), "streak must fail the circle test");
    }

    #[test]
    fn motion_filter_tracks_drift() {
        let mut m = MotionFilter::new(2.0);
        let blob = |cx: f64, cy: f64| ColorBlob {
            color: LightColor::Red,
            cx,
            cy,
            area: 20,
        };
        assert!(m.is_static(&blob(10.0, 10.0)));
        assert!(m.is_static(&blob(10.5, 10.2)), "sub-threshold drift");
        assert!(!m.is_static(&blob(20.0, 10.0)), "jump rejected");
        m.reset();
        assert!(m.is_static(&blob(20.0, 10.0)));
    }

    #[test]
    fn voting_filter_majority() {
        let mut v = VotingFilter::new(5);
        assert_eq!(v.vote(LightColor::Red), Some(LightColor::Red));
        v.vote(LightColor::Red);
        v.vote(LightColor::Red);
        // One mis-detection is outvoted.
        assert_eq!(v.vote(LightColor::Green), Some(LightColor::Red));
        // Sustained change flips the majority.
        v.vote(LightColor::Green);
        v.vote(LightColor::Green);
        assert_eq!(v.vote(LightColor::Green), Some(LightColor::Green));
    }

    #[test]
    fn voting_state_round_trips() {
        let mut v = VotingFilter::new(3);
        v.vote(LightColor::Red);
        v.vote(LightColor::Green);
        let st = v.state();
        let mut w = VotingFilter::new(3);
        w.restore(st);
        assert_eq!(w.state(), v.state());
    }
}
