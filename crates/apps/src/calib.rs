//! Cost and size calibration — the bridge between the real (small)
//! kernels and the simulated iPhone 3GS (600 MHz Cortex-A8, 256 MB RAM)
//! of the paper's testbed.
//!
//! Service times are per-tuple CPU charges on the reference core
//! (`NodeConfig::cpu_factor == 1.0`); a 2013-era server core uses
//! `cpu_factor ≈ 0.1`. Sizes are what the network and the checkpoint
//! protocols see. Values are chosen so the *base* (no-FT) system lands
//! near the paper's Table I throughput (BCP ≈ 0.54 tuple/s/region,
//! SignalGuru ≈ 0.8) with the measured WiFi band (1–5 Mbps) around
//! 75–85 % utilized — the regime where fault-tolerance traffic shows
//! up as the Fig 8 throughput/latency overheads.

use simkernel::SimDuration;

/// All tunables for the two applications.
#[derive(Debug, Clone)]
pub struct Calibration {
    // ---- BCP (Fig 2) ----
    /// Camera frame period at a bus stop.
    pub bcp_frame_period: SimDuration,
    /// Frame period jitter fraction.
    pub bcp_frame_jitter: f64,
    /// Camera frame wire size.
    pub bcp_frame_bytes: u64,
    /// Quadrant crop wire size.
    pub bcp_crop_bytes: u64,
    /// Count/prediction tuple sizes.
    pub bcp_small_bytes: u64,
    /// Bus arrival period at the first stop.
    pub bcp_bus_period: SimDuration,
    /// Mean faces (waiting passengers) per frame.
    pub bcp_mean_faces: f64,
    /// Source relay service time.
    pub cost_src: SimDuration,
    /// N (noise filter).
    pub cost_n: SimDuration,
    /// A (arrival model).
    pub cost_a: SimDuration,
    /// L (alighting model).
    pub cost_l: SimDuration,
    /// D (dispatcher).
    pub cost_d: SimDuration,
    /// H (motion/passerby filter).
    pub cost_h: SimDuration,
    /// One Haar counter on one quadrant (the dominant kernel: ~0.8 s
    /// per quarter-VGA crop on a 600 MHz A8).
    pub cost_haar: SimDuration,
    /// B (boarding model).
    pub cost_b: SimDuration,
    /// J (join).
    pub cost_j: SimDuration,
    /// P (capacity prediction).
    pub cost_p: SimDuration,
    /// K (sink publish).
    pub cost_k: SimDuration,
    /// State sizes: A, L, B, J (hint), P (the region's checkpoint mass,
    /// ≈ 2.5 MB total — cf. the paper's 8 MB single-node example).
    pub state_a: u64,
    /// L state.
    pub state_l: u64,
    /// B state.
    pub state_b: u64,
    /// J state hint (join buffers add their real bytes on top).
    pub state_j: u64,
    /// P state.
    pub state_p: u64,
    /// H state (background model).
    pub state_h: u64,

    // ---- SignalGuru (Fig 3) ----
    /// Windshield camera aggregate frame period at an intersection.
    pub sg_frame_period: SimDuration,
    /// Frame jitter.
    pub sg_frame_jitter: f64,
    /// Frame wire size.
    pub sg_frame_bytes: u64,
    /// Blob/detection tuple size.
    pub sg_small_bytes: u64,
    /// Color filter.
    pub cost_color: SimDuration,
    /// Shape filter.
    pub cost_shape: SimDuration,
    /// Motion filter.
    pub cost_motion: SimDuration,
    /// Voting filter.
    pub cost_vote: SimDuration,
    /// Group.
    pub cost_group: SimDuration,
    /// SVM prediction.
    pub cost_svm: SimDuration,
    /// V state.
    pub state_v: u64,
    /// G state.
    pub state_g: u64,
    /// P (SVM) state.
    pub state_svm: u64,
    /// M state (per chain).
    pub state_m: u64,
    /// Traffic-light phase durations (red, yellow, green) in seconds.
    pub sg_phase_s: [f64; 3],
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            bcp_frame_period: SimDuration::from_millis(1850),
            bcp_frame_jitter: 0.05,
            bcp_frame_bytes: 128 * 1024,
            bcp_crop_bytes: 32 * 1024,
            bcp_small_bytes: 200,
            bcp_bus_period: SimDuration::from_secs(90),
            bcp_mean_faces: 6.0,
            cost_src: SimDuration::from_millis(5),
            cost_n: SimDuration::from_millis(10),
            cost_a: SimDuration::from_millis(30),
            cost_l: SimDuration::from_millis(30),
            cost_d: SimDuration::from_millis(20),
            cost_h: SimDuration::from_millis(150),
            cost_haar: SimDuration::from_millis(800),
            cost_b: SimDuration::from_millis(20),
            cost_j: SimDuration::from_millis(15),
            cost_p: SimDuration::from_millis(40),
            cost_k: SimDuration::from_millis(5),
            state_a: 512 * 1024,
            state_l: 512 * 1024,
            state_b: 2048 * 1024,
            state_j: 1536 * 1024,
            state_p: 4096 * 1024,
            state_h: 64 * 1024,

            sg_frame_period: SimDuration::from_millis(1250),
            sg_frame_jitter: 0.05,
            sg_frame_bytes: 128 * 1024,
            sg_small_bytes: 160,
            cost_color: SimDuration::from_millis(200),
            cost_shape: SimDuration::from_millis(250),
            cost_motion: SimDuration::from_millis(150),
            cost_vote: SimDuration::from_millis(20),
            cost_group: SimDuration::from_millis(15),
            cost_svm: SimDuration::from_millis(60),
            state_v: 512 * 1024,
            state_g: 512 * 1024,
            state_svm: 4096 * 1024,
            state_m: 256 * 1024,
            sg_phase_s: [40.0, 4.0, 35.0],
        }
    }
}

impl Calibration {
    /// Offered BCP throughput (frames/s) — an upper bound on the sink
    /// rate.
    pub fn bcp_offered_rate(&self) -> f64 {
        1.0 / self.bcp_frame_period.as_secs_f64()
    }

    /// Offered SignalGuru throughput (frames/s).
    pub fn sg_offered_rate(&self) -> f64 {
        1.0 / self.sg_frame_period.as_secs_f64()
    }

    /// Approximate BCP region checkpoint mass (bytes).
    pub fn bcp_state_total(&self) -> u64 {
        self.state_a + self.state_l + self.state_b + self.state_j + self.state_p + self.state_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Calibration::default();
        assert!((c.bcp_offered_rate() - 0.5405).abs() < 0.001);
        assert!((c.sg_offered_rate() - 0.8).abs() < 0.001);
        // Checkpoint mass in the paper's ballpark (MBs).
        let mb = c.bcp_state_total() as f64 / (1024.0 * 1024.0);
        assert!((1.0..16.0).contains(&mb), "{mb} MB");
        // Haar dominates the BCP pipeline.
        assert!(c.cost_haar > c.cost_h);
    }
}
