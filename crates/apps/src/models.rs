//! BCP's statistical models (§II-B): "statistical models for
//! boarding/alighting passengers at each bus stop", an arrival-time
//! model, and the capacity combination.

/// Exponentially-weighted moving average — the workhorse of the
/// per-stop statistical models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    /// Current estimate.
    pub value: f64,
    /// Update weight.
    pub alpha: f64,
    /// Observations folded in.
    pub count: u64,
}

impl Ewma {
    /// New estimator starting at `prior`.
    pub fn new(prior: f64, alpha: f64) -> Self {
        Ewma {
            value: prior,
            alpha,
            count: 0,
        }
    }

    /// Fold in one observation; returns the new estimate.
    pub fn observe(&mut self, x: f64) -> f64 {
        self.value = (1.0 - self.alpha) * self.value + self.alpha * x;
        self.count += 1;
        self.value
    }
}

/// Boarding model: how many of the `waiting` passengers board, given
/// how full the bus is.
#[derive(Debug, Clone)]
pub struct BoardingModel {
    /// Learned boarding propensity (fraction of waiting passengers who
    /// take this route's bus).
    pub propensity: Ewma,
    /// Vehicle capacity.
    pub capacity: u32,
}

impl BoardingModel {
    /// New model.
    pub fn new(capacity: u32) -> Self {
        BoardingModel {
            propensity: Ewma::new(0.8, 0.1),
            capacity,
        }
    }

    /// Predicted boardings for `waiting` people and `onboard` load.
    pub fn predict(&self, waiting: u32, onboard: u32) -> u32 {
        let want = (waiting as f64 * self.propensity.value).round() as u32;
        let room = self.capacity.saturating_sub(onboard);
        want.min(room)
    }

    /// Learn from an observed boarding count.
    pub fn observe(&mut self, waiting: u32, boarded: u32) {
        if waiting > 0 {
            self.propensity.observe(boarded as f64 / waiting as f64);
        }
    }
}

/// Alighting model: the fraction of on-bus passengers who get off at
/// this stop.
#[derive(Debug, Clone)]
pub struct AlightingModel {
    /// Learned alight fraction.
    pub fraction: Ewma,
}

impl AlightingModel {
    /// New model with a prior fraction.
    pub fn new(prior: f64) -> Self {
        AlightingModel {
            fraction: Ewma::new(prior, 0.1),
        }
    }

    /// Predicted alightings from the current load.
    pub fn predict(&self, onboard: u32) -> u32 {
        (onboard as f64 * self.fraction.value).round() as u32
    }
}

/// Arrival model: ETA from the previous stop's departure, via an EWMA
/// of observed inter-stop travel times.
#[derive(Debug, Clone)]
pub struct ArrivalModel {
    /// Learned travel time (seconds).
    pub travel_s: Ewma,
}

impl ArrivalModel {
    /// New model with a prior travel time.
    pub fn new(prior_s: f64) -> Self {
        ArrivalModel {
            travel_s: Ewma::new(prior_s, 0.2),
        }
    }

    /// ETA (seconds from `depart_s`).
    pub fn eta(&self, depart_s: f64) -> f64 {
        depart_s + self.travel_s.value
    }

    /// Learn from an observed arrival.
    pub fn observe(&mut self, depart_s: f64, arrive_s: f64) {
        if arrive_s > depart_s {
            self.travel_s.observe(arrive_s - depart_s);
        }
    }
}

/// Capacity combination (the P operator): passengers on the bus when
/// it leaves this stop.
pub fn combine_capacity(onboard: u32, alight: u32, board: u32, capacity: u32) -> u32 {
    onboard
        .saturating_sub(alight)
        .saturating_add(board)
        .min(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.0, 0.3);
        for _ in 0..50 {
            e.observe(10.0);
        }
        assert!((e.value - 10.0).abs() < 0.01);
        assert_eq!(e.count, 50);
    }

    #[test]
    fn boarding_respects_capacity() {
        let m = BoardingModel::new(50);
        assert_eq!(m.predict(10, 0), 8); // 0.8 propensity
        assert_eq!(m.predict(10, 48), 2, "only 2 seats left");
        assert_eq!(m.predict(0, 10), 0);
    }

    #[test]
    fn boarding_learns_propensity() {
        let mut m = BoardingModel::new(100);
        for _ in 0..60 {
            m.observe(10, 3); // only 30 % board
        }
        assert!((m.propensity.value - 0.3).abs() < 0.05);
        assert_eq!(m.predict(10, 0), 3);
    }

    #[test]
    fn alighting_and_arrival() {
        let a = AlightingModel::new(0.25);
        assert_eq!(a.predict(40), 10);
        let mut arr = ArrivalModel::new(60.0);
        arr.observe(100.0, 190.0);
        assert!(arr.travel_s.value > 60.0);
        assert!(arr.eta(0.0) > 60.0);
    }

    #[test]
    fn capacity_combination_clamps() {
        assert_eq!(combine_capacity(30, 10, 5, 50), 25);
        assert_eq!(
            combine_capacity(5, 10, 0, 50),
            0,
            "can't alight more than onboard"
        );
        assert_eq!(combine_capacity(45, 0, 20, 50), 50, "capacity clamp");
    }
}
