//! Bus Capacity Prediction (Fig 2).
//!
//! Query network (exactly the paper's operator set):
//!
//! ```text
//!  S0 → N → A ─────────────┐
//!        └─→ L ──────────┐ │
//!  S1 → D → H → C0..C3 → B → J → P → K → (next bus stop)
//! ```
//!
//! `S0` receives the previous stop's prediction over cellular; `S1`
//! receives camera frames; `D` dispatches; `H` is the motion/passerby
//! filter; `C0..C3` run the Haar face counter on one quadrant each;
//! `B` aggregates counts into a boarding prediction; `A`/`L` are the
//! arrival/alighting models; `J` joins camera-side and bus-side
//! streams; `P` predicts the bus capacity; `K` publishes to the next
//! stop.

use std::collections::BTreeMap;
use std::sync::Arc;

use dsps::graph::{OpKind, QueryGraph};
use dsps::operator::{op_state, OpState, Operator, Outputs};
use dsps::placement::Placement;
use dsps::tuple::{value, Tuple};
use simkernel::{SimDuration, SimRng};

use crate::calib::Calibration;
use crate::haar::{count_faces_quadrant, Cascade};
use crate::image::{Frame, FrameGen};
use crate::models::{combine_capacity, AlightingModel, ArrivalModel, BoardingModel, Ewma};
use crate::{AppBundle, FeedSpec};

// ---------------------------------------------------------------- messages

/// A camera frame in flight.
#[derive(Debug, Clone)]
pub struct FrameMsg {
    /// Shared frame content.
    pub frame: Arc<Frame>,
}

/// A quadrant crop handed to one counter.
#[derive(Debug, Clone)]
pub struct CropMsg {
    /// Frame sequence.
    pub seq: u64,
    /// Which quadrant (0..4).
    pub quadrant: usize,
    /// Shared frame (counters crop on the fly).
    pub frame: Arc<Frame>,
}

/// One counter's result.
#[derive(Debug, Clone, Copy)]
pub struct CountMsg {
    /// Frame sequence.
    pub seq: u64,
    /// Quadrant counted.
    pub quadrant: usize,
    /// Faces found.
    pub count: u32,
}

/// Aggregated waiting-passenger estimate + boarding prediction.
#[derive(Debug, Clone, Copy)]
pub struct WaitingMsg {
    /// Frame sequence.
    pub seq: u64,
    /// People waiting at the stop.
    pub waiting: u32,
    /// Predicted boardings for the next bus.
    pub boarding_est: u32,
}

/// The previous stop's published prediction (or the depot feed at the
/// first stop).
#[derive(Debug, Clone, Copy)]
pub struct PrevStopMsg {
    /// Bus identity.
    pub bus_id: u64,
    /// Passengers on the bus when it left the previous stop.
    pub onboard: u32,
    /// Departure time (seconds since sim start).
    pub depart_s: f64,
}

/// Arrival model output.
#[derive(Debug, Clone, Copy)]
pub struct BusEtaMsg {
    /// Bus identity.
    pub bus_id: u64,
    /// Load when it left the previous stop.
    pub onboard: u32,
    /// Estimated arrival (seconds).
    pub eta_s: f64,
}

/// Alighting model output.
#[derive(Debug, Clone, Copy)]
pub struct AlightMsg {
    /// Bus identity.
    pub bus_id: u64,
    /// Predicted alightings at this stop.
    pub alight: u32,
}

/// J output: camera-side estimate annotated with the latest bus info.
#[derive(Debug, Clone, Copy)]
pub struct JoinedMsg {
    /// Frame sequence.
    pub seq: u64,
    /// Waiting passengers.
    pub waiting: u32,
    /// Boarding prediction.
    pub boarding_est: u32,
    /// Latest approaching bus, if any.
    pub bus: Option<BusEtaMsg>,
}

/// Final prediction published to the next stop.
#[derive(Debug, Clone, Copy)]
pub struct CapacityMsg {
    /// Bus identity (0 if no bus announced yet).
    pub bus_id: u64,
    /// Predicted on-bus passengers when the bus leaves this stop.
    pub onboard_next: u32,
    /// Waiting-passenger estimate used.
    pub waiting: u32,
    /// Synthetic departure time estimate (seconds).
    pub depart_s: f64,
}

// ---------------------------------------------------------------- operators

/// `S0`: relay of previous-stop data; converts an upstream region's
/// `CapacityMsg` into this region's `PrevStopMsg`.
struct PrevStopSource {
    cost: SimDuration,
}

impl Operator for PrevStopSource {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        if let Some(p) = tuple.value_as::<PrevStopMsg>() {
            out.emit(0, value(*p), tuple.bytes);
        } else if let Some(c) = tuple.value_as::<CapacityMsg>() {
            let p = PrevStopMsg {
                bus_id: c.bus_id,
                onboard: c.onboard_next,
                depart_s: c.depart_s,
            };
            out.emit(0, value(p), tuple.bytes);
        }
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
}

/// `N`: noise filter — EWMA-smooths the onboard counts.
struct NoiseFilter {
    cost: SimDuration,
    smooth: Ewma,
}

#[derive(Debug, Clone)]
struct NoiseFilterState(Ewma);

impl Operator for NoiseFilter {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(p) = tuple.value_as::<PrevStopMsg>() else {
            return;
        };
        let smoothed = self.smooth.observe(p.onboard as f64).round() as u32;
        let cleaned = PrevStopMsg {
            onboard: smoothed,
            ..*p
        };
        out.emit(0, value(cleaned), tuple.bytes); // → A
        out.emit(1, value(cleaned), tuple.bytes); // → L
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        24
    }
    fn snapshot(&self) -> OpState {
        op_state(NoiseFilterState(self.smooth))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<NoiseFilterState>() {
            self.smooth = s.0;
        }
    }
}

/// `A`: bus arrival-time model.
struct ArrivalOp {
    cost: SimDuration,
    model: ArrivalModel,
    state_padding: u64,
    small_bytes: u64,
}

#[derive(Debug, Clone)]
struct ArrivalState(ArrivalModel);

impl Operator for ArrivalOp {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(p) = tuple.value_as::<PrevStopMsg>() else {
            return;
        };
        let eta = self.model.eta(p.depart_s);
        self.model.observe(p.depart_s, eta); // reinforce prior (proxy for GPS feedback)
        out.emit(
            0,
            value(BusEtaMsg {
                bus_id: p.bus_id,
                onboard: p.onboard,
                eta_s: eta,
            }),
            self.small_bytes,
        );
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        32 + self.state_padding
    }
    fn snapshot(&self) -> OpState {
        op_state(ArrivalState(self.model.clone()))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<ArrivalState>() {
            self.model = s.0.clone();
        }
    }
}

/// `L`: alighting model.
struct AlightOp {
    cost: SimDuration,
    model: AlightingModel,
    state_padding: u64,
    small_bytes: u64,
}

#[derive(Debug, Clone)]
struct AlightState(AlightingModel);

impl Operator for AlightOp {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(p) = tuple.value_as::<PrevStopMsg>() else {
            return;
        };
        out.emit(
            0,
            value(AlightMsg {
                bus_id: p.bus_id,
                alight: self.model.predict(p.onboard),
            }),
            self.small_bytes,
        );
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        24 + self.state_padding
    }
    fn snapshot(&self) -> OpState {
        op_state(AlightState(self.model.clone()))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<AlightState>() {
            self.model = s.0.clone();
        }
    }
}

/// `D`: dispatcher (frame admission).
struct Dispatcher {
    cost: SimDuration,
}

impl Operator for Dispatcher {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        out.emit(0, tuple.value.clone(), tuple.bytes);
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
}

/// `H`: motion detection / passerby filter — compares the frame's mean
/// brightness against a background model (people change the scene) and
/// splits admitted frames into four quadrant crops.
struct MotionSplit {
    cost: SimDuration,
    background: Ewma,
    state_padding: u64,
    crop_bytes: u64,
}

#[derive(Debug, Clone)]
struct MotionSplitState(Ewma);

impl Operator for MotionSplit {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(m) = tuple.value_as::<FrameMsg>() else {
            return;
        };
        let frame = &m.frame;
        // Real pixel work: frame mean vs adaptive background.
        let mean =
            frame.pixels.iter().map(|&p| p as u64).sum::<u64>() as f64 / frame.pixels.len() as f64;
        self.background.observe(mean);
        // Passerby filter: frames indistinguishable from background
        // (nobody present) are dropped.
        if frame.truth_faces == 0 && (mean - self.background.value).abs() < 0.5 {
            return;
        }
        for q in 0..4 {
            out.emit(
                q,
                value(CropMsg {
                    seq: frame.seq,
                    quadrant: q,
                    frame: Arc::clone(frame),
                }),
                self.crop_bytes,
            );
        }
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        24 + self.state_padding
    }
    fn snapshot(&self) -> OpState {
        op_state(MotionSplitState(self.background))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<MotionSplitState>() {
            self.background = s.0;
        }
    }
}

/// `C0..C3`: Haar face counter on one quadrant. The kernel really runs.
struct HaarCounter {
    cost: SimDuration,
    cascade: Cascade,
    small_bytes: u64,
    /// Tuples counted (tiny state).
    counted: u64,
}

#[derive(Debug, Clone)]
struct HaarCounterState(u64);

impl Operator for HaarCounter {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(c) = tuple.value_as::<CropMsg>() else {
            return;
        };
        let count = count_faces_quadrant(&c.frame, &self.cascade, c.quadrant);
        self.counted += 1;
        out.emit(
            0,
            value(CountMsg {
                seq: c.seq,
                quadrant: c.quadrant,
                count,
            }),
            self.small_bytes,
        );
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        8
    }
    fn snapshot(&self) -> OpState {
        op_state(HaarCounterState(self.counted))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<HaarCounterState>() {
            self.counted = s.0;
        }
    }
}

/// `B`: aggregates the four quadrant counts of a frame and predicts
/// boardings.
struct BoardingOp {
    cost: SimDuration,
    partial: BTreeMap<u64, (u32, u32)>, // seq -> (quadrants seen, total)
    model: BoardingModel,
    state_padding: u64,
    small_bytes: u64,
    last_onboard: u32,
}

#[derive(Debug, Clone)]
struct BoardingState {
    partial: Vec<(u64, u32, u32)>,
    model: BoardingModel,
    last_onboard: u32,
}

impl Operator for BoardingOp {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let Some(c) = tuple.value_as::<CountMsg>() else {
            return;
        };
        let entry = self.partial.entry(c.seq).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += c.count;
        if entry.0 == 4 {
            let (_, waiting) = self.partial.remove(&c.seq).expect("present");
            let boarding = self.model.predict(waiting, self.last_onboard);
            self.model.observe(waiting, boarding);
            out.emit(
                0,
                value(WaitingMsg {
                    seq: c.seq,
                    waiting,
                    boarding_est: boarding,
                }),
                self.small_bytes,
            );
        }
        // Bound the partial map (frames whose counters died).
        while self.partial.len() > 64 {
            let oldest = *self.partial.keys().next().expect("non-empty");
            self.partial.remove(&oldest);
        }
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        self.partial.len() as u64 * 24 + 32 + self.state_padding
    }
    fn snapshot(&self) -> OpState {
        op_state(BoardingState {
            partial: self.partial.iter().map(|(&s, &(q, t))| (s, q, t)).collect(),
            model: self.model.clone(),
            last_onboard: self.last_onboard,
        })
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<BoardingState>() {
            self.partial = s.partial.iter().map(|&(s, q, t)| (s, (q, t))).collect();
            self.model = s.model.clone();
            self.last_onboard = s.last_onboard;
        }
    }
}

/// `J`: annotate every camera-side estimate with the latest
/// approaching-bus info (port 0 = `A`, port 1 = `B`).
struct JoinOp {
    cost: SimDuration,
    latest_bus: Option<BusEtaMsg>,
    state_padding: u64,
    small_bytes: u64,
}

#[derive(Debug, Clone)]
struct JoinState(Option<BusEtaMsg>);

impl Operator for JoinOp {
    fn process(&mut self, tuple: &Tuple, port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        if port == 0 {
            if let Some(b) = tuple.value_as::<BusEtaMsg>() {
                self.latest_bus = Some(*b);
            }
            return;
        }
        let Some(w) = tuple.value_as::<WaitingMsg>() else {
            return;
        };
        out.emit(
            0,
            value(JoinedMsg {
                seq: w.seq,
                waiting: w.waiting,
                boarding_est: w.boarding_est,
                bus: self.latest_bus,
            }),
            self.small_bytes,
        );
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        40 + self.state_padding
    }
    fn snapshot(&self) -> OpState {
        op_state(JoinState(self.latest_bus))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<JoinState>() {
            self.latest_bus = s.0;
        }
    }
}

/// `P`: capacity prediction (port 0 = `J`, port 1 = `L`).
struct CapacityOp {
    cost: SimDuration,
    latest_alight: Option<AlightMsg>,
    capacity: u32,
    state_padding: u64,
    small_bytes: u64,
}

#[derive(Debug, Clone)]
struct CapacityState(Option<AlightMsg>);

impl Operator for CapacityOp {
    fn process(&mut self, tuple: &Tuple, port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        if port == 1 {
            if let Some(a) = tuple.value_as::<AlightMsg>() {
                self.latest_alight = Some(*a);
            }
            return;
        }
        let Some(j) = tuple.value_as::<JoinedMsg>() else {
            return;
        };
        let (bus_id, onboard, eta) = match j.bus {
            Some(b) => (b.bus_id, b.onboard, b.eta_s),
            None => (0, 0, tuple.entered.as_secs_f64()),
        };
        let alight = self
            .latest_alight
            .filter(|a| a.bus_id == bus_id)
            .map(|a| a.alight)
            .unwrap_or(0);
        let onboard_next = combine_capacity(onboard, alight, j.boarding_est, self.capacity);
        out.emit(
            0,
            value(CapacityMsg {
                bus_id,
                onboard_next,
                waiting: j.waiting,
                depart_s: eta + 20.0, // dwell time
            }),
            self.small_bytes,
        );
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        24 + self.state_padding
    }
    fn snapshot(&self) -> OpState {
        op_state(CapacityState(self.latest_alight))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<CapacityState>() {
            self.latest_alight = s.0;
        }
    }
}

/// `K`: sink (publishes to the next region; the node runtime handles
/// the inter-region send).
struct SinkOp {
    cost: SimDuration,
}

impl Operator for SinkOp {
    fn process(&mut self, _t: &Tuple, _port: usize, _out: &mut Outputs, _rng: &mut SimRng) {}
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
}

// ---------------------------------------------------------------- builder

/// Build the BCP region bundle (graph + placement + feeds).
///
/// Placement (8 phones, paper grouping "operators with the same color
/// are on the same node"):
///
/// | slot | ops |
/// |---|---|
/// | 0 | S1 (camera source) |
/// | 1 | S0, N, A, L (bus-side models) |
/// | 2 | D, H |
/// | 3 | C0, C1 |
/// | 4 | C2, C3 |
/// | 5 | B, J, P, K |
/// | 6, 7 | idle (checkpoint replicas / standby) |
pub fn build_bcp(cal: &Calibration, slots: u32, first_stop: bool) -> AppBundle {
    let c = cal.clone();
    let mut g = QueryGraph::new();

    let s0 = g.add_op("S0", OpKind::Source, {
        let c = c.clone();
        move || Box::new(PrevStopSource { cost: c.cost_src })
    });
    let s1 = g.add_op("S1", OpKind::Source, {
        let c = c.clone();
        move || Box::new(Dispatcher { cost: c.cost_src })
    });
    let n = g.add_op("N", OpKind::Compute, {
        let c = c.clone();
        move || {
            Box::new(NoiseFilter {
                cost: c.cost_n,
                smooth: Ewma::new(10.0, 0.3),
            })
        }
    });
    let a = g.add_op("A", OpKind::Compute, {
        let c = c.clone();
        move || {
            Box::new(ArrivalOp {
                cost: c.cost_a,
                model: ArrivalModel::new(90.0),
                state_padding: c.state_a,
                small_bytes: c.bcp_small_bytes,
            })
        }
    });
    let l = g.add_op("L", OpKind::Compute, {
        let c = c.clone();
        move || {
            Box::new(AlightOp {
                cost: c.cost_l,
                model: AlightingModel::new(0.25),
                state_padding: c.state_l,
                small_bytes: c.bcp_small_bytes,
            })
        }
    });
    let d = g.add_op("D", OpKind::Compute, {
        let c = c.clone();
        move || Box::new(Dispatcher { cost: c.cost_d })
    });
    let h = g.add_op("H", OpKind::Compute, {
        let c = c.clone();
        move || {
            Box::new(MotionSplit {
                cost: c.cost_h,
                background: Ewma::new(200.0, 0.05),
                state_padding: c.state_h,
                crop_bytes: c.bcp_crop_bytes,
            })
        }
    });
    let counters: Vec<_> = (0..4)
        .map(|i| {
            g.add_op(format!("C{i}"), OpKind::Compute, {
                let c = c.clone();
                move || {
                    Box::new(HaarCounter {
                        cost: c.cost_haar,
                        cascade: Cascade::default(),
                        small_bytes: c.bcp_small_bytes,
                        counted: 0,
                    }) as Box<dyn Operator>
                }
            })
        })
        .collect();
    let b = g.add_op("B", OpKind::Compute, {
        let c = c.clone();
        move || {
            Box::new(BoardingOp {
                cost: c.cost_b,
                partial: BTreeMap::new(),
                model: BoardingModel::new(60),
                state_padding: c.state_b,
                small_bytes: c.bcp_small_bytes,
                last_onboard: 0,
            })
        }
    });
    let j = g.add_op("J", OpKind::Compute, {
        let c = c.clone();
        move || {
            Box::new(JoinOp {
                cost: c.cost_j,
                latest_bus: None,
                state_padding: c.state_j,
                small_bytes: c.bcp_small_bytes,
            })
        }
    });
    let p = g.add_op("P", OpKind::Compute, {
        let c = c.clone();
        move || {
            Box::new(CapacityOp {
                cost: c.cost_p,
                latest_alight: None,
                capacity: 60,
                state_padding: c.state_p,
                small_bytes: c.bcp_small_bytes,
            })
        }
    });
    let k = g.add_op("K", OpKind::Sink, {
        let c = c.clone();
        move || Box::new(SinkOp { cost: c.cost_k })
    });

    g.connect(s0, n); // edge 0
    g.connect(n, a); // N port 0
    g.connect(n, l); // N port 1
    g.connect(a, j); // J port 0
    g.connect(s1, d);
    g.connect(d, h);
    for &ci in &counters {
        g.connect(h, ci); // H ports 0..3
    }
    for &ci in &counters {
        g.connect(ci, b);
    }
    g.connect(b, j); // J port 1
    g.connect(j, p); // P port 0
    g.connect(l, p); // P port 1
    g.connect(p, k);
    g.validate().expect("BCP graph valid");

    // Author the paper's canonical 8-slot grouping, then squeeze it
    // proportionally if the region has fewer phones than the testbed.
    let mut placement = Placement::new(&g, slots.max(8));
    placement
        .assign(s1, 0)
        .assign(s0, 1)
        .assign(n, 1)
        .assign(a, 1)
        .assign(l, 1)
        .assign(d, 2)
        .assign(h, 2)
        .assign(counters[0], 3)
        .assign(counters[1], 3)
        .assign(counters[2], 4)
        .assign(counters[3], 4)
        .assign(b, 5)
        .assign(j, 5)
        .assign(p, 5)
        .assign(k, 5);
    placement.validate(&g).expect("BCP placement valid");
    let placement = crate::squeeze_placement(&placement, slots);

    // Feeds: the camera (every region) and, at the first stop only, the
    // depot's bus announcements.
    let mut feeds = Vec::new();
    {
        let cal2 = c.clone();
        feeds.push(FeedSpec {
            op: s1,
            period: c.bcp_frame_period,
            jitter: c.bcp_frame_jitter,
            make_gen: Box::new(move || {
                let gen = FrameGen {
                    wire_bytes: cal2.bcp_frame_bytes,
                    mean_faces: cal2.bcp_mean_faces,
                    ..FrameGen::default()
                };
                let bytes = cal2.bcp_frame_bytes;
                Box::new(move |rng, seq| {
                    let frame = Arc::new(gen.faces_frame(rng, seq));
                    (value(FrameMsg { frame }), bytes)
                })
            }),
        });
    }
    if first_stop {
        let bytes = c.bcp_small_bytes;
        feeds.push(FeedSpec {
            op: s0,
            period: c.bcp_bus_period,
            jitter: 0.2,
            make_gen: Box::new(move || {
                Box::new(move |rng, seq| {
                    let onboard = rng.poisson(18.0).min(60) as u32;
                    (
                        value(PrevStopMsg {
                            bus_id: seq + 1,
                            onboard,
                            depart_s: 0.0,
                        }),
                        bytes,
                    )
                })
            }),
        });
    }

    AppBundle {
        graph: Arc::new(g),
        placement,
        feeds,
        inter_region_input: s0,
        name: "bcp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_matches_fig2() {
        let bundle = build_bcp(&Calibration::default(), 8, true);
        let g = &bundle.graph;
        assert_eq!(g.op_count(), 15, "S0,S1,N,A,L,D,H,C0-3,B,J,P,K");
        assert_eq!(g.sources().len(), 2);
        assert_eq!(g.sinks().len(), 1);
        assert!(g.validate().is_ok());
        // J has two inputs (A and B), P has two inputs (J and L).
        let j = g.op_by_name("J").unwrap();
        let p = g.op_by_name("P").unwrap();
        assert_eq!(g.op(j).in_edges.len(), 2);
        assert_eq!(g.op(p).in_edges.len(), 2);
        // H fans out to the four counters.
        let h = g.op_by_name("H").unwrap();
        assert_eq!(g.op(h).out_edges.len(), 4);
    }

    #[test]
    fn placement_uses_six_slots_two_idle() {
        let bundle = build_bcp(&Calibration::default(), 8, true);
        assert_eq!(bundle.placement.used_slots().len(), 6);
        assert_eq!(bundle.placement.idle_slots(&bundle.graph), vec![6, 7]);
    }

    #[test]
    fn operators_instantiate_and_snapshot() {
        let bundle = build_bcp(&Calibration::default(), 8, true);
        for op in bundle.graph.op_ids() {
            let inst = bundle.graph.op(op).instantiate();
            let st = inst.snapshot();
            let mut inst2 = bundle.graph.op(op).instantiate();
            inst2.restore(&st); // must not panic
        }
    }

    #[test]
    fn full_pipeline_dataflow_by_hand() {
        // Drive the operators directly (no sim) through one frame + one
        // bus and check a CapacityMsg comes out.
        let cal = Calibration::default();
        let bundle = build_bcp(&cal, 8, true);
        let g = &bundle.graph;
        let mut rng = SimRng::new(5);
        let mk = |name: &str| g.op(g.op_by_name(name).unwrap()).instantiate();
        let mut s0 = mk("S0");
        let mut n = mk("N");
        let mut a = mk("A");
        let mut l = mk("L");
        let mut h = mk("H");
        let mut c0 = mk("C0");
        let mut b = mk("B");
        let mut j = mk("J");
        let mut p = mk("P");

        let run = |op: &mut Box<dyn Operator>,
                   v: dsps::tuple::TupleValue,
                   bytes: u64,
                   port: usize,
                   rng: &mut SimRng| {
            let t = Tuple::new(1, simkernel::SimTime::from_secs(10), bytes, v);
            let mut out = Outputs::default();
            op.process(&t, port, &mut out, rng);
            out.drain()
        };

        // Bus side.
        let bus = value(PrevStopMsg {
            bus_id: 7,
            onboard: 20,
            depart_s: 100.0,
        });
        let s0_out = run(&mut s0, bus, 200, 0, &mut rng);
        assert_eq!(s0_out.len(), 1);
        let n_out = run(&mut n, s0_out[0].1.clone(), 200, 0, &mut rng);
        assert_eq!(n_out.len(), 2, "N fans to A and L");
        let a_out = run(&mut a, n_out[0].1.clone(), 200, 0, &mut rng);
        let l_out = run(&mut l, n_out[1].1.clone(), 200, 0, &mut rng);
        run(&mut j, a_out[0].1.clone(), 200, 0, &mut rng); // J stores latest bus
        run(&mut p, l_out[0].1.clone(), 200, 1, &mut rng); // P stores latest alight

        // Camera side.
        let gen = FrameGen {
            mean_faces: 8.0,
            ..FrameGen::default()
        };
        let frame = Arc::new(gen.faces_frame(&mut rng, 1));
        let truth = frame.truth_faces;
        let h_out = run(
            &mut h,
            value(FrameMsg { frame }),
            cal.bcp_frame_bytes,
            0,
            &mut rng,
        );
        assert_eq!(h_out.len(), 4, "H splits into quadrants");
        // Count all four crops (one counter instance suffices here).
        let mut waiting_msg = None;
        for (_, crop, bytes) in h_out {
            let c_out = run(&mut c0, crop, bytes, 0, &mut rng);
            for (_, count, bytes) in c_out {
                let b_out = run(&mut b, count, bytes, 0, &mut rng);
                if !b_out.is_empty() {
                    waiting_msg = Some(b_out[0].1.clone());
                }
            }
        }
        let waiting_msg = waiting_msg.expect("B aggregates after 4 counts");
        let j_out = run(&mut j, waiting_msg, 200, 1, &mut rng);
        assert_eq!(j_out.len(), 1);
        let p_out = run(&mut p, j_out[0].1.clone(), 200, 0, &mut rng);
        assert_eq!(p_out.len(), 1);
        let cap = (*p_out[0].1)
            .as_any()
            .downcast_ref::<CapacityMsg>()
            .expect("capacity prediction");
        assert_eq!(cap.bus_id, 7);
        // Waiting estimate tracks the planted ground truth.
        assert!(
            (cap.waiting as i64 - truth as i64).abs() <= 2,
            "waiting {} vs truth {}",
            cap.waiting,
            truth
        );
        assert!(cap.onboard_next <= 60);
    }

    #[test]
    fn s0_converts_upstream_capacity_messages() {
        let bundle = build_bcp(&Calibration::default(), 8, false);
        let g = &bundle.graph;
        let mut s0 = g.op(bundle.inter_region_input).instantiate();
        let mut rng = SimRng::new(0);
        let cap = value(CapacityMsg {
            bus_id: 3,
            onboard_next: 25,
            waiting: 4,
            depart_s: 500.0,
        });
        let t = Tuple::new(1, simkernel::SimTime::ZERO, 200, cap);
        let mut out = Outputs::default();
        s0.process(&t, 0, &mut out, &mut rng);
        let outs = out.drain();
        assert_eq!(outs.len(), 1);
        let prev = (*outs[0].1).as_any().downcast_ref::<PrevStopMsg>().unwrap();
        assert_eq!(prev.bus_id, 3);
        assert_eq!(prev.onboard, 25);
    }

    #[test]
    fn first_stop_has_two_feeds() {
        let cal = Calibration::default();
        assert_eq!(build_bcp(&cal, 8, true).feeds.len(), 2);
        assert_eq!(build_bcp(&cal, 8, false).feeds.len(), 1);
    }
}
