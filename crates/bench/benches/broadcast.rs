//! Benches for the multi-phase UDP broadcast engine (Fig 6): sender
//! phase evaluation at paper scale (8 MB / 8192 blocks, 7 receivers)
//! and receiver-side accumulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dsps::graph::OpId;
use mobistreams::broadcast::{PhaseDecision, ReceiverState, SenderJob};
use mobistreams::msgs::BlobContent;
use simkernel::{ActorId, SimRng};
use simnet::bitmap::Bitmap;
use simnet::stats::TrafficClass;

fn content() -> BlobContent {
    BlobContent::Checkpoint {
        version: 1,
        states: vec![(
            OpId(0),
            std::sync::Arc::new(()) as dsps::operator::OpState,
            0,
        )],
    }
}

/// One full sender-side job at paper scale with iid 5 % loss.
fn run_job(seed: u64) -> u32 {
    let n_rx = 7usize;
    let n_blocks = 8192usize;
    let mut rng = SimRng::new(seed);
    let mut job = SenderJob::new(
        1,
        content(),
        TrafficClass::Checkpoint,
        (n_blocks * 1024) as u64,
        1024,
        (0..n_rx).map(ActorId::from_index).collect(),
    );
    let mut pending = job.begin();
    let mut cum: Vec<Bitmap> = (0..n_rx).map(|_| Bitmap::zeros(n_blocks)).collect();
    let mut phases = 1u32;
    'outer: loop {
        for c in cum.iter_mut() {
            for &b in &pending {
                if rng.chance(0.95) {
                    c.set(b as usize, true);
                }
            }
        }
        for (r, c) in cum.iter().enumerate() {
            if let Some(d) = job.on_bitmap(ActorId::from_index(r), c) {
                match d {
                    PhaseDecision::Resend(blocks) => {
                        phases += 1;
                        pending = blocks;
                        continue 'outer;
                    }
                    _ => break 'outer,
                }
            }
        }
    }
    phases
}

fn bench_sender(c: &mut Criterion) {
    c.bench_function("broadcast/full_job_8MB_7rx_5pct", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_job(seed))
        })
    });
}

fn bench_receiver(c: &mut Criterion) {
    let blocks: Vec<u32> = (0..8192).collect();
    let mut received = Bitmap::zeros(8192);
    for i in (0..8192).step_by(3) {
        received.set(i, true);
    }
    c.bench_function("broadcast/receiver_fold_8192", |b| {
        b.iter(|| {
            let mut rx = ReceiverState::default();
            let cum = rx
                .on_batch(
                    ActorId::from_index(9),
                    1,
                    8192,
                    black_box(&blocks),
                    &received,
                )
                .expect("well-formed batch");
            cum.count_ones()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sender, bench_receiver
}
criterion_main!(benches);
