//! Microbenches for the real compute kernels and core data structures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use apps::haar::{count_faces_quadrant, Cascade, IntegralImage};
use apps::image::{FrameGen, LightColor};
use apps::svm::LinearSvm;
use apps::vision::{color_filter, shape_filter};
use simkernel::SimRng;
use simnet::bitmap::Bitmap;

fn bench_haar(c: &mut Criterion) {
    let gen = FrameGen::default();
    let mut rng = SimRng::new(1);
    let frame = gen.faces_frame(&mut rng, 0);
    let cascade = Cascade::default();
    c.bench_function("haar/count_quadrant", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for q in 0..4 {
                total += count_faces_quadrant(black_box(&frame), &cascade, q);
            }
            total
        })
    });
    c.bench_function("haar/integral_image", |b| {
        b.iter(|| IntegralImage::new(black_box(&frame.pixels), frame.w, frame.h))
    });
}

fn bench_vision(c: &mut Criterion) {
    let gen = FrameGen {
        mean_faces: 0.0,
        ..FrameGen::default()
    };
    let mut rng = SimRng::new(2);
    let frame = gen.light_frame_at(&mut rng, 0, LightColor::Red, 30, 12);
    c.bench_function("vision/color_filter", |b| {
        b.iter(|| color_filter(black_box(&frame)))
    });
    let blob = color_filter(&frame).unwrap();
    c.bench_function("vision/shape_filter", |b| {
        b.iter(|| shape_filter(black_box(&frame), &blob))
    });
}

fn bench_svm(c: &mut Criterion) {
    let mut rng = SimRng::new(3);
    let xs: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            vec![
                rng.normal(if i % 2 == 0 { 2.0 } else { -2.0 }, 0.5),
                rng.f64(),
            ]
        })
        .collect();
    let ys: Vec<f64> = (0..256)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    c.bench_function("svm/fit_epoch_256", |b| {
        b.iter(|| {
            let mut svm = LinearSvm::new(2, 0.01);
            let mut r = SimRng::new(4);
            svm.fit(black_box(&xs), &ys, 1, &mut r);
            svm.b
        })
    });
}

fn bench_bitmap(c: &mut Criterion) {
    let n = 8192;
    let mut a = Bitmap::zeros(n);
    let mut b2 = Bitmap::zeros(n);
    for i in (0..n).step_by(2) {
        a.set(i, true);
        b2.set(i + 1, true);
    }
    c.bench_function("bitmap/and_8192", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.and_assign(black_box(&b2));
            x.count_ones()
        })
    });
    c.bench_function("bitmap/zero_indices_8192", |b| {
        b.iter(|| black_box(&a).zero_indices().len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_haar, bench_vision, bench_svm, bench_bitmap
}
criterion_main!(benches);
