//! Fleet-scale scenario engine throughput: simulated events per second
//! of wall time at 100 and at 1000 phones.
//!
//! Each iteration builds a fleet deployment (churn schedule included)
//! and runs a 60-second simulated window; the printed ns/iter divided
//! into the per-iteration event count gives events/sec. The event
//! counts themselves are deterministic (fixed seed), so this tracks
//! pure engine speed across commits.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use experiments::fleet::{build_fleet, churn_schedule, ChurnProfile, FleetConfig, FleetRegion};
use experiments::{AppKind, Scheme};
use simkernel::{SimDuration, SimTime};

/// A stadium-shaped fleet scaled to `regions × phones`, trimmed to a
/// 60 s window so a bench iteration stays subsecond-ish.
fn bench_cfg(regions: usize, phones: u32) -> FleetConfig {
    let cal = apps::Calibration {
        state_a: 16 * 1024,
        state_l: 16 * 1024,
        state_b: 64 * 1024,
        state_j: 48 * 1024,
        state_p: 16 * 1024,
        state_h: 16 * 1024,
        ..apps::Calibration::default()
    };
    FleetConfig {
        name: format!("bench-{}x{}", regions, phones),
        app: AppKind::Bcp,
        scheme: Scheme::Ms,
        regions: (0..regions).map(|_| FleetRegion::of(phones)).collect(),
        churn: ChurnProfile {
            fail_per_phone_hour: 2.0,
            depart_per_phone_hour: 4.0,
            move_fraction: 0.3,
            mean_rejoin_s: 30.0,
            quiet_start_s: 15.0,
            ..ChurnProfile::default()
        },
        cal,
        ckpt_period: SimDuration::from_secs(30),
        ckpt_offset: SimDuration::from_secs(10),
        duration: SimDuration::from_secs(60),
        warmup: SimDuration::from_secs(10),
        seed: 42,
    }
}

fn run_once(cfg: &FleetConfig) -> u64 {
    let (mut dep, _schedule) = build_fleet(cfg);
    dep.run_until(SimTime::ZERO + cfg.duration);
    dep.sim.events_processed()
}

fn bench_events_per_sec(c: &mut Criterion) {
    // 100 phones: 4 regions × 25.
    let cfg100 = bench_cfg(4, 25);
    let ev = run_once(&cfg100);
    println!("fleet_100_phones: {ev} events per 60 s window");
    c.bench_function("fleet_events_100_phones_60s", |b| {
        b.iter(|| black_box(run_once(&cfg100)))
    });

    // 1000 phones: 8 regions × 125.
    let cfg1000 = bench_cfg(8, 125);
    let ev = run_once(&cfg1000);
    println!("fleet_1000_phones: {ev} events per 60 s window");
    c.bench_function("fleet_events_1000_phones_60s", |b| {
        b.iter(|| black_box(run_once(&cfg1000)))
    });
}

fn bench_schedule_generation(c: &mut Criterion) {
    // Schedule generation alone must stay cheap even at 10k phones.
    let mut cfg = bench_cfg(8, 1250);
    cfg.churn.depart_per_phone_hour = 30.0;
    c.bench_function("churn_schedule_10k_phones", |b| {
        b.iter(|| black_box(churn_schedule(&cfg).len()))
    });
}

criterion_group!(
    name = fleet;
    config = Criterion::default().sample_size(5);
    targets = bench_events_per_sec, bench_schedule_generation
);
criterion_main!(fleet);
