//! Fleet-scale scenario engine throughput: simulated events per second
//! of wall time at 100 and at 1000 phones.
//!
//! Each iteration builds a fleet deployment (churn schedule included)
//! and runs a 60-second simulated window; the printed ns/iter divided
//! into the per-iteration event count gives events/sec. The event
//! counts themselves are deterministic (fixed seed), so this tracks
//! pure engine speed across commits.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use experiments::fleet::{bench_profile, build_fleet, churn_schedule, FleetConfig};
use simkernel::SimTime;

/// The shared BENCH_* workload shape (see `fleet::bench_profile`).
fn bench_cfg(regions: usize, phones: u32) -> FleetConfig {
    bench_profile(regions, phones, 42)
}

fn run_once(cfg: &FleetConfig) -> u64 {
    let (mut dep, _schedule) = build_fleet(cfg);
    dep.enable_sharding(cfg.threads);
    dep.run_until(SimTime::ZERO + cfg.duration);
    dep.sim.events_processed()
}

fn bench_events_per_sec(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // 100 phones: 4 regions × 25.
    let cfg100 = bench_cfg(4, 25);
    let ev = run_once(&cfg100);
    println!("fleet_100_phones: {ev} events per 60 s window");
    c.bench_function("fleet_events_100_phones_60s", |b| {
        b.iter(|| black_box(run_once(&cfg100)))
    });

    // 1000 phones: 8 regions × 125, single-thread and all-cores (the
    // digest is identical either way; only wall time differs).
    let cfg1000 = bench_cfg(8, 125);
    let ev = run_once(&cfg1000);
    println!("fleet_1000_phones: {ev} events per 60 s window");
    c.bench_function("fleet_events_1000_phones_60s", |b| {
        b.iter(|| black_box(run_once(&cfg1000)))
    });
    let mut cfg1000mt = bench_cfg(8, 125);
    cfg1000mt.threads = threads;
    c.bench_function("fleet_events_1000_phones_60s_mt", |b| {
        b.iter(|| black_box(run_once(&cfg1000mt)))
    });
}

fn bench_schedule_generation(c: &mut Criterion) {
    // Schedule generation alone must stay cheap even at 10k phones.
    let mut cfg = bench_cfg(8, 1250);
    cfg.churn.depart_per_phone_hour = 30.0;
    c.bench_function("churn_schedule_10k_phones", |b| {
        b.iter(|| black_box(churn_schedule(&cfg).len()))
    });
}

criterion_group!(
    name = fleet;
    config = Criterion::default().sample_size(5);
    targets = bench_events_per_sec, bench_schedule_generation
);
criterion_main!(fleet);
