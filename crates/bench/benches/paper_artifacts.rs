//! One bench per paper artifact. Each target first *prints* a
//! quick-mode rendition of its table/figure (the regeneration harness —
//! run `msx` for the full-length version), then times a representative
//! deployment so regressions in simulator performance are caught.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use experiments::run::measured_run;
use experiments::{
    fig10, fig8, fig9, table1, AppKind, ExpOptions, Platform, ScenarioConfig, Scheme,
};
use simkernel::SimDuration;

fn tiny_opts() -> ExpOptions {
    ExpOptions {
        seeds: 1,
        warmup: SimDuration::from_secs(120),
        window: SimDuration::from_secs(240),
        parallel: true,
    }
}

/// Time one 4-region deployment over a short window (the unit of work
/// every experiment fans out over).
fn one_run(app: AppKind, scheme: Scheme, platform: Platform, seed: u64) -> f64 {
    let cfg = ScenarioConfig {
        app,
        scheme,
        platform,
        seed,
        ..ScenarioConfig::default()
    };
    let h = measured_run(
        cfg,
        SimDuration::from_secs(60),
        SimDuration::from_secs(120),
        |_| {},
    );
    h.mean_throughput
}

fn bench_table1(c: &mut Criterion) {
    println!("\n──── Table I (quick mode) ────");
    let t = table1::run_table1(tiny_opts()).table();
    println!("{}", t.render());
    c.bench_function("table1/server_run_120s", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(one_run(
                AppKind::Bcp,
                Scheme::Base,
                Platform::Server {
                    uplink_bps: 320_000.0,
                },
                seed,
            ))
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    println!("\n──── Fig 8 (quick mode) ────");
    for t in fig8::run_fig8(tiny_opts()).tables() {
        println!("{}", t.render());
    }
    c.bench_function("fig8/ms_run_120s", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(one_run(AppKind::Bcp, Scheme::Ms, Platform::Phones, seed))
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    println!("\n──── Fig 9 (quick mode, n ≤ 2) ────");
    for t in fig9::run_fig9(tiny_opts(), 2).tables(2) {
        println!("{}", t.render());
    }
    c.bench_function("fig9/dist2_run_120s", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(one_run(
                AppKind::Bcp,
                Scheme::Dist(2),
                Platform::Phones,
                seed,
            ))
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    println!("\n──── Fig 10 (quick mode) ────");
    for t in fig10::run_fig10(tiny_opts()).tables() {
        println!("{}", t.render());
    }
    c.bench_function("fig10/rep2_run_120s", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(one_run(AppKind::Bcp, Scheme::Rep2, Platform::Phones, seed))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig8, bench_fig9, bench_fig10
}
criterion_main!(benches);
