//! Bench support crate. The benches live in `benches/`:
//!
//! * `kernels` — the real compute kernels (Haar counting, vision
//!   filters, SVM) and core data structures (bitmaps, integral images).
//! * `broadcast` — the multi-phase UDP broadcast engine (Fig 6).
//! * `paper_artifacts` — one bench per paper artifact (Table I,
//!   Figs 8–10): each prints a quick-mode rendition of the artifact
//!   once, then times a representative deployment run.

/// Marker so the crate builds as a lib target.
pub const ABOUT: &str = "see benches/";
