//! The thin global coordinator: cross-region concerns only.
//!
//! Lives on shard 0 with a fat cellular endpoint (it models the fixed
//! controller server's backhaul). All per-region mutable state lives in
//! the [`super::RegionController`]s; the coordinator keeps just enough
//! of a mirror — each region's current placement and stop flag — to
//! resolve inter-region wiring:
//!
//! * **Placement epochs.** Every accepted [`RegionStatus`] report bumps
//!   the epoch and re-resolves the wiring of the reported region and of
//!   every region upstream of it (upstreams may live in other groups,
//!   which is exactly why this cannot stay in a region controller).
//! * **Install brokering.** Bulk operator-code installs are shipped
//!   over the coordinator's fat endpoint so recovery timing does not
//!   serialize behind a region controller's thin uplink; the tagged
//!   completion is reported back as an [`InstallOutcome`].
//! * **Side-effect relays.** WiFi link flips and sensor re-pairing are
//!   zero-cost direct events into region shards; the coordinator delays
//!   them by the kernel lookahead so the region-controller → coordinator
//!   → region event chain stays legal under conservative sharding.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

use dsps::graph::{OpId, QueryGraph};
use dsps::node::{InterRegionLink, UpdateInterRegion};
use simkernel::{impl_actor_any, Actor, ActorId, Ctx, Event, EventBox, SimDuration};
use simnet::cellular::CellSend;
use simnet::stats::TrafficClass;
use simnet::wifi::WifiSetLink;
use simnet::{payload, TxFailed};

use super::msgs::{
    InstallOutcome, InstallOutcomeKind, RegionStatus, RelaySensorRedirect, RelayWifiLink,
    ShipInstall,
};
use super::Start;
use crate::msgs::wire;

/// Static description of one region as the coordinator sees it.
pub struct RegionWiring {
    /// The region's query network.
    pub graph: Arc<QueryGraph>,
    /// Downstream regions: (region index, source op fed there).
    pub downstream: Vec<(usize, OpId)>,
    /// Phone actor per slot.
    pub slot_actors: Vec<ActorId>,
    /// Initial operator → slot assignment.
    pub op_slot: Vec<u32>,
}

struct CoordRegion {
    wiring: RegionWiring,
    stopped: bool,
}

/// The global control-plane coordinator actor (shard 0).
pub struct Coordinator {
    cell: ActorId,
    /// Minimum delay stamped on direct sends into region shards.
    /// Deployments set this to the cellular downlink latency (rtt/2):
    /// relays model commands pushed over cellular without modelling
    /// the payload bytes, and a parallel kernel may use the same
    /// floor as a per-destination cross-shard bound.
    relay_delay: SimDuration,
    regions: Vec<CoordRegion>,
    /// Region controller owning each region (fan-out table for install
    /// outcomes).
    ctl_of_region: Vec<ActorId>,
    /// Monotone counter of accepted placement/stop reports. Every bump
    /// corresponds to one re-resolution of inter-region wiring.
    pub placement_epoch: u64,
    next_tag: u64,
    /// Outstanding shipped installs: tag → (region, slot).
    install_tags: BTreeMap<u64, (usize, u32)>,
}

impl Coordinator {
    /// Build the coordinator over all regions (global indices).
    pub fn new(
        cell: ActorId,
        relay_delay: SimDuration,
        wiring: Vec<RegionWiring>,
        ctl_of_region: Vec<ActorId>,
    ) -> Self {
        Coordinator {
            cell,
            relay_delay,
            regions: wiring
                .into_iter()
                .map(|wiring| CoordRegion {
                    wiring,
                    stopped: false,
                })
                .collect(),
            ctl_of_region,
            placement_epoch: 0,
            next_tag: 1,
            install_tags: BTreeMap::new(),
        }
    }

    fn send_ctl(&mut self, ctx: &mut Ctx, dst: ActorId, bytes: u64, ev: impl Event) {
        let src = ctx.self_id();
        let cell = self.cell;
        ctx.send(
            cell,
            CellSend {
                src,
                dst,
                class: TrafficClass::Control,
                bytes,
                tag: 0,
                payload: Some(payload(ev)),
            },
        );
    }

    /// Resolve the data destinations downstream of `region`, skipping
    /// stopped regions transitively (bypass, §III-D/E).
    fn resolve_downstream(&self, region: usize) -> Vec<(usize, OpId)> {
        let mut out = Vec::new();
        let mut stack: Vec<(usize, OpId)> = self.regions[region].wiring.downstream.clone();
        let mut seen = BTreeSet::new();
        while let Some((r, op)) = stack.pop() {
            if !seen.insert((r, op)) {
                continue;
            }
            if self.regions[r].stopped {
                stack.extend(self.regions[r].wiring.downstream.clone());
            } else {
                out.push((r, op));
            }
        }
        out.sort_unstable_by_key(|&(r, op)| (r, op.0));
        out
    }

    /// Install fresh inter-region links on `region`'s sink nodes.
    fn rewire_inter_region(&mut self, region: usize, ctx: &mut Ctx) {
        let downstream = self.resolve_downstream(region);
        let rt = &self.regions[region];
        if rt.stopped {
            return;
        }
        let mut per_slot: BTreeMap<u32, Vec<InterRegionLink>> = BTreeMap::new();
        for &sink in &rt.wiring.graph.sinks() {
            let slot = rt.wiring.op_slot[sink.index()];
            if slot == u32::MAX {
                continue;
            }
            let links: Vec<InterRegionLink> = downstream
                .iter()
                .map(|&(dr, dst_op)| {
                    let drt = &self.regions[dr].wiring;
                    let dst_slot = drt.op_slot[dst_op.index()];
                    InterRegionLink {
                        src_op: sink,
                        dst_actor: drt.slot_actors[dst_slot as usize],
                        dst_op,
                    }
                })
                .collect();
            per_slot.entry(slot).or_default().extend(links);
        }
        let sends: Vec<(ActorId, Vec<InterRegionLink>)> = per_slot
            .into_iter()
            .map(|(slot, links)| {
                (
                    self.regions[region].wiring.slot_actors[slot as usize],
                    links,
                )
            })
            .collect();
        for (dst, links) in sends {
            self.send_ctl(ctx, dst, wire::MEMBERSHIP, UpdateInterRegion { links });
        }
    }

    /// Regions that feed `region`.
    fn upstream_regions(&self, region: usize) -> Vec<usize> {
        (0..self.regions.len())
            .filter(|&r| {
                self.regions[r]
                    .wiring
                    .downstream
                    .iter()
                    .any(|&(d, _)| d == region)
            })
            .collect()
    }

    /// Accept a region's authoritative placement/stop report and
    /// re-resolve the wiring it can affect: the region's own sink links
    /// and every upstream region's (a stop/restart changes where
    /// upstream data flows; a placement change moves link endpoints).
    fn on_region_status(&mut self, st: RegionStatus, ctx: &mut Ctx) {
        {
            let rt = &mut self.regions[st.region];
            rt.wiring.op_slot = st.op_slot.as_ref().clone();
            rt.stopped = st.stopped;
        }
        self.placement_epoch += 1;
        ctx.count("coord.placement_epochs", 1);
        self.rewire_inter_region(st.region, ctx);
        for up in self.upstream_regions(st.region) {
            self.rewire_inter_region(up, ctx);
        }
    }

    /// Ship a region controller's bulk install over the fat endpoint,
    /// tracking the tagged completion.
    fn on_ship_install(&mut self, s: ShipInstall, ctx: &mut Ctx) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.install_tags.insert(tag, (s.region, s.slot));
        let src = ctx.self_id();
        let cell = self.cell;
        ctx.send(
            cell,
            CellSend {
                src,
                dst: s.dst,
                class: TrafficClass::Recovery,
                bytes: s.bytes,
                tag,
                payload: Some(payload(s.install)),
            },
        );
    }

    /// Report a shipped install's completion back to the owning region
    /// controller (delayed: the controller lives on a region shard).
    fn report_outcome(&mut self, tag: u64, kind: InstallOutcomeKind, ctx: &mut Ctx) {
        let Some((region, slot)) = self.install_tags.remove(&tag) else {
            return;
        };
        let ctl = self.ctl_of_region[region];
        ctx.send_in(self.relay_delay, ctl, InstallOutcome { region, slot, kind });
    }
}

impl Actor for Coordinator {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        simkernel::match_event!(ev,
            _s: Start => {
                for region in 0..self.regions.len() {
                    self.rewire_inter_region(region, ctx);
                }
            },
            st: RegionStatus => { self.on_region_status(st, ctx); },
            s: ShipInstall => { self.on_ship_install(s, ctx); },
            w: RelayWifiLink => {
                let delay = self.relay_delay;
                ctx.send_in(delay, w.wifi, WifiSetLink { node: w.node, state: w.state });
            },
            r: RelaySensorRedirect => {
                let delay = self.relay_delay;
                ctx.send_in(delay, r.sensor, r.redirect);
            },
            d: simnet::TxDone => {
                self.report_outcome(d.tag, InstallOutcomeKind::Delivered, ctx);
            },
            f: TxFailed => {
                self.report_outcome(f.tag, InstallOutcomeKind::Failed, ctx);
            },
            s: simnet::TxSevered => {
                self.report_outcome(s.tag, InstallOutcomeKind::Severed, ctx);
            },
            @else _other => {}
        );
    }

    fn name(&self) -> String {
        "ms-coordinator".into()
    }

    impl_actor_any!();
}
