//! Control-plane-internal events: region-controller timers and the
//! direct (zero-cost) messages exchanged between region controllers
//! and the global [`crate::controller::Coordinator`].
//!
//! These never touch the cellular network — region controller →
//! coordinator sends are legal zero-delay cross-shard events (any
//! shard may send into shard 0), while coordinator → region sends are
//! delayed by the cellular downlink latency before re-entering a
//! region shard (see `Coordinator::relay_delay`), which also keeps
//! them above the kernel's per-destination cross-shard bound.

use std::sync::Arc;

use simkernel::ActorId;
use simnet::LinkState;

/// Region-controller timer events.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CtlTimer {
    /// Periodic checkpoint trigger for a region.
    CheckpointTick { region: usize },
    /// Periodic source-node ping round (per region group).
    PingTick,
    /// Ping round deadline: unanswered nodes are dead.
    PingDeadline { round: u64 },
    /// Burst-gather window closed; run recovery for the region.
    RecoverNow { region: usize },
    /// Recovery-ack deadline passed; finish the region's recovery with
    /// whatever acks arrived.
    AckDeadline { region: usize },
    /// Capped-backoff probe of a region believed severed by a network
    /// partition. `epoch` guards against stale timers after a heal.
    ProbeSevered { region: usize, epoch: u64 },
    /// Same-tick coalescing point: membership changes recorded since
    /// the flush was scheduled go out as one batched delta per target.
    FlushDeltas { region: usize },
    /// Periodic reconciliation sweep over every region of the group.
    ReconcileTick,
}

/// Region controller → coordinator: authoritative placement / stop
/// state of one region. Each accepted report bumps the coordinator's
/// placement epoch and re-resolves the inter-region wiring of the
/// region and its upstreams.
#[derive(Debug, Clone)]
pub struct RegionStatus {
    /// Region reported.
    pub region: usize,
    /// Current operator → slot assignment.
    pub op_slot: Arc<Vec<u32>>,
    /// Whether the region is stopped (bypass active).
    pub stopped: bool,
}

/// Region controller → coordinator: ship a bulk operator-code install
/// to `dst` over the coordinator's fat cellular endpoint. The
/// coordinator owns the completion tag and reports back with
/// [`InstallOutcome`].
#[derive(Debug, Clone)]
pub struct ShipInstall {
    /// Region the install belongs to.
    pub region: usize,
    /// Slot being (re)installed.
    pub slot: u32,
    /// Target phone.
    pub dst: ActorId,
    /// Cellular bytes charged (operator code).
    pub bytes: u64,
    /// The install package.
    pub install: dsps::node::Install,
}

/// How a shipped install's cellular send completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallOutcomeKind {
    /// Delivered; nothing to do.
    Delivered,
    /// The target died before delivery.
    Failed,
    /// The send aged out behind a network partition.
    Severed,
}

/// Coordinator → region controller: completion of a [`ShipInstall`].
#[derive(Debug, Clone, Copy)]
pub struct InstallOutcome {
    /// Region the install belonged to.
    pub region: usize,
    /// Slot that was being installed.
    pub slot: u32,
    /// Completion kind.
    pub kind: InstallOutcomeKind,
}

/// Region controller → coordinator: flip a phone's WiFi link state.
/// Relayed because the WiFi medium lives on the phone's region shard,
/// which may differ from the region controller's shard within a group.
#[derive(Debug, Clone, Copy)]
pub struct RelayWifiLink {
    /// The region's WiFi medium.
    pub wifi: ActorId,
    /// The phone whose link changes.
    pub node: ActorId,
    /// New link state.
    pub state: LinkState,
}

/// Region controller → coordinator: re-pair a sensor with the phone
/// now hosting its source op (zero-cost direct event, relayed for the
/// same cross-shard reason as [`RelayWifiLink`]).
#[derive(Debug, Clone, Copy)]
pub struct RelaySensorRedirect {
    /// The sensor (workload driver) actor.
    pub sensor: ActorId,
    /// The redirect to deliver.
    pub redirect: dsps::workload::SensorRedirect,
}
