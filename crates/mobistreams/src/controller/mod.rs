//! The sharded MobiStreams control plane (§III-A, III-D, III-E).
//!
//! The paper describes one lightweight, reliable server reachable from
//! every phone over the cellular network ("used only for control
//! purposes and is not involved in any data transmission between
//! phones"). We reproduce it as a control *plane* split in two layers
//! so control traffic scales past ~10k phones and intra-region
//! supervision no longer serializes on the kernel's global shard:
//!
//! * [`RegionController`] — one actor per region *group*, placed on its
//!   first region's shard. It owns every piece of the group's mutable
//!   state: membership, checkpoint rounds, failure detection and
//!   recovery, departures, degraded proxies, partition probing. It
//!   converges phones onto the desired membership through an
//!   epoch-numbered event log of [`crate::msgs::SlotChange`] records,
//!   reconciled with batched per-phone deltas (see [`reconcile`]) —
//!   never a full-snapshot fan-out.
//! * [`Coordinator`] — a thin global actor on shard 0. It owns nothing
//!   but the cross-region concerns: placement epochs, inter-region
//!   wiring (re-resolved whenever a region reports a placement or
//!   stop/restart change), and brokering of bulk operator-code installs
//!   over its fat cellular endpoint. It also relays the few zero-cost
//!   side effects (WiFi link flips, sensor re-pairing) that would
//!   otherwise be illegal cross-shard sends.
//!
//! The split preserves the paper's protocol: checkpoint triggering and
//! commit, ping-based failure detection with burst gathering, recovery
//! with idle-preferred replacements, mobility hand-offs with urgent
//! (cellular) routing, stop/bypass/restart of underpopulated regions.

pub mod coordinator;
pub(crate) mod msgs;
pub mod reconcile;
pub mod region;

use std::sync::Arc;

use dsps::graph::{OpId, QueryGraph};
use dsps::placement::Placement;
use simkernel::{ActorId, SimDuration, SimTime};

pub use coordinator::{Coordinator, RegionWiring};
pub use region::RegionController;

/// Controller parameters (paper values as defaults).
#[derive(Debug, Clone)]
pub struct MsControllerConfig {
    /// Checkpoint period ("the checkpoint period in MobiStreams is 5
    /// minutes").
    pub ckpt_period: SimDuration,
    /// First checkpoint offset from start.
    pub ckpt_offset: SimDuration,
    /// Source-node ping period ("every 30 seconds").
    pub ping_period: SimDuration,
    /// Ping timeout ("the timeout period is 10 seconds").
    pub ping_timeout: SimDuration,
    /// Window for gathering a burst of failures into one recovery.
    pub gather_window: SimDuration,
    /// Operator code size shipped to replacements over cellular.
    pub code_bytes_per_op: u64,
    /// Fixed install overhead (WiFi rebuild, process start).
    pub ready_overhead: SimDuration,
    /// Extra install time per restored operator (flash read etc.).
    pub ready_per_op: SimDuration,
    /// Give up waiting for recovery acks after this long.
    pub ack_deadline: SimDuration,
    /// Declare a departure state transfer stalled (replacement dead)
    /// if its ack hasn't arrived after this long. Generous: a real
    /// transfer can legitimately take minutes over the slow cellular
    /// uplink, and a false stall re-introduces the rollback recovery
    /// departures are meant to avoid.
    pub transfer_stall_deadline: SimDuration,
    /// Periodic checkpointing on/off (off = Table I "fault tolerance
    /// function turned off").
    pub checkpoints_enabled: bool,
    /// First probe interval after a region is marked severed by a
    /// network partition.
    pub severed_probe_base: SimDuration,
    /// Cap on the severed-probe backoff.
    pub severed_probe_cap: SimDuration,
    /// Period of the membership reconciliation sweep: every tick each
    /// region controller pushes one catch-up delta to every active
    /// phone still behind the membership log head (usually none — the
    /// event-driven flush keeps stakeholders current).
    pub reconcile_period: SimDuration,
}

impl Default for MsControllerConfig {
    fn default() -> Self {
        MsControllerConfig {
            ckpt_period: SimDuration::from_secs(300),
            ckpt_offset: SimDuration::from_secs(60),
            ping_period: SimDuration::from_secs(30),
            ping_timeout: SimDuration::from_secs(10),
            gather_window: SimDuration::from_secs(2),
            code_bytes_per_op: 50_000,
            ready_overhead: SimDuration::from_secs(1),
            ready_per_op: SimDuration::from_millis(200),
            ack_deadline: SimDuration::from_secs(60),
            transfer_stall_deadline: SimDuration::from_secs(300),
            checkpoints_enabled: true,
            severed_probe_base: SimDuration::from_secs(2),
            severed_probe_cap: SimDuration::from_secs(32),
            reconcile_period: SimDuration::from_secs(30),
        }
    }
}

/// Static description of one region handed to its region controller.
pub struct RegionSpec {
    /// The region's query network.
    pub graph: Arc<QueryGraph>,
    /// Initial operator placement.
    pub placement: Placement,
    /// The region's WiFi medium actor.
    pub wifi: ActorId,
    /// Phone actor per slot.
    pub slot_actors: Vec<ActorId>,
    /// Downstream regions: (region index, source op fed there).
    pub downstream: Vec<(usize, OpId)>,
    /// Minimum active phones to keep the region running.
    pub min_active: u32,
    /// Phones required before a stopped region restarts (≈ the number
    /// of hosting slots, so the restart isn't hopelessly overloaded).
    pub restart_min: u32,
    /// Sensor (workload driver) actors to re-pair when a source op
    /// moves to another phone.
    pub sensors: Vec<ActorId>,
}

/// Recovery episode record (for experiment reports).
#[derive(Debug, Clone, Copy)]
pub struct RecoveryRecord {
    /// Region recovered.
    pub region: usize,
    /// Failure burst size.
    pub failures: usize,
    /// When recovery started (burst gathered).
    pub started: SimTime,
    /// When the region resumed (acks in, replay issued).
    pub finished: SimTime,
}

/// How long after a reconfiguration (recovery end, install ack) nodes
/// may stay quiet before their silence counts as a failure again.
pub(crate) const QUIET_GRACE: SimDuration = SimDuration::from_secs(20);

/// Control-plane startup trigger (scheduled by the deployment builder
/// to the coordinator and to every region controller).
#[derive(Debug, Clone, Copy)]
pub struct Start;

/// Convenience re-export for deployment code.
pub use dsps::node::Ping as NodePing;
