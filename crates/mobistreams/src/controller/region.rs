//! The per-region-group controller: owns its regions' mutable state.
//!
//! One `RegionController` supervises a contiguous group of regions and
//! lives on the shard of the group's first region, so the failure
//! detection / checkpoint / recovery chatter of a region group never
//! forces the global barrier. It:
//!
//! * triggers periodic checkpoints by notifying each region's source
//!   nodes, and commits a version once every hosting node reported in;
//! * detects failures: pings source nodes every 30 s (10 s timeout),
//!   receives upstream-neighbor reports for computing/sink nodes, and
//!   gathers *bursts* of simultaneous failures into one recovery;
//! * recovers: picks replacements (idle nodes preferred), has the
//!   [`super::Coordinator`] ship the operator code over its fat
//!   cellular endpoint, restores every node to the MRC, replays
//!   preserved inputs (catch-up);
//! * handles mobility: urgent mode (cellular routing) while a phone
//!   departs, state transfer to the replacement, rewiring;
//! * stops and bypasses a region with insufficient phones, restarting
//!   it when enough phones re-register;
//! * reconciles membership with epoch-numbered batched deltas (see
//!   [`super::reconcile`]) instead of full-snapshot fan-outs.
//!
//! Anything cross-region — inter-region wiring, placement epochs, bulk
//! install shipping — is delegated to the coordinator via the direct
//! messages in [`super::msgs`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use dsps::graph::{EdgeId, OpId};
use dsps::node::{Install, InstallStates, Pong, ReportDead, SetUrgentEdges, UpdateRouting};
use simkernel::{impl_actor_any, Actor, ActorId, Ctx, Event, EventBox, SimDuration, SimTime};
use simnet::cellular::{CellRx, CellSend};
use simnet::stats::TrafficClass;
use simnet::{payload, payload_as, LinkState, TxFailed};

use super::msgs::{
    CtlTimer, InstallOutcome, InstallOutcomeKind, RegionStatus, RelaySensorRedirect, RelayWifiLink,
    ShipInstall,
};
use super::reconcile::{MembershipLog, SuffixCache};
use super::{MsControllerConfig, RecoveryRecord, RegionSpec, Start, QUIET_GRACE};
use crate::msgs::*;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Active,
    Dead,
    Departing,
    Gone,
}

/// One in-flight departure state transfer (§III-E, Fig 7).
struct DepartingTransfer {
    /// Slot receiving the departing phone's operators.
    replacement: u32,
    /// When the transfer started. Bounds how long failure reports
    /// about the replacement are suppressed: past the ack deadline the
    /// transfer counts as stalled and the replacement is reportable
    /// again.
    started: SimTime,
    /// The edges this departure bridged over cellular (urgent mode).
    edges: Vec<EdgeId>,
}

/// Scope of a pending membership flush. `Stakeholders` reaches the
/// phones a change can affect promptly (hosting slots, the proxy
/// candidate, unsynced joiners); `AllActive` is the resync scope
/// (startup, partition heal, reconcile sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushScope {
    Stakeholders,
    AllActive,
}

struct RegionRt {
    spec: RegionSpec,
    /// Shared snapshot payload: built once, `Arc`ed into every
    /// membership snapshot instead of cloned per target.
    slot_actors: Arc<Vec<ActorId>>,
    op_slot: Vec<u32>,
    slot_state: Vec<SlotState>,
    version: u64,
    last_complete: u64,
    ckpt_expected: BTreeSet<u32>,
    ckpt_got: BTreeSet<u32>,
    pending_failures: BTreeSet<u32>,
    recover_scheduled: bool,
    recovering: bool,
    recovery_started: SimTime,
    recovery_failures: usize,
    outstanding_acks: BTreeSet<u32>,
    last_recovery_end: SimTime,
    stopped: bool,
    /// In-flight departure transfers, keyed by the departing slot.
    /// Each carries the urgent edges it bridges; the union over the
    /// map is the region's current urgent-mode edge set.
    departing_transfers: BTreeMap<u32, DepartingTransfer>,
    /// Urgent edges bridged by *degraded* departures (no replacement
    /// was available; the departed phone keeps computing over
    /// cellular). These must survive other transfers' releases and
    /// are torn down only when the slot rejoins or its operators are
    /// recovered onto a healthy phone.
    degraded_urgent: BTreeMap<u32, Vec<EdgeId>>,
    // Slots that recently finished loading an Install: while a
    // replacement loads state it answers nothing, so peers may report
    // it dead; such reports stay invalid for a short grace period
    // after the ack too (they can already be in flight).
    recent_installs: BTreeMap<u32, SimTime>,
    /// The region is behind a network partition: tagged controller
    /// sends came back severed. Checkpoint rounds freeze, silence is
    /// not treated as death, and a capped-backoff probe loop watches
    /// for the heal.
    severed: bool,
    /// Invalidates in-flight `ProbeSevered` timers across heal cycles.
    probe_epoch: u64,
    /// Current probe backoff (doubles to the configured cap).
    probe_backoff: SimDuration,
    /// Epoch-numbered membership event log + per-phone observed epoch.
    log: MembershipLog,
    /// Scope of the flush scheduled for this tick, if any. Consecutive
    /// membership changes within one tick coalesce into the one
    /// pending flush instead of each fanning out its own update.
    pending_flush: Option<FlushScope>,
}

impl RegionRt {
    fn active_slots(&self) -> Vec<u32> {
        (0..self.slot_state.len() as u32)
            .filter(|&s| self.slot_state[s as usize] == SlotState::Active)
            .collect()
    }

    fn hosting_slots(&self) -> BTreeSet<u32> {
        self.op_slot
            .iter()
            .copied()
            .filter(|&s| s != u32::MAX)
            .collect()
    }

    fn idle_active_slots(&self) -> Vec<u32> {
        let hosting = self.hosting_slots();
        self.active_slots()
            .into_iter()
            .filter(|s| !hosting.contains(s))
            .collect()
    }

    fn ops_on(&self, slot: u32) -> Vec<OpId> {
        self.op_slot
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == slot)
            .map(|(i, _)| OpId(i as u32))
            .collect()
    }

    fn source_slots(&self) -> BTreeSet<u32> {
        self.spec
            .graph
            .sources()
            .iter()
            .map(|&op| self.op_slot[op.index()])
            .filter(|&s| s != u32::MAX)
            .collect()
    }
}

/// The per-region-group controller actor.
pub struct RegionController {
    cfg: MsControllerConfig,
    cell: ActorId,
    coordinator: ActorId,
    group: usize,
    /// First global region index of the group (regions are contiguous).
    first_region: usize,
    regions: Vec<RegionRt>,
    ping_round: u64,
    ping_outstanding: BTreeMap<u64, BTreeSet<(usize, u32)>>,
    next_tag: u64,
    /// Tagged ping/probe sends: tag → target region. A `TxSevered`
    /// completion on one of these is the evidence that marks the
    /// region severed (a `TxFailed` just means the pinged phone died —
    /// the ping deadline already covers that). Install severing
    /// arrives as an [`InstallOutcome`] from the coordinator instead.
    ping_tags: BTreeMap<u64, usize>,
    /// Partition episodes observed: (region, severed at, healed at).
    /// Harvested by experiments for recovery timelines.
    pub severed_episodes: Vec<(usize, SimTime, SimTime)>,
    /// Start times of still-open partition episodes per region.
    severed_open: BTreeMap<usize, SimTime>,
    /// Completed recoveries (harvested by experiments).
    pub recoveries: Vec<RecoveryRecord>,
    /// Departure replacements completed.
    pub departures_handled: u64,
    /// Checkpoint versions committed per region.
    pub commits: Vec<(usize, u64, SimTime)>,
    /// Regions currently stopped (bypass active).
    pub stops: u64,
    /// Re-registered op-owning slots waiting for the current recovery
    /// to finish before their reinstall runs.
    pending_reinstalls: Vec<(usize, u32)>,
    /// Membership messages sent (snapshots + deltas) — the churn-storm
    /// complexity tests assert these scale with delta size, not region
    /// population.
    pub membership_msgs: u64,
    /// Membership bytes sent.
    pub membership_bytes: u64,
}

impl RegionController {
    /// Build a controller over the contiguous region group starting at
    /// global index `first_region`.
    pub fn new(
        cfg: MsControllerConfig,
        cell: ActorId,
        coordinator: ActorId,
        group: usize,
        first_region: usize,
        specs: Vec<RegionSpec>,
    ) -> Self {
        let regions = specs
            .into_iter()
            .map(|spec| {
                let slots = spec.slot_actors.len();
                RegionRt {
                    slot_actors: Arc::new(spec.slot_actors.clone()),
                    op_slot: spec.placement.op_slot.clone(),
                    slot_state: vec![SlotState::Active; slots],
                    version: 0,
                    last_complete: 0,
                    ckpt_expected: BTreeSet::new(),
                    ckpt_got: BTreeSet::new(),
                    pending_failures: BTreeSet::new(),
                    recover_scheduled: false,
                    recovering: false,
                    recovery_started: SimTime::ZERO,
                    recovery_failures: 0,
                    outstanding_acks: BTreeSet::new(),
                    last_recovery_end: SimTime::ZERO,
                    stopped: false,
                    departing_transfers: BTreeMap::new(),
                    degraded_urgent: BTreeMap::new(),
                    recent_installs: BTreeMap::new(),
                    severed: false,
                    probe_epoch: 0,
                    probe_backoff: SimDuration::ZERO,
                    log: MembershipLog::new(slots),
                    pending_flush: None,
                    spec,
                }
            })
            .collect();
        RegionController {
            cfg,
            cell,
            coordinator,
            group,
            first_region,
            regions,
            ping_round: 0,
            ping_outstanding: BTreeMap::new(),
            next_tag: 1,
            ping_tags: BTreeMap::new(),
            severed_episodes: Vec::new(),
            severed_open: BTreeMap::new(),
            recoveries: Vec::new(),
            departures_handled: 0,
            commits: Vec::new(),
            stops: 0,
            pending_reinstalls: Vec::new(),
            membership_msgs: 0,
            membership_bytes: 0,
        }
    }

    /// The group this controller owns.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Global region indices of the group.
    pub fn region_indices(&self) -> std::ops::Range<usize> {
        self.first_region..self.first_region + self.regions.len()
    }

    fn rt(&self, region: usize) -> &RegionRt {
        &self.regions[region - self.first_region]
    }

    fn rt_mut(&mut self, region: usize) -> &mut RegionRt {
        &mut self.regions[region - self.first_region]
    }

    /// Validate a `(region, slot)` pair arriving in a remote message.
    /// A fleet-scale deployment must shrug off a malformed, stale or
    /// out-of-group message rather than panic the controller (and with
    /// it every region of the group at once).
    fn valid_slot(&self, region: usize, slot: u32, ctx: &mut Ctx) -> bool {
        let ok = region >= self.first_region
            && self
                .regions
                .get(region - self.first_region)
                .is_some_and(|rt| (slot as usize) < rt.slot_state.len());
        if !ok {
            ctx.count("ctl.malformed_msgs", 1);
        }
        ok
    }

    /// Latest committed checkpoint version of a region.
    pub fn last_complete(&self, region: usize) -> u64 {
        self.rt(region).last_complete
    }

    /// Is the region currently stopped (bypassed)?
    pub fn is_stopped(&self, region: usize) -> bool {
        self.rt(region).stopped
    }

    fn send_ctl(&mut self, ctx: &mut Ctx, dst: ActorId, bytes: u64, ev: impl Event) {
        let src = ctx.self_id();
        let cell = self.cell;
        ctx.send(
            cell,
            CellSend {
                src,
                dst,
                class: TrafficClass::Control,
                bytes,
                tag: 0,
                payload: Some(payload(ev)),
            },
        );
    }

    /// Record any slot-activity transitions into the region's
    /// membership log and make sure a flush is pending for this tick.
    /// Consecutive calls within one tick (e.g. a rejoin that also
    /// triggers a reinstall) coalesce into a single flush.
    fn membership_changed(&mut self, region: usize, scope: FlushScope, ctx: &mut Ctx) {
        let rt = self.rt_mut(region);
        for s in 0..rt.slot_state.len() {
            let active = rt.slot_state[s] == SlotState::Active;
            rt.log.record(s as u32, active);
        }
        match rt.pending_flush {
            Some(FlushScope::AllActive) => {}
            Some(FlushScope::Stakeholders) => {
                if scope == FlushScope::AllActive {
                    rt.pending_flush = Some(FlushScope::AllActive);
                }
            }
            None => {
                rt.pending_flush = Some(scope);
                let me = ctx.self_id();
                ctx.send(me, CtlTimer::FlushDeltas { region });
            }
        }
    }

    fn on_flush(&mut self, region: usize, ctx: &mut Ctx) {
        let Some(scope) = self.rt_mut(region).pending_flush.take() else {
            return;
        };
        self.send_deltas(region, scope, ctx);
    }

    /// Push membership toward the log head for the scoped targets:
    /// phones with no known epoch get one shared-`Arc` snapshot, every
    /// other lagging phone gets the batched change suffix from its
    /// observed epoch (suffixes shared across targets). Phones already
    /// at the head get nothing.
    fn send_deltas(&mut self, region: usize, scope: FlushScope, ctx: &mut Ctx) {
        let (snapshots, snapshot, deltas) = {
            let rt = self.rt_mut(region);
            // Behind a partition every send would age out unobserved;
            // the heal resync resets observed epochs and re-flushes.
            if rt.severed {
                return;
            }
            let head = rt.log.head();
            let active = rt.active_slots();
            let targets: Vec<u32> = match scope {
                FlushScope::AllActive => active,
                FlushScope::Stakeholders => {
                    let hosting = rt.hosting_slots();
                    let proxy = active.first().copied();
                    active
                        .into_iter()
                        .filter(|&s| {
                            hosting.contains(&s) || Some(s) == proxy || rt.log.observed(s).is_none()
                        })
                        .collect()
                }
            };
            let mut snapshots: Vec<ActorId> = Vec::new();
            let mut deltas: Vec<(ActorId, MembershipDelta)> = Vec::new();
            let mut cache = SuffixCache::new();
            let mut active_arc: Option<Arc<Vec<u32>>> = None;
            for slot in targets {
                let dst = rt.slot_actors[slot as usize];
                match rt.log.observed(slot) {
                    None => {
                        snapshots.push(dst);
                        rt.log.note_synced(slot, head);
                    }
                    Some(base) if base < head => {
                        let (base, changes) = cache.for_base(&rt.log, base);
                        deltas.push((
                            dst,
                            MembershipDelta {
                                base_epoch: base,
                                epoch: head,
                                changes,
                            },
                        ));
                        rt.log.note_synced(slot, head);
                    }
                    Some(_) => {}
                }
            }
            let snapshot = if snapshots.is_empty() {
                None
            } else {
                let active = active_arc
                    .get_or_insert_with(|| Arc::new(rt.active_slots()))
                    .clone();
                Some(MembershipUpdate {
                    slot_actors: Arc::clone(&rt.slot_actors),
                    active_slots: active,
                    epoch: head,
                })
            };
            (snapshots, snapshot, deltas)
        };
        if let Some(update) = snapshot {
            for dst in snapshots {
                self.membership_msgs += 1;
                self.membership_bytes += wire::MEMBERSHIP;
                ctx.count("ctl.membership_msgs", 1);
                self.send_ctl(ctx, dst, wire::MEMBERSHIP, update.clone());
            }
        }
        for (dst, delta) in deltas {
            let bytes = wire::DELTA_BASE + wire::DELTA_PER_CHANGE * delta.changes.len() as u64;
            self.membership_msgs += 1;
            self.membership_bytes += bytes;
            ctx.count("ctl.membership_msgs", 1);
            self.send_ctl(ctx, dst, bytes, delta);
        }
    }

    fn on_reconcile_tick(&mut self, ctx: &mut Ctx) {
        let me = ctx.self_id();
        ctx.send_in(self.cfg.reconcile_period, me, CtlTimer::ReconcileTick);
        for region in self.region_indices() {
            self.send_deltas(region, FlushScope::AllActive, ctx);
        }
    }

    /// Re-pair sensors with the phones now hosting the source ops
    /// (zero-cost events: the camera physically pairs with the
    /// adjacent phone). Relayed through the coordinator: the sensors
    /// live on their region's shard, which within a group may differ
    /// from this controller's.
    fn redirect_sensors(&mut self, region: usize, ctx: &mut Ctx) {
        let rt = self.rt(region);
        if rt.spec.sensors.is_empty() {
            return;
        }
        let mut redirects = Vec::new();
        for &op in &rt.spec.graph.sources() {
            let slot = rt.op_slot[op.index()];
            if slot != u32::MAX {
                redirects.push(dsps::workload::SensorRedirect {
                    op,
                    actor: rt.spec.slot_actors[slot as usize],
                });
            }
        }
        let coordinator = self.coordinator;
        for &sensor in &self.rt(region).spec.sensors.clone() {
            for &redirect in &redirects {
                ctx.send(coordinator, RelaySensorRedirect { sensor, redirect });
            }
        }
    }

    /// Push the region's routing tables to the phones that forward
    /// data: hosting phones plus degraded departed phones still
    /// computing over cellular. (Idle phones receive their tables with
    /// the `Install` if they ever become replacements.)
    fn push_routing(&mut self, region: usize, ctx: &mut Ctx) {
        let (update, targets) = {
            let rt = self.rt(region);
            let hosting = rt.hosting_slots();
            let mut slots: BTreeSet<u32> = rt
                .active_slots()
                .into_iter()
                .filter(|s| hosting.contains(s))
                .collect();
            slots.extend(rt.degraded_urgent.keys().copied());
            (
                UpdateRouting {
                    op_slot: Some(rt.op_slot.clone()),
                    slot_actors: Some(rt.spec.slot_actors.clone()),
                },
                slots
                    .into_iter()
                    .map(|s| rt.spec.slot_actors[s as usize])
                    .collect::<Vec<_>>(),
            )
        };
        for dst in targets {
            self.send_ctl(ctx, dst, wire::MEMBERSHIP, update.clone());
        }
    }

    /// Report this region's placement / stop state to the coordinator,
    /// which bumps the placement epoch and re-resolves inter-region
    /// wiring for the region and its upstreams.
    fn send_status(&mut self, region: usize, ctx: &mut Ctx) {
        let rt = self.rt(region);
        let status = RegionStatus {
            region,
            op_slot: Arc::new(rt.op_slot.clone()),
            stopped: rt.stopped,
        };
        let coordinator = self.coordinator;
        ctx.send(coordinator, status);
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        for region in self.region_indices() {
            self.membership_changed(region, FlushScope::AllActive, ctx);
            if self.cfg.checkpoints_enabled {
                let me = ctx.self_id();
                ctx.send_in(
                    self.cfg.ckpt_offset,
                    me,
                    CtlTimer::CheckpointTick { region },
                );
            }
        }
        let me = ctx.self_id();
        ctx.send_in(self.cfg.ping_period, me, CtlTimer::PingTick);
        ctx.send_in(self.cfg.reconcile_period, me, CtlTimer::ReconcileTick);
    }

    /// The in-region phone that relays a degraded slot's cellular
    /// snapshots onto WiFi: any active phone (lowest slot for
    /// determinism).
    fn pick_proxy(&self, region: usize, degraded: u32) -> Option<ActorId> {
        let rt = self.rt(region);
        rt.active_slots()
            .into_iter()
            .find(|&s| s != degraded)
            .map(|s| rt.spec.slot_actors[s as usize])
    }

    fn on_ckpt_tick(&mut self, region: usize, ctx: &mut Ctx) {
        let me = ctx.self_id();
        ctx.send_in(
            self.cfg.ckpt_period,
            me,
            CtlTimer::CheckpointTick { region },
        );
        {
            let rt = self.rt_mut(region);
            if rt.stopped || rt.recovering {
                return;
            }
            // Behind a partition no trigger would arrive and no report
            // would return: freeze the round counter so the in-flight
            // round can still commit from retried reports after the
            // heal instead of being obsoleted by a stillborn round.
            if rt.severed {
                return;
            }
            rt.version += 1;
            rt.ckpt_expected = rt.hosting_slots();
            rt.ckpt_got = BTreeSet::new();
        }
        let (version, targets, degraded) = {
            let rt = self.rt(region);
            // Degraded slots (departed, no replacement) keep computing
            // over cellular and stay in `ckpt_expected` — a degraded
            // *source* must still receive the round trigger, which
            // reaches it over its live cellular link.
            let targets: Vec<ActorId> = rt
                .source_slots()
                .into_iter()
                .filter(|&s| {
                    rt.slot_state[s as usize] == SlotState::Active
                        || rt.degraded_urgent.contains_key(&s)
                })
                .map(|s| rt.spec.slot_actors[s as usize])
                .collect();
            let degraded: Vec<u32> = rt.degraded_urgent.keys().copied().collect();
            (rt.version, targets, degraded)
        };
        // Refresh each degraded slot's snapshot proxy once per round so
        // proxy churn (the relay failing or departing) self-heals.
        // Sent BEFORE StartCheckpoint: both ride the same FIFO cellular
        // path, and a degraded mixed source+compute node snapshots the
        // moment the trigger arrives — with the old ordering it would
        // ship this round's snapshot to the previous round's (possibly
        // departed) proxy and lose the round.
        for slot in degraded {
            if let Some(proxy) = self.pick_proxy(region, slot) {
                let dst = self.rt(region).spec.slot_actors[slot as usize];
                self.send_ctl(ctx, dst, wire::CONTROL, DegradedCheckpointVia { proxy });
            }
        }
        for dst in targets {
            self.send_ctl(ctx, dst, wire::CONTROL, StartCheckpoint { version });
        }
        ctx.count("ctl.ckpt_rounds", 1);
    }

    fn on_node_checkpointed(&mut self, m: NodeCheckpointed, ctx: &mut Ctx) {
        if !self.valid_slot(m.region, m.slot, ctx) {
            return;
        }
        let region = m.region;
        let rt = self.rt_mut(region);
        if m.version != rt.version {
            return;
        }
        // Record the snapshot even while a recovery is reconfiguring
        // the region — the commit itself waits for the recovery to end
        // (see `finish_recovery`), but dropping the report would stall
        // an otherwise complete round a whole extra epoch.
        rt.ckpt_got.insert(m.slot);
        self.try_commit_round(region, ctx);
    }

    /// Commit the in-flight checkpoint round if every expected slot has
    /// reported. Called whenever `ckpt_got` grows — and whenever a slot
    /// *leaves* `ckpt_expected` (degraded rejoin/replacement) or a
    /// recovery ends, or an already-complete round would stall an
    /// extra epoch.
    fn try_commit_round(&mut self, region: usize, ctx: &mut Ctx) {
        let rt = self.rt_mut(region);
        if rt.recovering || rt.stopped {
            return;
        }
        // `last_complete >= version` also guards double commits: a
        // duplicate report (e.g. a proxy relay racing a rejoin) must
        // not commit the same round twice.
        if rt.version == 0 || rt.last_complete >= rt.version {
            return;
        }
        if rt.ckpt_expected.is_empty() || !rt.ckpt_got.is_superset(&rt.ckpt_expected) {
            return;
        }
        let version = rt.version;
        rt.last_complete = version;
        self.commits.push((region, version, ctx.now()));
        let targets: Vec<ActorId> = {
            let rt = self.rt(region);
            // Degraded slots are not "active" but participate in every
            // round over cellular — without the commit notice their
            // stores never GC and grow by a full state copy plus an
            // epoch's preserved inputs per tick, unbounded for the
            // life of the degradation.
            rt.active_slots()
                .into_iter()
                .chain(rt.degraded_urgent.keys().copied())
                .map(|s| rt.spec.slot_actors[s as usize])
                .collect()
        };
        for dst in targets {
            self.send_ctl(ctx, dst, wire::CONTROL, CheckpointComplete { version });
        }
    }

    fn on_ping_tick(&mut self, ctx: &mut Ctx) {
        let me = ctx.self_id();
        ctx.send_in(self.cfg.ping_period, me, CtlTimer::PingTick);
        self.ping_round += 1;
        let round = self.ping_round;
        let mut outstanding = BTreeSet::new();
        let mut targets = Vec::new();
        for (i, rt) in self.regions.iter().enumerate() {
            let r = self.first_region + i;
            // Severed regions are unreachable, not dead: pinging them
            // would only arm deadlines that misread weather as failure.
            // The probe loop owns contact until the heal.
            if rt.stopped || rt.severed {
                continue;
            }
            for s in rt.source_slots() {
                if rt.slot_state[s as usize] == SlotState::Active {
                    outstanding.insert((r, s));
                    targets.push((r, rt.spec.slot_actors[s as usize]));
                }
            }
        }
        if outstanding.is_empty() {
            return;
        }
        self.ping_outstanding.insert(round, outstanding);
        for (r, dst) in targets {
            // Tagged so a partition answers with `TxSevered` evidence
            // before the ping deadline can misfire.
            self.send_ping_tagged(ctx, dst, r, round);
        }
        let me = ctx.self_id();
        ctx.send_in(self.cfg.ping_timeout, me, CtlTimer::PingDeadline { round });
    }

    fn on_ping_deadline(&mut self, round: u64, ctx: &mut Ctx) {
        let Some(unanswered) = self.ping_outstanding.remove(&round) else {
            return;
        };
        for (region, slot) in unanswered {
            self.note_failure(region, slot, ctx);
        }
    }

    /// Send a liveness/heal probe whose completion is tracked: `TxDone`
    /// clears the tag, `TxSevered` is partition evidence for `region`.
    fn send_ping_tagged(&mut self, ctx: &mut Ctx, dst: ActorId, region: usize, nonce: u64) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.ping_tags.insert(tag, region);
        let src = ctx.self_id();
        let cell = self.cell;
        ctx.send(
            cell,
            CellSend {
                src,
                dst,
                class: TrafficClass::Control,
                bytes: wire::PING,
                tag,
                payload: Some(payload(dsps::node::Ping { nonce })),
            },
        );
    }

    /// A tagged controller send aged out behind a partition: the whole
    /// region is unreachable, not one phone dead.
    fn on_tx_severed(&mut self, tag: u64, ctx: &mut Ctx) {
        if let Some(region) = self.ping_tags.remove(&tag) {
            self.mark_severed(region, ctx);
        }
    }

    /// Partition evidence: freeze supervision of the region and start
    /// the capped-backoff probe loop that watches for the heal.
    fn mark_severed(&mut self, region: usize, ctx: &mut Ctx) {
        let base = self.cfg.severed_probe_base;
        let rt = self.rt_mut(region);
        if rt.stopped || rt.severed {
            return;
        }
        rt.severed = true;
        // Amnesty for failures noted in the evidence gap just before
        // the partition was recognized: their silence was the weather.
        // Anything genuinely dead is re-detected by post-heal pings.
        for s in std::mem::take(&mut rt.pending_failures) {
            if rt.slot_state[s as usize] == SlotState::Dead {
                rt.slot_state[s as usize] = SlotState::Active;
            }
        }
        rt.probe_epoch += 1;
        rt.probe_backoff = base;
        let epoch = rt.probe_epoch;
        self.severed_open.entry(region).or_insert_with(|| ctx.now());
        ctx.count("ctl.regions_severed", 1);
        let me = ctx.self_id();
        ctx.send_in(base, me, CtlTimer::ProbeSevered { region, epoch });
    }

    /// Probe a severed region: one tagged ping at the current backoff.
    /// Severed again → the next probe waits twice as long (capped).
    fn on_probe_severed(&mut self, region: usize, epoch: u64, ctx: &mut Ctx) {
        let cap = self.cfg.severed_probe_cap;
        let (target, next) = {
            let rt = self.rt_mut(region);
            if !rt.severed || rt.probe_epoch != epoch {
                return;
            }
            rt.probe_backoff = rt.probe_backoff.saturating_mul(2).min(cap);
            let target = rt
                .active_slots()
                .first()
                .map(|&s| rt.spec.slot_actors[s as usize]);
            (target, rt.probe_backoff)
        };
        if let Some(dst) = target {
            self.send_ping_tagged(ctx, dst, region, 0);
        }
        let me = ctx.self_id();
        ctx.send_in(next, me, CtlTimer::ProbeSevered { region, epoch });
    }

    /// Any message from a severed region is proof the partition healed.
    fn note_region_contact(&mut self, region: usize, ctx: &mut Ctx) {
        let in_group =
            region >= self.first_region && region < self.first_region + self.regions.len();
        if in_group && self.rt(region).severed {
            self.mark_healed(region, ctx);
        }
    }

    /// The partition healed: resume supervision and resync the region's
    /// view (membership, routing, sensors, inter-region wiring) WITHOUT
    /// rolling anything back — the phones kept computing on WiFi the
    /// whole time, and the frozen round commits from retried reports
    /// (the `last_complete >= version` guard makes double commits
    /// impossible).
    fn mark_healed(&mut self, region: usize, ctx: &mut Ctx) {
        {
            let rt = self.rt_mut(region);
            if !rt.severed {
                return;
            }
            rt.severed = false;
            rt.probe_epoch += 1;
            rt.probe_backoff = SimDuration::ZERO;
            // Sends into the region aged out unobserved while severed:
            // nothing can be assumed about any phone's membership
            // epoch. Snapshot everyone on the next flush.
            rt.log.reset_all();
        }
        if let Some(start) = self.severed_open.remove(&region) {
            self.severed_episodes.push((region, start, ctx.now()));
        }
        ctx.count("ctl.regions_healed", 1);
        self.membership_changed(region, FlushScope::AllActive, ctx);
        self.push_routing(region, ctx);
        self.redirect_sensors(region, ctx);
        self.send_status(region, ctx);
        self.try_commit_round(region, ctx);
    }

    fn note_failure(&mut self, region: usize, slot: u32, ctx: &mut Ctx) {
        if !self.valid_slot(region, slot, ctx) {
            return;
        }
        let gather_window = self.cfg.gather_window;
        let transfer_stall = self.cfg.transfer_stall_deadline;
        let rt = self.rt_mut(region);
        if rt.stopped {
            return;
        }
        // Severed by a partition: silence is the weather, not death.
        // Post-heal pings re-detect any phone that really died.
        if rt.severed {
            return;
        }
        // While a recovery is reconfiguring the region (and shortly
        // after), nodes legitimately go quiet — don't let that look
        // like fresh failures.
        if rt.recovering
            || (rt.last_recovery_end != SimTime::ZERO
                && ctx.now().since(rt.last_recovery_end) < QUIET_GRACE)
        {
            return;
        }
        match rt.slot_state[slot as usize] {
            SlotState::Active => {}
            // Departures have their own flow (§III-E); dead/gone slots
            // are already being handled.
            SlotState::Departing | SlotState::Dead | SlotState::Gone => return,
        }
        // A departure replacement is loading the transferred state: it
        // answers nothing while installing, so peers legitimately
        // report it silent. No rollback for departures (§III-E) — but
        // only within the ack deadline: a transfer that never acks
        // means the replacement itself died, and must become
        // reportable again or its operators are lost for good.
        let stalled_transfer = rt
            .departing_transfers
            .iter()
            .find(|(_, t)| t.replacement == slot)
            .map(|(&d, t)| (d, t.started));
        let mut stalled_edges: Option<Vec<EdgeId>> = None;
        if let Some((departing, started)) = stalled_transfer {
            if ctx.now().since(started) < transfer_stall {
                return;
            }
            // Stalled: drop the transfer so the recovery below can
            // restore the moved operators from the MRC. The departing
            // phone left long ago — it is gone, not failed. Its
            // urgent (cellular) bridging only existed for the
            // transfer, so it is released too (the recovery rebuilds
            // the WiFi routing anyway).
            let t = rt.departing_transfers.remove(&departing);
            rt.slot_state[departing as usize] = SlotState::Gone;
            stalled_edges = t.map(|t| t.edges);
        }
        if let Some(&done_at) = rt.recent_installs.get(&slot) {
            if ctx.now().since(done_at) < QUIET_GRACE {
                return;
            }
        }
        rt.slot_state[slot as usize] = SlotState::Dead;
        rt.pending_failures.insert(slot);
        ctx.count("ctl.failures_noted", 1);
        if !rt.recover_scheduled {
            rt.recover_scheduled = true;
            if rt.pending_failures.len() == 1 {
                rt.recovery_started = ctx.now();
            }
            let me = ctx.self_id();
            ctx.send_in(gather_window, me, CtlTimer::RecoverNow { region });
        }
        if let Some(edges) = stalled_edges {
            self.release_urgent_edges(region, &edges, ctx);
        }
    }

    /// Tear down urgent (cellular) routing for the edges of one
    /// finished or stalled departure transfer, keeping any edge some
    /// other in-flight transfer still bridges.
    fn release_urgent_edges(&mut self, region: usize, edges: &[EdgeId], ctx: &mut Ctx) {
        let (off, targets) = {
            let rt = self.rt_mut(region);
            let still_needed: BTreeSet<EdgeId> = rt
                .departing_transfers
                .values()
                .flat_map(|t| t.edges.iter().copied())
                .chain(rt.degraded_urgent.values().flatten().copied())
                .collect();
            let off: Vec<EdgeId> = edges
                .iter()
                .copied()
                .filter(|e| !still_needed.contains(e))
                .collect();
            if off.is_empty() {
                return;
            }
            let targets: Vec<ActorId> = rt
                .active_slots()
                .into_iter()
                .map(|s| rt.spec.slot_actors[s as usize])
                .collect();
            (off, targets)
        };
        for dst in targets {
            self.send_ctl(
                ctx,
                dst,
                wire::CONTROL,
                SetUrgentEdges {
                    edges: off.clone(),
                    on: false,
                },
            );
        }
    }

    fn stop_region(&mut self, region: usize, ctx: &mut Ctx) {
        self.rt_mut(region).stopped = true;
        self.stops += 1;
        ctx.count("ctl.region_stops", 1);
        // Bypass: the coordinator re-resolves every upstream region's
        // downstream wiring (upstreams may live in other groups).
        self.send_status(region, ctx);
    }

    /// Hand a bulk install to the coordinator, which ships it over its
    /// fat cellular endpoint and reports the tagged completion back as
    /// an [`InstallOutcome`].
    fn ship_install(
        &mut self,
        ctx: &mut Ctx,
        region: usize,
        slot: u32,
        dst: ActorId,
        bytes: u64,
        install: Install,
    ) {
        let coordinator = self.coordinator;
        ctx.send(
            coordinator,
            ShipInstall {
                region,
                slot,
                dst,
                bytes,
                install,
            },
        );
    }

    fn on_recover_now(&mut self, region: usize, ctx: &mut Ctx) {
        let now = ctx.now();
        let (failed, version, hosting_failed) = {
            let rt = self.rt_mut(region);
            rt.recover_scheduled = false;
            if rt.stopped {
                rt.pending_failures.clear();
                return;
            }
            // Partition evidence arrived after the burst gathered:
            // launching a recovery at an unreachable region would only
            // reassign operators nobody can be told about. The heal
            // resync re-detects any real deaths.
            if rt.severed {
                rt.pending_failures.clear();
                return;
            }
            let failed: Vec<u32> = std::mem::take(&mut rt.pending_failures)
                .into_iter()
                .collect();
            if failed.is_empty() {
                return;
            }
            rt.recovering = true;
            rt.recovery_failures = failed.len();
            if rt.recovery_started == SimTime::ZERO {
                rt.recovery_started = now;
            }
            let hosting_failed: Vec<u32> = failed
                .iter()
                .copied()
                .filter(|&s| !rt.ops_on(s).is_empty())
                .collect();
            (failed, rt.last_complete, hosting_failed)
        };
        let _ = failed;

        // Pick replacements for every failed hosting slot: idle nodes
        // preferred ("the controller can select any healthy node in the
        // region (idle nodes are preferred)"), then spread over healthy
        // hosting nodes round-robin — every node holds the MRC copy, so
        // any of them can restore any operator.
        let mut replacements: Vec<(u32, u32)> = Vec::new(); // (failed, replacement)
        {
            let rt = self.rt(region);
            let mut idle = rt.idle_active_slots();
            let survivors: Vec<u32> = rt
                .active_slots()
                .into_iter()
                .filter(|s| !idle.contains(s))
                .collect();
            let mut rr = 0usize;
            for &f in &hosting_failed {
                if let Some(r) = idle.pop() {
                    replacements.push((f, r));
                } else if !survivors.is_empty() {
                    replacements.push((f, survivors[rr % survivors.len()]));
                    rr += 1;
                } else {
                    break;
                }
            }
        }
        if replacements.len() < hosting_failed.len() {
            // No healthy phone at all: stop and bypass the region until
            // phones re-register (reboot path).
            self.rt_mut(region).recovering = false;
            self.stop_region(region, ctx);
            return;
        }
        // Apply the new assignment.
        {
            let rt = self.rt_mut(region);
            for &(f, r) in &replacements {
                for s in rt.op_slot.iter_mut() {
                    if *s == f {
                        *s = r;
                    }
                }
            }
        }

        // Ship code + install to replacements (cellular, brokered by
        // the coordinator), and roll back survivors to the MRC.
        let (installs, rollbacks, expected_acks) = {
            let rt = self.rt(region);
            let states = if version > 0 {
                InstallStates::FromLocalStore { version }
            } else {
                InstallStates::Fresh
            };
            let installs: Vec<(ActorId, Install, usize, u32)> = replacements
                .iter()
                .map(|&(_, r)| {
                    let ops = rt.ops_on(r);
                    let n = ops.len();
                    (
                        rt.spec.slot_actors[r as usize],
                        Install {
                            ops,
                            states: states.clone(),
                            op_slot: rt.op_slot.clone(),
                            slot_actors: rt.spec.slot_actors.clone(),
                            ready_in: self.cfg.ready_overhead + self.cfg.ready_per_op * (n as u64),
                        },
                        n,
                        r,
                    )
                })
                .collect();
            let survivors: Vec<u32> = rt
                .hosting_slots()
                .into_iter()
                .filter(|s| !replacements.iter().any(|&(_, r)| r == *s))
                .filter(|&s| rt.slot_state[s as usize] == SlotState::Active)
                .collect();
            let rollbacks: Vec<ActorId> = survivors
                .iter()
                .map(|&s| rt.spec.slot_actors[s as usize])
                .collect();
            let mut acks: BTreeSet<u32> = survivors.into_iter().collect();
            acks.extend(replacements.iter().map(|&(_, r)| r));
            (installs, rollbacks, acks)
        };

        // Slots whose operators were just reassigned: end any degraded
        // cellular bridging they held, and tear down phones that are
        // still computing remotely — a departed phone stays reachable
        // over cellular and must stop once its operators moved, or the
        // region processes every tuple twice.
        let (released, teardowns) = {
            let rt = self.rt_mut(region);
            let mut released: Vec<EdgeId> = Vec::new();
            let mut teardowns = Vec::new();
            for &(f, _) in &replacements {
                if let Some(edges) = rt.degraded_urgent.remove(&f) {
                    released.extend(edges);
                    // The replacement install hands this slot's ops
                    // back to the WiFi path mid-round: stop expecting
                    // the degraded phone's cellular snapshot, or the
                    // round stalls an extra epoch. The completion
                    // re-check runs when this recovery finishes.
                    rt.ckpt_expected.remove(&f);
                }
                teardowns.push(rt.spec.slot_actors[f as usize]);
            }
            (released, teardowns)
        };
        let routing = {
            let rt = self.rt(region);
            UpdateRouting {
                op_slot: Some(rt.op_slot.clone()),
                slot_actors: Some(rt.spec.slot_actors.clone()),
            }
        };
        for dst in teardowns {
            self.send_ctl(ctx, dst, wire::MEMBERSHIP, routing.clone());
        }
        if !released.is_empty() {
            self.release_urgent_edges(region, &released, ctx);
        }

        self.push_routing(region, ctx);
        self.membership_changed(region, FlushScope::Stakeholders, ctx);
        self.redirect_sensors(region, ctx);
        for (dst, install, n_ops, slot) in installs {
            let bytes = self.cfg.code_bytes_per_op * n_ops as u64;
            self.ship_install(ctx, region, slot, dst, bytes, install);
        }
        for dst in rollbacks {
            self.send_ctl(ctx, dst, wire::CONTROL, RollbackTo { version });
        }
        self.rt_mut(region).outstanding_acks = expected_acks;
        self.send_status(region, ctx);
        let me = ctx.self_id();
        ctx.send_in(self.cfg.ack_deadline, me, CtlTimer::AckDeadline { region });
    }

    /// All acks in (or deadline): restart the region's dataflow.
    fn finish_recovery(&mut self, region: usize, ctx: &mut Ctx) {
        let (version, sources, started, failures) = {
            let rt = self.rt_mut(region);
            if !rt.recovering {
                return;
            }
            rt.recovering = false;
            rt.outstanding_acks.clear();
            let version = rt.last_complete;
            let sources: Vec<ActorId> = rt
                .source_slots()
                .into_iter()
                .filter(|&s| rt.slot_state[s as usize] == SlotState::Active)
                .map(|s| rt.spec.slot_actors[s as usize])
                .collect();
            let started = rt.recovery_started;
            rt.recovery_started = SimTime::ZERO;
            (version, sources, started, rt.recovery_failures)
        };
        if version > 0 {
            for dst in sources {
                self.send_ctl(ctx, dst, wire::CONTROL, ReplayInputs { epoch: version });
            }
        }
        self.rt_mut(region).last_recovery_end = ctx.now();
        self.recoveries.push(RecoveryRecord {
            region,
            failures,
            started,
            finished: ctx.now(),
        });
        ctx.count("ctl.recoveries", 1);
        // Snapshot reports accepted while the recovery ran may have
        // completed the in-flight round — commit it now rather than
        // stalling it until the next report (which may never come).
        self.try_commit_round(region, ctx);
        // Serve a deferred reboot-rejoin, if any still applies.
        if let Some(ix) = self
            .pending_reinstalls
            .iter()
            .position(|&(r, s)| r == region && !self.rt(r).ops_on(s).is_empty())
        {
            let (r, slot) = self.pending_reinstalls.remove(ix);
            if self.rt(r).slot_state[slot as usize] == SlotState::Active {
                self.reinstall_slot(r, slot, ctx);
            }
        } else {
            self.pending_reinstalls.retain(|&(r, _)| r != region);
        }
    }

    fn on_recovered_ack(&mut self, m: RecoveredAck, ctx: &mut Ctx) {
        if !self.valid_slot(m.region, m.slot, ctx) {
            return;
        }
        let region = m.region;
        // Departure transfer ack?
        let done_departure = {
            let rt = self.rt_mut(region);
            let departing: Option<u32> = rt
                .departing_transfers
                .iter()
                .find(|(_, t)| t.replacement == m.slot)
                .map(|(&d, _)| d);
            if let Some(d) = departing {
                let t = rt.departing_transfers.remove(&d);
                rt.slot_state[d as usize] = SlotState::Gone;
                rt.recent_installs.insert(m.slot, ctx.now());
                t.map(|t| (d, t.edges))
            } else {
                None
            }
        };
        if let Some((departed, edges)) = done_departure {
            self.departures_handled += 1;
            // Tear the departed phone down: it kept computing remotely
            // (urgent mode) until the hand-off completed; now that the
            // replacement owns its operators it must stop, or the
            // region would process every tuple twice.
            let (departed_actor, op_slot, slot_actors) = {
                let rt = self.rt(region);
                (
                    rt.spec.slot_actors[departed as usize],
                    rt.op_slot.clone(),
                    rt.spec.slot_actors.clone(),
                )
            };
            self.send_ctl(
                ctx,
                departed_actor,
                wire::MEMBERSHIP,
                UpdateRouting {
                    op_slot: Some(op_slot),
                    slot_actors: Some(slot_actors),
                },
            );
            // Clear this transfer's urgent mode and publish the new
            // wiring.
            self.release_urgent_edges(region, &edges, ctx);
            self.push_routing(region, ctx);
            self.membership_changed(region, FlushScope::Stakeholders, ctx);
            self.redirect_sensors(region, ctx);
            self.send_status(region, ctx);
            return;
        }
        let rt = self.rt_mut(region);
        rt.outstanding_acks.remove(&m.slot);
        if rt.recovering && rt.outstanding_acks.is_empty() {
            self.finish_recovery(region, ctx);
        }
    }

    fn on_departure(&mut self, m: DepartureNotice, ctx: &mut Ctx) {
        if !self.valid_slot(m.region, m.slot, ctx) {
            return;
        }
        let region = m.region;
        let slot = m.slot;
        let graph;
        let replacement: Option<u32>;
        let departing_actor;
        let affected_edges: Vec<EdgeId>;
        {
            let rt = self.rt_mut(region);
            if rt.slot_state[slot as usize] != SlotState::Active {
                return;
            }
            rt.slot_state[slot as usize] = SlotState::Departing;
            graph = Arc::clone(&rt.spec.graph);
            departing_actor = rt.spec.slot_actors[slot as usize];
            let ops = rt.ops_on(slot);
            if ops.is_empty() {
                // Idle node: just unregister.
                rt.slot_state[slot as usize] = SlotState::Gone;
                self.membership_changed(region, FlushScope::Stakeholders, ctx);
                return;
            }
            // Urgent mode: edges crossing the departed phone's WiFi link.
            let mut edges = Vec::new();
            for &op in &ops {
                for &e in &graph.op(op).in_edges {
                    let from = graph.edge(e).from;
                    if rt.op_slot[from.index()] != slot {
                        edges.push(e);
                    }
                }
                for &e in &graph.op(op).out_edges {
                    let to = graph.edge(e).to;
                    if rt.op_slot[to.index()] != slot {
                        edges.push(e);
                    }
                }
            }
            affected_edges = edges;
            // Pick the replacement (idle nodes only; no replacement =
            // degraded urgent mode until a phone rejoins).
            replacement = rt.idle_active_slots().first().copied();
            if let Some(r) = replacement {
                rt.departing_transfers.insert(
                    slot,
                    DepartingTransfer {
                        replacement: r,
                        started: ctx.now(),
                        edges: affected_edges.clone(),
                    },
                );
                for s in rt.op_slot.iter_mut() {
                    if *s == slot {
                        *s = r;
                    }
                }
            }
        }
        ctx.count("ctl.departures", 1);
        // Tell everyone (including the departing node) to route the
        // affected edges over cellular for now — whether or not a
        // replacement exists: with none, the region runs degraded in
        // urgent mode and the departed phone keeps computing remotely.
        let targets: Vec<ActorId> = {
            let rt = self.rt(region);
            let mut t: Vec<ActorId> = rt
                .active_slots()
                .into_iter()
                .map(|s| rt.spec.slot_actors[s as usize])
                .collect();
            t.push(departing_actor);
            t
        };
        for dst in targets {
            self.send_ctl(
                ctx,
                dst,
                wire::CONTROL,
                SetUrgentEdges {
                    edges: affected_edges.clone(),
                    on: true,
                },
            );
        }
        let Some(replacement) = replacement else {
            // No replacement available: if the region dropped below its
            // minimum it stops (bypass); otherwise it limps along over
            // cellular until a reboot/rejoin provides a phone. The
            // urgent edges must outlive other transfers' releases for
            // as long as the degraded phone computes remotely.
            let rt = self.rt_mut(region);
            rt.degraded_urgent.insert(slot, affected_edges.clone());
            if (rt.active_slots().len() as u32) < rt.spec.min_active {
                self.stop_region(region, ctx);
                return;
            }
            // The degraded phone can no longer broadcast snapshots on
            // WiFi; route them through an in-region proxy so the
            // region's checkpoint rounds stay satisfiable (§III).
            if let Some(proxy) = self.pick_proxy(region, slot) {
                self.send_ctl(
                    ctx,
                    departing_actor,
                    wire::CONTROL,
                    DegradedCheckpointVia { proxy },
                );
            }
            // Drop the departed phone from everyone's broadcast
            // receiver set: it is off WiFi indefinitely, and leaving it
            // in `active_slots` would cost every region broadcast a
            // full straggler-bitmap timeout per phase for as long as
            // the degradation lasts.
            self.membership_changed(region, FlushScope::Stakeholders, ctx);
            return;
        };
        // Ask the departing phone to transfer its state to the
        // replacement over cellular (Fig 7, time instant 3).
        let (install, repl_actor) = {
            let rt = self.rt(region);
            let ops = rt.ops_on(replacement);
            let n = ops.len() as u64;
            (
                Install {
                    ops,
                    states: InstallStates::Fresh, // filled by the departing node
                    op_slot: rt.op_slot.clone(),
                    slot_actors: rt.spec.slot_actors.clone(),
                    ready_in: self.cfg.ready_overhead + self.cfg.ready_per_op * n,
                },
                rt.spec.slot_actors[replacement as usize],
            )
        };
        self.send_ctl(
            ctx,
            departing_actor,
            wire::CONTROL,
            TransferStateTo {
                replacement: repl_actor,
                install,
            },
        );
    }

    fn on_register(&mut self, m: RegisterNode, ctx: &mut Ctx) {
        if !self.valid_slot(m.region, m.slot, ctx) {
            return;
        }
        let region = m.region;
        let (owns_ops, degraded_edges) = {
            let rt = self.rt_mut(region);
            rt.slot_state[m.slot as usize] = SlotState::Active;
            // The phone may have missed any number of membership
            // messages while dead or out of range: forget its epoch so
            // the pending flush sends it one full snapshot.
            rt.log.reset(m.slot);
            (
                !rt.ops_on(m.slot).is_empty(),
                rt.degraded_urgent.remove(&m.slot),
            )
        };
        // A degraded departure's phone is back in WiFi range: its
        // cellular bridging ends (the reinstall below restores normal
        // routing), and its slot leaves the in-flight round's
        // `ckpt_expected` — the reinstall supersedes any snapshot still
        // crawling over cellular, so waiting for it would stall an
        // already-complete round one extra epoch. Re-check completion
        // now (before the reinstall flips `recovering` on); a late
        // proxy relay for this slot cannot double-commit (the commit
        // guard is on `last_complete`). Known tradeoff: a round
        // committed this way lacks the rejoined slot's states in the
        // region-wide MRC until the in-flight relay lands seconds
        // later (the relay still replicates them); in that window the
        // states live only in the rejoined phone's own store, and a
        // crash there would make a reassignment restore those ops
        // fresh (the pre-existing missing-state fallback).
        if let Some(edges) = degraded_edges {
            self.release_urgent_edges(region, &edges, ctx);
            self.rt_mut(region).ckpt_expected.remove(&m.slot);
            self.try_commit_round(region, ctx);
        }
        // A rebooted phone whose ops were never reassigned (it crashed
        // and came back before/without recovery) returns empty-handed:
        // reinstall its operators from its own flash copy and roll the
        // region back so the dataflow is consistent again.
        if owns_ops {
            if !self.rt(region).stopped && !self.rt(region).recovering {
                self.reinstall_slot(region, m.slot, ctx);
            } else {
                // Defer until the in-flight recovery / restart settles.
                self.pending_reinstalls.push((region, m.slot));
            }
        }
        // Update WiFi membership: the phone is back in range. Relayed
        // through the coordinator (the WiFi medium lives on the
        // phone's region shard).
        let (wifi, actor) = {
            let rt = self.rt(region);
            (rt.spec.wifi, rt.spec.slot_actors[m.slot as usize])
        };
        let coordinator = self.coordinator;
        ctx.send(
            coordinator,
            RelayWifiLink {
                wifi,
                node: actor,
                state: LinkState::Active,
            },
        );
        self.membership_changed(region, FlushScope::Stakeholders, ctx);
        // Restart a stopped region once enough phones are back.
        let can_restart = {
            let rt = self.rt(region);
            rt.stopped && (rt.active_slots().len() as u32) >= rt.spec.restart_min
        };
        if can_restart {
            self.restart_region(region, ctx);
        } else if !self.rt(region).stopped {
            // If the region is degraded (ops stuck on dead slots because
            // no spare existed), retry recovery now that a phone is back.
            let needs = {
                let rt = self.rt(region);
                rt.hosting_slots()
                    .into_iter()
                    .any(|s| rt.slot_state[s as usize] != SlotState::Active)
            };
            if needs {
                let stuck: Vec<u32> = {
                    let rt = self.rt(region);
                    rt.hosting_slots()
                        .into_iter()
                        .filter(|&s| rt.slot_state[s as usize] != SlotState::Active)
                        .collect()
                };
                for s in stuck {
                    self.rt_mut(region).pending_failures.insert(s);
                }
                let gather_window = self.cfg.gather_window;
                let rt = self.rt_mut(region);
                if !rt.recover_scheduled {
                    rt.recover_scheduled = true;
                    let me = ctx.self_id();
                    ctx.send_in(gather_window, me, CtlTimer::RecoverNow { region });
                }
            }
        }
    }

    /// Reinstall a re-registered slot's own operators (reboot rejoin)
    /// and roll back the region to the MRC.
    fn reinstall_slot(&mut self, region: usize, slot: u32, ctx: &mut Ctx) {
        let ready_overhead = self.cfg.ready_overhead;
        let ready_per_op = self.cfg.ready_per_op;
        let (install, dst, n_ops, version, rollbacks, acks) = {
            let rt = self.rt_mut(region);
            rt.recovering = true;
            rt.recovery_started = ctx.now();
            rt.recovery_failures = 1;
            let ops = rt.ops_on(slot);
            let n = ops.len();
            let version = rt.last_complete;
            let states = if version > 0 {
                InstallStates::FromLocalStore { version }
            } else {
                InstallStates::Fresh
            };
            let install = Install {
                ops,
                states,
                op_slot: rt.op_slot.clone(),
                slot_actors: rt.spec.slot_actors.clone(),
                ready_in: ready_overhead + ready_per_op * (n as u64),
            };
            let survivors: Vec<u32> = rt
                .hosting_slots()
                .into_iter()
                .filter(|&s| s != slot && rt.slot_state[s as usize] == SlotState::Active)
                .collect();
            let rollbacks: Vec<ActorId> = survivors
                .iter()
                .map(|&s| rt.spec.slot_actors[s as usize])
                .collect();
            let mut acks: BTreeSet<u32> = survivors.into_iter().collect();
            acks.insert(slot);
            (
                install,
                rt.spec.slot_actors[slot as usize],
                n,
                version,
                rollbacks,
                acks,
            )
        };
        self.push_routing(region, ctx);
        self.membership_changed(region, FlushScope::Stakeholders, ctx);
        self.redirect_sensors(region, ctx);
        let bytes = self.cfg.code_bytes_per_op * n_ops.max(1) as u64;
        self.ship_install(ctx, region, slot, dst, bytes, install);
        for d in rollbacks {
            self.send_ctl(ctx, d, wire::CONTROL, RollbackTo { version });
        }
        self.rt_mut(region).outstanding_acks = acks;
        let me = ctx.self_id();
        ctx.send_in(self.cfg.ack_deadline, me, CtlTimer::AckDeadline { region });
    }

    fn restart_region(&mut self, region: usize, ctx: &mut Ctx) {
        let ready_overhead = self.cfg.ready_overhead;
        let ready_per_op = self.cfg.ready_per_op;
        let (installs, version) = {
            let rt = self.rt_mut(region);
            // Re-place every op onto active slots, preferring current
            // assignment when that slot is active.
            let active = rt.active_slots();
            if active.is_empty() {
                // Raced a failure between the restart check and now:
                // stay stopped rather than panic.
                return;
            }
            rt.stopped = false;
            let mut rr = 0usize;
            let graph = Arc::clone(&rt.spec.graph);
            for op in graph.op_ids() {
                let cur = rt.op_slot[op.index()];
                if cur == u32::MAX || rt.slot_state[cur as usize] != SlotState::Active {
                    rt.op_slot[op.index()] = active[rr % active.len()];
                    rr += 1;
                }
            }
            let version = rt.last_complete;
            let states = if version > 0 {
                InstallStates::FromLocalStore { version }
            } else {
                InstallStates::Fresh
            };
            let installs: Vec<(ActorId, Install, usize, u32)> = active
                .iter()
                .map(|&s| {
                    let ops = rt.ops_on(s);
                    let n = ops.len();
                    (
                        rt.spec.slot_actors[s as usize],
                        Install {
                            ops,
                            states: states.clone(),
                            op_slot: rt.op_slot.clone(),
                            slot_actors: rt.spec.slot_actors.clone(),
                            ready_in: ready_overhead + ready_per_op * (n as u64),
                        },
                        n,
                        s,
                    )
                })
                .collect();
            (installs, version)
        };
        let _ = version;
        for (dst, install, n_ops, slot) in installs {
            let bytes = self.cfg.code_bytes_per_op * (n_ops.max(1)) as u64;
            self.ship_install(ctx, region, slot, dst, bytes, install);
        }
        self.membership_changed(region, FlushScope::AllActive, ctx);
        self.redirect_sensors(region, ctx);
        self.send_status(region, ctx);
        ctx.count("ctl.region_restarts", 1);
    }

    /// Completion of an install the coordinator shipped for us.
    fn on_install_outcome(&mut self, o: InstallOutcome, ctx: &mut Ctx) {
        if !self.valid_slot(o.region, o.slot, ctx) {
            return;
        }
        match o.kind {
            InstallOutcomeKind::Delivered => {}
            // The install never reached its target: that phone is dead;
            // fold it into a fresh recovery round.
            InstallOutcomeKind::Failed => {
                let rt = self.rt_mut(o.region);
                rt.slot_state[o.slot as usize] = SlotState::Active; // allow note_failure
                self.note_failure(o.region, o.slot, ctx);
            }
            // The install aged out behind a partition: the whole region
            // is unreachable.
            InstallOutcomeKind::Severed => self.mark_severed(o.region, ctx),
        }
    }

    fn on_timer(&mut self, t: CtlTimer, ctx: &mut Ctx) {
        match t {
            CtlTimer::CheckpointTick { region } => self.on_ckpt_tick(region, ctx),
            CtlTimer::PingTick => self.on_ping_tick(ctx),
            CtlTimer::PingDeadline { round } => self.on_ping_deadline(round, ctx),
            CtlTimer::RecoverNow { region } => self.on_recover_now(region, ctx),
            CtlTimer::AckDeadline { region } => self.finish_recovery(region, ctx),
            CtlTimer::ProbeSevered { region, epoch } => self.on_probe_severed(region, epoch, ctx),
            CtlTimer::FlushDeltas { region } => self.on_flush(region, ctx),
            CtlTimer::ReconcileTick => self.on_reconcile_tick(ctx),
        }
    }
}

impl Actor for RegionController {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        let ev = match ev.downcast::<CellRx>() {
            Ok(rx) => {
                let p = rx.payload.clone();
                // Any message out of a severed region proves the
                // partition healed — resync before handling it.
                if let Some(m) = payload_as::<Pong>(&p) {
                    self.note_region_contact(m.region, ctx);
                    if let Some(out) = self.ping_outstanding.get_mut(&m.nonce) {
                        out.remove(&(m.region, m.slot));
                    }
                } else if let Some(m) = payload_as::<NodeCheckpointed>(&p) {
                    self.note_region_contact(m.region, ctx);
                    self.on_node_checkpointed(*m, ctx);
                } else if let Some(m) = payload_as::<ReportDead>(&p) {
                    self.note_region_contact(m.region, ctx);
                    self.note_failure(m.region, m.slot, ctx);
                } else if let Some(m) = payload_as::<RecoveredAck>(&p) {
                    self.note_region_contact(m.region, ctx);
                    self.on_recovered_ack(*m, ctx);
                } else if let Some(m) = payload_as::<DepartureNotice>(&p) {
                    self.note_region_contact(m.region, ctx);
                    self.on_departure(*m, ctx);
                } else if let Some(m) = payload_as::<RegisterNode>(&p) {
                    self.note_region_contact(m.region, ctx);
                    self.on_register(*m, ctx);
                }
                return;
            }
            Err(e) => e,
        };
        simkernel::match_event!(ev,
            _s: Start => { self.on_start(ctx); },
            t: CtlTimer => { self.on_timer(t, ctx); },
            o: InstallOutcome => { self.on_install_outcome(o, ctx); },
            f: TxFailed => {
                // A failed ping just means the pinged phone is dead —
                // its round deadline already covers that.
                self.ping_tags.remove(&f.tag);
            },
            d: simnet::TxDone => {
                self.ping_tags.remove(&d.tag);
            },
            s: simnet::TxSevered => {
                self.on_tx_severed(s.tag, ctx);
            },
            @else _other => {}
        );
    }

    fn name(&self) -> String {
        format!("ms-regionctl-{}", self.group)
    }

    impl_actor_any!();
}
