//! Desired-vs-observed membership reconciliation for one region.
//!
//! The region controller is the single writer of a region's membership
//! truth (which slots are active on WiFi). Instead of fanning a full
//! snapshot out to every phone on every churn event — O(region phones)
//! messages of [`crate::msgs::wire::MEMBERSHIP`] bytes each — it keeps
//! an append-only, epoch-numbered log of [`SlotChange`] records and
//! tracks, per phone, the last epoch that phone is known to hold.
//! Convergence is then delta-based:
//!
//! * an event-driven flush (coalesced per tick) pushes the log suffix
//!   to the *stakeholders* of the change — hosting phones, the proxy
//!   candidate, and freshly (re)joined phones;
//! * a periodic reconcile sweep pushes one delta to every active phone
//!   still behind the head (normally none), bounding staleness;
//! * phones with no known epoch (startup, rejoin, post-partition)
//!   get one full snapshot instead.
//!
//! Delta payloads are shared across targets via `Arc`, and a phone
//! needing the suffix from epoch `b` reuses the widest suffix built so
//! far (a suffix from `b' <= b` is a superset whose extra prefix
//! re-applies idempotently), so one flush allocates O(distinct bases)
//! vectors, not O(targets).

use std::sync::Arc;

use crate::msgs::SlotChange;

/// Epoch-numbered membership event log of one region, plus the
/// controller's record of each phone's observed epoch.
pub struct MembershipLog {
    /// All changes since start; epoch `e` = state after `log[..e]`.
    log: Vec<SlotChange>,
    /// Last net-recorded activity per slot (suppresses no-op records).
    current: Vec<bool>,
    /// Per-slot epoch the phone is believed to have applied; `None`
    /// means unsynced (startup, re-register, partition heal) and forces
    /// a snapshot. Updated optimistically on send (the cellular path is
    /// reliable FIFO to live endpoints).
    observed: Vec<Option<u64>>,
}

impl MembershipLog {
    /// A log for a region of `slots` phones, all initially active and
    /// all unsynced (first flush sends snapshots).
    pub fn new(slots: usize) -> Self {
        MembershipLog {
            log: Vec::new(),
            current: vec![true; slots],
            observed: vec![None; slots],
        }
    }

    /// Head epoch: the number of changes recorded so far.
    pub fn head(&self) -> u64 {
        self.log.len() as u64
    }

    /// Record a slot's activity transition. No-ops (same as the last
    /// recorded state) are suppressed, so callers may re-assert the
    /// full desired state after any mutation. Returns whether the log
    /// grew.
    pub fn record(&mut self, slot: u32, active: bool) -> bool {
        let ix = slot as usize;
        if self.current[ix] == active {
            return false;
        }
        self.current[ix] = active;
        self.log.push(SlotChange { slot, active });
        true
    }

    /// The change suffix from `base` to the head.
    pub fn suffix(&self, base: u64) -> &[SlotChange] {
        &self.log[base as usize..]
    }

    /// The epoch `slot` is believed to hold (`None` = unsynced).
    pub fn observed(&self, slot: u32) -> Option<u64> {
        self.observed[slot as usize]
    }

    /// Mark `slot` as holding `epoch` (called on send).
    pub fn note_synced(&mut self, slot: u32, epoch: u64) {
        self.observed[slot as usize] = Some(epoch);
    }

    /// Forget what `slot` holds: its next delta becomes a snapshot.
    /// Used when a phone re-registers (it may have missed drops while
    /// dead or out of range).
    pub fn reset(&mut self, slot: u32) {
        self.observed[slot as usize] = None;
    }

    /// Forget every phone's epoch (partition heal: sends into the
    /// region aged out unobserved, so nothing can be assumed).
    pub fn reset_all(&mut self) {
        self.observed.iter_mut().for_each(|o| *o = None);
    }

    /// Slots in `candidates` that are behind the head (or unsynced).
    pub fn lagging<'a>(&'a self, candidates: &'a [u32]) -> impl Iterator<Item = u32> + 'a {
        let head = self.head();
        candidates
            .iter()
            .copied()
            .filter(move |&s| match self.observed[s as usize] {
                None => true,
                Some(e) => e < head,
            })
    }
}

/// Per-flush cache of `Arc`ed change suffixes: targets sharing a base
/// epoch share one allocation, and a target whose base is *newer* than
/// an already-built suffix reuses that wider suffix (its extra prefix
/// re-applies idempotently on the phone).
pub struct SuffixCache {
    built: Vec<(u64, Arc<Vec<SlotChange>>)>,
}

impl SuffixCache {
    /// An empty cache (one per flush).
    pub fn new() -> Self {
        SuffixCache { built: Vec::new() }
    }

    /// The shared suffix covering `base..head`, building it at most
    /// once per distinct base.
    pub fn for_base(&mut self, log: &MembershipLog, base: u64) -> (u64, Arc<Vec<SlotChange>>) {
        if let Some((b, arc)) = self.built.iter().find(|(b, _)| *b <= base) {
            return (*b, Arc::clone(arc));
        }
        let arc = Arc::new(log.suffix(base).to_vec());
        self.built.push((base, Arc::clone(&arc)));
        (base, arc)
    }
}

impl Default for SuffixCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_suppresses_noops_and_tracks_epochs() {
        let mut log = MembershipLog::new(4);
        assert_eq!(log.head(), 0);
        // Already active: no-op.
        assert!(!log.record(1, true));
        assert!(log.record(1, false));
        assert!(!log.record(1, false));
        assert!(log.record(1, true));
        assert_eq!(log.head(), 2);
        assert_eq!(log.suffix(0).len(), 2);
        assert_eq!(log.suffix(1).len(), 1);
        log.note_synced(2, 2);
        assert_eq!(log.observed(2), Some(2));
        let lag: Vec<u32> = log.lagging(&[0, 1, 2, 3]).collect();
        assert_eq!(lag, vec![0, 1, 3]);
        log.reset_all();
        assert_eq!(log.observed(2), None);
    }

    #[test]
    fn suffix_cache_shares_wider_suffixes() {
        let mut log = MembershipLog::new(4);
        log.record(0, false);
        log.record(1, false);
        log.record(2, false);
        let mut cache = SuffixCache::new();
        let (b1, s1) = cache.for_base(&log, 1);
        assert_eq!((b1, s1.len()), (1, 2));
        // A newer base reuses the wider suffix already built.
        let (b2, s2) = cache.for_base(&log, 2);
        assert_eq!(b2, 1);
        assert!(Arc::ptr_eq(&s1, &s2));
        // An older base needs its own, wider build.
        let (b0, s0) = cache.for_base(&log, 0);
        assert_eq!((b0, s0.len()), (0, 3));
    }
}
