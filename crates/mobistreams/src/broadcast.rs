//! Broadcast-based checkpointing — the multi-phase UDP broadcast engine
//! of §III-C and Fig 6.
//!
//! A *job* replicates one logical blob (a node's checkpoint states, or
//! one preserved source input) to every other node in the region:
//!
//! 1. the blob is split into 1 KB blocks; all blocks are UDP-broadcast
//!    (one airtime slot reaches every receiver);
//! 2. each receiver returns a bitmap — one bit per block of the whole
//!    job — marking what it has so far;
//! 3. the sender ANDs all bitmaps; blocks missing at *any* receiver
//!    form the next phase's rebroadcast set;
//! 4. after each phase the sender compares the phase's **cost** (bytes
//!    it sent plus bitmap bytes it received) with its **gain** (bytes
//!    newly received across all receivers); when cost exceeds gain, UDP
//!    stops;
//! 5. the residue is delivered reliably over a distribution tree (the
//!    "TCP phase"): data flows sender → root → leaves, each tree edge
//!    carrying the union of blocks missing in the subtree below it.
//!
//! [`SenderJob`] is a pure state machine (fully unit-testable — the
//! Fig 6 walk-through is reproduced exactly in the tests below);
//! [`crate::scheme::MsScheme`] glues it to the WiFi medium.

use std::collections::BTreeMap;

use simkernel::ActorId;
use simnet::bitmap::Bitmap;

use crate::msgs::BlobContent;

/// Engine parameters.
#[derive(Debug, Clone)]
pub struct BroadcastConfig {
    /// Block size (the paper uses 1 KB: "large UDP messages are more
    /// susceptible to a lossy network due to message fragmentation").
    pub block_bytes: u64,
    /// How long the sender waits for straggler bitmaps before treating
    /// the silent receivers as gone.
    pub bitmap_timeout: simkernel::SimDuration,
    /// Hard cap on UDP phases (safety net; cost/gain normally stops
    /// the loop after 2–4 phases).
    pub max_phases: u32,
    /// Phase chunking: blocks are broadcast in chunks of at most this
    /// many bytes so data tuples interleave with a multi-MB checkpoint
    /// instead of queueing behind it (the paper's asynchronous
    /// background checkpointing).
    pub chunk_bytes: u64,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        BroadcastConfig {
            block_bytes: 1024,
            bitmap_timeout: simkernel::SimDuration::from_secs(10),
            max_phases: 16,
            chunk_bytes: 256 * 1024,
        }
    }
}

/// A malformed broadcast-protocol message. At fleet scale these MUST
/// surface instead of being silently ignored: a dropped checkpoint
/// block would otherwise go unnoticed until a rollback restores a
/// corrupt (incomplete) state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BroadcastError {
    /// A batch listed a block id beyond the job's total block count.
    BlockOutOfRange {
        /// Job id.
        stream: u64,
        /// Offending block id.
        block: u32,
        /// Total blocks the receiver sized the job at.
        total: u32,
    },
    /// A batch declared a different total block count than the one the
    /// receiver first saw for this job.
    TotalBlocksMismatch {
        /// Job id.
        stream: u64,
        /// Newly declared total.
        declared: u32,
        /// Total the receiver's cumulative bitmap was sized for.
        expected: u32,
    },
}

impl std::fmt::Display for BroadcastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BroadcastError::BlockOutOfRange {
                stream,
                block,
                total,
            } => write!(
                f,
                "broadcast stream {stream}: block {block} out of range (job has {total} blocks)"
            ),
            BroadcastError::TotalBlocksMismatch {
                stream,
                declared,
                expected,
            } => write!(
                f,
                "broadcast stream {stream}: batch declares {declared} total blocks, job was sized at {expected}"
            ),
        }
    }
}

impl std::error::Error for BroadcastError {}

/// What the sender must do next after a phase concludes.
#[derive(Debug)]
pub enum PhaseDecision {
    /// Rebroadcast these blocks (next UDP phase).
    Resend(Vec<u32>),
    /// UDP is no longer worth it; deliver each receiver's missing
    /// blocks over the TCP tree, then complete.
    TcpResidue(BTreeMap<ActorId, Vec<u32>>),
    /// Every receiver has every block; the job is complete.
    Complete,
}

/// Byte accounting for one job (drives Fig 10b).
#[derive(Debug, Default, Clone, Copy)]
pub struct JobStats {
    /// Block payload bytes broadcast over UDP (all phases).
    pub udp_bytes: u64,
    /// Bitmap reply bytes received.
    pub bitmap_bytes: u64,
    /// Residue bytes shipped in the TCP phase (sum over tree edges).
    pub tcp_bytes: u64,
    /// Number of UDP phases run.
    pub phases: u32,
}

impl JobStats {
    /// Total bytes this job moved over the network.
    pub fn total(&self) -> u64 {
        self.udp_bytes + self.bitmap_bytes + self.tcp_bytes
    }
}

/// Sender-side state of one replication job.
pub struct SenderJob {
    /// Job id (unique per sender).
    pub stream: u64,
    /// Logical content delivered at completion.
    pub content: BlobContent,
    /// Traffic class for accounting (`Checkpoint` or `Preservation`).
    pub class: simnet::stats::TrafficClass,
    /// Total blob size.
    pub total_bytes: u64,
    /// Number of 1 KB blocks.
    pub n_blocks: u32,
    block_bytes: u64,
    tail_bytes: u64,
    /// Cumulative reception bitmap per expected receiver.
    pub per_rx: BTreeMap<ActorId, Bitmap>,
    awaiting: Vec<ActorId>,
    replies_this_phase: u32,
    /// Current UDP phase (1-based).
    pub phase: u32,
    prev_recv_bytes: u64,
    sent_bytes_this_phase: u64,
    /// Accounting.
    pub stats: JobStats,
    max_phases: u32,
    done: bool,
}

impl SenderJob {
    /// Create a job for `total_bytes` toward `expected` receivers.
    pub fn new(
        stream: u64,
        content: BlobContent,
        class: simnet::stats::TrafficClass,
        total_bytes: u64,
        block_bytes: u64,
        expected: Vec<ActorId>,
    ) -> Self {
        assert!(total_bytes > 0, "empty blob");
        assert!(block_bytes > 0);
        // simlint::allow(P001): job construction bound — blob sizes are config-bounded megabytes, >4T bytes is a programming error, and this runs before the job enters the event path
        let n_blocks = u32::try_from(total_bytes.div_ceil(block_bytes)).expect("blob too large");
        let tail = total_bytes - (n_blocks as u64 - 1) * block_bytes;
        let per_rx = expected
            .iter()
            .map(|&a| (a, Bitmap::zeros(n_blocks as usize)))
            .collect();
        SenderJob {
            stream,
            content,
            class,
            total_bytes,
            n_blocks,
            block_bytes,
            tail_bytes: tail,
            per_rx,
            awaiting: expected,
            replies_this_phase: 0,
            phase: 1,
            prev_recv_bytes: 0,
            sent_bytes_this_phase: 0,
            stats: JobStats::default(),
            max_phases: 16,
            done: false,
        }
    }

    /// Override the phase cap.
    pub fn with_max_phases(mut self, max: u32) -> Self {
        self.max_phases = max;
        self
    }

    /// Has the job finished (Complete or TcpResidue issued)?
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Receivers the job still waits on this phase.
    pub fn awaiting(&self) -> &[ActorId] {
        &self.awaiting
    }

    /// Size of block `ix`.
    pub fn block_size(&self, ix: u32) -> u64 {
        if ix + 1 == self.n_blocks {
            self.tail_bytes
        } else {
            self.block_bytes
        }
    }

    /// Bytes a set of blocks occupies.
    pub fn bytes_of(&self, blocks: &[u32]) -> u64 {
        blocks.iter().map(|&b| self.block_size(b)).sum()
    }

    /// Wire size of one receiver bitmap (ceil(n/8), as in the paper:
    /// 8192 blocks → 1 KB bitmap).
    pub fn bitmap_wire_bytes(&self) -> u64 {
        Bitmap::zeros(self.n_blocks as usize).wire_bytes()
    }

    /// Blocks to broadcast in the first phase (all of them). Records
    /// the phase's sent bytes.
    pub fn begin(&mut self) -> Vec<u32> {
        let blocks: Vec<u32> = (0..self.n_blocks).collect();
        self.sent_bytes_this_phase = self.bytes_of(&blocks);
        self.stats.udp_bytes += self.sent_bytes_this_phase;
        self.stats.phases = 1;
        blocks
    }

    /// Record that the given phase's rebroadcast was issued.
    fn note_resend(&mut self, blocks: &[u32]) {
        self.sent_bytes_this_phase = self.bytes_of(blocks);
        self.stats.udp_bytes += self.sent_bytes_this_phase;
        self.stats.phases += 1;
        self.replies_this_phase = 0;
        self.awaiting = self.per_rx.keys().copied().collect();
    }

    /// Total bytes received across receivers so far.
    fn received_bytes(&self) -> u64 {
        self.per_rx
            .values()
            .map(|bm| {
                (0..self.n_blocks)
                    .filter(|&b| bm.get(b as usize))
                    .map(|b| self.block_size(b))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Merge a receiver's cumulative bitmap. Returns the next decision
    /// once all awaited receivers have replied.
    pub fn on_bitmap(&mut self, from: ActorId, bitmap: &Bitmap) -> Option<PhaseDecision> {
        if self.done {
            return None;
        }
        if let Some(cur) = self.per_rx.get_mut(&from) {
            if bitmap.len() == cur.len() {
                cur.or_assign(bitmap);
            }
        } else {
            return None; // unknown/already-dropped receiver
        }
        if let Some(pos) = self.awaiting.iter().position(|&a| a == from) {
            self.awaiting.swap_remove(pos);
            self.replies_this_phase += 1;
            self.stats.bitmap_bytes += self.bitmap_wire_bytes();
        }
        if self.awaiting.is_empty() {
            Some(self.evaluate())
        } else {
            None
        }
    }

    /// The bitmap deadline passed: drop silent receivers (they are dead
    /// or departed; the controller will deal with them) and evaluate.
    pub fn on_timeout(&mut self, phase: u32) -> Option<PhaseDecision> {
        if self.done || phase != self.phase || self.awaiting.is_empty() {
            return None;
        }
        let silent = std::mem::take(&mut self.awaiting);
        for a in silent {
            self.per_rx.remove(&a);
        }
        Some(self.evaluate())
    }

    /// Cost/gain decision at the end of a phase (§III-C).
    fn evaluate(&mut self) -> PhaseDecision {
        if self.per_rx.is_empty() {
            // Everyone vanished; nothing left to replicate to.
            self.done = true;
            return PhaseDecision::Complete;
        }
        let cur = self.received_bytes();
        // `cur` can shrink when a silent receiver was dropped from the
        // job; a vanished receiver is no gain.
        let gain = cur.saturating_sub(self.prev_recv_bytes);
        let cost =
            self.sent_bytes_this_phase + self.replies_this_phase as u64 * self.bitmap_wire_bytes();
        self.prev_recv_bytes = cur;

        let Some(anded) = Bitmap::and_all(self.per_rx.values()) else {
            // Defensive: per_rx emptied concurrently (checked above,
            // but a malformed message must never panic a phone).
            self.done = true;
            return PhaseDecision::Complete;
        };
        if anded.all_ones() {
            self.done = true;
            return PhaseDecision::Complete;
        }
        if cost > gain || self.phase >= self.max_phases {
            self.done = true;
            let residue: BTreeMap<ActorId, Vec<u32>> = self
                .per_rx
                .iter()
                .map(|(&a, bm)| {
                    (
                        a,
                        bm.zero_indices()
                            .into_iter()
                            .map(|i| i as u32)
                            .collect::<Vec<u32>>(),
                    )
                })
                .filter(|(_, v)| !v.is_empty())
                .collect();
            return PhaseDecision::TcpResidue(residue);
        }
        self.phase += 1;
        let resend: Vec<u32> = anded.zero_indices().into_iter().map(|i| i as u32).collect();
        self.note_resend(&resend);
        PhaseDecision::Resend(resend)
    }

    /// Record the TCP-phase bytes charged over the tree.
    pub fn note_tcp_bytes(&mut self, bytes: u64) {
        self.stats.tcp_bytes += bytes;
    }

    /// Remaining receivers (survivors) to deliver the blob to.
    pub fn receivers(&self) -> Vec<ActorId> {
        self.per_rx.keys().copied().collect()
    }
}

/// The distribution tree of the TCP phase.
///
/// Nodes are the job's receivers in deterministic order; the tree is
/// heap-shaped binary (`children(i) = 2i+1, 2i+2`), with the sender
/// attached above the root. Each edge carries the union of blocks
/// missing anywhere in the subtree below it.
pub fn tcp_tree_edges(
    residue: &BTreeMap<ActorId, Vec<u32>>,
    receivers: &[ActorId],
) -> Vec<(usize, usize, Vec<u32>)> {
    // Returns (parent_index, child_index, blocks); parent_index == usize::MAX
    // means the sender→root edge.
    let n = receivers.len();
    if n == 0 {
        return Vec::new();
    }
    // subtree_union[i] = union of missing blocks in subtree rooted at i.
    let mut subtree: Vec<Vec<u32>> = receivers
        .iter()
        .map(|a| residue.get(a).cloned().unwrap_or_default())
        .collect();
    for i in (0..n).rev() {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                let child = subtree[c].clone();
                let merged = &mut subtree[i];
                merged.extend(child);
                merged.sort_unstable();
                merged.dedup();
            }
        }
    }
    let mut edges = Vec::new();
    if !subtree[0].is_empty() {
        edges.push((usize::MAX, 0, subtree[0].clone()));
    }
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n && !subtree[c].is_empty() {
                edges.push((i, c, subtree[c].clone()));
            }
        }
    }
    edges
}

/// Receiver-side bookkeeping: cumulative reception bitmaps per
/// (sender, stream).
#[derive(Default)]
pub struct ReceiverState {
    jobs: BTreeMap<(ActorId, u64), Bitmap>,
}

impl ReceiverState {
    /// Fold one batch's reception report in; returns the cumulative
    /// bitmap to send back to the sender.
    ///
    /// A block id beyond the job's size, or a `total_blocks` that
    /// disagrees with the first batch of the stream, is a protocol
    /// error: silently skipping such blocks (as an earlier version did)
    /// would let the sender believe a checkpoint block was replicated
    /// when it never landed anywhere. The batch is rejected whole —
    /// the cumulative state is left untouched, so a retransmission of
    /// a well-formed batch still works.
    pub fn on_batch(
        &mut self,
        src: ActorId,
        stream: u64,
        total_blocks: u32,
        blocks: &[u32],
        received: &Bitmap,
    ) -> Result<Bitmap, BroadcastError> {
        if let Some(existing) = self.jobs.get(&(src, stream)) {
            if existing.len() != total_blocks as usize {
                return Err(BroadcastError::TotalBlocksMismatch {
                    stream,
                    declared: total_blocks,
                    expected: existing.len() as u32,
                });
            }
        }
        if let Some(&bad) = blocks.iter().find(|&&b| b >= total_blocks) {
            return Err(BroadcastError::BlockOutOfRange {
                stream,
                block: bad,
                total: total_blocks,
            });
        }
        let cum = self
            .jobs
            .entry((src, stream))
            .or_insert_with(|| Bitmap::zeros(total_blocks as usize));
        for (i, &b) in blocks.iter().enumerate() {
            if received.get(i) {
                cum.set(b as usize, true);
            }
        }
        Ok(cum.clone())
    }

    /// Drop a finished job's state.
    pub fn finish(&mut self, src: ActorId, stream: u64) {
        self.jobs.remove(&(src, stream));
    }

    /// Number of in-flight jobs (test/introspection).
    pub fn in_flight(&self) -> usize {
        self.jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsps::graph::OpId;
    use proptest::prelude::*;
    use simnet::stats::TrafficClass;

    fn actor(i: usize) -> ActorId {
        ActorId::from_index(i)
    }

    fn ckpt_content() -> BlobContent {
        BlobContent::Checkpoint {
            version: 1,
            states: vec![(
                OpId(0),
                std::sync::Arc::new(()) as dsps::operator::OpState,
                0,
            )],
        }
    }

    fn mk_job(total_kb: u64, receivers: usize) -> SenderJob {
        SenderJob::new(
            7,
            ckpt_content(),
            TrafficClass::Checkpoint,
            total_kb * 1024,
            1024,
            (0..receivers).map(actor).collect(),
        )
    }

    /// Build a bitmap of n blocks where `f(i)` says bit i is set.
    fn bm(n: usize, f: impl Fn(usize) -> bool) -> Bitmap {
        let mut b = Bitmap::zeros(n);
        for i in 0..n {
            if f(i) {
                b.set(i, true);
            }
        }
        b
    }

    /// The exact Fig 6 walk-through: 8 MB blob, receivers A, B, C.
    ///
    /// Phase 1: A has first 3 blocks, B all "even messages"
    /// (M2,M4,… = odd 0-based indices), C all odd messages.
    /// Phase 2: A and B complete; C unchanged.
    /// Phase 3 (resend of evens): C gets all but M2 (index 1).
    #[test]
    fn fig6_walkthrough() {
        let n = 8192usize;
        let mut job = mk_job(8192, 3);
        let blocks = job.begin();
        assert_eq!(blocks.len(), n);
        assert_eq!(job.bitmap_wire_bytes(), 1024, "8192-bit bitmap = 1 KB");

        // Phase 1 bitmaps.
        let a1 = bm(n, |i| i < 3);
        let b1 = bm(n, |i| i % 2 == 1); // M2, M4, ... (1-based even)
        let c1 = bm(n, |i| i % 2 == 0); // M1, M3, ...
        assert!(job.on_bitmap(actor(0), &a1).is_none());
        assert!(job.on_bitmap(actor(1), &b1).is_none());
        let d1 = job.on_bitmap(actor(2), &c1).expect("phase 1 decision");
        // Gain 8195 KB = cost 8195 KB (8192 sent + 3 bitmaps) → continue,
        // resend everything (AND = zero).
        match d1 {
            PhaseDecision::Resend(blocks) => assert_eq!(blocks.len(), 8192),
            other => panic!("expected Resend, got {other:?}"),
        }
        assert_eq!(job.phase, 2);

        // Phase 2: A and B now have everything; C heard nothing new.
        let full = bm(n, |_| true);
        assert!(job.on_bitmap(actor(0), &full).is_none());
        assert!(job.on_bitmap(actor(1), &full).is_none());
        let d2 = job.on_bitmap(actor(2), &c1).expect("phase 2 decision");
        // Gain 12285 KB > cost 8195 KB → continue; AND = C's map, so the
        // resend set is the 4096 "even messages".
        match d2 {
            PhaseDecision::Resend(blocks) => {
                assert_eq!(blocks.len(), 4096);
                assert!(blocks.iter().all(|b| b % 2 == 1));
            }
            other => panic!("expected Resend, got {other:?}"),
        }
        assert_eq!(job.phase, 3);

        // Phase 3: C receives everything except M2 (index 1).
        assert!(job.on_bitmap(actor(0), &full).is_none());
        assert!(job.on_bitmap(actor(1), &full).is_none());
        let c3 = bm(n, |i| i != 1);
        let d3 = job.on_bitmap(actor(2), &c3).expect("phase 3 decision");
        // Gain 4095 KB < cost 4099 KB (4096 sent + 3 bitmaps) → TCP.
        match d3 {
            PhaseDecision::TcpResidue(residue) => {
                assert_eq!(residue.len(), 1);
                assert_eq!(residue[&actor(2)], vec![1u32]);
            }
            other => panic!("expected TcpResidue, got {other:?}"),
        }
        assert!(job.is_done());
        assert_eq!(job.stats.phases, 3);
        assert_eq!(job.stats.udp_bytes, (8192 + 8192 + 4096) * 1024);
        assert_eq!(job.stats.bitmap_bytes, 9 * 1024);
    }

    #[test]
    fn perfect_reception_completes_in_one_phase() {
        let mut job = mk_job(64, 2);
        job.begin();
        let full = bm(64, |_| true);
        assert!(job.on_bitmap(actor(0), &full).is_none());
        match job.on_bitmap(actor(1), &full).unwrap() {
            PhaseDecision::Complete => {}
            other => panic!("expected Complete, got {other:?}"),
        }
        assert!(job.is_done());
        assert_eq!(job.stats.tcp_bytes, 0);
    }

    #[test]
    fn tail_block_sizes() {
        let job = SenderJob::new(
            1,
            ckpt_content(),
            TrafficClass::Checkpoint,
            2500,
            1024,
            vec![actor(0)],
        );
        assert_eq!(job.n_blocks, 3);
        assert_eq!(job.block_size(0), 1024);
        assert_eq!(job.block_size(2), 452);
        assert_eq!(job.bytes_of(&[0, 1, 2]), 2500);
    }

    #[test]
    fn timeout_drops_stragglers() {
        let mut job = mk_job(16, 3);
        job.begin();
        let full = bm(16, |_| true);
        assert!(job.on_bitmap(actor(0), &full).is_none());
        assert!(job.on_bitmap(actor(1), &full).is_none());
        // actor(2) never replies.
        match job.on_timeout(1).unwrap() {
            PhaseDecision::Complete => {}
            other => panic!("expected Complete after dropping straggler, got {other:?}"),
        }
        assert_eq!(job.receivers(), vec![actor(0), actor(1)]);
        // Stale timeout is a no-op.
        assert!(job.on_timeout(1).is_none());
    }

    #[test]
    fn unknown_receiver_ignored() {
        let mut job = mk_job(4, 1);
        job.begin();
        assert!(job.on_bitmap(actor(9), &bm(4, |_| true)).is_none());
        assert!(!job.is_done());
    }

    #[test]
    fn max_phases_caps_the_loop() {
        let mut job = mk_job(4, 1).with_max_phases(2);
        job.begin();
        // Receiver never receives anything, yet gains stay 0 < cost, so
        // phase 1 already stops (cost > gain). Use a receiver that gets
        // exactly enough to keep gain ≥ cost once, then stalls.
        let d1 = job.on_bitmap(actor(0), &bm(4, |i| i < 3)).unwrap();
        match d1 {
            // gain = 3 KB, cost = 4 KB + bitmap → TCP immediately.
            PhaseDecision::TcpResidue(r) => assert_eq!(r[&actor(0)], vec![3u32]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tcp_tree_carries_subtree_unions() {
        let receivers = vec![actor(0), actor(1), actor(2), actor(3)];
        let mut residue = BTreeMap::new();
        residue.insert(actor(1), vec![5u32]);
        residue.insert(actor(3), vec![7u32, 9]);
        let edges = tcp_tree_edges(&residue, &receivers);
        // Tree: 0 root; children 1,2; 1's children 3.
        // Subtree(3) = {7,9}; subtree(1) = {5,7,9}; subtree(0) same.
        let find = |p: usize, c: usize| {
            edges
                .iter()
                .find(|(pp, cc, _)| *pp == p && *cc == c)
                .map(|(_, _, b)| b.clone())
        };
        assert_eq!(find(usize::MAX, 0).unwrap(), vec![5, 7, 9]);
        assert_eq!(find(0, 1).unwrap(), vec![5, 7, 9]);
        assert_eq!(find(1, 3).unwrap(), vec![7, 9]);
        assert!(find(0, 2).is_none(), "clean subtree gets no traffic");
    }

    /// §III-C termination: a phase whose cost exceeds its gain ends the
    /// UDP loop, and the final reliable pass carries exactly each
    /// receiver's missing blocks.
    #[test]
    fn cost_exceeding_gain_stops_rebroadcast_with_exact_residue() {
        // 4 KB blob → 4 blocks, 2 receivers.
        let mut job = mk_job(4, 2);
        let blocks = job.begin();
        assert_eq!(blocks.len(), 4);

        // Phase 1: both receivers caught 3 of 4 blocks → gain (6 KB)
        // well above cost (4 KB sent + 2 bitmaps) → rebroadcast the
        // union of losses {2, 3}.
        let r0 = bm(4, |i| i != 3); // missing 3
        let r1 = bm(4, |i| i != 2); // missing 2
        assert!(job.on_bitmap(actor(0), &r0).is_none());
        let d1 = job.on_bitmap(actor(1), &r1).expect("phase 1 decision");
        match d1 {
            PhaseDecision::Resend(blocks) => assert_eq!(blocks, vec![2, 3]),
            other => panic!("expected Resend, got {other:?}"),
        }
        assert_eq!(job.phase, 2);
        assert!(!job.is_done());

        // Phase 2: the rebroadcast reached nobody (same bitmaps). Gain
        // is 0 < cost → stop rebroadcasting; the reliable pass lists
        // exactly what each receiver still misses.
        assert!(job.on_bitmap(actor(0), &r0).is_none());
        let d2 = job.on_bitmap(actor(1), &r1).expect("phase 2 decision");
        match d2 {
            PhaseDecision::TcpResidue(residue) => {
                assert_eq!(residue.len(), 2);
                assert_eq!(residue[&actor(0)], vec![3]);
                assert_eq!(residue[&actor(1)], vec![2]);
            }
            other => panic!("expected TcpResidue, got {other:?}"),
        }
        assert!(job.is_done(), "cost > gain terminates the job");
        assert_eq!(job.stats.phases, 2, "no further UDP phases");
    }

    /// Full reception everywhere completes the job with no residue and
    /// no further phases.
    #[test]
    fn complete_when_every_receiver_has_every_block() {
        let mut job = mk_job(4, 3);
        job.begin();
        let full = bm(4, |_| true);
        assert!(job.on_bitmap(actor(0), &full).is_none());
        assert!(job.on_bitmap(actor(1), &full).is_none());
        match job.on_bitmap(actor(2), &full).expect("decision") {
            PhaseDecision::Complete => {}
            other => panic!("expected Complete, got {other:?}"),
        }
        assert!(job.is_done());
        assert_eq!(job.stats.phases, 1);
        assert_eq!(job.stats.tcp_bytes, 0, "nothing left for the TCP pass");
    }

    /// The reliable (TCP-tree) pass covers the residue: every receiver's
    /// missing blocks ride every edge on its root path.
    #[test]
    fn reliable_pass_tree_carries_each_receivers_residue() {
        let receivers: Vec<ActorId> = (0..3).map(actor).collect();
        let mut residue = BTreeMap::new();
        residue.insert(receivers[1], vec![2u32, 5]);
        residue.insert(receivers[2], vec![7u32]);
        let edges = tcp_tree_edges(&residue, &receivers);
        // Receiver 1 and 2 are children of root 0 in the binary tree:
        // the edge into each must carry exactly its missing blocks.
        let mut into: BTreeMap<usize, &Vec<u32>> = BTreeMap::new();
        for (_, c, b) in &edges {
            into.insert(*c, b);
        }
        assert!(into[&1].contains(&2) && into[&1].contains(&5));
        assert!(into[&2].contains(&7));
        // The root (receiver 0) needs nothing, so no edge carries
        // blocks for it alone.
        for (_, c, blocks) in &edges {
            for b in blocks {
                let needed_below = residue.iter().any(|(_, v)| v.contains(b));
                assert!(needed_below, "edge into {c} carries stray block {b}");
            }
        }
    }

    /// The phase cap is a hard stop even while gain still beats cost:
    /// with 8 receivers each phase halves the residue (high gain), yet
    /// the job must fall to the reliable pass at the cap.
    #[test]
    fn max_phases_caps_the_udp_loop() {
        let n_rx = 8;
        let mut job = mk_job(8, n_rx).with_max_phases(3);
        job.begin();
        // Phase 1: everyone has the first half → gain 32 KB > cost
        // ~8 KB → Resend([4..8]).
        let mut have = 4usize;
        for r in 0..n_rx - 1 {
            assert!(job.on_bitmap(actor(r), &bm(8, |i| i < have)).is_none());
        }
        match job
            .on_bitmap(actor(n_rx - 1), &bm(8, |i| i < have))
            .unwrap()
        {
            PhaseDecision::Resend(blocks) => assert_eq!(blocks, vec![4, 5, 6, 7]),
            other => panic!("expected Resend, got {other:?}"),
        }
        // Phase 2: everyone gains two more → still worth it.
        have = 6;
        for r in 0..n_rx - 1 {
            assert!(job.on_bitmap(actor(r), &bm(8, |i| i < have)).is_none());
        }
        match job
            .on_bitmap(actor(n_rx - 1), &bm(8, |i| i < have))
            .unwrap()
        {
            PhaseDecision::Resend(blocks) => assert_eq!(blocks, vec![6, 7]),
            other => panic!("expected Resend, got {other:?}"),
        }
        // Phase 3: gain (8 KB) still beats cost (~2 KB), but the cap
        // forces the reliable pass; everyone still misses block 7.
        have = 7;
        for r in 0..n_rx - 1 {
            assert!(job.on_bitmap(actor(r), &bm(8, |i| i < have)).is_none());
        }
        match job
            .on_bitmap(actor(n_rx - 1), &bm(8, |i| i < have))
            .unwrap()
        {
            PhaseDecision::TcpResidue(res) => {
                assert_eq!(res.len(), n_rx);
                for r in 0..n_rx {
                    assert_eq!(res[&actor(r)], vec![7]);
                }
            }
            other => panic!("expected TcpResidue at the cap, got {other:?}"),
        }
        assert!(job.is_done());
        assert_eq!(job.stats.phases, 3);
    }

    #[test]
    fn receiver_state_accumulates_across_phases() {
        let mut rx = ReceiverState::default();
        let src = actor(9);
        // Phase 1: blocks 0..4 broadcast, we catch 0 and 2.
        let got = bm(4, |i| i == 0 || i == 2);
        let cum = rx.on_batch(src, 1, 8, &[0, 1, 2, 3], &got).unwrap();
        assert_eq!(cum.count_ones(), 2);
        // Phase 2: blocks 4..8, we catch all.
        let cum = rx
            .on_batch(src, 1, 8, &[4, 5, 6, 7], &bm(4, |_| true))
            .unwrap();
        assert_eq!(cum.count_ones(), 6);
        assert_eq!(rx.in_flight(), 1);
        rx.finish(src, 1);
        assert_eq!(rx.in_flight(), 0);
    }

    /// Regression: a batch listing a block id beyond the job's size
    /// used to be silently skipped — the sender then believed the
    /// block was replicated even though it landed nowhere. It must be
    /// rejected as a protocol error, leaving the cumulative state
    /// untouched.
    #[test]
    fn receiver_state_rejects_out_of_range_block() {
        let mut rx = ReceiverState::default();
        let src = actor(9);
        let cum = rx.on_batch(src, 1, 8, &[0, 1], &bm(2, |_| true)).unwrap();
        assert_eq!(cum.count_ones(), 2);
        // Block 8 of an 8-block job does not exist.
        let err = rx
            .on_batch(src, 1, 8, &[7, 8], &bm(2, |_| true))
            .unwrap_err();
        assert_eq!(
            err,
            BroadcastError::BlockOutOfRange {
                stream: 1,
                block: 8,
                total: 8,
            }
        );
        // The malformed batch left the cumulative bitmap untouched
        // (block 7 from the bad batch must NOT have been applied).
        let cum = rx.on_batch(src, 1, 8, &[2], &bm(1, |_| true)).unwrap();
        assert_eq!(cum.count_ones(), 3);
        assert!(!cum.get(7), "partial application of a rejected batch");
    }

    /// Regression: a batch re-declaring a different job size must not
    /// silently drop the out-of-bounds tail of its blocks.
    #[test]
    fn receiver_state_rejects_total_blocks_mismatch() {
        let mut rx = ReceiverState::default();
        let src = actor(3);
        rx.on_batch(src, 5, 16, &[0], &bm(1, |_| true)).unwrap();
        let err = rx.on_batch(src, 5, 8, &[1], &bm(1, |_| true)).unwrap_err();
        assert_eq!(
            err,
            BroadcastError::TotalBlocksMismatch {
                stream: 5,
                declared: 8,
                expected: 16,
            }
        );
        assert!(err.to_string().contains("sized at 16"));
        // A fresh stream id is a fresh job and works fine.
        rx.on_batch(src, 6, 8, &[1], &bm(1, |_| true)).unwrap();
        assert_eq!(rx.in_flight(), 2);
    }

    proptest! {
        /// Random loss patterns: the job always terminates, and after
        /// the (simulated) TCP phase every surviving receiver has every
        /// block (received ∪ residue covers the blob).
        #[test]
        fn prop_terminates_and_covers(
            n_blocks in 1u64..200,
            n_rx in 1usize..6,
            seed in any::<u64>(),
            loss_pct in 0u32..95,
        ) {
            let mut job = SenderJob::new(
                1, ckpt_content(), TrafficClass::Checkpoint,
                n_blocks * 1024, 1024,
                (0..n_rx).map(actor).collect(),
            );
            let mut pending = job.begin();
            let mut rng = seed;
            let mut next = move || {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (rng >> 33) as u32 % 100
            };
            // Receiver-side cumulative state.
            let mut cum: Vec<Bitmap> =
                (0..n_rx).map(|_| Bitmap::zeros(n_blocks as usize)).collect();
            #[allow(unused_assignments)]
            let mut residue_map: Option<BTreeMap<ActorId, Vec<u32>>> = None;
            let mut rounds = 0;
            'outer: loop {
                rounds += 1;
                prop_assert!(rounds <= 20, "engine did not terminate");
                // Simulate the channel for this phase.
                for (r, c) in cum.iter_mut().enumerate() {
                    let _ = r;
                    for &b in &pending {
                        if next() >= loss_pct {
                            c.set(b as usize, true);
                        }
                    }
                }
                // Replies.
                for (r, c) in cum.iter().enumerate() {
                    if let Some(decision) = job.on_bitmap(actor(r), c) {
                        match decision {
                            PhaseDecision::Resend(blocks) => {
                                pending = blocks;
                                continue 'outer;
                            }
                            PhaseDecision::TcpResidue(res) => {
                                residue_map = Some(res);
                                break 'outer;
                            }
                            PhaseDecision::Complete => {
                                residue_map = Some(BTreeMap::new());
                                break 'outer;
                            }
                        }
                    }
                }
            }
            let residue = residue_map.unwrap();
            // Coverage: every receiver's cum ∪ residue = all blocks.
            for (r, c) in cum.iter().enumerate() {
                let missing: Vec<u32> = c
                    .zero_indices()
                    .into_iter()
                    .map(|i| i as u32)
                    .collect();
                let listed = residue.get(&actor(r)).cloned().unwrap_or_default();
                prop_assert_eq!(missing, listed);
            }
        }
    }
}

#[cfg(test)]
mod tree_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every receiver's missing blocks are carried by every edge on
        /// its root path (so the data actually reaches it), and no edge
        /// carries blocks nobody below it needs.
        #[test]
        fn prop_tree_covers_residues(
            n_rx in 1usize..10,
            missing in prop::collection::vec(prop::collection::vec(0u32..64, 0..8), 1..10),
        ) {
            let receivers: Vec<ActorId> = (0..n_rx).map(ActorId::from_index).collect();
            let mut residue = BTreeMap::new();
            for (i, m) in missing.iter().take(n_rx).enumerate() {
                if !m.is_empty() {
                    let mut mm = m.clone();
                    mm.sort_unstable();
                    mm.dedup();
                    residue.insert(receivers[i], mm);
                }
            }
            let edges = tcp_tree_edges(&residue, &receivers);
            // Edge map child -> blocks.
            let mut into: BTreeMap<usize, &Vec<u32>> = BTreeMap::new();
            for (_, c, b) in &edges {
                into.insert(*c, b);
            }
            for (i, _) in receivers.iter().enumerate() {
                let want = residue.get(&receivers[i]).cloned().unwrap_or_default();
                if want.is_empty() {
                    continue;
                }
                // Walk up from i to the root, ensuring every hop carries
                // the receiver's blocks.
                let mut cur = i;
                loop {
                    let carried = into.get(&cur).expect("edge into needy node");
                    for b in &want {
                        prop_assert!(carried.contains(b), "node {i} misses {b} at hop {cur}");
                    }
                    if cur == 0 {
                        break;
                    }
                    cur = (cur - 1) / 2;
                }
            }
            // No edge carries a block that no receiver in its subtree needs.
            for (_, c, blocks) in &edges {
                let mut subtree = vec![*c];
                let mut ix = 0;
                while ix < subtree.len() {
                    let s = subtree[ix];
                    for ch in [2 * s + 1, 2 * s + 2] {
                        if ch < receivers.len() {
                            subtree.push(ch);
                        }
                    }
                    ix += 1;
                }
                for b in blocks {
                    let needed = subtree.iter().any(|&s| {
                        residue.get(&receivers[s]).map(|m| m.contains(b)).unwrap_or(false)
                    });
                    prop_assert!(needed, "edge into {c} carries unneeded block {b}");
                }
            }
        }
    }
}
