//! Control-plane protocol records exchanged between the controller and
//! the per-node [`crate::scheme::MsScheme`].
//!
//! Wire sizes are small constants; every message crosses the cellular
//! network (controller ↔ phones) or rides the region WiFi (bitmap
//! replies), and is charged to `TrafficClass::Control`.

use std::sync::Arc;

use dsps::graph::OpId;
use dsps::operator::OpState;
use dsps::tuple::Tuple;
use simkernel::ActorId;
use simnet::bitmap::Bitmap;

/// Controller → source nodes: begin checkpoint `version` (§III-B step 1).
#[derive(Debug, Clone, Copy)]
pub struct StartCheckpoint {
    /// Checkpoint version being created.
    pub version: u64,
}

/// Node → controller: this node finished checkpoint `version` (state
/// snapshotted *and* replicated to the region).
#[derive(Debug, Clone, Copy)]
pub struct NodeCheckpointed {
    /// Completed version.
    pub version: u64,
    /// Reporting region/slot.
    pub region: usize,
    /// Reporting slot.
    pub slot: u32,
}

/// Controller → all region nodes: checkpoint `version` committed; GC
/// everything older ("the input data and the checkpoint data will be
/// kept until the next checkpoint of the region is completed").
#[derive(Debug, Clone, Copy)]
pub struct CheckpointComplete {
    /// Committed version.
    pub version: u64,
}

/// Controller → region node: full membership snapshot. Sent only when
/// the controller has no known epoch for the phone (startup, rejoin,
/// post-partition resync) — routine churn travels as
/// [`MembershipDelta`]s. Payloads are `Arc`-shared across the targets
/// of one flush, never cloned per phone.
#[derive(Debug, Clone)]
pub struct MembershipUpdate {
    /// Actors of currently active region members, indexed by slot
    /// (dead/departed slots keep their last actor but are absent from
    /// `active_slots`).
    pub slot_actors: Arc<Vec<ActorId>>,
    /// Slots currently alive and in-region.
    pub active_slots: Arc<Vec<u32>>,
    /// Membership epoch this snapshot represents (the region's event
    /// log head at send time). Phones ignore snapshots older than what
    /// they already hold.
    pub epoch: u64,
}

/// One membership event: a slot entered or left the active set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotChange {
    /// Slot whose activity changed.
    pub slot: u32,
    /// New activity (absolute, so re-application is idempotent).
    pub active: bool,
}

/// Controller → region node: batched membership delta covering epochs
/// `base_epoch..epoch` of the region's event log. A phone applies it
/// only if it holds at least `base_epoch` and less than `epoch`;
/// overlap re-applies idempotently (changes are absolute). The change
/// vector is `Arc`-shared across every target of one flush.
#[derive(Debug, Clone)]
pub struct MembershipDelta {
    /// Epoch the change suffix starts from.
    pub base_epoch: u64,
    /// Epoch after applying the suffix (the log head at send time).
    pub epoch: u64,
    /// The membership events, oldest first.
    pub changes: Arc<Vec<SlotChange>>,
}

/// Receiver → broadcast sender: reception bitmap for one phase of one
/// job (the paper's per-receiver bitmap, Fig 6).
#[derive(Debug, Clone)]
pub struct BitmapReply {
    /// The job this reply belongs to.
    pub stream: u64,
    /// Cumulative reception bitmap over all job blocks.
    pub received: Bitmap,
}

/// Internal (sender-side): give up waiting for stragglers' bitmaps.
#[derive(Debug, Clone, Copy)]
pub struct BitmapTimeout {
    /// Job id.
    pub stream: u64,
    /// Phase the timeout was armed for.
    pub phase: u32,
}

/// Broadcast completion: logical content of a finished job, delivered
/// to every receiver as a zero-cost event (all bytes were already
/// charged by the UDP/TCP phases).
#[derive(Debug, Clone)]
pub enum BlobContent {
    /// Checkpoint states of the sending node.
    Checkpoint {
        /// Version being replicated.
        version: u64,
        /// Operator states with their sizes.
        states: Vec<(OpId, OpState, u64)>,
    },
    /// Checkpoint states re-broadcast by a proxy on behalf of a
    /// *degraded* departed phone (out of WiFi range, snapshot arrived
    /// over cellular). When the job finishes, the proxy reports
    /// [`NodeCheckpointed`] for `origin_slot`, not itself.
    ProxyCheckpoint {
        /// The degraded slot whose states these are.
        origin_slot: u32,
        /// Version being replicated.
        version: u64,
        /// Operator states with their sizes.
        states: Vec<(OpId, OpState, u64)>,
    },
    /// One preserved source input. The broadcast doubles as the data
    /// delivery: the receiver hosting `deliver_edge`'s target enqueues
    /// the tuple as stream input, so the frame crosses the channel
    /// exactly once (preservation piggybacks on the data path).
    Preserve {
        /// Preservation epoch (= version the input follows).
        epoch: u64,
        /// Source operator the input belongs to.
        op: OpId,
        /// The tuple.
        tuple: Tuple,
        /// The out-edge this tuple travels on (None = pure log copy).
        deliver_edge: Option<dsps::graph::EdgeId>,
    },
}

/// Broadcast completion delivery (sender → each receiver, zero-cost).
#[derive(Debug, Clone)]
pub struct BlobDeliver {
    /// Originating slot.
    pub from_slot: u32,
    /// Originating actor (receiver-side job key).
    pub from_actor: ActorId,
    /// Job id (receiver-side job key).
    pub stream: u64,
    /// Content.
    pub content: BlobContent,
}

/// Controller → all hosting nodes: roll back to checkpoint `version`
/// (classic checkpoint restoration, §III-D).
#[derive(Debug, Clone, Copy)]
pub struct RollbackTo {
    /// Version to restore.
    pub version: u64,
}

/// Controller → source nodes: replay preserved inputs of `epoch`
/// (catch-up, §III-D).
#[derive(Debug, Clone, Copy)]
pub struct ReplayInputs {
    /// Epoch to replay.
    pub epoch: u64,
}

/// Node → controller: recovery install finished; node is processing.
#[derive(Debug, Clone, Copy)]
pub struct RecoveredAck {
    /// Region/slot of the recovered node.
    pub region: usize,
    /// Slot.
    pub slot: u32,
}

/// Fault injector → node: the phone's GPS says it is leaving the
/// region (§III-E). The node notifies the controller itself.
#[derive(Debug, Clone, Copy)]
pub struct Depart;

/// Node → controller: "I am leaving the region" (GPS-based notice,
/// triggers urgent mode and replacement).
#[derive(Debug, Clone, Copy)]
pub struct DepartureNotice {
    /// Region/slot departing.
    pub region: usize,
    /// Slot departing.
    pub slot: u32,
}

/// Controller → departing node: ship your operator states (and the
/// install package) to the replacement over cellular.
#[derive(Debug, Clone)]
pub struct TransferStateTo {
    /// Replacement phone.
    pub replacement: ActorId,
    /// Install package the replacement must apply (states filled in by
    /// the departing node).
    pub install: dsps::node::Install,
}

/// Controller → degraded departed node: you are out of WiFi range with
/// no replacement; ship each checkpoint snapshot over cellular to
/// `proxy` (an in-region phone), which re-broadcasts it on WiFi and
/// reports completion on your behalf. Re-sent every checkpoint round so
/// proxy churn self-heals.
#[derive(Debug, Clone, Copy)]
pub struct DegradedCheckpointVia {
    /// In-region phone acting as the snapshot relay.
    pub proxy: ActorId,
}

/// Degraded node → proxy (over cellular): one operator-state snapshot
/// for `version`. Charged at the states' full byte size on the slow
/// cellular path — this is the 32 KB-through-168 kbps funnel the
/// bounded link queues make honest.
#[derive(Debug, Clone)]
pub struct DegradedSnapshot {
    /// Region of the degraded slot.
    pub region: usize,
    /// The degraded slot the snapshot belongs to.
    pub origin_slot: u32,
    /// Checkpoint version snapshotted.
    pub version: u64,
    /// Operator states with their sizes.
    pub states: Vec<(OpId, OpState, u64)>,
}

pub use dsps::node::{Reboot, RegisterNode};

/// Wire sizes for control messages (bytes).
pub mod wire {
    /// Generic small control RPC.
    pub const CONTROL: u64 = 64;
    /// Full membership snapshot (slot table).
    pub const MEMBERSHIP: u64 = 256;
    /// Ping/pong probes.
    pub const PING: u64 = 32;
    /// Membership delta header (epochs + framing).
    pub const DELTA_BASE: u64 = 32;
    /// Per-change cost of a membership delta.
    pub const DELTA_PER_CHANGE: u64 = 8;
}
