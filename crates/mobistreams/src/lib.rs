//! # mobistreams — the paper's contribution
//!
//! A reliable DSPS for smartphones (Wang & Peh, IPDPS 2014), built on
//! the `dsps` runtime and `simnet` transports:
//!
//! * [`broadcast`] — **broadcast-based checkpointing** (§III-C, Fig 6):
//!   checkpoint/preservation data ships as 1 KB UDP broadcast blocks in
//!   multiple phases; receivers return reception bitmaps; the sender
//!   ANDs them, rebroadcasts the union of losses, and stops when the
//!   phase's *cost* exceeds its *gain*; a final reliable pass over a
//!   distribution tree delivers the residue.
//! * [`scheme`] — **token-triggered checkpointing** (§III-B, Fig 5):
//!   the per-node [`dsps::ft::FtScheme`] implementing token alignment,
//!   asynchronous state snapshots, source preservation, rollback and
//!   catch-up squelching.
//! * [`controller`] — the sharded control plane (§III-A/D/E): a thin
//!   global [`controller::Coordinator`] (placement epochs, inter-region
//!   wiring, install brokering) plus per-region-group
//!   [`controller::RegionController`]s owning membership, checkpoint
//!   triggering, ping-based failure detection, burst-failure recovery,
//!   departures (urgent mode → state transfer → replacement), and
//!   region bypass — converging membership with epoch-numbered batched
//!   deltas ([`controller::reconcile`]).
//! * [`msgs`] — the control-plane protocol records.

pub mod broadcast;
pub mod controller;
pub mod msgs;
pub mod scheme;

pub use controller::{Coordinator, MsControllerConfig, RegionController, RegionSpec, RegionWiring};
pub use scheme::{MsScheme, MsSchemeConfig};
