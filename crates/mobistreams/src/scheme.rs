//! Token-triggered checkpointing (§III-B, Fig 5): the per-node
//! MobiStreams scheme.
//!
//! Responsibilities of [`MsScheme`] on each phone:
//!
//! * **Token alignment** — when a checkpoint token is consumed from a
//!   remote in-edge, pause that edge; once tokens arrived on *all*
//!   remote in-edges, snapshot every hosted operator, forward the token
//!   on every remote out-edge, resume the paused edges, and ship the
//!   snapshot to the whole region via the multi-phase broadcast.
//! * **Source preservation** — log every fresh source input under the
//!   current epoch and replicate it to the region (every node keeps a
//!   copy, §III-B step 3).
//! * **Recovery participation** — roll back to the MRC on controller
//!   command, replay preserved inputs, and squelch sink output for
//!   replayed tuples (catch-up, §III-D).
//! * **Mobility participation** — notify the controller on departure
//!   and ship state to the replacement over cellular (§III-E).

use std::collections::{BTreeMap, BTreeSet};

use dsps::ft::FtScheme;
use dsps::graph::{EdgeId, OpId, OpKind};
use dsps::node::{InstallStates, NodeInner};
use dsps::tuple::{Marker, StreamItem, Tuple};
use simkernel::{ActorId, Ctx, EventBox};
use simnet::bitmap::Bitmap;
use simnet::cellular::CellRx;
use simnet::stats::TrafficClass;
use simnet::wifi::{SendMode, Service, WifiBatchRx, WifiBatchSend, WifiRx};
use simnet::{payload, payload_as};

use crate::broadcast::{BroadcastConfig, PhaseDecision, ReceiverState, SenderJob};
use crate::msgs::*;

/// MobiStreams per-node parameters.
#[derive(Debug, Clone, Default)]
pub struct MsSchemeConfig {
    /// Broadcast engine parameters.
    pub broadcast: BroadcastConfig,
    /// Replicate source inputs to the region (on in the paper; off
    /// only for ablation benches).
    pub preserve_inputs: bool,
}

impl MsSchemeConfig {
    /// Paper defaults.
    pub fn paper() -> Self {
        MsSchemeConfig {
            broadcast: BroadcastConfig::default(),
            preserve_inputs: true,
        }
    }
}

/// Alignment bookkeeping for one checkpoint version.
#[derive(Debug, Default)]
struct AlignState {
    got: BTreeSet<EdgeId>,
}

/// Aggregate per-node protocol statistics (harvested by experiments).
#[derive(Debug, Default, Clone, Copy)]
pub struct SchemeStats {
    /// Checkpoints this node completed.
    pub checkpoints: u64,
    /// Tokens consumed.
    pub tokens_seen: u64,
    /// Broadcast jobs started.
    pub jobs_started: u64,
    /// Total UDP payload bytes across finished jobs.
    pub udp_bytes: u64,
    /// Total bitmap reply bytes across finished jobs.
    pub bitmap_bytes: u64,
    /// Total TCP-residue bytes across finished jobs.
    pub tcp_bytes: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Source tuples replayed.
    pub replayed: u64,
    /// Malformed broadcast-protocol messages rejected.
    pub protocol_errors: u64,
    /// Snapshots shipped over cellular while degraded (§III-E, no
    /// replacement; WiFi unreachable).
    pub cell_snapshots: u64,
    /// Degraded snapshots relayed onto WiFi as this node's proxy duty.
    pub proxied_snapshots: u64,
}

/// The MobiStreams fault-tolerance scheme.
pub struct MsScheme {
    cfg: MsSchemeConfig,
    /// Current preservation epoch (version of the last started ckpt).
    pub epoch: u64,
    align: BTreeMap<u64, AlignState>,
    /// Highest version this node has already checkpointed. A token for
    /// a version at or below this is a duplicate (e.g. a mixed
    /// source+compute node used to emit twice per edge) — consuming it
    /// again would re-pause the edge with no wave left to resume it,
    /// freezing the region's dataflow and every later checkpoint.
    last_aligned: u64,
    /// Out-edges already given a token per in-flight version (sender-
    /// side dedup for mixed source+compute nodes).
    tokens_emitted: BTreeMap<u64, BTreeSet<EdgeId>>,
    /// Active slots per the controller's last membership update.
    pub active_slots: Vec<u32>,
    /// Membership epoch currently held (guards snapshot/delta
    /// application against reordering across resyncs).
    pub membership_epoch: u64,
    jobs: BTreeMap<u64, SenderJob>,
    rx: ReceiverState,
    next_stream: u64,
    /// Tag → stream of in-flight TCP-phase completions.
    tcp_tags: BTreeMap<u64, u64>,
    /// Per-job queue of remaining phase chunks.
    chunk_queues: BTreeMap<u64, std::collections::VecDeque<Vec<u32>>>,
    /// Tag → stream for in-flight batch chunks.
    batch_tags: BTreeMap<u64, u64>,
    /// Last time each slot was reported silent (rate limiting).
    reported_silent: BTreeMap<u32, simkernel::SimTime>,
    /// While degraded (departed, no replacement): the in-region phone
    /// snapshots must be shipped to over cellular instead of the WiFi
    /// broadcast. `None` = normal WiFi path.
    pub degraded_proxy: Option<ActorId>,
    /// Protocol statistics.
    pub stats: SchemeStats,
}

impl MsScheme {
    /// New scheme with the given parameters.
    pub fn new(cfg: MsSchemeConfig) -> Self {
        MsScheme {
            cfg,
            epoch: 0,
            align: BTreeMap::new(),
            last_aligned: 0,
            tokens_emitted: BTreeMap::new(),
            active_slots: Vec::new(),
            membership_epoch: 0,
            jobs: BTreeMap::new(),
            rx: ReceiverState::default(),
            next_stream: 0,
            tcp_tags: BTreeMap::new(),
            chunk_queues: BTreeMap::new(),
            batch_tags: BTreeMap::new(),
            reported_silent: BTreeMap::new(),
            degraded_proxy: None,
            stats: SchemeStats::default(),
        }
    }

    /// Paper-default scheme.
    pub fn paper() -> Self {
        MsScheme::new(MsSchemeConfig::paper())
    }

    /// Alignment waves still waiting for tokens: `(version, edges
    /// heard so far)`. Introspection for probes and tests.
    pub fn pending_alignments(&self) -> Vec<(u64, Vec<EdgeId>)> {
        self.align
            .iter()
            .map(|(&v, st)| (v, st.got.iter().copied().collect()))
            .collect()
    }

    /// Active peers (actors) excluding this node.
    fn peers(&self, node: &NodeInner) -> Vec<ActorId> {
        self.active_slots
            .iter()
            .filter(|&&s| s != node.cfg.slot)
            .filter_map(|&s| node.slot_actors.get(s as usize).copied())
            .collect()
    }

    fn alloc_stream(&mut self, node: &NodeInner) -> u64 {
        let s = ((node.cfg.slot as u64) << 32) | self.next_stream;
        self.next_stream += 1;
        s
    }

    /// Launch a replication job for `content` of `total_bytes`.
    fn start_job(
        &mut self,
        node: &mut NodeInner,
        ctx: &mut Ctx,
        content: BlobContent,
        total_bytes: u64,
        class: TrafficClass,
    ) {
        let expected = self.peers(node);
        if expected.is_empty() || total_bytes == 0 {
            self.finish_content(&content, node, ctx);
            return;
        }
        let stream = self.alloc_stream(node);
        let mut job = SenderJob::new(
            stream,
            content,
            class,
            total_bytes,
            self.cfg.broadcast.block_bytes,
            expected,
        )
        .with_max_phases(self.cfg.broadcast.max_phases);
        let blocks = job.begin();
        self.jobs.insert(stream, job);
        self.stats.jobs_started += 1;
        self.send_phase(node, ctx, stream, blocks);
    }

    /// Queue a phase's blocks as chunks and launch the first chunk.
    /// The bitmap timeout is armed only once the last chunk has left
    /// the channel (a multi-MB phase takes many seconds of airtime).
    fn send_phase(&mut self, node: &mut NodeInner, ctx: &mut Ctx, stream: u64, blocks: Vec<u32>) {
        let Some(job) = self.jobs.get(&stream) else {
            return; // job torn down by a rollback/reinstall mid-flight
        };
        let mut chunks: std::collections::VecDeque<Vec<u32>> = std::collections::VecDeque::new();
        let mut cur: Vec<u32> = Vec::new();
        let mut cur_bytes = 0u64;
        for b in blocks {
            let sz = job.block_size(b);
            if cur_bytes + sz > self.cfg.broadcast.chunk_bytes && !cur.is_empty() {
                chunks.push_back(std::mem::take(&mut cur));
                cur_bytes = 0;
            }
            cur.push(b);
            cur_bytes += sz;
        }
        if !cur.is_empty() {
            chunks.push_back(cur);
        }
        self.chunk_queues.insert(stream, chunks);
        self.send_next_chunk(node, ctx, stream);
    }

    fn send_next_chunk(&mut self, node: &mut NodeInner, ctx: &mut Ctx, stream: u64) {
        let Some(q) = self.chunk_queues.get_mut(&stream) else {
            return;
        };
        let Some(blocks) = q.pop_front() else {
            self.chunk_queues.remove(&stream);
            return;
        };
        let reply_expected = q.is_empty();
        let Some(job) = self.jobs.get(&stream) else {
            return;
        };
        let payload_bytes = job.bytes_of(&blocks);
        let tag = node.alloc_tag();
        self.batch_tags.insert(tag, stream);
        let src = ctx.self_id();
        let wifi = node.wifi;
        ctx.send(
            wifi,
            WifiBatchSend {
                src,
                class: job.class,
                stream,
                total_blocks: job.n_blocks,
                blocks: blocks.into(),
                payload_bytes,
                reply_expected,
                tag,
            },
        );
    }

    fn arm_timeout(&self, ctx: &mut Ctx, stream: u64, phase: u32) {
        let me = ctx.self_id();
        ctx.send_in(
            self.cfg.broadcast.bitmap_timeout,
            me,
            BitmapTimeout { stream, phase },
        );
    }

    /// Drive a job forward after a phase decision.
    fn apply_decision(
        &mut self,
        stream: u64,
        decision: PhaseDecision,
        node: &mut NodeInner,
        ctx: &mut Ctx,
    ) {
        match decision {
            PhaseDecision::Resend(blocks) => {
                self.send_phase(node, ctx, stream, blocks);
            }
            PhaseDecision::TcpResidue(residue) => {
                let Some(job) = self.jobs.get_mut(&stream) else {
                    return; // job torn down by a rollback/reinstall mid-flight
                };
                let receivers = job.receivers();
                let edges = crate::broadcast::tcp_tree_edges(&residue, &receivers);
                if edges.is_empty() {
                    self.complete_job(stream, node, ctx);
                    return;
                }
                let mut total_tcp = 0u64;
                let class = job.class;
                let mut sends: Vec<(ActorId, u64)> = Vec::new();
                for (_, child_ix, blocks) in &edges {
                    let bytes = job.bytes_of(blocks);
                    total_tcp += bytes;
                    sends.push((receivers[*child_ix], bytes));
                }
                job.note_tcp_bytes(total_tcp);
                let last = sends.len() - 1;
                for (i, (dst, bytes)) in sends.into_iter().enumerate() {
                    let tag = if i == last { node.alloc_tag() } else { 0 };
                    if tag != 0 {
                        self.tcp_tags.insert(tag, stream);
                    }
                    node.send_wifi(
                        ctx,
                        SendMode::Unicast(dst),
                        Service::Reliable,
                        class,
                        bytes,
                        tag,
                        None,
                    );
                }
            }
            PhaseDecision::Complete => {
                self.complete_job(stream, node, ctx);
            }
        }
    }

    /// Deliver the blob logically and close out the job.
    fn complete_job(&mut self, stream: u64, node: &mut NodeInner, ctx: &mut Ctx) {
        let Some(job) = self.jobs.remove(&stream) else {
            return;
        };
        self.stats.udp_bytes += job.stats.udp_bytes;
        self.stats.bitmap_bytes += job.stats.bitmap_bytes;
        self.stats.tcp_bytes += job.stats.tcp_bytes;
        let deliver = BlobDeliver {
            from_slot: node.cfg.slot,
            stream,
            from_actor: ctx.self_id(),
            content: job.content.clone(),
        };
        for rx in job.receivers() {
            ctx.send(rx, deliver.clone());
        }
        self.finish_content(&job.content, node, ctx);
    }

    /// Local bookkeeping when a blob is fully replicated.
    fn finish_content(&mut self, content: &BlobContent, node: &mut NodeInner, ctx: &mut Ctx) {
        match content {
            BlobContent::Checkpoint { version, .. } => {
                self.stats.checkpoints += 1;
                let msg = NodeCheckpointed {
                    version: *version,
                    region: node.cfg.region,
                    slot: node.cfg.slot,
                };
                node.send_controller_tracked(ctx, wire::CONTROL, msg);
            }
            BlobContent::ProxyCheckpoint {
                origin_slot,
                version,
                ..
            } => {
                // Relayed on behalf of a degraded departed phone: the
                // report carries ITS slot so the controller can fold it
                // into `ckpt_got` and the round stays satisfiable.
                let msg = NodeCheckpointed {
                    version: *version,
                    region: node.cfg.region,
                    slot: *origin_slot,
                };
                node.send_controller_tracked(ctx, wire::CONTROL, msg);
            }
            BlobContent::Preserve { .. } => {}
        }
    }

    /// Send the token for `version` on `edge` unless this node already
    /// did (a mixed source+compute node reaches edges both via
    /// [`Self::on_start_checkpoint`] and [`Self::do_checkpoint`];
    /// exactly one token per (version, edge) may leave a node).
    fn emit_token(&mut self, version: u64, edge: EdgeId, node: &mut NodeInner, ctx: &mut Ctx) {
        if !self.tokens_emitted.entry(version).or_default().insert(edge) {
            return;
        }
        node.route_item(ctx, edge, StreamItem::Marker(Marker::token(version)));
    }

    /// Snapshot + token-forward + resume + ship (the "node checkpoint"
    /// of Fig 5).
    fn do_checkpoint(&mut self, version: u64, node: &mut NodeInner, ctx: &mut Ctx) {
        self.last_aligned = self.last_aligned.max(version);
        let snaps = node.snapshot_ops();
        let mut total = 0u64;
        for (op, st, bytes) in &snaps {
            node.store.put_state(version, *op, st.clone(), *bytes);
            total += bytes;
        }
        // Forward the token downstream first — checkpoint shipping is
        // asynchronous and must not delay the token wave.
        for e in node.remote_out_edges() {
            self.emit_token(version, e, node, ctx);
        }
        // The wave for this version is fully forwarded; GC dedup state
        // for versions this node is done with.
        self.tokens_emitted.retain(|&v, _| v >= version);
        // Resume edges paused by alignment — for this version AND any
        // older incomplete wave: a round superseded by a completed
        // newer one can never commit region-wide, and keeping its
        // edges paused would deadlock the node across versions.
        let done: Vec<u64> = self
            .align
            .keys()
            .copied()
            .filter(|&u| u <= version)
            .collect();
        for u in done {
            if let Some(st) = self.align.remove(&u) {
                for e in st.got {
                    node.paused.remove(&e);
                }
            }
        }
        ctx.count("ms.checkpoints", 1);
        if total == 0 {
            // Stateless node: report done immediately (a tiny control
            // message — works over cellular for degraded nodes too).
            self.finish_content(
                &BlobContent::Checkpoint {
                    version,
                    states: Vec::new(),
                },
                node,
                ctx,
            );
        } else if let Some(proxy) = self.degraded_proxy {
            // Degraded (departed, no replacement): WiFi broadcast can
            // reach nobody, so ship the snapshot to the in-region proxy
            // over cellular at its full byte size. The proxy relays it
            // onto WiFi and reports to the controller on our behalf.
            self.stats.cell_snapshots += 1;
            ctx.count("ms.cell_snapshots", 1);
            let snap = DegradedSnapshot {
                region: node.cfg.region,
                origin_slot: node.cfg.slot,
                version,
                states: snaps,
            };
            node.send_cell(
                ctx,
                proxy,
                TrafficClass::Checkpoint,
                total,
                0,
                Some(payload(snap)),
            );
        } else {
            self.start_job(
                node,
                ctx,
                BlobContent::Checkpoint {
                    version,
                    states: snaps,
                },
                total,
                TrafficClass::Checkpoint,
            );
        }
    }

    /// Source node handling of the controller's checkpoint trigger.
    fn on_start_checkpoint(&mut self, version: u64, node: &mut NodeInner, ctx: &mut Ctx) {
        let sources = node.hosted_sources();
        // Inputs still queued were logged under the old epoch but will
        // be emitted after the token: retag them to the new epoch.
        for &op in &sources {
            let ids: BTreeSet<u64> = node
                .queues
                .get(&EdgeId::source(op))
                .map(|q| {
                    q.iter()
                        .filter_map(|i| i.as_tuple())
                        .map(|t| t.id)
                        .collect()
                })
                .unwrap_or_default();
            node.store.retag_inputs(self.epoch, version, op, &ids);
        }
        self.epoch = version;
        // Emit tokens on the source ops' remote out-edges.
        let graph = node.graph.clone();
        for &op in &sources {
            for &e in &graph.op(op).out_edges {
                let to = graph.edge(e).to;
                if node.op_slot[to.index()] != node.cfg.slot {
                    self.emit_token(version, e, node, ctx);
                }
            }
        }
        let hosts_compute = node.ops.keys().any(|&o| graph.op(o).kind != OpKind::Source);
        if hosts_compute {
            // Mixed node: if no remote in-edges feed the compute ops the
            // token wave can never trigger alignment here — checkpoint
            // immediately (local chains snapshot with the sources).
            if node.remote_in_edges().is_empty() {
                self.do_checkpoint(version, node, ctx);
            }
        } else {
            // Pure source node: stateless, ack right away.
            self.finish_content(
                &BlobContent::Checkpoint {
                    version,
                    states: Vec::new(),
                },
                node,
                ctx,
            );
        }
    }

    fn on_blob(&mut self, blob: BlobDeliver, node: &mut NodeInner, _ctx: &mut Ctx) {
        self.rx.finish(blob.from_actor, blob.stream);
        match blob.content {
            BlobContent::Checkpoint { version, states }
            | BlobContent::ProxyCheckpoint {
                version, states, ..
            } => {
                for (op, st, bytes) in states {
                    node.store.put_state(version, op, st, bytes);
                }
            }
            BlobContent::Preserve {
                epoch,
                op,
                tuple,
                deliver_edge,
            } => {
                node.store.preserve_input(epoch, op, tuple.clone());
                if let Some(edge) = deliver_edge {
                    let target = node.graph.edge_target(edge);
                    if node.hosts(target) {
                        node.push_item(edge, dsps::tuple::StreamItem::Tuple(tuple));
                    }
                }
            }
        }
    }

    fn on_rollback(&mut self, version: u64, node: &mut NodeInner, ctx: &mut Ctx) {
        node.abort_current();
        node.clear_queues();
        self.align.clear();
        self.jobs.clear();
        self.tokens_emitted.clear();
        let ops: Vec<OpId> = node.ops.keys().copied().collect();
        let states: Vec<(OpId, dsps::operator::OpState)> = ops
            .iter()
            .filter_map(|&op| node.store.state(version, op).map(|s| (op, s.clone())))
            .collect();
        node.restore_ops(&states);
        self.stats.rollbacks += 1;
        ctx.count("ms.rollbacks", 1);
        let ack = RecoveredAck {
            region: node.cfg.region,
            slot: node.cfg.slot,
        };
        node.send_controller_tracked(ctx, wire::CONTROL, ack);
    }

    /// Source-node emission: replace the unicast hop with one reliable
    /// broadcast job that (a) delivers the tuple to its downstream
    /// neighbor and (b) leaves a preservation copy on every node —
    /// §III-B step 3 at the cost of a single transmission.
    fn preserve_and_deliver(
        &mut self,
        tuple: &Tuple,
        edge: EdgeId,
        node: &mut NodeInner,
        ctx: &mut Ctx,
    ) {
        let op = node.graph.edge(edge).from;
        let content = BlobContent::Preserve {
            epoch: self.epoch,
            op,
            tuple: tuple.clone(),
            deliver_edge: Some(edge),
        };
        let bytes = tuple.bytes;
        self.start_job(node, ctx, content, bytes, TrafficClass::Preservation);
    }

    fn on_replay(&mut self, epoch: u64, node: &mut NodeInner, ctx: &mut Ctx) {
        let _ = ctx;
        for op in node.hosted_sources() {
            let tuples: Vec<Tuple> = node
                .store
                .source_log(epoch, op)
                .map(|l| l.tuples.clone())
                .unwrap_or_default();
            self.stats.replayed += tuples.len() as u64;
            for t in tuples {
                node.push_source_replay(op, t);
            }
        }
    }
}

impl FtScheme for MsScheme {
    fn name(&self) -> &'static str {
        "mobistreams"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_emit(
        &mut self,
        tuple: &Tuple,
        edge: EdgeId,
        node: &mut NodeInner,
        ctx: &mut Ctx,
    ) -> bool {
        if !self.cfg.preserve_inputs || tuple.replay || edge.is_source() {
            return true;
        }
        let from = node.graph.edge(edge).from;
        let is_source = node.graph.op(from).kind == OpKind::Source;
        if !is_source || !node.hosts(from) {
            return true;
        }
        // Local edges and empty regions use the normal path.
        let to = node.graph.edge(edge).to;
        if node.op_slot[to.index()] == node.cfg.slot || self.peers(node).is_empty() {
            return true;
        }
        self.preserve_and_deliver(tuple, edge, node, ctx);
        false
    }

    fn on_marker(&mut self, marker: Marker, edge: EdgeId, node: &mut NodeInner, ctx: &mut Ctx) {
        if marker.kind != Marker::CHECKPOINT_TOKEN {
            return;
        }
        self.stats.tokens_seen += 1;
        let v = marker.version;
        // A duplicate or stale token (this node already checkpointed
        // that version): pausing the edge again would freeze it
        // forever — there is no wave left to resume it.
        if v <= self.last_aligned {
            return;
        }
        // A token for a newer version abandons any incomplete older
        // wave: a straggler (e.g. a departed phone draining its
        // backlog over slow cellular) can deliver its tokens so late
        // that the next round starts first — the old round can no
        // longer commit region-wide, and keeping its edges paused
        // would deadlock this node across versions.
        let superseded: Vec<u64> = self.align.keys().copied().filter(|&u| u < v).collect();
        for u in superseded {
            if let Some(st) = self.align.remove(&u) {
                for e in st.got {
                    node.paused.remove(&e);
                }
            }
        }
        // Pause this edge: tuples succeeding the token must not corrupt
        // the pre-checkpoint state (Fig 5, node E).
        node.paused.insert(edge);
        let st = self.align.entry(v).or_default();
        st.got.insert(edge);
        let needed: BTreeSet<EdgeId> = node.remote_in_edges().into_iter().collect();
        if st.got.is_superset(&needed) {
            self.do_checkpoint(v, node, ctx);
        }
    }

    fn on_source_input(&mut self, tuple: &Tuple, op: OpId, node: &mut NodeInner, ctx: &mut Ctx) {
        let _ = ctx;
        // Log locally; region-wide replication happens when the source
        // emits (the broadcast then doubles as the data delivery).
        node.store.preserve_input(self.epoch, op, tuple.clone());
    }

    fn on_custom(&mut self, ev: EventBox, node: &mut NodeInner, ctx: &mut Ctx) -> bool {
        // Dead nodes react to nothing (reboot is handled by the node
        // runtime itself).
        if !node.alive {
            return true;
        }
        simkernel::match_event!(ev,
            // --- receiver side of the broadcast protocol ---
            b: WifiBatchRx => {
                match self.rx.on_batch(b.src, b.stream, b.total_blocks, &b.blocks, &b.received) {
                    Ok(cum) => {
                        if b.reply_expected {
                            let reply = BitmapReply { stream: b.stream, received: cum };
                            let bytes = reply.received.wire_bytes();
                            node.send_wifi(
                                ctx,
                                SendMode::Unicast(b.src),
                                Service::Reliable,
                                b.class,
                                bytes,
                                0,
                                Some(payload(reply)),
                            );
                        }
                    }
                    Err(err) => {
                        // Malformed batch: reject it whole and send no
                        // bitmap — the sender's phase timeout treats us
                        // as a straggler and the residue still reaches
                        // us over the reliable pass. Never panic a
                        // phone over one bad message.
                        self.stats.protocol_errors += 1;
                        ctx.count("ms.batch_protocol_errors", 1);
                        ctx.trace(format!("rejected batch: {err}"));
                    }
                }
            },
            // --- sender side: bitmap replies arrive over WiFi ---
            rx: WifiRx => {
                if let Some(reply) = payload_as::<BitmapReply>(&rx.payload) {
                    let stream = reply.stream;
                    let decision = self
                        .jobs
                        .get_mut(&stream)
                        .and_then(|j| j.on_bitmap(rx.src, &reply.received));
                    if let Some(d) = decision {
                        self.apply_decision(stream, d, node, ctx);
                    }
                }
            },
            t: BitmapTimeout => {
                let silent: Vec<simkernel::ActorId> = self
                    .jobs
                    .get(&t.stream)
                    .filter(|j| j.phase == t.phase && !j.is_done())
                    .map(|j| j.awaiting().to_vec())
                    .unwrap_or_default();
                let decision = self
                    .jobs
                    .get_mut(&t.stream)
                    .and_then(|j| j.on_timeout(t.phase));
                if let Some(d) = decision {
                    // Receivers that never acknowledged a broadcast are
                    // dead or departed — report them (the broadcast path
                    // replaces per-edge TCP, so this IS the upstream
                    // failure detection of §III-D for those edges).
                    for actor in silent {
                        if let Some(slot) = node
                            .slot_actors
                            .iter()
                            .position(|&a| a == actor)
                        {
                            let slot = slot as u32;
                            let now = ctx.now();
                            let recent = self
                                .reported_silent
                                .get(&slot)
                                .is_some_and(|&t| now.since(t) < simkernel::SimDuration::from_secs(60));
                            if !recent {
                                self.reported_silent.insert(slot, now);
                                let report = dsps::node::ReportDead {
                                    region: node.cfg.region,
                                    slot,
                                    observed_by: node.cfg.slot,
                                };
                                node.send_controller(ctx, wire::CONTROL, report);
                            }
                        }
                    }
                    self.apply_decision(t.stream, d, node, ctx);
                }
            },
            d: simnet::TxDone => {
                if let Some(stream) = self.batch_tags.remove(&d.tag) {
                    let more = self
                        .chunk_queues
                        .get(&stream)
                        .map(|q| !q.is_empty())
                        .unwrap_or(false);
                    if more {
                        self.send_next_chunk(node, ctx, stream);
                    } else {
                        self.chunk_queues.remove(&stream);
                        if let Some(job) = self.jobs.get(&stream) {
                            let phase = job.phase;
                            self.arm_timeout(ctx, stream, phase);
                        }
                    }
                } else if let Some(stream) = self.tcp_tags.remove(&d.tag) {
                    self.complete_job(stream, node, ctx);
                }
            },
            f: simnet::TxFailed => {
                if let Some(stream) = self.tcp_tags.remove(&f.tag) {
                    // Best effort: the dead receiver is the controller's
                    // problem; the blob is complete for survivors.
                    self.complete_job(stream, node, ctx);
                }
            },
            blob: BlobDeliver => {
                self.on_blob(blob, node, ctx);
            },
            // --- controller RPCs over cellular ---
            rx: CellRx => {
                if let Some(s) = payload_as::<StartCheckpoint>(&rx.payload) {
                    self.on_start_checkpoint(s.version, node, ctx);
                } else if let Some(c) = payload_as::<CheckpointComplete>(&rx.payload) {
                    node.store.mark_complete(c.version);
                    node.store.gc_before(c.version);
                } else if let Some(r) = payload_as::<RollbackTo>(&rx.payload) {
                    self.on_rollback(r.version, node, ctx);
                } else if let Some(r) = payload_as::<ReplayInputs>(&rx.payload) {
                    self.on_replay(r.epoch, node, ctx);
                } else if let Some(m) = payload_as::<MembershipUpdate>(&rx.payload) {
                    // A snapshot carries the full state at its epoch;
                    // apply unless we already hold something newer
                    // (cellular is FIFO, but a resync snapshot may
                    // race a delta issued the same tick).
                    if m.epoch >= self.membership_epoch {
                        node.slot_actors = (*m.slot_actors).clone();
                        self.active_slots = (*m.active_slots).clone();
                        self.membership_epoch = m.epoch;
                    }
                } else if let Some(d) = payload_as::<MembershipDelta>(&rx.payload) {
                    // Apply only if our epoch falls in the delta's
                    // coverage; overlap re-applies idempotently
                    // (changes are absolute activity assignments).
                    if self.membership_epoch >= d.base_epoch && d.epoch > self.membership_epoch {
                        for ch in d.changes.iter() {
                            match self.active_slots.binary_search(&ch.slot) {
                                Ok(i) if !ch.active => {
                                    self.active_slots.remove(i);
                                }
                                Err(i) if ch.active => {
                                    self.active_slots.insert(i, ch.slot);
                                }
                                _ => {}
                            }
                        }
                        self.membership_epoch = d.epoch;
                    }
                } else if let Some(d) = payload_as::<DegradedCheckpointVia>(&rx.payload) {
                    self.degraded_proxy = Some(d.proxy);
                } else if let Some(s) = payload_as::<DegradedSnapshot>(&rx.payload) {
                    // Proxy duty: a degraded departed phone shipped its
                    // snapshot here over cellular. Keep a local MRC
                    // copy, then relay it to the whole region on WiFi;
                    // the finished job reports the DEGRADED slot to the
                    // controller so the round can still commit.
                    if s.region != node.cfg.region {
                        // A stale/misrouted snapshot from another region
                        // must not be relayed into this region's round.
                        self.stats.protocol_errors += 1;
                        ctx.count("ms.cross_region_snapshots_rejected", 1);
                        return true;
                    }
                    self.stats.proxied_snapshots += 1;
                    ctx.count("ms.proxied_snapshots", 1);
                    let mut total = 0u64;
                    for (op, st, bytes) in &s.states {
                        node.store.put_state(s.version, *op, st.clone(), *bytes);
                        total += bytes;
                    }
                    let content = BlobContent::ProxyCheckpoint {
                        origin_slot: s.origin_slot,
                        version: s.version,
                        states: s.states.clone(),
                    };
                    self.start_job(node, ctx, content, total, TrafficClass::Checkpoint);
                } else if let Some(t) = payload_as::<TransferStateTo>(&rx.payload) {
                    // Departing node: package states and ship the install
                    // over cellular (we are out of WiFi range).
                    let snaps = node.snapshot_ops();
                    let bytes: u64 = snaps.iter().map(|(_, _, b)| *b).sum();
                    let mut install = t.install.clone();
                    install.states = InstallStates::Explicit(
                        snaps.into_iter().map(|(op, st, _)| (op, st)).collect(),
                    );
                    let dst = t.replacement;
                    node.send_cell(
                        ctx,
                        dst,
                        TrafficClass::Recovery,
                        bytes.max(1),
                        0,
                        Some(payload(install)),
                    );
                } else {
                    return false;
                }
            },
            // --- fault injection ---
            _d: Depart => {
                let notice = DepartureNotice {
                    region: node.cfg.region,
                    slot: node.cfg.slot,
                };
                node.send_controller_tracked(ctx, wire::CONTROL, notice);
            },
            @else _other => {
                return false;
            }
        );
        true
    }

    fn on_install(&mut self, node: &mut NodeInner, ctx: &mut Ctx) {
        self.align.clear();
        self.jobs.clear();
        self.tokens_emitted.clear();
        // A reinstall means the phone is back on the WiFi path (rejoin
        // or replacement): end the degraded cellular snapshot mode.
        self.degraded_proxy = None;
        let ack = RecoveredAck {
            region: node.cfg.region,
            slot: node.cfg.slot,
        };
        node.send_controller_tracked(ctx, wire::CONTROL, ack);
    }

    fn preserved_bytes(&self, node: &NodeInner) -> u64 {
        node.store.preserved_input_bytes()
    }
}

/// Dummy bitmap type re-export check (keeps `Bitmap` linked in docs).
#[doc(hidden)]
pub type _BitmapAlias = Bitmap;

#[cfg(test)]
mod tests {
    use super::*;
    use dsps::ft::NullScheme;
    use dsps::graph::QueryGraph;
    use dsps::node::{NodeActor, NodeConfig, NodeInner, PrimaryTransport, SourceEmit};
    use dsps::ops::{Counter, Relay};
    use dsps::tuple::value;
    use simkernel::{impl_actor_any, Actor, Sim, SimDuration, SimTime};
    use simnet::cellular::{CellConfig, CellSend, CellularNet};
    use simnet::wifi::{WifiConfig, WifiMedium};
    use std::sync::Arc;

    /// Records control messages arriving at "the controller".
    #[derive(Default)]
    struct CtlStub {
        checkpointed: Vec<(u64, u32)>,
        acks: Vec<u32>,
    }

    impl Actor for CtlStub {
        fn on_event(&mut self, ev: simkernel::EventBox, _ctx: &mut Ctx) {
            if let Ok(rx) = ev.downcast::<CellRx>() {
                if let Some(m) = payload_as::<NodeCheckpointed>(&rx.payload) {
                    self.checkpointed.push((m.version, m.slot));
                } else if let Some(a) = payload_as::<RecoveredAck>(&rx.payload) {
                    self.acks.push(a.slot);
                }
            }
        }
        impl_actor_any!();
    }

    struct Rig {
        sim: Sim,
        nodes: Vec<simkernel::ActorId>,
        cell: simkernel::ActorId,
        ctl: simkernel::ActorId,
    }

    /// Chain S → A(counter) → K on slots 0,1,2 (+1 idle), MsScheme on
    /// every node, lossless WiFi for deterministic assertions.
    fn rig() -> Rig {
        let mut g = QueryGraph::new();
        let s = g.add_op("S", dsps::graph::OpKind::Source, || {
            Box::new(Relay::new(SimDuration::from_millis(1)))
        });
        let a = g.add_op("A", dsps::graph::OpKind::Compute, || {
            Box::new(Counter::new(SimDuration::from_millis(20), 1).with_state_padding(64 * 1024))
        });
        let k = g.add_op("K", dsps::graph::OpKind::Sink, || {
            Box::new(Relay::new(SimDuration::from_millis(1)))
        });
        g.connect(s, a);
        g.connect(a, k);
        let graph = Arc::new(g);

        let mut sim = Sim::new(77);
        let ctl = sim.add_actor(Box::<CtlStub>::default());
        let wifi = sim.add_actor(Box::new(WifiMedium::new(WifiConfig {
            loss: 0.0,
            ..WifiConfig::default()
        })));
        let cell = sim.add_actor(Box::new(CellularNet::new(CellConfig::default())));
        let mut nodes = Vec::new();
        for slot in 0..4u32 {
            let mut inner = NodeInner::new(
                NodeConfig {
                    slot,
                    primary: PrimaryTransport::Wifi,
                    ..NodeConfig::default()
                },
                Arc::clone(&graph),
                wifi,
                cell,
                ctl,
            );
            inner.op_slot = vec![0, 1, 2];
            let mut scheme = MsScheme::paper();
            scheme.active_slots = vec![0, 1, 2, 3];
            let id = sim.add_actor(Box::new(NodeActor::new(inner, Box::new(scheme))));
            nodes.push(id);
        }
        for (slot, &nid) in nodes.iter().enumerate() {
            let na = sim.actor_mut::<NodeActor>(nid);
            na.inner.slot_actors = nodes.clone();
            if slot < 3 {
                na.inner.host_op(dsps::graph::OpId(slot as u32));
            }
        }
        {
            let m = sim.actor_mut::<WifiMedium>(wifi);
            for &n in &nodes {
                m.add_member(n);
            }
            let c = sim.actor_mut::<CellularNet>(cell);
            for &n in &nodes {
                c.register(n);
            }
            c.register_with_rates(ctl, 1e9, 1e9);
        }
        Rig {
            sim,
            nodes,
            cell,
            ctl,
        }
    }

    fn feed(rig: &mut Rig, n: usize, every_ms: u64) {
        for i in 0..n {
            rig.sim.schedule_at(
                SimTime::from_millis(10 + every_ms * i as u64),
                rig.nodes[0],
                SourceEmit {
                    op: dsps::graph::OpId(0),
                    value: value(i as u64),
                    bytes: 5000,
                },
            );
        }
    }

    fn start_ckpt(rig: &mut Rig, at_ms: u64, version: u64) {
        let ctl = rig.ctl;
        let dst = rig.nodes[0];
        rig.sim.schedule_at(
            SimTime::from_millis(at_ms),
            rig.cell,
            CellSend {
                src: ctl,
                dst,
                class: TrafficClass::Control,
                bytes: 64,
                tag: 0,
                payload: Some(payload(StartCheckpoint { version })),
            },
        );
    }

    #[test]
    fn token_wave_checkpoints_and_replicates() {
        let mut rig = rig();
        feed(&mut rig, 5, 300);
        start_ckpt(&mut rig, 800, 1);
        rig.sim.run_until(SimTime::from_secs(30));
        // Source (stateless) and the A/K nodes all reported the version.
        let ctl = rig.sim.actor::<CtlStub>(rig.ctl);
        let slots: Vec<u32> = ctl
            .checkpointed
            .iter()
            .filter(|&&(v, _)| v == 1)
            .map(|&(_, s)| s)
            .collect();
        assert!(
            slots.contains(&0) && slots.contains(&1) && slots.contains(&2),
            "{slots:?}"
        );
        // Every OTHER node (incl. the idle slot 3) received A's state
        // via the broadcast.
        for (i, &nid) in rig.nodes.iter().enumerate() {
            if i == 1 {
                continue; // A's own copy is local
            }
            let na = rig.sim.actor::<NodeActor>(nid);
            assert!(
                na.inner.store.state(1, dsps::graph::OpId(1)).is_some(),
                "slot {i} holds A's checkpoint"
            );
        }
    }

    #[test]
    fn alignment_pauses_edge_until_checkpoint() {
        let mut rig = rig();
        feed(&mut rig, 2, 100);
        start_ckpt(&mut rig, 500, 1);
        rig.sim.run_until(SimTime::from_secs(20));
        // After the wave completes nothing stays paused.
        for &nid in &rig.nodes {
            let na = rig.sim.actor::<NodeActor>(nid);
            assert!(na.inner.paused.is_empty(), "no edge left paused");
        }
        // Tokens were consumed (A and K each saw one).
        let a = rig.sim.actor::<NodeActor>(rig.nodes[1]);
        let a_scheme = a.scheme.as_ref();
        let _ = a_scheme;
    }

    #[test]
    fn preservation_epoch_gc_on_complete() {
        let mut rig = rig();
        feed(&mut rig, 4, 200);
        start_ckpt(&mut rig, 2000, 1);
        rig.sim.run_until(SimTime::from_secs(5));
        let src = rig.sim.actor::<NodeActor>(rig.nodes[0]);
        let pre_epoch0 = src
            .inner
            .store
            .source_log(0, dsps::graph::OpId(0))
            .map(|l| l.tuples.len());
        assert!(pre_epoch0.unwrap_or(0) > 0, "epoch-0 inputs logged");
        // Commit v1: epoch-0 data must be GC'd everywhere.
        for &nid in rig.nodes.clone().iter() {
            let ctl = rig.ctl;
            rig.sim.schedule_at(
                rig.sim.now(),
                rig.cell,
                CellSend {
                    src: ctl,
                    dst: nid,
                    class: TrafficClass::Control,
                    bytes: 64,
                    tag: 0,
                    payload: Some(payload(CheckpointComplete { version: 1 })),
                },
            );
        }
        rig.sim.run_until(rig.sim.now() + SimDuration::from_secs(2));
        let src = rig.sim.actor::<NodeActor>(rig.nodes[0]);
        assert!(
            src.inner
                .store
                .source_log(0, dsps::graph::OpId(0))
                .is_none(),
            "epoch 0 garbage-collected after commit"
        );
        assert_eq!(src.inner.store.latest_complete(), Some(1));
    }

    #[test]
    fn rollback_restores_and_acks() {
        let mut rig = rig();
        feed(&mut rig, 3, 100);
        start_ckpt(&mut rig, 600, 1);
        rig.sim.run_until(SimTime::from_secs(10));
        // More tuples after the checkpoint change A's counter.
        feed(&mut rig, 3, 100);
        rig.sim.run_until(SimTime::from_secs(20));
        // Roll A's node back to v1.
        let ctl = rig.ctl;
        let a_node = rig.nodes[1];
        rig.sim.schedule_at(
            rig.sim.now(),
            rig.cell,
            CellSend {
                src: ctl,
                dst: a_node,
                class: TrafficClass::Control,
                bytes: 64,
                tag: 0,
                payload: Some(payload(RollbackTo { version: 1 })),
            },
        );
        rig.sim.run_until(rig.sim.now() + SimDuration::from_secs(2));
        let ctl_stub = rig.sim.actor::<CtlStub>(rig.ctl);
        assert!(ctl_stub.acks.contains(&1), "rollback acked");
    }

    #[test]
    fn replay_marks_tuples_and_sink_squelches() {
        let mut rig = rig();
        feed(&mut rig, 3, 100);
        start_ckpt(&mut rig, 600, 1);
        rig.sim.run_until(SimTime::from_secs(10));
        feed(&mut rig, 3, 100); // epoch-1 inputs
        rig.sim.run_until(SimTime::from_secs(20));
        let before = rig
            .sim
            .actor::<NodeActor>(rig.nodes[2])
            .inner
            .metrics
            .sink_samples
            .len();
        // Replay epoch 1 at the source.
        let ctl = rig.ctl;
        let s_node = rig.nodes[0];
        rig.sim.schedule_at(
            rig.sim.now(),
            rig.cell,
            CellSend {
                src: ctl,
                dst: s_node,
                class: TrafficClass::Control,
                bytes: 64,
                tag: 0,
                payload: Some(payload(ReplayInputs { epoch: 1 })),
            },
        );
        rig.sim
            .run_until(rig.sim.now() + SimDuration::from_secs(10));
        let sink = rig.sim.actor::<NodeActor>(rig.nodes[2]);
        assert_eq!(
            sink.inner.metrics.sink_samples.len(),
            before,
            "replayed results are discarded, not re-published"
        );
        assert!(sink.inner.metrics.catchup_discards >= 3, "squelch counted");
    }

    #[test]
    fn null_scheme_node_ignores_tokens() {
        // A base-scheme node receiving a stray token just drops it.
        let mut sim = Sim::new(1);
        let mut g = QueryGraph::new();
        let s = g.add_op("S", dsps::graph::OpKind::Source, || {
            Box::new(Relay::new(SimDuration::from_millis(1)))
        });
        let k = g.add_op("K", dsps::graph::OpKind::Sink, || {
            Box::new(Relay::new(SimDuration::from_millis(1)))
        });
        g.connect(s, k);
        let graph = Arc::new(g);
        let wifi = sim.add_actor(Box::new(WifiMedium::new(WifiConfig::default())));
        let cell = sim.add_actor(Box::new(CellularNet::new(CellConfig::default())));
        let ctl = sim.add_actor(Box::<CtlStub>::default());
        let mut inner = NodeInner::new(NodeConfig::default(), graph, wifi, cell, ctl);
        inner.op_slot = vec![0, 0];
        inner.host_op(dsps::graph::OpId(0));
        inner.host_op(dsps::graph::OpId(1));
        inner.slot_actors = vec![simkernel::ActorId::from_index(3)];
        let node = sim.add_actor(Box::new(NodeActor::new(inner, Box::new(NullScheme))));
        sim.actor_mut::<NodeActor>(node).inner.slot_actors = vec![node];
        sim.schedule_at(
            SimTime::ZERO,
            node,
            dsps::node::ItemMsg {
                edge: dsps::graph::EdgeId(0),
                from_slot: 9,
                item: dsps::tuple::StreamItem::Marker(Marker::token(1)),
            },
        );
        sim.run_until(SimTime::from_secs(1));
        // No panic, nothing stuck.
        assert!(sim.actor::<NodeActor>(node).inner.paused.is_empty());
    }
}
