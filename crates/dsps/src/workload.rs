//! Workload drivers: the external sensors feeding source operators.
//!
//! A [`WorkloadDriver`] models a physical sensor (the bus-stop camera,
//! the windshield phone camera, the on-vehicle infrared counter): it
//! periodically generates a value and hands it to the phone currently
//! hosting the target source operator. Sensor→phone delivery is local
//! (the camera is wired/paired to the adjacent phone), so it costs no
//! simulated network time; all network costs start at the source node.
//!
//! When the controller moves a source operator to another phone
//! (failure/departure recovery), it re-pairs the sensor by sending the
//! driver a [`SensorRedirect`].

use simkernel::{impl_actor_any, Actor, ActorId, Ctx, EventBox, SimDuration, SimRng};

use crate::graph::OpId;
use crate::node::SourceEmit;
use crate::tuple::TupleValue;

/// Controller → driver: the source op now lives on `actor`.
#[derive(Debug, Clone, Copy)]
pub struct SensorRedirect {
    /// The source operator.
    pub op: OpId,
    /// The phone now hosting it.
    pub actor: ActorId,
}

/// Internal tick.
#[derive(Debug, Clone, Copy)]
struct FeedTick {
    feed: usize,
    #[allow(dead_code)]
    seq: u64,
}

/// Generates one sample: `(value, wire_bytes)`.
pub type SampleGen = Box<dyn FnMut(&mut SimRng, u64) -> (TupleValue, u64) + Send>;

/// One periodic feed into one source operator.
pub struct Feed {
    /// Target source operator.
    pub op: OpId,
    /// Phone currently hosting it (updated by [`SensorRedirect`]).
    pub target: ActorId,
    /// Mean inter-sample period.
    pub period: SimDuration,
    /// Uniform jitter applied to each period (fraction of period,
    /// 0.0 = strictly periodic).
    pub jitter: f64,
    /// Sample generator.
    pub gen: SampleGen,
    /// Samples produced so far.
    pub produced: u64,
    /// Duplicate each sample to these extra targets (rep-2 feeds both
    /// flows' source ops).
    pub mirrors: Vec<(OpId, ActorId)>,
}

/// The sensor actor.
pub struct WorkloadDriver {
    feeds: Vec<Feed>,
    started: bool,
}

impl WorkloadDriver {
    /// New driver over the given feeds.
    pub fn new(feeds: Vec<Feed>) -> Self {
        WorkloadDriver {
            feeds,
            started: false,
        }
    }

    /// Start ticking (schedule from setup code with a `StartFeeds`
    /// event or call before adding to the sim).
    fn schedule_next(&mut self, feed_ix: usize, ctx: &mut Ctx) {
        let f = &mut self.feeds[feed_ix];
        let jitter = if f.jitter > 0.0 {
            let j = ctx.rng().uniform(-f.jitter, f.jitter);
            f.period * (1.0 + j).max(0.05)
        } else {
            f.period
        };
        let seq = f.produced;
        let me = ctx.self_id();
        ctx.send_in(jitter, me, FeedTick { feed: feed_ix, seq });
    }

    /// Total samples produced across feeds.
    pub fn produced(&self) -> u64 {
        self.feeds.iter().map(|f| f.produced).sum()
    }
}

/// Kick-off event for a driver.
#[derive(Debug, Clone, Copy)]
pub struct StartFeeds;

impl Actor for WorkloadDriver {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        simkernel::match_event!(ev,
            _s: StartFeeds => {
                if !self.started {
                    self.started = true;
                    for i in 0..self.feeds.len() {
                        self.schedule_next(i, ctx);
                    }
                }
            },
            t: FeedTick => {
                let (value, bytes, op, target, mirrors) = {
                    let f = &mut self.feeds[t.feed];
                    let (value, bytes) = (f.gen)(ctx.rng(), f.produced);
                    f.produced += 1;
                    (value, bytes, f.op, f.target, f.mirrors.clone())
                };
                ctx.send(target, SourceEmit { op, value: value.clone(), bytes });
                for (m_op, m_target) in mirrors {
                    ctx.send(m_target, SourceEmit { op: m_op, value: value.clone(), bytes });
                }
                self.schedule_next(t.feed, ctx);
            },
            r: SensorRedirect => {
                for f in self.feeds.iter_mut() {
                    if f.op == r.op {
                        f.target = r.actor;
                    }
                    for (m_op, m_target) in f.mirrors.iter_mut() {
                        if *m_op == r.op {
                            *m_target = r.actor;
                        }
                    }
                }
            },
            @else _other => {}
        );
    }

    fn name(&self) -> String {
        "workload-driver".into()
    }

    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::value;
    use simkernel::Sim;
    use std::any::Any;

    #[derive(Default)]
    struct Collector {
        got: Vec<(OpId, u64)>,
    }

    impl Actor for Collector {
        fn on_event(&mut self, ev: EventBox, _ctx: &mut Ctx) {
            if let Ok(e) = ev.downcast::<SourceEmit>() {
                self.got.push((e.op, e.bytes));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn periodic_feed_produces_expected_count() {
        let mut sim = Sim::new(5);
        let sink = sim.add_actor(Box::<Collector>::default());
        let driver = sim.add_actor(Box::new(WorkloadDriver::new(vec![Feed {
            op: OpId(0),
            target: sink,
            period: SimDuration::from_secs(2),
            jitter: 0.0,
            gen: Box::new(|_rng, seq| (value(seq), 100)),
            produced: 0,
            mirrors: vec![],
        }])));
        sim.schedule_at(simkernel::SimTime::ZERO, driver, StartFeeds);
        sim.run_until(simkernel::SimTime::from_secs(21));
        let got = &sim.actor::<Collector>(sink).got;
        assert_eq!(got.len(), 10, "ticks at 2,4,...,20");
        assert!(got.iter().all(|&(op, b)| op == OpId(0) && b == 100));
    }

    #[test]
    fn redirect_switches_target() {
        let mut sim = Sim::new(5);
        let a = sim.add_actor(Box::<Collector>::default());
        let b = sim.add_actor(Box::<Collector>::default());
        let driver = sim.add_actor(Box::new(WorkloadDriver::new(vec![Feed {
            op: OpId(3),
            target: a,
            period: SimDuration::from_secs(1),
            jitter: 0.0,
            gen: Box::new(|_rng, seq| (value(seq), 8)),
            produced: 0,
            mirrors: vec![],
        }])));
        sim.schedule_at(simkernel::SimTime::ZERO, driver, StartFeeds);
        sim.run_until(simkernel::SimTime::from_secs(3));
        sim.schedule_at(
            sim.now(),
            driver,
            SensorRedirect {
                op: OpId(3),
                actor: b,
            },
        );
        sim.run_until(simkernel::SimTime::from_secs(6));
        assert_eq!(sim.actor::<Collector>(a).got.len(), 3);
        assert_eq!(sim.actor::<Collector>(b).got.len(), 3);
    }

    #[test]
    fn mirrors_duplicate_samples() {
        let mut sim = Sim::new(5);
        let a = sim.add_actor(Box::<Collector>::default());
        let b = sim.add_actor(Box::<Collector>::default());
        let driver = sim.add_actor(Box::new(WorkloadDriver::new(vec![Feed {
            op: OpId(0),
            target: a,
            period: SimDuration::from_secs(1),
            jitter: 0.0,
            gen: Box::new(|_rng, seq| (value(seq), 8)),
            produced: 0,
            mirrors: vec![(OpId(9), b)],
        }])));
        sim.schedule_at(simkernel::SimTime::ZERO, driver, StartFeeds);
        sim.run_until(simkernel::SimTime::from_secs(4));
        assert_eq!(sim.actor::<Collector>(a).got.len(), 4);
        let bg = &sim.actor::<Collector>(b).got;
        assert_eq!(bg.len(), 4);
        assert!(bg.iter().all(|&(op, _)| op == OpId(9)));
    }

    #[test]
    fn jitter_stays_positive_and_near_period() {
        let mut sim = Sim::new(5);
        let sink = sim.add_actor(Box::<Collector>::default());
        let driver = sim.add_actor(Box::new(WorkloadDriver::new(vec![Feed {
            op: OpId(0),
            target: sink,
            period: SimDuration::from_secs(1),
            jitter: 0.3,
            gen: Box::new(|_rng, seq| (value(seq), 8)),
            produced: 0,
            mirrors: vec![],
        }])));
        sim.schedule_at(simkernel::SimTime::ZERO, driver, StartFeeds);
        sim.run_until(simkernel::SimTime::from_secs(100));
        let n = sim.actor::<Collector>(sink).got.len() as f64;
        assert!((n - 100.0).abs() < 20.0, "n = {n}");
    }
}
