//! # dsps — the generic distributed stream-processing layer
//!
//! Everything a DSPS needs *before* fault tolerance enters the picture:
//!
//! * [`tuple`] — tuples and in-band markers (the vehicle for the
//!   paper's checkpoint tokens),
//! * [`operator`] — the [`operator::Operator`] trait plus a library of
//!   builtin operators,
//! * [`graph`] — query networks (operator DAGs) with validation,
//! * [`placement`] — operator→node assignment and node roles,
//! * [`node`] — the phone-side runtime: per-edge input queues, a
//!   single-core CPU model, routing over `simnet` transports,
//! * [`ft`] — the [`ft::FtScheme`] hook trait that `mobistreams` and
//!   `baselines` plug into,
//! * [`store`] — in-memory checkpoint/preservation storage,
//! * [`metrics`] — sink-side throughput/latency probes.
//!
//! A region's DSPS is assembled by creating one [`node::NodeActor`] per
//! phone, a `simnet::wifi::WifiMedium`, a workload driver, and a
//! scheme-specific coordinator (the MobiStreams controller or a
//! baseline ticker).

pub mod ft;
pub mod graph;
pub mod metrics;
pub mod node;
pub mod operator;
pub mod ops;
pub mod placement;
pub mod store;
pub mod tuple;
pub mod workload;

pub use graph::{EdgeId, OpId, OpKind, QueryGraph};
pub use operator::{Operator, Outputs};
pub use tuple::{Marker, StreamItem, Tuple, TupleValue};
