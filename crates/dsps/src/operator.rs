//! The [`Operator`] trait: user code executed repeatedly on input
//! tuples, with explicit state, cost and size models.
//!
//! Three concerns are deliberately separated:
//!
//! * `process` — the *actual* computation (kernels really run),
//! * `cost` — the simulated CPU time charged on the reference phone
//!   (an iPhone 3GS-class 600 MHz core in the paper's testbed),
//! * `snapshot`/`restore`/`state_bytes` — what checkpointing saves.

use std::sync::Arc;

use simkernel::{Event, SimDuration, SimRng};

use crate::tuple::{Tuple, TupleValue};

/// Opaque, shareable operator state snapshot.
pub type OpState = Arc<dyn Event>;

/// Make an [`OpState`] from a concrete state type.
pub fn op_state<T: Event>(st: T) -> OpState {
    Arc::new(st)
}

/// Output collector passed to [`Operator::process`].
#[derive(Default)]
pub struct Outputs {
    emitted: Vec<(usize, TupleValue, u64)>,
}

impl Outputs {
    /// Emit `value` (`bytes` on the wire) on output port `port`.
    pub fn emit(&mut self, port: usize, value: TupleValue, bytes: u64) {
        self.emitted.push((port, value, bytes));
    }

    /// Drain the collected outputs.
    pub fn drain(&mut self) -> Vec<(usize, TupleValue, u64)> {
        std::mem::take(&mut self.emitted)
    }

    /// Number of collected outputs.
    pub fn len(&self) -> usize {
        self.emitted.len()
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.emitted.is_empty()
    }
}

/// A stream operator.
pub trait Operator: Send {
    /// Process one tuple arriving on input `port`; emit any outputs.
    fn process(&mut self, tuple: &Tuple, port: usize, out: &mut Outputs, rng: &mut SimRng);

    /// CPU time this tuple costs on the reference phone core.
    fn cost(&self, tuple: &Tuple) -> SimDuration {
        let _ = tuple;
        SimDuration::from_micros(100)
    }

    /// Serialized state size (0 = stateless).
    fn state_bytes(&self) -> u64 {
        0
    }

    /// Snapshot the operator state. Must be cheap (copy-on-write): the
    /// paper checkpoints asynchronously on a separate thread.
    fn snapshot(&self) -> OpState {
        op_state(())
    }

    /// Restore from a snapshot produced by the same operator type.
    fn restore(&mut self, state: &OpState) {
        let _ = state;
    }

    /// True if the operator carries no state worth checkpointing.
    fn is_stateless(&self) -> bool {
        self.state_bytes() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::value;
    use simkernel::SimTime;

    struct Doubler;
    impl Operator for Doubler {
        fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
            let x = *tuple.value_as::<u64>().expect("u64 input");
            out.emit(0, value(x * 2), 8);
        }
    }

    #[test]
    fn outputs_collect_and_drain() {
        let mut op = Doubler;
        let mut out = Outputs::default();
        let mut rng = SimRng::new(0);
        let t = Tuple::new(1, SimTime::ZERO, 8, value(21u64));
        op.process(&t, 0, &mut out, &mut rng);
        assert_eq!(out.len(), 1);
        let drained = out.drain();
        assert_eq!(drained.len(), 1);
        assert!(out.is_empty());
        let (port, v, bytes) = &drained[0];
        assert_eq!(*port, 0);
        assert_eq!(*bytes, 8);
        assert_eq!((**v).as_any().downcast_ref::<u64>(), Some(&42));
    }

    #[test]
    fn default_trait_behaviour() {
        let op = Doubler;
        assert!(op.is_stateless());
        assert_eq!(op.state_bytes(), 0);
        let t = Tuple::new(1, SimTime::ZERO, 8, value(1u64));
        assert!(op.cost(&t) > SimDuration::ZERO);
    }
}
