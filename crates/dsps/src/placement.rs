//! Operator→node placement within a region.
//!
//! The paper groups operators of the same color onto one node (Figs 2
//! and 3) and derives node roles from what they host: source nodes,
//! sink nodes, computing nodes, and idle nodes (which hold checkpoint
//! copies and stand by as replacements).

use crate::graph::{OpId, OpKind, QueryGraph};

/// Role of a node (slot) in a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Hosts at least one source operator.
    Source,
    /// Hosts at least one sink operator (and no source).
    Sink,
    /// Hosts only compute operators.
    Computing,
    /// Hosts nothing; standby + checkpoint replica holder.
    Idle,
}

/// An operator→slot assignment for one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `op_slot[op] = slot`.
    pub op_slot: Vec<u32>,
    /// Total slots (phones) in the region, including idle ones.
    pub slots: u32,
}

impl Placement {
    /// All-unassigned placement over `slots` phones.
    pub fn new(graph: &QueryGraph, slots: u32) -> Self {
        Placement {
            op_slot: vec![u32::MAX; graph.op_count()],
            slots,
        }
    }

    /// Assign `op` to `slot`.
    pub fn assign(&mut self, op: OpId, slot: u32) -> &mut Self {
        assert!(
            slot < self.slots,
            "slot {slot} out of range ({})",
            self.slots
        );
        self.op_slot[op.index()] = slot;
        self
    }

    /// Slot hosting `op`.
    pub fn slot_of(&self, op: OpId) -> u32 {
        self.op_slot[op.index()]
    }

    /// Operators hosted on `slot`.
    pub fn ops_on(&self, slot: u32) -> Vec<OpId> {
        self.op_slot
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == slot)
            .map(|(i, _)| OpId(i as u32))
            .collect()
    }

    /// Role of `slot` under this placement.
    pub fn role_of(&self, graph: &QueryGraph, slot: u32) -> NodeRole {
        let ops = self.ops_on(slot);
        if ops.is_empty() {
            return NodeRole::Idle;
        }
        if ops.iter().any(|&o| graph.op(o).kind == OpKind::Source) {
            return NodeRole::Source;
        }
        if ops.iter().any(|&o| graph.op(o).kind == OpKind::Sink) {
            return NodeRole::Sink;
        }
        NodeRole::Computing
    }

    /// Slots currently idle.
    pub fn idle_slots(&self, graph: &QueryGraph) -> Vec<u32> {
        (0..self.slots)
            .filter(|&s| self.role_of(graph, s) == NodeRole::Idle)
            .collect()
    }

    /// Slots hosting at least one operator.
    pub fn used_slots(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .op_slot
            .iter()
            .copied()
            .filter(|&s| s != u32::MAX)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Check every operator is assigned to a valid slot.
    pub fn validate(&self, graph: &QueryGraph) -> Result<(), String> {
        for op in graph.op_ids() {
            let s = self.op_slot[op.index()];
            if s == u32::MAX {
                return Err(format!("op '{}' unassigned", graph.op(op).name));
            }
            if s >= self.slots {
                return Err(format!(
                    "op '{}' on slot {s}, but region has {} slots",
                    graph.op(op).name,
                    self.slots
                ));
            }
        }
        Ok(())
    }

    /// Round-robin auto-placement over the first `compute_slots` slots
    /// (test/example convenience; real apps use the paper's groupings).
    pub fn round_robin(graph: &QueryGraph, slots: u32, compute_slots: u32) -> Self {
        assert!(compute_slots > 0 && compute_slots <= slots);
        let mut p = Placement::new(graph, slots);
        for (i, op) in graph.op_ids().enumerate() {
            p.assign(op, (i as u32) % compute_slots);
        }
        p
    }

    /// Move every operator on `from` to `to` (failure replacement).
    pub fn reassign_slot(&mut self, from: u32, to: u32) {
        assert!(to < self.slots);
        for s in self.op_slot.iter_mut() {
            if *s == from {
                *s = to;
            }
        }
    }
}

/// Proportionally remap a placement authored for `p.slots` phones onto
/// `k` phones (`k < p.slots`): canonical slot `s` hosts on
/// `s * k / p.slots`. Keeps the paper's grouping order, so pipeline
/// stages stay contiguous and any leftover high slots stay idle
/// (checkpoint replicas / standby), just denser — used for regions
/// smaller than the paper's 8-phone testbed, and for fitting rep-2's
/// two flows onto half a region each.
pub fn squeeze_placement(p: &Placement, k: u32) -> Placement {
    assert!(k >= 1, "a region needs at least one phone");
    // Identity whenever the canonical assignment already fits: every
    // assigned slot exists among the k phones (6- and 7-phone regions
    // keep one stage group per phone; only the idle tail shrinks).
    let fits = p.op_slot.iter().all(|&s| s == u32::MAX || s < k);
    if fits {
        return Placement {
            op_slot: p.op_slot.clone(),
            slots: k,
        };
    }
    let op_slot = p
        .op_slot
        .iter()
        .map(|&s| {
            if s == u32::MAX {
                u32::MAX
            } else {
                s * k / p.slots
            }
        })
        .collect();
    Placement { op_slot, slots: k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpKind;
    use crate::ops::Relay;
    use simkernel::SimDuration;

    fn relay() -> Box<dyn crate::operator::Operator> {
        Box::new(Relay::new(SimDuration::from_millis(1)))
    }

    fn chain() -> (QueryGraph, [OpId; 4]) {
        let mut g = QueryGraph::new();
        let s = g.add_op("S", OpKind::Source, relay);
        let a = g.add_op("A", OpKind::Compute, relay);
        let b = g.add_op("B", OpKind::Compute, relay);
        let k = g.add_op("K", OpKind::Sink, relay);
        g.connect(s, a);
        g.connect(a, b);
        g.connect(b, k);
        (g, [s, a, b, k])
    }

    #[test]
    fn assign_and_roles() {
        let (g, [s, a, b, k]) = chain();
        let mut p = Placement::new(&g, 6);
        p.assign(s, 0).assign(a, 1).assign(b, 1).assign(k, 2);
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.role_of(&g, 0), NodeRole::Source);
        assert_eq!(p.role_of(&g, 1), NodeRole::Computing);
        assert_eq!(p.role_of(&g, 2), NodeRole::Sink);
        assert_eq!(p.role_of(&g, 3), NodeRole::Idle);
        assert_eq!(p.idle_slots(&g), vec![3, 4, 5]);
        assert_eq!(p.used_slots(), vec![0, 1, 2]);
        assert_eq!(p.ops_on(1), vec![a, b]);
    }

    #[test]
    fn unassigned_rejected() {
        let (g, [s, a, b, _k]) = chain();
        let mut p = Placement::new(&g, 4);
        p.assign(s, 0).assign(a, 1).assign(b, 2);
        assert!(p.validate(&g).unwrap_err().contains("unassigned"));
    }

    #[test]
    fn round_robin_covers_all() {
        let (g, _) = chain();
        let p = Placement::round_robin(&g, 8, 4);
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.idle_slots(&g).len(), 4);
    }

    #[test]
    fn reassign_slot_moves_ops() {
        let (g, [s, a, b, k]) = chain();
        let mut p = Placement::new(&g, 4);
        p.assign(s, 0).assign(a, 1).assign(b, 1).assign(k, 2);
        p.reassign_slot(1, 3);
        assert_eq!(p.ops_on(1), vec![]);
        assert_eq!(p.ops_on(3), vec![a, b]);
        assert_eq!(p.role_of(&g, 3), NodeRole::Computing);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        let (g, [s, ..]) = chain();
        let mut p = Placement::new(&g, 2);
        p.assign(s, 5);
    }
}

#[cfg(test)]
mod squeeze_tests {
    use super::*;

    fn canonical() -> Placement {
        // Shape of the paper's BCP grouping: ops on slots 0..=5 of 8.
        Placement {
            op_slot: vec![0, 1, 1, 2, 3, 3, 4, 5, 5],
            slots: 8,
        }
    }

    #[test]
    fn squeeze_keeps_every_op_assigned_in_range() {
        for k in 1..8 {
            let sq = squeeze_placement(&canonical(), k);
            assert_eq!(sq.slots, k);
            for &s in &sq.op_slot {
                assert!(s < k, "slot {s} out of range for {k} phones");
            }
        }
    }

    #[test]
    fn squeeze_preserves_stage_order() {
        let sq = squeeze_placement(&canonical(), 3);
        // Monotone: a later canonical slot never maps before an earlier
        // one, so upstream stages stay upstream.
        for w in sq.op_slot.windows(2) {
            if w[0] != u32::MAX && w[1] != u32::MAX {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn squeeze_is_identity_when_room_enough() {
        let sq = squeeze_placement(&canonical(), 8);
        assert_eq!(sq.op_slot, canonical().op_slot);
        let sq = squeeze_placement(&canonical(), 12);
        assert_eq!(sq.op_slot, canonical().op_slot);
        assert_eq!(sq.slots, 12);
    }

    #[test]
    fn squeeze_keeps_one_group_per_phone_at_six_and_seven() {
        // Canonical assignment uses slots 0..=5: a 6- or 7-phone region
        // already fits one stage group per phone and must not be
        // compacted (only the idle tail shrinks).
        for k in [6, 7] {
            let sq = squeeze_placement(&canonical(), k);
            assert_eq!(sq.op_slot, canonical().op_slot, "k={k}");
            assert_eq!(sq.slots, k);
        }
    }

    #[test]
    fn squeeze_keeps_unassigned_ops_unassigned() {
        let p = Placement {
            op_slot: vec![0, u32::MAX, 7],
            slots: 8,
        };
        let sq = squeeze_placement(&p, 4);
        assert_eq!(sq.op_slot, vec![0, u32::MAX, 3]);
    }
}
